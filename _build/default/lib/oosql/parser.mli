(** Recursive-descent parser for OOSQL.

    Precedence, loosest first: or < and < not < comparison/set-comparison
    < union/except < intersect < additive < multiplicative < unary minus
    < path < primary.  A select-from-where block is a primary and extends
    as far right as possible; tuple constructors [(a = e, ...)] are
    disambiguated from grouping parentheses by lookahead. *)

exception Parse_error of string * Ast.pos

(** Parse class definitions followed by an optional query. *)
val parse_program : string -> Ast.program

(** Parse a single query (no class definitions allowed). *)
val parse_query : string -> Ast.expr

(** Parse class definitions only. *)
val parse_schema : string -> Ast.schema
