(** Pretty-printer for OOSQL abstract syntax.  Output re-parses to the same
    AST (modulo positions); the round trip is tested. *)

val pp : ?ctx:int -> Format.formatter -> Ast.expr -> unit
val to_string : Ast.expr -> string
val pp_class : Format.formatter -> Ast.class_def -> unit
val pp_schema : Format.formatter -> Ast.schema -> unit
