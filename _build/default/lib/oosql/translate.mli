(** Type-directed translation of OOSQL into ADL (paper Section 3).

    The sfw-block maps to a map over a selection
    ([select e1 from x in e2 where e3 ⇒ α\[x : e1\](σ\[x : e3\](e2))]);
    typing and translation are interleaved because the algebraic operator
    depends on the type: ['='] is scalar or set equality, paths through
    class references insert [Deref] (the materialize operator), multiple
    from-bindings become flattened nested maps, and integer literals
    compared with dates are coerced. *)

open Njq_adl

exception Translate_error of string * Ast.pos

type ctx

(** Build the translation context from a schema. *)
val make_ctx : Ast.schema -> ctx

type env = (string * Vtype.t) list

(** Translate an expression under variable typings [env], returning the
    ADL expression and its type.  Raises {!Translate_error} with a source
    position on ill-typed input. *)
val translate : ctx -> env -> Ast.expr -> Expr.t * Vtype.t

(** Translate a closed query under a schema. *)
val query : Ast.schema -> Ast.expr -> Expr.t * Vtype.t

(** Parse and translate in one step. *)
val query_string : Ast.schema -> string -> Expr.t * Vtype.t
