lib/oosql/views.mli: Ast
