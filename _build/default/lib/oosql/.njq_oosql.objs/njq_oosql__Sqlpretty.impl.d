lib/oosql/sqlpretty.ml: Ast Float Fmt
