lib/oosql/translate.mli: Ast Expr Njq_adl Vtype
