lib/oosql/views.ml: Ast List Option String
