lib/oosql/translate.ml: Ast Expr Fmt List Njq_adl Parser Schema String Value Vtype
