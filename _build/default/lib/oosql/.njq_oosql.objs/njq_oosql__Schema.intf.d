lib/oosql/schema.mli: Ast Njq_adl
