lib/oosql/parser.mli: Ast
