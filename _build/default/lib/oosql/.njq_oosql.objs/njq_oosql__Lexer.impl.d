lib/oosql/lexer.ml: Array Ast Buffer List Printf String
