lib/oosql/ast.mli:
