lib/oosql/schema.ml: Ast Fmt List Njq_adl Parser String
