lib/oosql/parser.ml: Array Ast Lexer List Printf
