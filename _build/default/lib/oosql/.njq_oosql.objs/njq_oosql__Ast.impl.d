lib/oosql/ast.ml:
