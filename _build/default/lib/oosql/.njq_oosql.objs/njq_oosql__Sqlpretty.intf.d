lib/oosql/sqlpretty.mli: Ast Format
