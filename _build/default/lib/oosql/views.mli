(** Expansion of named view definitions — the paper's "named intermediate
    tables", whose expansion is the source of from-clause nesting
    (Section 2, Example Query 2).

    Views are closed OOSQL expressions bound with [define v as <query>;];
    expansion splices each definition at every non-shadowed use of its
    name.  Views may reference previously defined views. *)

exception View_error of string * Ast.pos

(** Replace free occurrences of a name by a definition, respecting
    from-binding and quantifier scopes. *)
val splice : string -> Ast.expr -> Ast.expr -> Ast.expr

(** Expand all definitions (in order) inside an expression. *)
val expand : (string * Ast.expr) list -> Ast.expr -> Ast.expr

(** Expand a program's query against its view definitions. *)
val expand_program : Ast.program -> Ast.expr option
