(* Logical database design: mapping OOSQL class definitions to ADL types and
   catalog tables (Section 3 of the paper).

   Each class extension becomes a table of (possibly complex) objects; a
   field of type oid is added to represent object identity, and class
   references are implemented by typed oid pointers into the referenced
   extent. *)

exception Schema_error of string

let error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let find_class (schema : Ast.schema) name =
  match List.find_opt (fun c -> String.equal c.Ast.class_name name) schema with
  | Some c -> c
  | None -> error "unknown class %s" name

let extent_of (schema : Ast.schema) class_name = (find_class schema class_name).extent

let class_of_extent (schema : Ast.schema) extent =
  List.find_opt (fun c -> String.equal c.Ast.extent extent) schema

(* Map an OOSQL type to an ADL type; class references become TRef of the
   referenced class's extent name (the catalog key). *)
let rec vtype_of_sqltype schema (t : Ast.sqltype) : Njq_adl.Vtype.t =
  match t with
  | Ast.SBool -> Njq_adl.Vtype.TBool
  | Ast.SInt -> Njq_adl.Vtype.TInt
  | Ast.SFloat -> Njq_adl.Vtype.TFloat
  | Ast.SString -> Njq_adl.Vtype.TString
  | Ast.SDate -> Njq_adl.Vtype.TDate
  | Ast.SClass c -> Njq_adl.Vtype.TRef (extent_of schema c)
  | Ast.STuple fields ->
    Njq_adl.Vtype.tuple
      (List.map (fun (n, ft) -> (n, vtype_of_sqltype schema ft)) fields)
  | Ast.SSet t -> Njq_adl.Vtype.TSet (vtype_of_sqltype schema t)

(* The row type of a class's extent: the declared attributes plus the
   implicit oid field. *)
let row_type schema (c : Ast.class_def) : Njq_adl.Vtype.t =
  if List.mem_assoc "oid" c.Ast.attributes then
    error "class %s declares a reserved attribute 'oid'" c.Ast.class_name;
  Njq_adl.Vtype.tuple
    (("oid", Njq_adl.Vtype.TOid)
     :: List.map (fun (n, t) -> (n, vtype_of_sqltype schema t)) c.Ast.attributes)

(* Create a catalog with one (empty) table per class extension. *)
let to_catalog (schema : Ast.schema) : Njq_adl.Catalog.t =
  let cat = Njq_adl.Catalog.create () in
  List.iter
    (fun c ->
      Njq_adl.Catalog.add_table cat ~name:c.Ast.extent ~row_type:(row_type schema c) [])
    schema;
  cat

(* The paper's running supplier-part-delivery schema (Section 2), used by
   examples, tests and the workload generator. *)
let supplier_part_source = {|
class Part with extension PART attributes
  pname : string,
  price : int,
  color : string
end

class Supplier with extension SUPPLIER attributes
  sname : string,
  parts_supplied : { Part }
end

class Delivery with extension DELIVERY attributes
  supplier : Supplier,
  supply : { (part : Part, quantity : int) },
  date : date
end
|}

let supplier_part () = Parser.parse_schema supplier_part_source
