(** Logical database design (paper Section 3): mapping OOSQL class
    definitions to ADL types and catalog tables.  Each class extension
    becomes a table whose rows carry an implicit [oid] attribute; class
    references become typed oid pointers into the referenced extent. *)

exception Schema_error of string

val find_class : Ast.schema -> string -> Ast.class_def

(** Extent name of a class. *)
val extent_of : Ast.schema -> string -> string

(** Class owning an extent, if any. *)
val class_of_extent : Ast.schema -> string -> Ast.class_def option

(** Map an OOSQL type to an ADL type ([SClass c] becomes
    [TRef (extent_of c)]). *)
val vtype_of_sqltype : Ast.schema -> Ast.sqltype -> Njq_adl.Vtype.t

(** Row type of a class's extent: declared attributes plus [oid].  Rejects
    classes declaring a reserved [oid] attribute. *)
val row_type : Ast.schema -> Ast.class_def -> Njq_adl.Vtype.t

(** A catalog with one empty table per class extension. *)
val to_catalog : Ast.schema -> Njq_adl.Catalog.t

(** The paper's running supplier–part–delivery schema (Section 2). *)
val supplier_part_source : string

val supplier_part : unit -> Ast.schema
