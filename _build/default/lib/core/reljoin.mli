(** Rewriting into flat relational join queries (Section 5).

    Rule 1 (unnesting quantifier expressions), applied conjunct-wise:
    - [σ\[x : ∃y∈Y • p\](X)  =  X ⋉\[x,y : p\] Y]
    - [σ\[x : ¬∃y∈Y • p\](X) =  X ▷\[x,y : p\] Y]

    Rule 2 (nesting in the map operator):
    - [⋃(α\[x : α\[y : x∘y\](σ\[y : p\](Y))\](X))  =  X ⋈\[x,y : p\] Y]

    plus selection pushdown into join operands (right side for every kind;
    left side only for inner and semi joins). *)

val rule1 : Rules.rule
val rule2 : Rules.rule

(** Generalized Rule 2: arbitrary inner map bodies F(x,y) transfer onto the
    join with retargeted variables — this unnests multi-binding
    from-clauses. *)
val rule2_general : Rules.rule
val push_join_operand_selection : Rules.rule

(** Merge σ∘σ into one selection (kept out of {!rules}; the strategy adds
    it to the relational phase). *)
val merge_selects : Rules.rule

val rules : Rules.rule list
