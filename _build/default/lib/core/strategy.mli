(** The optimization strategy of Section 4, as a priority-ordered driver:

    1. rewrite to relational join operators (normalization, quantifier
       exchange, Rule 1, Rule 2, selection pushdown);
    2. if blocked, unnest set-valued attributes (μ) when the final nesting
       is not required and empty sets are harmless, then retry 1;
    3. if blocked, rewrite to the new operators — nestjoin by default, or
       the guarded flat-join / outer-join grouping variants for ablation;
    4. otherwise leave the query nested (nested-loop execution).

    Every phase records its derivation steps. *)

open Njq_adl

type grouping_mode =
  | Nestjoin_always  (** the paper's default *)
  | Flat_join_when_safe
      (** flat join+ν when P(x,∅) = false, nestjoin otherwise *)
  | Outerjoin  (** outer-join repair instead of the nestjoin *)

type options = {
  enable_relational : bool;
  enable_attr_unnest : bool;
  enable_grouping : bool;
  enable_division : bool;
      (** unnest universal quantification with the division operator
          instead of the antijoin (ablation; Section 5.2.1) *)
  grouping_mode : grouping_mode;
}

val default_options : options

type phase_trace = {
  phase : string;
  steps : Rules.trace;
}

type report = {
  input : Expr.t;
  output : Expr.t;
  phases : phase_trace list;
}

(** Rules of the relational phase (normalization + exchange + Rule 1/2 +
    pushdown + σ-merging). *)
val relational_rules : Rules.rule list

(** Run the full strategy, returning the rewritten query with its
    derivation. *)
val rewrite : ?options:options -> Catalog.t -> Expr.t -> report

(** Rewritten expression only. *)
val optimize : ?options:options -> Catalog.t -> Expr.t -> Expr.t

val pp_report : Format.formatter -> report -> unit

(** Total number of rewrite steps across phases. *)
val step_count : report -> int
