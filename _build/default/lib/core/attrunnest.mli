(** Option (2) of Section 4: unnesting of set-valued attributes with μ.

    Applied only when the attribute is not needed in the result (dropped by
    the projection or untouched by the map body) and the quantification
    over the attribute is existential, so that tuples with empty attribute
    sets — which μ drops — would not qualify anyway.  The flagship instance
    is Example Query 4:

    [π_sid(σ\[s : ∃z∈s.parts • ψ\](SUPPLIER))
       = π_sid(σ\[u : ψ'\](μ_parts(SUPPLIER)))]

    after which Rule 1 yields the paper's antijoin query. *)

(** Projection-headed form. *)
val project_rule : Rules.rule

(** Map-headed form (covers sfw-translated queries whose select-clause
    renames attributes). *)
val map_rule : Rules.rule

val rules : Rules.rule list
