(** Unnesting by grouping (Section 5.2.2): the Kim / Ganski–Wong transform
    [σ\[x : P(x,Y')\](X) ⇒ π(σ\[P'\](ν(X ⋈\[Q\] Y)))], which produces a flat
    relational join query but loses dangling X-tuples — the paper's Complex
    Object bug (Figure 2).

    The guarded rule applies it only when {!Njq_adl.Emptyset} reduces
    P(x, ∅) to false; the outer-join rule keeps dangling tuples with NULL
    padding and an adapted nest (an all-NULL group becomes ∅); the unsafe
    variant exists to reproduce the bug. *)

open Njq_adl

(** Flat-join grouping, applied only when statically safe. *)
val safe_rule : Rules.rule

(** Outer-join repair of the bug. *)
val outerjoin_rule : Rules.rule

(** The unguarded transform — deliberately incorrect on dangling tuples;
    used by tests and the Figure 2 artifact.  Raises [Invalid_argument]
    when the pattern does not match. *)
val rewrite_unsafe : Catalog.t -> Expr.t -> Expr.t

(** The outer-join transform as a direct function. *)
val rewrite_outerjoin : Catalog.t -> Expr.t -> Expr.t
