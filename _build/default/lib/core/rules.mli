(** Rewrite-rule infrastructure: a rule is a partial function tried at a
    single node; the driver applies a rule set anywhere in the tree
    (outermost node first), one step at a time, iterating to a fixpoint and
    recording a derivation trace. *)

open Njq_adl

type rule = {
  name : string;
  apply : Catalog.t -> Expr.t -> Expr.t option;
}

val rule : string -> (Catalog.t -> Expr.t -> Expr.t option) -> rule

(** One derivation step: the named rule fired and produced the whole
    query shown. *)
type step = {
  rule_name : string;
  result : Expr.t;
}

type trace = step list

(** Try each rule at node [e]; first applicable (and changing) rule wins. *)
val try_rules :
  Catalog.t -> rule list -> Expr.t -> (string * Expr.t) option

(** One rewrite step anywhere in the expression, outermost-leftmost
    first. *)
val step_anywhere :
  Catalog.t -> rule list -> Expr.t -> (string * Expr.t) option

(** Iterate to a fixpoint; [fuel] bounds the number of steps as a safety
    net against diverging rule sets. *)
val fixpoint : ?fuel:int -> Catalog.t -> rule list -> Expr.t -> Expr.t * trace

(** Like {!fixpoint} but runs [Fold.simplify] after every step, so rules
    see folded terms. *)
val fixpoint_simplify :
  ?fuel:int -> Catalog.t -> rule list -> Expr.t -> Expr.t * trace

val pp_step : Format.formatter -> step -> unit
val pp_trace : Format.formatter -> trace -> unit
