(* Logical cleanup rules run after unnesting: classical algebraic
   simplifications that reduce the amount of data flowing between operators
   without changing the join structure the strategy decided on.

   These are the "relational techniques" the paper assumes an optimizer has
   at its disposal once queries are in join form (cf. [KeMo93], "Query
   Optimization in Object Bases: Exploiting Relational Techniques"). *)

open Njq_adl
open Expr

(* pi_A(X join Y) = pi_A(X semijoin Y) when A only uses left attributes:
   with set semantics the duplicate-collapsing projection makes the right
   tuples pure existence witnesses. *)
let project_join_to_semijoin =
  Rules.rule "π∘⋈→⋉" (fun cat e ->
      match e with
      | Project (attrs, Join ({ kind = Inner; left; _ } as j)) ->
        (match Subquery.schema_of cat left with
         | Some sch when List.for_all (fun a -> List.mem a sch) attrs ->
           Some (Project (attrs, Join { j with kind = Semi }))
         | _ -> None)
      | _ -> None)

(* pi_A(pi_B(e)) = pi_A(e) when A 'subseteq' B (guaranteed if the outer
   projection typechecks, which Project's evaluation requires anyway). *)
let project_project =
  Rules.rule "π∘π-merge" (fun _cat e ->
      match e with
      | Project (attrs, Project (inner_attrs, src))
        when List.for_all (fun a -> List.mem a inner_attrs) attrs ->
        Some (Project (attrs, src))
      | _ -> None)

(* Identity projection: pi_SCH(e)(e) = e. *)
let project_identity =
  Rules.rule "π-identity" (fun cat e ->
      match e with
      | Project (attrs, src) ->
        (match Subquery.schema_of cat src with
         | Some sch
           when List.sort String.compare attrs = sch ->
           Some src
         | _ -> None)
      | _ -> None)

(* Selections distribute over unions. *)
let select_over_union =
  Rules.rule "σ∘∪-distribute" (fun _cat e ->
      match e with
      | Select { var; pred; src = Union (a, b) } ->
        Some
          (Union
             ( Select { var; pred; src = a },
               Select { var; pred; src = b } ))
      | _ -> None)

(* Maps distribute over unions (sound for sets: the union dedups). *)
let map_over_union =
  Rules.rule "α∘∪-distribute" (fun _cat e ->
      match e with
      | Map { var; body; src = Union (a, b) } ->
        Some
          (Union
             (Map { var; body; src = a }, Map { var; body; src = b }))
      | _ -> None)

(* Projection through union. *)
let project_over_union =
  Rules.rule "π∘∪-distribute" (fun _cat e ->
      match e with
      | Project (attrs, Union (a, b)) ->
        Some (Union (Project (attrs, a), Project (attrs, b)))
      | _ -> None)

(* A projection over a semijoin/antijoin commutes into the left operand
   when the join predicate only touches projected attributes — not checked
   here in general; we only commute when the predicate uses the whole left
   variable through projected fields.  Conservative version: predicate's
   x-uses are Field accesses within [attrs]. *)
let rec x_field_uses_within ~var ~attrs e =
  match e with
  | Field (Var v, a) when String.equal v var -> List.mem a attrs
  | Var v when String.equal v var -> false
  | Quant (_, v, range, pred) ->
    x_field_uses_within ~var ~attrs range
    && (String.equal v var || x_field_uses_within ~var ~attrs pred)
  | _ ->
    fold_children (fun acc c -> acc && x_field_uses_within ~var ~attrs c) true e

let project_into_semijoin =
  Rules.rule "π→⋉-left" (fun _cat e ->
      match e with
      | Project (attrs, Join ({ kind = Semi | Anti; xvar; pred; left; _ } as j))
        when x_field_uses_within ~var:xvar ~attrs pred ->
        Some (Join { j with left = Project (attrs, left) })
      | _ -> None)

let rules =
  [ project_join_to_semijoin;
    project_project;
    project_identity;
    select_over_union;
    map_over_union;
    project_over_union;
    project_into_semijoin ]
