(* Normalization of predicates: set comparisons into quantifier expressions
   (Table 1 and Table 2 of the paper), negation pushing, and range fusion.

   After normalization the only quantifier left is the existential; universal
   quantification appears as a negated existential, the form Rule 1 unnests
   with the antijoin.  Set comparison operators are expanded only when at
   least one side involves a base table: expanding a comparison between two
   stored set-valued attributes would not enable any unnesting and only
   obscure the expression (the paper's goal is specifically to remove base
   tables from iterator parameters). *)

open Njq_adl
open Expr

(* Which set comparisons are worth expanding?  Exactly those whose quantifier
   form quantifies over the base-table side, so that Rule 1 (possibly after
   quantifier exchange) can unnest them — the paper's observation below
   Table 1: "expanding operators 'in' and 'supseteq' leads to a (negated)
   existential quantifier expression that is suited for unnesting by
   applying Rule 1; expansion of the other operators leads to a multiple
   subquery expression, that cannot be unnested that way".  The inclusion
   operators are directional: A 'subseteq' B quantifies over A, so it
   expands when A is the base-table side (the paper's Rewriting Example 2),
   and symmetrically A 'supseteq' B expands when B is.  The non-expandable
   cases are left intact for the grouping/nestjoin phase. *)
let worth_expanding op a b =
  let base = Analysis.uses_base_table in
  match op with
  | Expr.Mem | Expr.NotMem -> base b
  | Expr.SubsetEq -> base a
  | Expr.SupsetEq -> base b
  | Expr.Ni | Expr.NotNi -> base a
  | Expr.Subset | Expr.Supset | Expr.SetEq | Expr.SetNeq -> false

(* Table 1 expansions.  Each equation introduces fresh bound variables. *)
let expand_setcmp op a b =
  let z = fresh_var "z" and y = fresh_var "y" in
  match op with
  | Mem ->
    (* a 'in' B  =  'exists' y 'in' B . y = a *)
    Some (Quant (Exists, y, b, Cmp (Eq, Var y, a)))
  | NotMem -> Some (Not (Quant (Exists, y, b, Cmp (Eq, Var y, a))))
  | SubsetEq ->
    (* A 'subseteq' B  =  'forall' z 'in' A . z 'in' B *)
    Some (Quant (Forall, z, a, SetCmp (Mem, Var z, b)))
  | Subset ->
    (* A 'subset' B  =  A 'subseteq' B  and  'exists' y 'in' B . y 'notin' A *)
    Some
      (And
         ( Quant (Forall, z, a, SetCmp (Mem, Var z, b)),
           Quant (Exists, y, b, SetCmp (NotMem, Var y, a)) ))
  | SupsetEq ->
    (* A 'supseteq' B  =  'forall' y 'in' B . y 'in' A *)
    Some (Quant (Forall, y, b, SetCmp (Mem, Var y, a)))
  | Supset ->
    Some
      (And
         ( Quant (Forall, y, b, SetCmp (Mem, Var y, a)),
           Quant (Exists, z, a, SetCmp (NotMem, Var z, b)) ))
  | SetEq ->
    (* A = B  =  A 'subseteq' B  and  A 'supseteq' B *)
    Some
      (And
         ( Quant (Forall, z, a, SetCmp (Mem, Var z, b)),
           Quant (Forall, y, b, SetCmp (Mem, Var y, a)) ))
  | SetNeq ->
    Some
      (Not
         (And
            ( Quant (Forall, z, a, SetCmp (Mem, Var z, b)),
              Quant (Forall, y, b, SetCmp (Mem, Var y, a)) )))
  | Ni ->
    (* A 'ni' b  =  'exists' z 'in' A . z = b.  When b is a subquery (the
       Table 1 case: x.c 'ni' Y' with x.c a set of sets), the equality is a
       set equality, so it is emitted as such to allow further expansion. *)
    let equality =
      if Analysis.uses_base_table b then SetCmp (SetEq, Var z, b)
      else Cmp (Eq, Var z, b)
    in
    Some (Quant (Exists, z, a, equality))
  | NotNi ->
    let equality =
      if Analysis.uses_base_table b then SetCmp (SetEq, Var z, b)
      else Cmp (Eq, Var z, b)
    in
    Some (Not (Quant (Exists, z, a, equality)))

let set_comparison_to_quantifier =
  Rules.rule "setcmp→quantifier" (fun _cat e ->
      match e with
      | SetCmp (op, a, b) when worth_expanding op a b -> expand_setcmp op a b
      | _ -> None)

(* Universal quantification is normalized to a negated existential so that
   unnesting needs only the two patterns of Rule 1. *)
let forall_to_not_exists =
  Rules.rule "∀→¬∃¬" (fun _cat e ->
      match e with
      | Quant (Forall, x, range, pred) ->
        Some (Not (Quant (Exists, x, range, Not pred)))
      | _ -> None)

(* Push negations through connectives and comparisons; stop at existential
   quantifiers (the normal form keeps 'not exists'). *)
let push_not =
  Rules.rule "push-¬" (fun _cat e ->
      match e with
      | Not (Not a) -> Some a
      | Not (And (a, b)) -> Some (Or (Not a, Not b))
      | Not (Or (a, b)) -> Some (And (Not a, Not b))
      | Not (Cmp (op, a, b)) -> Some (Cmp (negate_cmp op, a, b))
      | Not (SetCmp (op, a, b)) when negated_setcmp_is_complement op ->
        Some (SetCmp (negate_setcmp op, a, b))
      | Not (Const (Value.VBool b)) -> Some (Const (Value.VBool (not b)))
      | _ -> None)

(* Table 2, row 1 and 2: emptiness tests become negated existentials. *)
let emptiness_to_quantifier =
  Rules.rule "emptiness→¬∃" (fun _cat e ->
      let is_zero = function Const (Value.VInt 0) -> true | _ -> false in
      let not_exists y_src =
        let y = fresh_var "y" in
        Not (Quant (Exists, y, y_src, true_))
      in
      match e with
      | SetCmp (SetEq, src, (Const (Value.VSet []) | SetLit []))
        when Analysis.uses_base_table src ->
        Some (not_exists src)
      | SetCmp (SetEq, (Const (Value.VSet []) | SetLit []), src)
        when Analysis.uses_base_table src ->
        Some (not_exists src)
      | SetCmp (SetNeq, src, (Const (Value.VSet []) | SetLit []))
        when Analysis.uses_base_table src ->
        Some (Not (not_exists src))
      | SetCmp (SetNeq, (Const (Value.VSet []) | SetLit []), src)
        when Analysis.uses_base_table src ->
        Some (Not (not_exists src))
      | Cmp (Eq, Agg (Count, src), z) when is_zero z && Analysis.uses_base_table src ->
        Some (not_exists src)
      | Cmp (Eq, z, Agg (Count, src)) when is_zero z && Analysis.uses_base_table src ->
        Some (not_exists src)
      | Cmp (Neq, Agg (Count, src), z) when is_zero z && Analysis.uses_base_table src ->
        Some (Not (not_exists src))
      | Cmp (Gt, Agg (Count, src), z) when is_zero z && Analysis.uses_base_table src ->
        Some (Not (not_exists src))
      | _ -> None)

(* Table 2, row 3: x.c 'inter' Y' = {}  =  'not exists' y 'in' Y' . y 'in' x.c.
   The quantifier ranges over whichever side involves base tables so that
   Rule 1 can subsequently unnest it. *)
let empty_intersection =
  Rules.rule "∩=∅→¬∃" (fun _cat e ->
      let empty = function Const (Value.VSet []) | SetLit [] -> true | _ -> false in
      match e with
      | SetCmp (SetEq, Inter (a, b), rhs) when empty rhs ->
        let y = fresh_var "y" in
        if Analysis.uses_base_table b then
          Some (Not (Quant (Exists, y, b, SetCmp (Mem, Var y, a))))
        else if Analysis.uses_base_table a then
          Some (Not (Quant (Exists, y, a, SetCmp (Mem, Var y, b))))
        else None
      | _ -> None)

(* Fuse a selection in a quantifier range into the quantifier predicate:
   'exists' x 'in' sigma[y : q](Y) . p  =  'exists' x 'in' Y . q[x/y] and p.
   This is the middle step of the paper's Rewriting Example 1. *)
let fuse_range_select =
  Rules.rule "range-σ-fusion" (fun _cat e ->
      match e with
      | Quant (Exists, x, Select { var; pred = q; src }, p) ->
        Some (Quant (Exists, x, src, And (Analysis.subst1 var (Var x) q, p)))
      | _ -> None)

(* 'exists' x 'in' alpha[y : b](Y) . p  =  'exists' y 'in' Y . p[b/x]. *)
let fuse_range_map =
  Rules.rule "range-α-fusion" (fun _cat e ->
      match e with
      | Quant (Exists, x, Map { var; body; src }, p) ->
        let y = fresh_var var in
        let body' = Analysis.subst1 var (Var y) body in
        Some (Quant (Exists, y, src, Analysis.subst1 x body' p))
      | _ -> None)

(* 'exists' x 'in' (A 'inter' B) . p  =  'exists' x 'in' B . x 'in' A and p,
   quantifying over the base-table side so Rule 1 applies. *)
let fuse_range_inter =
  Rules.rule "range-∩-fusion" (fun _cat e ->
      match e with
      | Quant (Exists, x, Inter (a, b), p) ->
        if Analysis.uses_base_table b then
          Some (Quant (Exists, x, b, And (SetCmp (Mem, Var x, a), p)))
        else if Analysis.uses_base_table a then
          Some (Quant (Exists, x, a, And (SetCmp (Mem, Var x, b), p)))
        else None
      | _ -> None)

(* 'exists' x 'in' U(S) . p  =  'exists' s 'in' S . 'exists' x 'in' s . p *)
let fuse_range_flatten =
  Rules.rule "range-⋃-fusion" (fun _cat e ->
      match e with
      | Quant (Exists, x, Flatten s, p) ->
        let sv = fresh_var "s" in
        Some (Quant (Exists, sv, s, Quant (Exists, x, Var sv, p)))
      | _ -> None)

(* Negated inclusions expand to plain existentials when the quantifier would
   range over the base-table side: not (A 'supseteq' B) = 'exists' y 'in' B .
   y 'notin' A. *)
let negated_inclusion_to_quantifier =
  Rules.rule "¬⊆/⊇→∃" (fun _cat e ->
      match e with
      | Not (SetCmp (SupsetEq, a, b)) when Analysis.uses_base_table b ->
        let y = fresh_var "y" in
        Some (Quant (Exists, y, b, SetCmp (NotMem, Var y, a)))
      | Not (SetCmp (SubsetEq, a, b)) when Analysis.uses_base_table a ->
        let z = fresh_var "z" in
        Some (Quant (Exists, z, a, SetCmp (NotMem, Var z, b)))
      | _ -> None)

(* Hoist conjuncts that do not mention the bound variable out of an
   existential: 'exists' z 'in' c . (A(z) and B)  =  B and 'exists' z 'in'
   c . A(z).  When every conjunct is hoisted the quantifier degenerates to
   the non-emptiness test 'exists' z 'in' c . true, which is kept (dropping
   it would be wrong for empty c).  This is what lets sigma-pushdown
   reconstruct the paper's sigma[p : p.color = "red"](PART) operand form. *)
let hoist_independent_conjuncts =
  Rules.rule "∃-conj-hoist" (fun _cat e ->
      match e with
      | Quant (Exists, z, c, pred) ->
        let cs = conjuncts pred in
        let hoistable, keep =
          List.partition
            (fun conj -> (not (Analysis.is_free z conj)) && not (is_true conj))
            cs
        in
        if hoistable = [] then None
        else
          Some
            (And (conjoin hoistable, Quant (Exists, z, c, conjoin keep)))
      | _ -> None)

(* Split a disjunctive selection into a union of selections when the
   disjunction involves base tables, so each disjunct can unnest on its
   own: sigma[x : A or B](X) = sigma[x : A](X) union sigma[x : B](X)
   (sound under set semantics; the union deduplicates). *)
let split_disjunctive_selection =
  Rules.rule "σ∨-split" (fun _cat e ->
      match e with
      | Select { var; pred = Or (a, b); src }
        when Analysis.uses_base_table a || Analysis.uses_base_table b ->
        Some
          (Union (Select { var; pred = a; src }, Select { var; pred = b; src }))
      | _ -> None)

(* All normalization rules, applied to a fixpoint by the strategy. *)
let rules =
  [
    forall_to_not_exists;
    push_not;
    empty_intersection; (* before the generic emptiness rule: more specific *)
    emptiness_to_quantifier;
    set_comparison_to_quantifier;
    negated_inclusion_to_quantifier;
    fuse_range_select;
    fuse_range_map;
    fuse_range_inter;
    fuse_range_flatten;
    hoist_independent_conjuncts;
    split_disjunctive_selection;
  ]

let run cat e = Rules.fixpoint_simplify cat rules e
