(* Unnesting by grouping (Section 5.2.2): the Kim / Ganski-Wong technique of
   evaluating the inner block with a join, grouping with nest, and testing
   the predicate between blocks on the groups:

     sigma[x : P(x, Y')](X)   with Y' = sigma[y : Q(x, y)](Y)
       ~~>  pi_{SCH(X)}(sigma[z : P'](nu_{SCH(Y) -> g}(X join[x,y : Q] Y)))

   This produces a flat relational join query, BUT loses dangling X-tuples
   (those with Y' = {}) in the join: the paper's Complex Object bug
   (Figure 2).  The transformation is therefore only correct when P(x, {})
   statically reduces to false ([Emptyset]); [rewrite_unsafe] applies it
   without the guard, exactly to reproduce the bug, and [safe_rule] applies
   it only under the guard.

   [outerjoin_rule] is the repair discussed in the paper: a left outer join
   keeps dangling tuples, padding with NULLs; the nest step is then adapted
   so that an all-NULL group becomes the empty set. *)

open Njq_adl
open Expr

type variant = Unsafe | Guarded | Outerjoin

(* Core transform, parameterized by join kind and group cleanup. *)
let transform cat ~variant e =
  match e with
  | Select { var = x; pred; src } ->
    (match Subquery.find x pred with
     | None -> None
     | Some sq ->
       (match Subquery.schema_of cat src, Subquery.schema_of cat sq.range with
        | Some sch_x, Some sch_y ->
          if List.exists (fun a -> List.mem a sch_x) sch_y then None
          else if
            (match variant with
             | Guarded ->
               not (Emptyset.grouping_join_is_safe ~subquery:sq.occurrence pred)
             | Unsafe | Outerjoin -> false)
          then None
          else
            let g = Subquery.fresh_attr (sch_x @ sch_y) in
            let z = fresh_var "z" in
            let kind =
              match variant with
              | Unsafe | Guarded -> Inner
              | Outerjoin -> LeftOuter sch_y
            in
            let join =
              Join
                { kind; xvar = x; yvar = sq.yvar; pred = sq.q;
                  left = src; right = sq.range }
            in
            let nested = Nest { attrs = sch_y; into = g; src = join } in
            let grouped =
              match variant with
              | Unsafe | Guarded -> nested
              | Outerjoin ->
                (* Adapted nest: a group arising solely from NULL padding
                   denotes the empty set.  NULL padding is recognizable on
                   any single right-hand attribute because stored data never
                   contains NULL. *)
                let a0 =
                  match sch_y with
                  | a :: _ -> a
                  | [] -> invalid_arg "Grouping: empty right schema"
                in
                let w = fresh_var "w" in
                let cleanup =
                  Except
                    ( Var z,
                      [ ( g,
                          Select
                            { var = w;
                              pred = Cmp (Neq, Field (Var w, a0), Const Value.VNull);
                              src = Field (Var z, g) } ) ] )
                in
                Map { var = z; body = cleanup; src = nested }
            in
            let z' = fresh_var "z" in
            (* The groups hold right-operand tuples; when the subquery's map
               body G is not the identity the occurrence of Y' becomes
               alpha[y : G](z.g), which [Fold] collapses when G is trivial.
               G may reference x; the retargeting substitution below also
               rewrites those occurrences to z'[SCH(X)]. *)
            let by =
              if Expr.equal sq.body (Var sq.yvar) then Field (Var z', g)
              else
                Map { var = sq.yvar; body = sq.body; src = Field (Var z', g) }
            in
            let pred' =
              Nestjoinrw.retarget_with ~x ~z:z' ~sch_x ~occurrence:sq.occurrence
                ~by pred
            in
            Some (Project (sch_x, Select { var = z'; pred = pred'; src = grouped }))
        | _ -> None))
  | _ -> None

let safe_rule =
  Rules.rule "grouping ⋈+ν (guarded)" (fun cat e -> transform cat ~variant:Guarded e)

let outerjoin_rule =
  Rules.rule "grouping ⟕+ν" (fun cat e -> transform cat ~variant:Outerjoin e)

(* The deliberately unguarded transformation; used by the paper-artifact
   driver and tests to exhibit the Complex Object bug of Figure 2.  Not part
   of any strategy. *)
let rewrite_unsafe cat e =
  match transform cat ~variant:Unsafe e with
  | Some e' -> e'
  | None -> invalid_arg "Grouping.rewrite_unsafe: pattern did not match"

let rewrite_outerjoin cat e =
  match transform cat ~variant:Outerjoin e with
  | Some e' -> e'
  | None -> invalid_arg "Grouping.rewrite_outerjoin: pattern did not match"
