(* Rewriting into flat relational join queries (Section 5, Rule 1 and
   Rule 2).

   Rule 1 (unnesting quantifier expressions): for X, Y table expressions
   with x not free in Y,

     sigma[x : 'exists' y 'in' Y . p](X)      =  X semijoin[x,y : p] Y
     sigma[x : 'not exists' y 'in' Y . p](X)  =  X antijoin[x,y : p] Y

   We apply them conjunct-wise: a quantifier conjunct is peeled off into a
   semijoin/antijoin and the remaining conjuncts stay in a selection, so
   sigma[x : C and 'exists' y 'in' Y . p](X) becomes
   (sigma[x : C](X)) semijoin[x,y : p] Y.

   Rule 2 (nesting in the map operator):

     U(alpha[x : alpha[y : x o y](sigma[y : p](Y))](X))  =  X join[x,y : p] Y

   The right operand must involve base tables (the unnesting goal is to pull
   base tables to top level) and must not be correlated with x. *)

open Njq_adl
open Expr

(* A conjunct that Rule 1 can turn into a join operator.  Returns
   (kind, yvar, range, pred). *)
let join_candidate x = function
  | Quant (Exists, y, range, p)
    when Analysis.uses_base_table range && not (Analysis.is_free x range) ->
    Some (Semi, y, range, p)
  | Not (Quant (Exists, y, range, p))
    when Analysis.uses_base_table range && not (Analysis.is_free x range) ->
    Some (Anti, y, range, p)
  | _ -> None

let rule1 =
  Rules.rule "Rule1 σ∃→⋉/▷" (fun _cat e ->
      match e with
      | Select { var = x; pred; src = bt } ->
        let cs = conjuncts pred in
        let rec split before = function
          | [] -> None
          | c :: after ->
            (match join_candidate x c with
             | Some (kind, y, range, p) ->
               let rest = List.rev_append before after in
               let left =
                 match rest with
                 | [] -> bt
                 | _ -> Select { var = x; pred = conjoin rest; src = bt }
               in
               (* Rename the join variable if it collides with x. *)
               let y, p =
                 if String.equal y x then
                   let y' = fresh_var y in
                   (y', Analysis.subst1 y (Var y') p)
                 else (y, p)
               in
               Some (Join { kind; xvar = x; yvar = y; pred = p; left; right = range })
             | None -> split (c :: before) after)
        in
        split [] cs
      | _ -> None)

(* Rule 2.  The inner map body must be exactly the concatenation x o y (up
   to variable naming); the inner operand may carry a selection, which
   becomes the join predicate (true if absent). *)
let rule2 =
  Rules.rule "Rule2 ⋃α→⋈" (fun _cat e ->
      match e with
      | Flatten (Map { var = x; body = Map { var = y; body = inner; src = ysrc }; src = xsrc })
        when (match inner with
              | Concat (Var a, Var b) -> String.equal a x && String.equal b y
              | _ -> false) ->
        (* The correlation on x may sit in the inner selection's predicate —
           it becomes the join predicate; only the stripped range must be
           independent of x. *)
        let pred, right =
          match ysrc with
          | Select { var = sv; pred; src } -> (Analysis.subst1 sv (Var y) pred, src)
          | _ -> (true_, ysrc)
        in
        if Analysis.uses_base_table right && not (Analysis.is_free x right) then
          Some (Join { kind = Inner; xvar = x; yvar = y; pred; left = xsrc; right })
        else None
      | _ -> None)

(* Generalized Rule 2: the inner map body need not be the plain
   concatenation — any body F(x, y) can be transferred onto the join,
   retargeting x and y to the concatenated join tuple:

     U(alpha[x : alpha[y : F](sigma[y : p](Y))](X))
       =  alpha[z : F[z[SCH X]/x, z[SCH Y]/y]](X join[x,y : p] Y)

   provided SCH(X) and SCH(Y) are disjoint (required for the join anyway)
   and both operands are closed.  This is what unnests multi-binding
   from-clauses (from x in X, y in Y ...), whose translation produces
   exactly this flatten-of-nested-maps shape with a tuple-building body. *)
(* Rename attribute accesses [Field (Var var, old)] according to [pairs],
   respecting binders that shadow [var]; fails (None) when [var] occurs as
   a bare variable, since the renamed row is no longer the original. *)
exception Bare_use

let rename_field_uses ~var ~pairs e =
  let rec go e =
    match e with
    | Field (Var v, a) when String.equal v var ->
      (match List.assoc_opt a pairs with
       | Some n -> Field (Var v, n)
       | None -> e)
    | Var v when String.equal v var -> raise Bare_use
    | Quant (q, v, range, pred) when String.equal v var ->
      Quant (q, v, go range, pred)
    | Map { var = v; body; src } when String.equal v var ->
      Map { var = v; body; src = go src }
    | Select { var = v; pred; src } when String.equal v var ->
      Select { var = v; pred; src = go src }
    | Join ({ xvar; yvar; left; right; _ } as j)
      when String.equal xvar var || String.equal yvar var ->
      Join { j with left = go left; right = go right }
    | Nestjoin ({ xvar; yvar; left; right; _ } as j)
      when String.equal xvar var || String.equal yvar var ->
      Nestjoin { j with left = go left; right = go right }
    | _ -> map_children go e
  in
  match go e with e' -> Some e' | exception Bare_use -> None

let rule2_general =
  Rules.rule "Rule2-general ⋃α→α⋈" (fun cat e ->
      match e with
      | Flatten (Map { var = x; body = Map { var = y; body = f; src = ysrc }; src = xsrc })
        when not (String.equal x y) ->
        let pred, right =
          match ysrc with
          | Select { var = sv; pred; src } -> (Analysis.subst1 sv (Var y) pred, src)
          | _ -> (true_, ysrc)
        in
        if
          Analysis.uses_base_table right
          && (not (Analysis.is_free x right))
          && not (Analysis.is_free y right)
        then
          match Subquery.schema_of cat xsrc, Subquery.schema_of cat right with
          | Some sch_x, Some sch_y ->
            (* Overlapping schemas would make the join's concatenation
               clash; insert the paper's renaming operator rho on the right
               operand for the clashing attributes. *)
            let clashes = List.filter (fun a -> List.mem a sch_x) sch_y in
            let taken = ref (sch_x @ sch_y) in
            let pairs =
              List.map
                (fun a ->
                  let rec pick i =
                    let cand = Printf.sprintf "%s_r%d" a i in
                    if List.mem cand !taken then pick (i + 1)
                    else begin
                      taken := cand :: !taken;
                      cand
                    end
                  in
                  (a, pick 1))
                clashes
            in
            let apply_renaming owner =
              if pairs = [] then Some owner
              else rename_field_uses ~var:y ~pairs owner
            in
            (match apply_renaming pred, apply_renaming f with
             | Some pred, Some f ->
               let right =
                 if pairs = [] then right else Rename (pairs, right)
               in
               let sch_y =
                 List.map
                   (fun a ->
                     match List.assoc_opt a pairs with
                     | Some n -> n
                     | None -> a)
                   sch_y
               in
               let z = fresh_var "z" in
               let f' =
                 Analysis.subst
                   [ (x, TupleProj (Var z, sch_x)); (y, TupleProj (Var z, sch_y)) ]
                   f
               in
               Some
                 (Map
                    { var = z; body = f';
                      src = Join { kind = Inner; xvar = x; yvar = y; pred;
                                   left = xsrc; right } })
             | _ -> None)
          | _ -> None
        else None
      | _ -> None)

(* Uncorrelated emptiness subqueries at selection level become semijoins
   with predicate true through Rule 1 already; nothing extra needed.

   An additional cleanup: a selection whose source is itself wrapped by the
   same variable can be merged, keeping derivations small. *)
let merge_selects =
  Rules.rule "σ∘σ-merge" (fun _cat e ->
      match e with
      | Select { var = x; pred = p; src = Select { var = x2; pred = q; src } } ->
        let q' = if String.equal x x2 then q else Analysis.subst1 x2 (Var x) q in
        Some (Select { var = x; pred = And (q', p); src })
      | _ -> None)

(* Push join-predicate conjuncts that constrain a single operand down into a
   selection on that operand.  This both matches the paper's presentation
   (Example Query 5 ends as SUPPLIER semijoin sigma[p : color=red](PART))
   and exposes smaller operands to the physical engine.

   Right-side pushdown is valid for every join kind: restricting Y by a
   conjunct q(y) does not change which pairs satisfy the conjunction.  A
   left-side conjunct c(x) may only be pushed for inner and semi joins: for
   the antijoin, 'not exists y . (c(x) and p)' also keeps tuples with
   'not c(x)', and for the outer join a failing c(x) must still produce a
   NULL-padded tuple. *)
let push_join_operand_selection =
  Rules.rule "σ-pushdown" (fun _cat e ->
      match e with
      | Join { kind; xvar; yvar; pred; left; right } ->
        let only v c =
          let fv = Analysis.free_vars c in
          (* Constant conjuncts stay in the predicate: pushing them would
             churn without progress. *)
          (not (Analysis.S.is_empty fv))
          && Analysis.S.subset fv (Analysis.S.singleton v)
        in
        let cs = conjuncts pred in
        let right_push, rest = List.partition (only yvar) cs in
        let left_push, keep =
          match kind with
          | Inner | Semi -> List.partition (only xvar) rest
          | Anti | LeftOuter _ -> ([], rest)
        in
        if right_push = [] && left_push = [] then None
        else
          let wrap var conj src =
            match conj with
            | [] -> src
            | _ -> Select { var; pred = conjoin conj; src }
          in
          Some
            (Join
               { kind; xvar; yvar; pred = conjoin keep;
                 left = wrap xvar left_push left;
                 right = wrap yvar right_push right })
      | Nestjoin ({ xvar; yvar; pred; right; _ } as j) ->
        (* For the nestjoin only right-side conjuncts may be pushed: a
           left-side conjunct c(x) failing must yield an EMPTY group for x,
           not drop x from the result. *)
        let only v c =
          let fv = Analysis.free_vars c in
          (not (Analysis.S.is_empty fv))
          && Analysis.S.subset fv (Analysis.S.singleton v)
        in
        ignore xvar;
        let right_push, keep = List.partition (only yvar) (conjuncts pred) in
        if right_push = [] then None
        else
          Some
            (Nestjoin
               { j with pred = conjoin keep;
                 right =
                   Select { var = yvar; pred = conjoin right_push; src = right } })
      | _ -> None)

let rules = [ rule1; rule2; rule2_general; push_join_operand_selection ]
