(* The quantifier-exchange heuristic (Section 5.2.1, Rewriting Example 3).

   Difficulties with unnesting arise when subqueries over base tables are
   nested inside iterators over set-valued attributes.  In a (normalized)
   quantifier chain, the goal is to move quantification over base tables to
   the left, outside quantification over attributes, so that Rule 1 can then
   turn the outer quantifier into a semijoin or antijoin.

   After normalization all quantifiers are existential, so the only
   commutation needed is:

     'exists' z 'in' c . (A and ('exists' y 'in' Y . p))
       =  'exists' y 'in' Y . 'exists' z 'in' c . (A and p)

   provided z is not free in Y and y is not free in c or A (guaranteed by
   alpha-renaming y).  The equivalence holds unconditionally: both sides are
   false when either range is empty. *)

open Njq_adl
open Expr

(* Pull the first base-table existential conjunct out of an attribute-ranged
   existential. *)
let exchange_rule =
  Rules.rule "∃-exchange" (fun _cat e ->
      match e with
      | Quant (Exists, z, c, pred) when not (Analysis.uses_base_table c) ->
        let cs = conjuncts pred in
        let is_pullable = function
          | Quant (Exists, _, range, _) ->
            Analysis.uses_base_table range && not (Analysis.is_free z range)
          | _ -> false
        in
        (match List.partition is_pullable cs with
         | Quant (Exists, y, range, p) :: later, others ->
           (* Rename y to avoid capture in c and in the other conjuncts. *)
           let y' = fresh_var y in
           let p = Analysis.subst1 y (Var y') p in
           let inner = conjoin (others @ later @ [ p ]) in
           Some (Quant (Exists, y', range, Quant (Exists, z, c, inner)))
         | _ -> None)
      | _ -> None)

let rules = [ exchange_rule ]
