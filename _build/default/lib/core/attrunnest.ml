(* Option (2) of Section 4: unnesting of set-valued attributes with the
   unnest operator mu.

   The transformation is only used when (a) the final nesting is not
   required — the set-valued attribute does not survive into the result,
   because a projection or the map body drops it — and (b) empty set-valued
   attributes cause no problem — the quantification over the attribute is
   existential, so tuples with an empty attribute (which mu drops) would not
   qualify anyway.  Both conditions come straight from the paper's
   discussion of Example Query 4 (referential-integrity violations):

     pi_sid(sigma[s : 'exists' z 'in' s.parts . psi](SUPPLIER))
       = pi_sid(sigma[u : psi'](mu_parts(SUPPLIER)))

   after which Rule 1 applies to psi' and produces the antijoin query of the
   paper.  The same reasoning applies with a map head instead of a
   projection, alpha[x : F](sigma[x : ...](X)), provided F does not touch
   the unnested attribute; this covers sfw-translated queries whose
   select-clause renames attributes. *)

open Njq_adl
open Expr

exception Not_rewritable

(* Replace uses of variable [var]: occurrences as [Field (Var var, b)]
   become [on_field b]; bare occurrences of [Var var] raise.  Binder-aware:
   stops at shadowing binders. *)
let replace_field_uses ~var ~on_field e =
  let rec go e =
    match e with
    | Field (Var v, b) when String.equal v var -> on_field b
    | Var v when String.equal v var -> raise Not_rewritable
    | Quant (q, v, range, pred) when String.equal v var ->
      Quant (q, v, go range, pred)
    | Map { var = v; body; src } when String.equal v var ->
      Map { var = v; body; src = go src }
    | Select { var = v; pred; src } when String.equal v var ->
      Select { var = v; pred; src = go src }
    | Join ({ xvar; yvar; left; right; _ } as j)
      when String.equal xvar var || String.equal yvar var ->
      Join { j with left = go left; right = go right }
    | Nestjoin ({ xvar; yvar; left; right; _ } as j)
      when String.equal xvar var || String.equal yvar var ->
      Nestjoin { j with left = go left; right = go right }
    | _ -> map_children go e
  in
  go e

(* The common core: rewrite sigma[x : C and 'exists' z 'in' x.c . psi](X)
   into sigma[u : C' and psi'](mu_c(X)), returning the unnested attribute
   [c] and a retargeting function for result-side expressions that use [x].
   [src] must be a closed table expression; all x-uses in the predicate must
   be attribute accesses. *)
let unnest_candidate cat x pred src =
  match Typecheck.infer cat [] src with
  | exception Vtype.Type_error _ -> None
  | Vtype.TSet (Vtype.TTuple fields) when Analysis.is_closed src ->
    let cs = conjuncts pred in
    let candidate = function
      | Quant (Exists, z, Field (Var v, c), psi) when String.equal v x ->
        (match List.assoc_opt c fields with
         | Some (Vtype.TSet elem_ty) ->
           (match elem_ty with
            | Vtype.TTuple zfields ->
              (* The unnested element fields must not clash with the
                 remaining row fields. *)
              let rest_fields =
                List.filter (fun (f, _) -> not (String.equal f c)) fields
              in
              if List.exists (fun (zf, _) -> List.mem_assoc zf rest_fields) zfields
              then None
              else Some (z, c, `Tuple (List.map fst zfields), psi)
            | _ -> Some (z, c, `Atom, psi))
         | _ -> None)
      | _ -> None
    in
    let rec split before = function
      | [] -> None
      | conj :: after ->
        (match candidate conj with
         | Some (z, c, shape, psi) ->
           let others = List.rev_append before after in
           let u = fresh_var "u" in
           let z_replacement =
             match shape with
             | `Tuple zfield_names -> TupleProj (Var u, zfield_names)
             | `Atom -> Field (Var u, c)
           in
           let retarget_result body =
             (* Result-side expressions may not touch the consumed
                attribute (the final nesting must not be required). *)
             replace_field_uses ~var:x
               ~on_field:(fun b ->
                 if String.equal b c then raise Not_rewritable
                 else Field (Var u, b))
               body
           in
           let rewrite_pred body =
             retarget_result (Analysis.subst1 z z_replacement body)
           in
           (match
              let psi' = rewrite_pred psi in
              let others' = List.map rewrite_pred others in
              (psi', others')
            with
            | psi', others' ->
              Some
                ( c,
                  retarget_result,
                  Select
                    { var = u;
                      pred = conjoin (others' @ [ psi' ]);
                      src = Unnest (c, src) } )
            | exception Not_rewritable -> None)
         | None -> split (conj :: before) after)
    in
    split [] cs
  | _ -> None

let project_rule =
  Rules.rule "μ-attr-unnest π" (fun cat e ->
      match e with
      | Project (attrs, Select { var = x; pred; src }) ->
        (match unnest_candidate cat x pred src with
         | Some (c, _, inner) when not (List.mem c attrs) ->
           Some (Project (attrs, inner))
         | _ -> None)
      | _ -> None)

let map_rule =
  Rules.rule "μ-attr-unnest α" (fun cat e ->
      match e with
      | Map { var = x; body; src = Select { var = x2; pred; src } } ->
        let pred = if String.equal x2 x then pred else Analysis.subst1 x2 (Var x) pred in
        (match unnest_candidate cat x pred src with
         | Some (_, retarget_result, inner) ->
           (match retarget_result body with
            | body' ->
              (* The retargeted body refers to the unnest variable, which is
                 the variable of the inner selection. *)
              let u =
                match inner with
                | Select { var; _ } -> var
                | _ -> assert false
              in
              Some (Map { var = u; body = body'; src = inner })
            | exception Not_rewritable -> None)
         | _ -> None)
      | _ -> None)

let rules = [ project_rule; map_rule ]
