(* The nestjoin rewrite (Section 6.1): unnesting of nested queries that
   require grouping, without losing dangling left-operand tuples.

   For the two-block select query

     sigma[x : P(x, Y')](X)   with Y' = sigma[y : Q(x, y)](Y)

   the transformation is

     pi_{SCH(X)}(sigma[z : P'](X nestjoin[x,y : Q ; g] Y))

   where P' = P[ z[SCH(X)] / x, z.g / Y' ], and for nesting in the map
   operator (select-clause):

     alpha[x : F(x, Y')](X)  =  alpha[z : F'](X nestjoin[x,y : Q ; g] Y)

   The extended nestjoin's function parameter carries the subquery's map
   body G when it is not the identity. *)

open Njq_adl
open Expr

(* Build the rewritten parameter expression: replace the subquery by [by]
   (z.g for the nestjoin, possibly remapped for grouping) and the outer
   variable by z[SCH(X)].  The replacement happens before the variable
   substitution so that any free x inside [by] is also retargeted when the
   caller wants that (the grouping rewrite relies on it). *)
let retarget_with ~x ~z ~sch_x ~occurrence ~by p =
  let p = Analysis.replace_subexpr ~old_e:occurrence ~by p in
  Analysis.subst1 x (TupleProj (Var z, sch_x)) p

let retarget ~x ~z ~g ~sch_x ~occurrence p =
  retarget_with ~x ~z ~sch_x ~occurrence ~by:(Field (Var z, g)) p

let make_nestjoin ~x (sq : Subquery.t) ~g ~left =
  Nestjoin
    { xvar = x; yvar = sq.yvar; pred = sq.q; body = sq.body; attr = g;
      left; right = sq.range }

let select_rule =
  Rules.rule "nestjoin σ" (fun cat e ->
      match e with
      | Select { var = x; pred; src } ->
        (match Subquery.find x pred with
         | None -> None
         | Some sq ->
           (match Subquery.schema_of cat src with
            | None -> None
            | Some sch_x ->
              let g = Subquery.fresh_attr sch_x in
              let z = fresh_var "z" in
              let pred' =
                retarget ~x ~z ~g ~sch_x ~occurrence:sq.occurrence pred
              in
              Some
                (Project
                   ( sch_x,
                     Select
                       { var = z; pred = pred';
                         src = make_nestjoin ~x sq ~g ~left:src } ))))
      | _ -> None)

let map_rule =
  Rules.rule "nestjoin α" (fun cat e ->
      match e with
      | Map { var = x; body; src } ->
        (match Subquery.find x body with
         | None -> None
         | Some sq ->
           (match Subquery.schema_of cat src with
            | None -> None
            | Some sch_x ->
              let g = Subquery.fresh_attr sch_x in
              let z = fresh_var "z" in
              let body' =
                retarget ~x ~z ~g ~sch_x ~occurrence:sq.occurrence body
              in
              Some (Map { var = z; body = body'; src = make_nestjoin ~x sq ~g ~left:src })))
      | _ -> None)

(* Deeper nesting levels (Section 7's future work): when the nestjoin's
   function parameter itself contains a base-table subquery correlated on
   the RIGHT variable, chain a second nestjoin on the right operand:

     X ⊣[x,y : P ; F(y, Z'(y)) ; a] Y
       =  X ⊣[x,w : P[w\[SCH(Y)\]/y] ; F[w\[SCH(Y)\]/y, w.g/Z'] ; a]
            (Y ⊣[y,z : Q ; G ; g] Z)

   Each right row y extends to exactly one w carrying its group, so the
   per-x groups are unchanged. *)
let nestjoin_body_rule =
  Rules.rule "nestjoin body ⊣" (fun cat e ->
      match e with
      | Nestjoin ({ xvar; yvar; pred; body; right; _ } as j) ->
        (match Subquery.find yvar body with
         | Some sq
           when (not (Analysis.is_free xvar sq.occurrence))
                && not (Analysis.is_free xvar sq.range) ->
           (match Subquery.schema_of cat right with
            | None -> None
            | Some sch_y ->
              let g = Subquery.fresh_attr sch_y in
              let w = fresh_var "w" in
              let body' =
                retarget ~x:yvar ~z:w ~g ~sch_x:sch_y ~occurrence:sq.occurrence
                  body
              in
              let pred' = Analysis.subst1 yvar (TupleProj (Var w, sch_y)) pred in
              let inner = make_nestjoin ~x:yvar sq ~g ~left:right in
              Some
                (Nestjoin
                   { j with yvar = w; pred = pred'; body = body'; right = inner }))
         | _ -> None)
      | _ -> None)

let rules = [ select_rule; map_rule; nestjoin_body_rule ]
