(** Predicate normalization: set comparisons into quantifier expressions
    (Tables 1 and 2), negation pushing, conjunct hoisting and range fusion.

    After normalization the only quantifier is the existential (∀ becomes
    ¬∃¬), which Rule 1 unnests with semijoin/antijoin.  Set comparisons are
    expanded only when the resulting quantifier ranges over the base-table
    side — the paper's observation that ∈ and ⊇ expand into unnestable
    forms while the other operators yield multiple-subquery expressions
    best left to the grouping/nestjoin phase. *)

open Njq_adl

(** Unconditional Table 1 expansion of a set comparison into a quantifier
    expression (always semantically equivalent).  Used by the strategy
    under the gating below, and by the Table 1 artifact printer as is. *)
val expand_setcmp : Expr.setcmp -> Expr.t -> Expr.t -> Expr.t option

(** The strategy gate: does expanding this comparison lead to a form Rule 1
    can unnest (i.e. does the quantifier range over the base-table side)? *)
val worth_expanding : Expr.setcmp -> Expr.t -> Expr.t -> bool

(** {1 Individual rules} (exposed for targeted tests) *)

val set_comparison_to_quantifier : Rules.rule
val negated_inclusion_to_quantifier : Rules.rule
val forall_to_not_exists : Rules.rule
val push_not : Rules.rule
val emptiness_to_quantifier : Rules.rule
val empty_intersection : Rules.rule
val fuse_range_select : Rules.rule
val fuse_range_map : Rules.rule
val fuse_range_inter : Rules.rule
val fuse_range_flatten : Rules.rule
val hoist_independent_conjuncts : Rules.rule
val split_disjunctive_selection : Rules.rule

(** All normalization rules, in application priority order. *)
val rules : Rules.rule list

(** Apply {!rules} to a fixpoint (with interleaved folding). *)
val run : Catalog.t -> Expr.t -> Expr.t * Rules.trace
