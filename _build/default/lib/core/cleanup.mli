(** Logical cleanup rules run as the strategy's final phase: classical
    algebraic reductions (cf. [KeMo93]) that shrink intermediate results
    without changing the unnesting decisions — projection-join reduction
    (π∘⋈ → π∘⋉ when only left attributes survive), projection merging and
    elimination, and distribution of σ/α/π over unions. *)

val project_join_to_semijoin : Rules.rule
val project_project : Rules.rule
val project_identity : Rules.rule
val select_over_union : Rules.rule
val map_over_union : Rules.rule
val project_over_union : Rules.rule
val project_into_semijoin : Rules.rule
val rules : Rules.rule list
