(* Detection of correlated base-table subqueries inside iterator parameter
   expressions — the common engine behind unnesting by grouping and the
   nestjoin rewrite (Sections 5.2.2 and 6.1).

   A subquery in the sense of the paper's general two-block format is

       Y' = alpha[y : G(x, y)](sigma[y : Q(x, y)](Y))

   where Y is a base-table expression not referencing the outer variable x,
   and the correlation is through Q (and possibly G).  We normalize the
   shapes [Select], [Map over Select], and [Map] into one record. *)

open Njq_adl
open Expr

type t = {
  occurrence : Expr.t; (* the subquery expression as it occurs in P *)
  yvar : string; (* iteration variable over Y *)
  q : Expr.t; (* inner predicate Q(x, y); true_ if none *)
  body : Expr.t; (* inner map body G(x, y); Var yvar if identity *)
  range : Expr.t; (* the base-table expression Y *)
}

(* Recognize a subquery shape rooted at [e]. *)
let recognize (e : Expr.t) : t option =
  match e with
  | Select { var = y; pred = q; src = range } ->
    Some { occurrence = e; yvar = y; q; body = Var y; range }
  | Map { var = ym; body; src = Select { var = y; pred = q; src = range } } ->
    (* Align the map variable with the selection variable. *)
    let body = if String.equal ym y then body else Analysis.subst1 ym (Var y) body in
    Some { occurrence = e; yvar = y; q; body; range }
  | Map { var = ym; body; src = range } ->
    Some { occurrence = e; yvar = ym; q = true_; body; range }
  | _ -> None

(* Is [sq] a candidate for unnesting relative to outer variable [x]?  The
   range must involve base tables, must not itself be correlated on x, and
   the subquery must be correlated on x (an uncorrelated subquery is a
   constant and is left alone, per Section 3). *)
let is_candidate x (sq : t) =
  Analysis.uses_base_table sq.range
  && (not (Analysis.is_free x sq.range))
  && Analysis.is_free x sq.occurrence

(* Find the outermost correlated base-table subquery of [x] within predicate
   or body [p], skipping subtrees in which [x] is shadowed by a binder. *)
let find x (p : Expr.t) : t option =
  let exception Found of t in
  let rec go e =
    (match recognize e with
     | Some sq when is_candidate x sq -> raise (Found sq)
     | _ -> ());
    match e with
    | Quant (_, v, range, pred) ->
      go range;
      if not (String.equal v x) then go pred
    | Map { var; body; src } ->
      go src;
      if not (String.equal var x) then go body
    | Select { var; pred; src } ->
      go src;
      if not (String.equal var x) then go pred
    | Join { xvar; yvar; pred; left; right; _ } ->
      go left;
      go right;
      if not (String.equal xvar x || String.equal yvar x) then go pred
    | Nestjoin { xvar; yvar; pred; body; left; right; _ } ->
      go left;
      go right;
      if not (String.equal xvar x || String.equal yvar x) then begin
        go pred;
        go body
      end
    | _ -> ignore (Expr.fold_children (fun () c -> go c) () e)
  in
  match go p with () -> None | exception Found sq -> Some sq

(* Schema of a closed table expression, via type inference. *)
let schema_of cat (e : Expr.t) : string list option =
  if not (Analysis.is_closed e) then None
  else
    match Typecheck.infer cat [] e with
    | Vtype.TSet (Vtype.TTuple fields) -> Some (List.map fst fields)
    | _ -> None
    | exception Vtype.Type_error _ -> None

(* A fresh attribute name not clashing with any name in [avoid]. *)
let rec fresh_attr avoid =
  let g = fresh_var "g" in
  if List.mem g avoid then fresh_attr avoid else g
