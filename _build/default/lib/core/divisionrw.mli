(** Division-based unnesting of universal quantification (Section 5.2.1's
    pointer to Codd's division operator) — an ablation alternative to the
    antijoin produced by Rule 1.

    Matches (post-normalization)
    [σ\[x : ¬∃y∈Y • (C(y) ∧ g(y) ∉ x.c)\](X)] and produces

    [(X ⋉ (μ_c(X) ÷ α\[y : ⟨c = g(y)⟩\](σ_C(Y))))
       ∪ σ\[x : ¬∃y∈σ_C(Y) • true\](X)]

    where the second operand handles the empty-divisor corner.  Requires an
    atomic element type for c and an oid attribute outside c (so that the
    A-projection identifies rows uniquely).  Enabled through
    [Strategy.options.enable_division]. *)

val division_rule : Rules.rule
val rules : Rules.rule list
