(** The quantifier-exchange heuristic (Section 5.2.1, Rewriting Example 3):
    move quantification over base tables to the left, out of quantification
    over set-valued attributes, so that Rule 1 applies.

    After normalization all quantifiers are existential, so one commutation
    suffices:
    [∃z∈c • (A ∧ ∃y∈Y • p)  =  ∃y∈Y • ∃z∈c • (A ∧ p)]
    for Y a base-table expression with z not free in Y (y is α-renamed). *)

val exchange_rule : Rules.rule
val rules : Rules.rule list
