(** The nestjoin rewrite (Section 6.1): unnesting nested queries that
    require grouping without losing dangling left tuples.

    - [σ\[x : P(x,Y')\](X)  ⇒  π_SCH(X)(σ\[z : P'\](X ⊣\[x,y : Q ; g\] Y))]
    - [α\[x : F(x,Y')\](X)  ⇒  α\[z : F'\](X ⊣\[x,y : Q ; g\] Y)]

    where [P' = P\[z\[SCH(X)\]/x, z.g/Y'\]] and the extended nestjoin
    carries the subquery's map body G when not the identity. *)

open Njq_adl

(** Replace the subquery occurrence by [by] and the outer variable by
    [z\[SCH(X)\]] in a parameter expression. *)
val retarget_with :
  x:string -> z:string -> sch_x:string list -> occurrence:Expr.t ->
  by:Expr.t -> Expr.t -> Expr.t

(** {!retarget_with} with [by = z.g]. *)
val retarget :
  x:string -> z:string -> g:string -> sch_x:string list ->
  occurrence:Expr.t -> Expr.t -> Expr.t

(** Build the nestjoin node for a recognized subquery. *)
val make_nestjoin :
  x:string -> Subquery.t -> g:string -> left:Expr.t -> Expr.t

val select_rule : Rules.rule
val nestjoin_body_rule : Rules.rule
val map_rule : Rules.rule
val rules : Rules.rule list
