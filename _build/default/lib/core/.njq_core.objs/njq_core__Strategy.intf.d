lib/core/strategy.mli: Catalog Expr Format Njq_adl Rules
