lib/core/divisionrw.ml: Analysis Expr List Njq_adl Rules String Subquery Typecheck Vtype
