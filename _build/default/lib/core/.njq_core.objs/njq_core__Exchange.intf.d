lib/core/exchange.mli: Rules
