lib/core/nestjoinrw.ml: Analysis Expr Njq_adl Rules Subquery
