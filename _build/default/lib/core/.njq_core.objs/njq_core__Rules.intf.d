lib/core/rules.mli: Catalog Expr Format Njq_adl
