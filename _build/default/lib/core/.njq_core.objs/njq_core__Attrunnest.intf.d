lib/core/attrunnest.mli: Rules
