lib/core/divisionrw.mli: Rules
