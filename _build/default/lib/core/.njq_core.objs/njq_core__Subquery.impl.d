lib/core/subquery.ml: Analysis Expr List Njq_adl String Typecheck Vtype
