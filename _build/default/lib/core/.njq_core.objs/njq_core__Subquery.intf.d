lib/core/subquery.mli: Catalog Expr Njq_adl
