lib/core/cleanup.ml: Expr List Njq_adl Rules String Subquery
