lib/core/grouping.ml: Emptyset Expr List Nestjoinrw Njq_adl Rules Subquery Value
