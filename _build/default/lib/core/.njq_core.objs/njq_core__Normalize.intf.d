lib/core/normalize.mli: Catalog Expr Njq_adl Rules
