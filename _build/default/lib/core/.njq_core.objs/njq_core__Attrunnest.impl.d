lib/core/attrunnest.ml: Analysis Expr List Njq_adl Rules String Typecheck Vtype
