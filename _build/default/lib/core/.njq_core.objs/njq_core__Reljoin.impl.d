lib/core/reljoin.ml: Analysis Expr List Njq_adl Printf Rules String Subquery
