lib/core/strategy.ml: Attrunnest Catalog Cleanup Divisionrw Exchange Expr Fmt Fold Grouping List Nestjoinrw Njq_adl Normalize Pretty Reljoin Rules
