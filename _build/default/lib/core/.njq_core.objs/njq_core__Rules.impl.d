lib/core/rules.ml: Catalog Expr Fmt Fold List Njq_adl Pretty
