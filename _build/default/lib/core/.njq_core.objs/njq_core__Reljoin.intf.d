lib/core/reljoin.mli: Rules
