lib/core/normalize.ml: Analysis Expr List Njq_adl Rules Value
