lib/core/nestjoinrw.mli: Expr Njq_adl Rules Subquery
