lib/core/cleanup.mli: Rules
