lib/core/grouping.mli: Catalog Expr Njq_adl Rules
