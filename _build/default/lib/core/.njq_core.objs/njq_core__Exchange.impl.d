lib/core/exchange.ml: Analysis Expr List Njq_adl Rules
