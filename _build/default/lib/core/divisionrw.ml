(* Division-based unnesting of universal quantification (Section 5.2.1:
   "universal quantification is handled by means of the division operator
   [Codd72]").

   After normalization, a universally quantified coverage test has the form

     sigma[x : 'not exists' y 'in' Y . (C(y) and g(y) 'notin' x.c)](X)

   ("x's set-valued attribute c covers the keys of the qualifying Y rows").
   The relational-division formulation unnests the pairs (x, element) and
   divides by the qualifying keys:

     quotient = mu_c(X)  ÷  alpha[y : (c = g(y))](sigma[y : C](Y))
     result   = (X semijoin[x,q : x[A] = q] quotient)
                union
                sigma[x : 'not exists' y 'in' sigma[y : C](Y) . true](X)

   The second operand handles the empty-divisor corner: when no Y row
   qualifies, every X tuple (including those with empty c, which mu drops)
   satisfies the universal quantification; when the divisor is non-empty
   the term is empty.  Both operands are set-oriented (the selection
   becomes a semijoin/antijoin by Rule 1 in the following relational pass).

   This rule is an ablation alternative to the antijoin produced by Rule 1;
   the strategy only uses it when [enable_division] is set.  It requires an
   atomic element type for c (sets of oid references or scalars). *)

open Njq_adl
open Expr

let only v e =
  let fv = Analysis.free_vars e in
  Analysis.S.subset fv (Analysis.S.singleton v)

(* Local negation normal form: the rule races Rule 1 for the ¬∃ pattern and
   must see the pushed-negation body even when the [push_not] steps have not
   reached it yet. *)
let rec nnf e =
  match e with
  | Not (Not a) -> nnf a
  | Not (And (a, b)) -> Or (nnf (Not a), nnf (Not b))
  | Not (Or (a, b)) -> And (nnf (Not a), nnf (Not b))
  | Not (Cmp (op, a, b)) -> Cmp (negate_cmp op, a, b)
  | Not (SetCmp (op, a, b)) when negated_setcmp_is_complement op ->
    SetCmp (negate_setcmp op, a, b)
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | _ -> e

(* Recognize 'not exists' y 'in' Y . (C(y) and g(y) 'notin' x.c) and return
   (yvar, range, c_conjuncts, g, attr). *)
let coverage_shape x pred =
  match pred with
  | Not (Quant (Exists, y, range, body))
    when Analysis.uses_base_table range && not (Analysis.is_free x range) ->
    let cs = conjuncts (nnf body) in
    let is_notmem = function
      | SetCmp (NotMem, g, Field (Var v, c)) when String.equal v x && only y g ->
        Some (g, c)
      | _ -> None
    in
    let rec split before = function
      | [] -> None
      | conj :: after ->
        (match is_notmem conj with
         | Some (g, c) ->
           let others = List.rev_append before after in
           if List.for_all (only y) others then Some (y, range, others, g, c)
           else None
         | None -> split (conj :: before) after)
    in
    split [] cs
  | _ -> None

let division_rule =
  Rules.rule "∀→division" (fun cat e ->
      match e with
      | Select { var = x; pred; src } ->
        (match coverage_shape x pred with
         | None -> None
         | Some (y, range, c_conjuncts, g, c) ->
           (match Subquery.schema_of cat src with
            | None -> None
            | Some sch ->
              if not (List.mem c sch) then None
              else
                let fields =
                  match Typecheck.infer cat [] src with
                  | Vtype.TSet (Vtype.TTuple fields) -> fields
                  | _ -> []
                  | exception Vtype.Type_error _ -> []
                in
                let elem_atomic =
                  match List.assoc_opt c fields with
                  | Some (Vtype.TSet (Vtype.TTuple _)) -> false
                  | Some (Vtype.TSet _) -> true
                  | _ -> false
                in
                let a_attrs = List.filter (fun f -> not (String.equal f c)) sch in
                (* The A-projection must identify rows uniquely, otherwise
                   two X rows differing only in c would pool their elements
                   in the dividend.  An oid attribute outside c guarantees
                   this (extents always carry one). *)
                let a_is_key =
                  List.exists
                    (fun a ->
                      match List.assoc_opt a fields with
                      | Some Vtype.TOid -> true
                      | _ -> false)
                    a_attrs
                in
                if not (elem_atomic && a_is_key) then None
                else
                  let qualifying =
                    match c_conjuncts with
                    | [] -> range
                    | cs -> Select { var = y; pred = conjoin cs; src = range }
                  in
                  let divisor =
                    Map { var = y; body = Tuple [ (c, g) ]; src = qualifying }
                  in
                  let quotient = Divide (Unnest (c, src), divisor) in
                  let q = fresh_var "q" in
                  let covered =
                    Join
                      { kind = Semi; xvar = x; yvar = q;
                        pred = Cmp (Eq, TupleProj (Var x, a_attrs), Var q);
                        left = src; right = quotient }
                  in
                  let empty_divisor_case =
                    Select
                      { var = x;
                        pred = Not (Quant (Exists, y, qualifying, true_));
                        src }
                  in
                  Some (Union (covered, empty_divisor_case))))
      | _ -> None)

let rules = [ division_rule ]
