(** Detection of correlated base-table subqueries inside iterator parameter
    expressions — shared by the grouping and nestjoin rewrites.

    A subquery in the paper's general two-block format is
    [Y' = α\[y : G(x,y)\](σ\[y : Q(x,y)\](Y))] with Y a base-table
    expression not referencing the outer variable x. *)

open Njq_adl

type t = {
  occurrence : Expr.t;  (** the subquery expression as it occurs *)
  yvar : string;
  q : Expr.t;  (** inner predicate Q(x,y); [true] if none *)
  body : Expr.t;  (** inner map body G(x,y); [Var yvar] if identity *)
  range : Expr.t;  (** the base-table expression Y *)
}

(** Recognize a subquery shape rooted at the given node. *)
val recognize : Expr.t -> t option

(** Unnesting candidate relative to outer variable [x]: base-table range
    not correlated on [x], occurrence correlated on [x]. *)
val is_candidate : string -> t -> bool

(** Outermost correlated base-table subquery of [x] within a parameter
    expression, skipping subtrees where [x] is shadowed. *)
val find : string -> Expr.t -> t option

(** Schema (attribute names) of a closed table expression, via type
    inference; [None] when open or untypable. *)
val schema_of : Catalog.t -> Expr.t -> string list option

(** A fresh attribute name avoiding the given names. *)
val fresh_attr : string list -> string
