lib/workload/generator.mli: Catalog Njq_adl Vtype
