lib/workload/queries.mli: Catalog Expr Njq_adl Njq_oosql
