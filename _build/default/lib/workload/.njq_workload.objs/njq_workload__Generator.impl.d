lib/workload/generator.ml: Array Catalog List Njq_adl Printf Rng Value Vtype
