lib/workload/queries.ml: Catalog Dsl Expr List Njq_adl Njq_oosql Printf String Value Vtype
