(* The paper's query corpus: Example Queries 1-6 (Sections 2 and 4) in OOSQL
   source form against the supplier-part-delivery schema, plus the abstract
   tables of Figures 1-3.

   Notes on fidelity:
   - Example Query 3.1 as printed in the paper compares s.parts_supplied
     (a set of parts) with a subquery returning a set of *sets* of parts;
     we use the evidently intended flattened form (all parts supplied by
     supplier s1), expressed with a multi-binding from-clause.
   - The referential-integrity query (Example Query 4) compares references
     with oids directly and therefore never dereferences a dangling pointer;
     queries that do dereference (1, 2, 3.2, 6) should run against data
     generated with [dangling_rate = 0]. *)

open Njq_adl

let schema = Njq_oosql.Schema.supplier_part ()

type query = {
  id : string; (* experiment id, e.g. "EQ4" *)
  title : string;
  oosql : string;
  needs_integrity : bool; (* dereferences part/supplier pointers *)
}

let q1 =
  { id = "EQ1";
    title = "Nesting in the select-clause: supplier names with their red parts";
    oosql =
      {|select (sname = s.sname,
         pnames = select p.pname from p in s.parts_supplied where p.color = "red")
  from s in SUPPLIER|};
    needs_integrity = true }

let q2 =
  { id = "EQ2";
    title = "Nesting in the from-clause: deliveries of supplier s1 on Jan 1, 1994";
    oosql =
      {|select d
  from d in (select e from e in DELIVERY where e.supplier.sname = "s1")
  where d.date = 940101|};
    needs_integrity = true }

let q3_1 =
  { id = "EQ3.1";
    title = "Nesting in the where-clause over a base table: suppliers covering s1";
    oosql =
      {|select s.sname
  from s in SUPPLIER
  where s.parts_supplied supseteq
        (select p from t in SUPPLIER, p in t.parts_supplied where t.sname = "s0")|};
    needs_integrity = false }

let q3_2 =
  { id = "EQ3.2";
    title = "Nesting in the where-clause over a set-valued attribute: deliveries with red parts";
    oosql =
      {|select d
  from d in DELIVERY
  where exists x in (select s from s in d.supply where s.part.color = "red")|};
    needs_integrity = true }

let q4 =
  { id = "EQ4";
    title = "Referential integrity: suppliers with non-existing parts (mu + antijoin)";
    oosql =
      {|select (sid = s.oid)
  from s in SUPPLIER
  where exists z in s.parts_supplied : not exists p in PART : z = p.oid|};
    needs_integrity = false }

let q5 =
  { id = "EQ5";
    title = "Suppliers supplying red parts (semijoin)";
    oosql =
      {|select s
  from s in SUPPLIER
  where exists z in s.parts_supplied : exists p in PART : z = p.oid and p.color = "red"|};
    needs_integrity = false }

let q6 =
  { id = "EQ6";
    title = "Supplier names with all parts supplied (nestjoin)";
    oosql =
      {|select (sname = s.sname,
         parts_suppl = select p from p in PART where p.oid in s.parts_supplied)
  from s in SUPPLIER|};
    needs_integrity = false }

let all = [ q1; q2; q3_1; q3_2; q4; q5; q6 ]

(* Extended corpus beyond the paper's examples, exercising the "future
   work" directions of Section 7: multiple nesting levels and multiple
   subqueries per predicate. *)

let q7 =
  { id = "EQ7";
    title = "Three nesting levels: suppliers of red parts delivered in bulk";
    oosql =
      {|select s.sname
  from s in SUPPLIER
  where exists z in s.parts_supplied : exists p in PART :
        z = p.oid and p.color = "red" and
        (exists d in DELIVERY : exists u in d.supply : u.part = p.oid and u.quantity > 50)|};
    needs_integrity = false }

let q8 =
  { id = "EQ8";
    title = "Two subqueries in one predicate: red-supplying, blue-avoiding suppliers";
    oosql =
      {|select s.sname
  from s in SUPPLIER
  where (exists p in PART : p.oid in s.parts_supplied and p.color = "red")
        and not exists q in PART : q.oid in s.parts_supplied and q.color = "blue"|};
    needs_integrity = false }

let q9 =
  { id = "EQ9";
    title = "Nested grouping: per supplier, red parts with their deliveries";
    oosql =
      {|select (sname = s.sname,
         reds = select (pname = p.pname,
                        dels = select d.oid from d in DELIVERY
                               where exists u in d.supply : u.part = p.oid)
                from p in PART
                where p.oid in s.parts_supplied and p.color = "red")
  from s in SUPPLIER|};
    needs_integrity = false }

let extended = [ q7; q8; q9 ]

let find id =
  match List.find_opt (fun q -> String.equal q.id id) (all @ extended) with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Queries.find: unknown query %s" id)

(* Parse and translate a corpus query to ADL. *)
let to_adl (q : query) : Expr.t =
  fst (Njq_oosql.Translate.query_string schema q.oosql)

(* ------------------------------------------------------------------ *)
(* The abstract example tables of the paper's figures                  *)
(* ------------------------------------------------------------------ *)

(* Figure 1 / Figure 2: X(a, c:{int}), Y(d, e).  The tuple (a=2, c={}) is
   the dangling tuple that the flat-join grouping rewrite loses: its
   subquery result is empty and {} 'subseteq' {} holds, so it belongs in
   the answer. *)
let fig2_catalog () =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TSet Vtype.TInt) ])
    [ Value.tuple [ ("a", Value.int 1); ("c", Value.set [ Value.int 1; Value.int 2 ]) ];
      Value.tuple [ ("a", Value.int 2); ("c", Value.set []) ] ];
  Catalog.add_table cat ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ];
      Value.tuple [ ("d", Value.int 1); ("e", Value.int 2) ];
      Value.tuple [ ("d", Value.int 1); ("e", Value.int 3) ];
      Value.tuple [ ("d", Value.int 3); ("e", Value.int 3) ] ];
  cat

(* The Figure 1/2 query: sigma[x : x.c 'subseteq' alpha[y : y.e](sigma[y :
   x.a = y.d](Y))](X). *)
let fig2_query : Expr.t =
  let open Dsl in
  select "x" (table "X")
    (subseteq (var "x" $. "c")
       (map_ "y" (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
          (var "y" $. "e")))

(* Figure 3: the nestjoin example.  X(a, b) nestjoin Y(d, e) on b = d. *)
let fig3_catalog () =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"X3"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("b", Vtype.TInt) ])
    [ Value.tuple [ ("a", Value.int 1); ("b", Value.int 1) ];
      Value.tuple [ ("a", Value.int 2); ("b", Value.int 1) ];
      Value.tuple [ ("a", Value.int 3); ("b", Value.int 3) ] ];
  Catalog.add_table cat ~name:"Y3"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 10) ];
      Value.tuple [ ("d", Value.int 1); ("e", Value.int 20) ];
      Value.tuple [ ("d", Value.int 2); ("e", Value.int 30) ] ];
  cat

let fig3_query : Expr.t =
  let open Dsl in
  nestjoin ~x:"x" ~y:"y" ~attr:"m"
    (eq (var "x" $. "b") (var "y" $. "d"))
    (table "X3") (table "Y3")

(* The Section 6.2 materialization query: replace each supplier's part
   references by the referenced part objects (a nested natural join of a
   set-valued attribute with a base table), processed either naively, via
   unnest-join-nest, or with the PNHL algorithm. *)
let materialize_parts_query : Expr.t =
  let open Dsl in
  map_ "s" (table "SUPPLIER")
    (except (var "s")
       [ ( "parts_supplied",
           map_ "p"
             (select "p" (table "PART") (mem (var "p" $. "oid") (var "s" $. "parts_supplied")))
             (var "p") ) ])
