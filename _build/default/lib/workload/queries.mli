(** The paper's query corpus: Example Queries 1-6 in OOSQL source form
    against the supplier–part–delivery schema, and the abstract tables of
    Figures 1-3. *)

open Njq_adl

(** The Section 2 schema. *)
val schema : Njq_oosql.Ast.schema

type query = {
  id : string;  (** experiment id, e.g. "EQ4" *)
  title : string;
  oosql : string;
  needs_integrity : bool;
      (** dereferences part/supplier pointers, so the data must have no
          dangling references *)
}

val q1 : query
val q2 : query
val q3_1 : query
val q3_2 : query
val q4 : query
val q5 : query
val q6 : query
val all : query list

(** Extended corpus beyond the paper's examples (Section 7's future-work
    directions): three nesting levels (EQ7), two subqueries in one
    predicate (EQ8), nested grouping (EQ9). *)

val q7 : query
val q8 : query
val q9 : query
val extended : query list

(** Find by id among [all] and [extended]; raises [Invalid_argument] on
    unknown ids. *)
val find : string -> query

(** Parse and translate a corpus query to ADL. *)
val to_adl : query -> Expr.t

(** {1 Figure fixtures} *)

(** Figure 1/2 tables: X(a, c:{int}) with the dangling tuple ⟨a=2, c=∅⟩,
    Y(d, e). *)
val fig2_catalog : unit -> Catalog.t

(** The Figure 1/2 query [σ\[x : x.c ⊆ α\[y:y.e\](σ\[y: x.a=y.d\](Y))\](X)]. *)
val fig2_query : Expr.t

(** Figure 3 tables and the nestjoin query over them. *)
val fig3_catalog : unit -> Catalog.t

val fig3_query : Expr.t

(** The Section 6.2 materialization query: replace each supplier's part
    references by the referenced part objects. *)
val materialize_parts_query : Expr.t
