(* Scalable, deterministic generator for the paper's supplier-part-delivery
   database (Section 2).

   The ADL shapes follow the paper's logical design: every extent row gets
   an oid; SUPPLIER stores parts_supplied as a set of Part references;
   DELIVERY references its supplier and stores supply as a set of
   (part, quantity) tuples.

   Knobs (all deterministic given the seed):
   - [parts], [suppliers], [deliveries]: extent cardinalities;
   - [fanout]: average size of a supplier's parts_supplied set;
   - [supply_fanout]: average size of a delivery's supply set;
   - [dangling_rate]: fraction of part references pointing to no existing
     part (drives the referential-integrity experiment, Example Query 4);
   - [empty_rate]: fraction of suppliers with an empty parts_supplied set
     (drives the Complex Object bug and PNF-loss experiments). *)

open Njq_adl

type config = {
  seed : int;
  parts : int;
  suppliers : int;
  deliveries : int;
  fanout : int;
  supply_fanout : int;
  dangling_rate : float;
  empty_rate : float;
}

let default_config =
  { seed = 42;
    parts = 64;
    suppliers = 32;
    deliveries = 48;
    fanout = 4;
    supply_fanout = 3;
    dangling_rate = 0.05;
    empty_rate = 0.1 }

(* A configuration scaled to roughly [n] rows per extent; used by the
   benchmark sweeps. *)
let scaled ?(seed = 42) n =
  { default_config with
    seed;
    parts = n;
    suppliers = n;
    deliveries = n;
    fanout = max 2 (n / 16) }

let colors = [| "red"; "green"; "blue"; "yellow"; "black" |]

let part_names =
  [| "bolt"; "nut"; "screw"; "cam"; "cog"; "gear"; "axle"; "washer" |]

(* Row types, matching [Njq_oosql.Schema.supplier_part]'s logical design. *)
let part_row_type =
  Vtype.tuple
    [ ("oid", Vtype.TOid); ("pname", Vtype.TString); ("price", Vtype.TInt);
      ("color", Vtype.TString) ]

let supplier_row_type =
  Vtype.tuple
    [ ("oid", Vtype.TOid); ("sname", Vtype.TString);
      ("parts_supplied", Vtype.TSet (Vtype.TRef "PART")) ]

let delivery_row_type =
  Vtype.tuple
    [ ("oid", Vtype.TOid);
      ("supplier", Vtype.TRef "SUPPLIER");
      ("supply",
       Vtype.TSet
         (Vtype.tuple [ ("part", Vtype.TRef "PART"); ("quantity", Vtype.TInt) ]));
      ("date", Vtype.TDate) ]

type db = {
  catalog : Catalog.t;
  part_oids : int array;
  supplier_oids : int array;
}

let generate (cfg : config) : db =
  let rng = Rng.create cfg.seed in
  let cat = Catalog.create () in
  (* Parts *)
  let part_oids =
    Array.init cfg.parts (fun _ -> Catalog.fresh_oid cat)
  in
  let parts =
    Array.to_list
      (Array.mapi
         (fun i oid ->
           Value.tuple
             [ ("oid", Value.oid oid);
               ("pname",
                Value.string
                  (Printf.sprintf "%s-%d" (Rng.pick_array rng part_names) i));
               ("price", Value.int (Rng.int_in_range rng ~lo:1 ~hi:500));
               ("color", Value.string (Rng.pick_array rng colors)) ])
         part_oids)
  in
  Catalog.add_table cat ~name:"PART" ~row_type:part_row_type parts;
  (* Suppliers: a set of part references, possibly empty, possibly with a
     dangling reference injected. *)
  let dangling_oid () = 1_000_000 + Rng.int rng 1_000_000 in
  let supplier_oids =
    Array.init cfg.suppliers (fun _ -> Catalog.fresh_oid cat)
  in
  let suppliers =
    Array.to_list
      (Array.mapi
         (fun i oid ->
           let refs =
             if cfg.parts = 0 || Rng.chance rng cfg.empty_rate then []
             else begin
               let k = 1 + Rng.int rng (max 1 (2 * cfg.fanout)) in
               List.init k (fun _ ->
                   if Rng.chance rng cfg.dangling_rate then
                     Value.oid (dangling_oid ())
                   else Value.oid (Rng.pick_array rng part_oids))
             end
           in
           Value.tuple
             [ ("oid", Value.oid oid);
               ("sname", Value.string (Printf.sprintf "s%d" i));
               ("parts_supplied", Value.set refs) ])
         supplier_oids)
  in
  Catalog.add_table cat ~name:"SUPPLIER" ~row_type:supplier_row_type suppliers;
  (* Deliveries *)
  let deliveries =
    List.init cfg.deliveries (fun i ->
        let oid = Catalog.fresh_oid cat in
        let supplier =
          if cfg.suppliers = 0 then Value.oid 0
          else Value.oid (Rng.pick_array rng supplier_oids)
        in
        let supply =
          if cfg.parts = 0 then []
          else
            List.init
              (1 + Rng.int rng (max 1 (2 * cfg.supply_fanout)))
              (fun _ ->
                Value.tuple
                  [ ("part", Value.oid (Rng.pick_array rng part_oids));
                    ("quantity", Value.int (Rng.int_in_range rng ~lo:1 ~hi:100)) ])
        in
        let date = 940101 + (i mod 28) in
        Value.tuple
          [ ("oid", Value.oid oid);
            ("supplier", supplier);
            ("supply", Value.set supply);
            ("date", Value.date date) ])
  in
  Catalog.add_table cat ~name:"DELIVERY" ~row_type:delivery_row_type deliveries;
  { catalog = cat; part_oids; supplier_oids }

(* Convenience: catalog only. *)
let catalog cfg = (generate cfg).catalog

(* Abstract X(a, c:{int}) / Y(d, e) tables in the shape of the paper's
   Figures 1-2, scaled: [n] rows per table, correlation attribute values in
   [0, n), element sets of average size [fanout], and [empty_rate] of the X
   rows carrying an empty set.  Used by the grouping and exchange
   benchmarks. *)
let xy_catalog ?(seed = 42) ?(fanout = 4) ?(empty_rate = 0.1) n : Catalog.t =
  let rng = Rng.create seed in
  let cat = Catalog.create () in
  let xs =
    List.init n (fun i ->
        let c =
          if Rng.chance rng empty_rate then []
          else
            List.init
              (1 + Rng.int rng (max 1 (2 * fanout)))
              (fun _ -> Value.int (Rng.int rng (max 1 n)))
        in
        Value.tuple [ ("a", Value.int i); ("c", Value.set c) ])
  in
  Catalog.add_table cat ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TSet Vtype.TInt) ])
    xs;
  let ys =
    List.init n (fun i ->
        Value.tuple
          [ ("d", Value.int (Rng.int rng (max 1 n)));
            ("e", Value.int (i mod max 1 n)) ])
  in
  Catalog.add_table cat ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    ys;
  cat
