(** Deterministic, scalable generator for the paper's
    supplier–part–delivery database (Section 2), plus abstract X/Y tables
    in the shape of Figures 1-2. *)

open Njq_adl

type config = {
  seed : int;
  parts : int;
  suppliers : int;
  deliveries : int;
  fanout : int;  (** average size of parts_supplied *)
  supply_fanout : int;  (** average size of a delivery's supply set *)
  dangling_rate : float;  (** fraction of dangling part references *)
  empty_rate : float;  (** fraction of suppliers with empty parts *)
}

val default_config : config

(** Configuration scaled to roughly [n] rows per extent. *)
val scaled : ?seed:int -> int -> config

(** Row types of the three extents (matching
    [Njq_oosql.Schema.supplier_part]). *)

val part_row_type : Vtype.t
val supplier_row_type : Vtype.t
val delivery_row_type : Vtype.t

type db = {
  catalog : Catalog.t;
  part_oids : int array;
  supplier_oids : int array;
}

val generate : config -> db

(** Catalog only. *)
val catalog : config -> Catalog.t

(** Abstract X(a, c:{int}) / Y(d, e) tables, scaled to [n] rows each, with
    [empty_rate] of the X rows carrying an empty set. *)
val xy_catalog : ?seed:int -> ?fanout:int -> ?empty_rate:float -> int -> Catalog.t
