(** Hoisting of uncorrelated subqueries (paper Section 3: "uncorrelated
    subqueries simply are constants, and treated as such"): every maximal
    closed base-table subexpression inside an iterator parameter expression
    is replaced by the constant value it denotes, evaluated once against
    the catalog.  Top-level operands stay symbolic. *)

open Njq_adl

(** One-pass hoist; the result is equivalent for the catalog it was
    evaluated against. *)
val hoist : Catalog.t -> Expr.t -> Expr.t

(** Hoist inside one parameter expression (exposed for tests). *)
val hoist_in_param : Catalog.t -> Expr.t -> Expr.t
