(** Plan execution.

    Parameter expressions are evaluated per tuple with the reference
    evaluator; the engine organizes the iteration set-oriented: hash tables
    for equi/member/nest joins, a sort-merge alternative, PNHL with
    memory-budget partitioning, and assembly for pointer dereferencing.

    Counters ticked (see {!Njq_adl.Counters}): ["scan_row"],
    ["filter_eval"], ["hash_build"], ["hash_probe"], ["nl_pair"],
    ["sm_cmp"], ["pnhl_partition"], ["pnhl_build"], ["pnhl_probe"], plus
    ["oid_lookup"] from catalog dereferencing. *)

open Njq_adl

exception Exec_error of string

(** Execute a plan, returning its rows (not canonicalized). *)
val rows : Catalog.t -> Plan.t -> Value.t list

(** Execute a plan, returning the result as a canonical set value. *)
val run : Catalog.t -> Plan.t -> Value.t
