(* Table statistics: per-attribute number of distinct values (NDV) and, for
   integer-like attributes, value bounds, computed by a full scan of each
   extent.  The cost model uses them to estimate equality selectivities
   instead of falling back to fixed constants. *)

open Njq_adl

type column_stats = {
  ndv : int; (* number of distinct values *)
  lo : int option; (* min, for int/date/oid-valued attributes *)
  hi : int option;
}

type t = {
  columns : (string * string, column_stats) Hashtbl.t;
      (* (table, attribute) -> stats *)
  cardinalities : (string, int) Hashtbl.t;
}

module VSet = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let int_of_value = function
  | Value.VInt n | Value.VDate n | Value.VOid n -> Some n
  | _ -> None

let analyze_table (t : t) name rows =
  Hashtbl.replace t.cardinalities name (List.length rows);
  match rows with
  | [] -> ()
  | first :: _ ->
    List.iter
      (fun attr ->
        let values = List.map (fun row -> Value.field row attr) rows in
        let distinct = VSet.of_list values in
        let ints = List.filter_map int_of_value values in
        let lo, hi =
          match ints with
          | [] -> (None, None)
          | x :: rest ->
            ( Some (List.fold_left min x rest),
              Some (List.fold_left max x rest) )
        in
        Hashtbl.replace t.columns (name, attr)
          { ndv = VSet.cardinal distinct; lo; hi })
      (Value.field_names first)

(* Scan every extent once and collect statistics. *)
let analyze (cat : Catalog.t) : t =
  let t = { columns = Hashtbl.create 64; cardinalities = Hashtbl.create 16 } in
  List.iter (fun name -> analyze_table t name (Catalog.rows cat name))
    (Catalog.table_names cat);
  t

let column t ~table ~attr = Hashtbl.find_opt t.columns (table, attr)

let ndv t ~table ~attr =
  Option.map (fun c -> c.ndv) (column t ~table ~attr)

let cardinality t table = Hashtbl.find_opt t.cardinalities table

(* Selectivity of an equality with a constant on the named column: 1/NDV
   when known. *)
let eq_selectivity t ~table ~attr =
  match ndv t ~table ~attr with
  | Some n when n > 0 -> Some (1.0 /. float_of_int n)
  | _ -> None

(* Join-key selectivity for an equi key between two columns: the textbook
   1 / max(NDV_left, NDV_right). *)
let join_selectivity t ~left_table ~left_attr ~right_table ~right_attr =
  match
    (ndv t ~table:left_table ~attr:left_attr,
     ndv t ~table:right_table ~attr:right_attr)
  with
  | Some a, Some b when a > 0 && b > 0 -> Some (1.0 /. float_of_int (max a b))
  | _ -> None

let pp ppf (t : t) =
  let entries =
    Hashtbl.fold (fun (tbl, attr) c acc -> ((tbl, attr), c) :: acc) t.columns []
    |> List.sort compare
  in
  List.iter
    (fun ((tbl, attr), c) ->
      Fmt.pf ppf "%s.%s: ndv=%d%a@." tbl attr c.ndv
        (fun ppf -> function
          | Some lo, Some hi -> Fmt.pf ppf " range=[%d,%d]" lo hi
          | _ -> ())
        (c.lo, c.hi))
    entries
