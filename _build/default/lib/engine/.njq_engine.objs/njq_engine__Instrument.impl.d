lib/engine/instrument.ml: Catalog Counters Exec Fmt List Njq_adl Plan Printf String Sys Value
