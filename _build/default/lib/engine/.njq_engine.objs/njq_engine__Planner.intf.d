lib/engine/planner.mli: Catalog Expr Njq_adl Plan Value
