lib/engine/exec.mli: Catalog Njq_adl Plan Value
