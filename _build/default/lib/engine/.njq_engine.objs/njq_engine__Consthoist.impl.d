lib/engine/consthoist.ml: Analysis Catalog Eval Expr Njq_adl
