lib/engine/cost.mli: Catalog Expr Njq_adl Plan Stats
