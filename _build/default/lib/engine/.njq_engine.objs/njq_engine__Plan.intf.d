lib/engine/plan.mli: Expr Format Njq_adl Value
