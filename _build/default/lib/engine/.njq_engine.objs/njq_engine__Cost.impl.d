lib/engine/cost.ml: Catalog Expr Float List Njq_adl Plan Stats String Value
