lib/engine/exec.ml: Array Catalog Counters Eval Expr Fmt Hashtbl List Njq_adl Plan Value
