lib/engine/stats.mli: Catalog Format Njq_adl
