lib/engine/stats.ml: Catalog Fmt Hashtbl List Njq_adl Option Set Value
