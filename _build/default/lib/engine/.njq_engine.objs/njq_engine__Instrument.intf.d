lib/engine/instrument.mli: Catalog Format Njq_adl Plan Value
