lib/engine/consthoist.mli: Catalog Expr Njq_adl
