lib/engine/planner.ml: Analysis Catalog Consthoist Cost Exec Expr Lazy List Njq_adl Option Plan Stats String
