lib/engine/plan.ml: Expr Fmt List Njq_adl Pretty Printf String Value
