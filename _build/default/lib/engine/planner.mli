(** Translation of (rewritten) ADL expressions into physical plans.

    Joins are planned by scanning predicate conjuncts for equi-key pairs
    f(x) = g(y) (hash when at least one exists, nested loop otherwise) and
    by detecting membership shapes over set-valued attributes, which become
    {!Plan.MemberJoin}.  Scalar and parameter-level expressions fall back
    to reference evaluation. *)

open Njq_adl

(** Split a join predicate into oriented equi-key pairs and the residual
    conjunction. *)
val extract_keys :
  string -> string -> Expr.t -> (Expr.t * Expr.t) list * Expr.t

(** Recognize a membership-style join predicate; returns
    (xset, element variable, element key, y key). *)
val member_shape :
  string -> string -> Expr.t -> (Expr.t * string * Expr.t * Expr.t) option

type algo_choice =
  | Auto  (** hash when equi keys exist, nested loop otherwise *)
  | Force of Plan.join_algo  (** the same algorithm everywhere (ablations) *)
  | Cost_based of Catalog.t
      (** pick the cheapest algorithm per join under the {!Cost} model and
          swap inner-join operands so the smaller side is the hash build
          side *)

(** Plan an expression.  [algo] forces a join algorithm everywhere (used by
    the benchmarks to compare algorithms on identical logical plans);
    forcing hash/sort-merge degrades to nested loop where no keys exist. *)
val plan : ?algo:algo_choice -> Expr.t -> Plan.t

(** Hoist uncorrelated subqueries ({!Consthoist}), plan, and execute. *)
val run : ?algo:algo_choice -> Catalog.t -> Expr.t -> Value.t
