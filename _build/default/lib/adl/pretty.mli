(** Paper-style pretty-printing of ADL expressions: map is α[x : e](src),
    selection σ[x : p](src), joins are infix with the predicate in
    brackets, unnest/nest are μ/ν.  Output is meant to be read next to the
    paper (see bin/paper_artifacts.ml). *)

val pp : Format.formatter -> Expr.t -> unit
val to_string : Expr.t -> string

(** Operator glyphs (shared with plan printing). *)

val cmp_symbol : Expr.cmp -> string
val setcmp_symbol : Expr.setcmp -> string
val arith_symbol : Expr.arith -> string
val agg_name : Expr.agg -> string
val quant_symbol : Expr.quant -> string
val join_symbol : Expr.join_kind -> string
