(** Type inference for ADL expressions against a catalog.

    Empty set literals get element type [TAny]; compatibility is
    {!Vtype.compat} ([TAny] unifies with anything, [TRef] with [TOid]). *)

type env = (string * Vtype.t) list

(** [infer cat env e] is the type of [e] with free-variable types from
    [env] and table types from [cat].  Raises [Vtype.Type_error] with a
    descriptive message on ill-typed expressions. *)
val infer : Catalog.t -> env -> Expr.t -> Vtype.t

(** Exception-free wrapper. *)
val infer_result : Catalog.t -> env -> Expr.t -> (Vtype.t, string) result

(** Typecheck a closed query expression. *)
val check_closed : Catalog.t -> Expr.t -> (Vtype.t, string) result
