(* Deterministic splitmix64 pseudo-random number generator.

   All workload generation and property tests derive their randomness from
   this module so that every experiment in the repository is reproducible
   from a seed, independently of the OCaml stdlib Random implementation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* One splitmix64 step: advance the state by the golden gamma and mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative int uniform over [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform over the inclusive range [lo, hi]. *)
let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

(* Bernoulli draw with probability [p] of returning true. *)
let chance t p = float t < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Rng.pick_array: empty array";
  xs.(int t (Array.length xs))

(* A fresh generator whose seed depends deterministically on [t] and [salt];
   used to give independent substreams to independent generation tasks. *)
let split t ~salt =
  let s = Int64.logxor (next_int64 t) (Int64.of_int (salt * 0x1f123bb5)) in
  { state = s }

(* Fisher-Yates shuffle, in place on a copy; returns the shuffled list. *)
let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* [sample t k xs] draws [k] distinct elements from [xs] (or all of them if
   [k] exceeds the length), preserving no particular order. *)
let sample t k xs =
  let shuffled = shuffle t xs in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k shuffled
