(** Named, process-global work counters.

    They compare tuple-oriented and set-oriented query processing
    independently of wall-clock noise: the reference evaluator counts
    parameter evaluations and tuple visits, the engine counts hash
    builds/probes, pair tests, sort comparisons, oid lookups and PNHL
    partitions.  Benchmarks bracket measured regions with {!reset} and read
    {!snapshot}. *)

val tick : ?n:int -> string -> unit
val get : string -> int
val reset : unit -> unit

(** All counters, sorted by name. *)
val snapshot : unit -> (string * int) list

(** Run with counting temporarily disabled. *)
val without_counting : (unit -> 'a) -> 'a

(** [measure f] runs [f] on fresh counters and returns its result with the
    final snapshot. *)
val measure : (unit -> 'a) -> 'a * (string * int) list

val pp_snapshot : Format.formatter -> (string * int) list -> unit
