(** Static reduction of P(x, ∅) — the paper's criterion (Section 5.2.2,
    Table 3) deciding whether unnesting by grouping through a flat
    relational join loses dangling outer tuples. *)

type outcome =
  | True
      (** every dangling tuple belongs in the result; a flat join drops
          them all *)
  | False  (** no dangling tuple qualifies; the flat join is correct *)
  | Runtime of Expr.t
      (** run-time dependent, with the residual predicate on the dangling
          tuple *)

(** [reduce ~subquery pred] substitutes the empty set for every structural
    occurrence of [subquery] in [pred] and constant-folds. *)
val reduce : subquery:Expr.t -> Expr.t -> outcome

(** The subquery occurs as the variable [yname]. *)
val reduce_var : yname:string -> Expr.t -> outcome

(** Prints [true], [false] or [?] — Table 3's third column. *)
val pp_outcome : Format.formatter -> outcome -> unit

(** Unnesting by grouping into a flat join is guaranteed correct only when
    P(x, ∅) reduces statically to [False]. *)
val grouping_join_is_safe : subquery:Expr.t -> Expr.t -> bool
