(* Named work counters used to compare tuple-oriented and set-oriented query
   processing independently of wall-clock noise.  The reference evaluator
   counts predicate evaluations and tuple visits; the physical engine counts
   hash builds/probes, oid lookups, partition spills, etc.

   Counters are process-global; benchmarks bracket measurements with [reset]
   and read a [snapshot] afterwards. *)

let table : (string, int ref) Hashtbl.t = Hashtbl.create 32

let enabled = ref true

let tick ?(n = 1) name =
  if !enabled then
    match Hashtbl.find_opt table name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add table name (ref n)

let get name =
  match Hashtbl.find_opt table name with Some r -> !r | None -> 0

let reset () = Hashtbl.reset table

(* All counters, sorted by name for stable output. *)
let snapshot () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Run [f] with counting temporarily disabled (e.g. when an oracle result is
   computed inside a measured region). *)
let without_counting f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f

(* Run [f ()] on fresh counters and return its result with the snapshot. *)
let measure f =
  reset ();
  let x = f () in
  (x, snapshot ())

let pp_snapshot ppf snap =
  Fmt.list ~sep:Fmt.sp (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v) ppf snap
