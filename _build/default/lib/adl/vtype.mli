(** Types of ADL complex objects: atomic types, object identity, typed
    class references, tuples and sets.  Tuple field lists are sorted by
    name, so type equality is structural. *)

type t =
  | TAny  (** wildcard: element type of an empty set literal *)
  | TBool
  | TInt
  | TFloat
  | TString
  | TDate
  | TOid
  | TRef of string  (** reference into the named class extent *)
  | TTuple of (string * t) list  (** invariant: sorted by field name *)
  | TSet of t

exception Type_error of string

(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Construction} *)

(** [tuple fields] sorts by name; raises on duplicates. *)
val tuple : (string * t) list -> t

val set : t -> t

(** {1 Comparison} *)

(** Strict structural equality ([TAny] equals only [TAny]). *)
val equal : t -> t -> bool

(** Compatibility with [TAny] as a wildcard and [TRef]/[TOid]
    interchangeable — the notion of "same type" used by the typechecker. *)
val compat : t -> t -> bool

(** Least upper bound of two {!compat} types, preferring the side that is
    not [TAny]. *)
val lub : t -> t -> t

(** Values comparable with the ordering operators. *)
val comparable : t -> t -> bool

(** {1 Shape queries} *)

val is_set : t -> bool
val is_tuple : t -> bool

(** Element type of a set type ([TAny] for [TAny]); raises otherwise. *)
val elem : t -> t

(** Fields of a tuple type; raises otherwise. *)
val fields : t -> (string * t) list

(** The paper's SCH function: top-level attribute names of a table type
    (a set-of-tuples type). *)
val sch : t -> string list

val field : t -> string -> t
val has_field : t -> string -> bool
val project : t -> string list -> t
val project_away : t -> string list -> t

(** Concatenation of tuple types; fields must be disjoint. *)
val concat : t -> t -> t

(** {1 Values and types} *)

(** Infer the type of a closed value.  Raises on NULL, empty sets and
    heterogeneous sets. *)
val of_value : Value.t -> t

(** [check_value ty v]: does [v] inhabit [ty]?  Accepts empty sets at any
    set type; [TRef _] accepts any oid. *)
val check_value : t -> Value.t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val show : t -> string
