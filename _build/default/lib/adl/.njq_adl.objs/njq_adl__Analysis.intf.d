lib/adl/analysis.mli: Expr Set
