lib/adl/pretty.ml: Expr Fmt List Printf String Value
