lib/adl/dsl.ml: Expr List Value
