lib/adl/emptyset.mli: Expr Format
