lib/adl/expr.mli: Value
