lib/adl/typecheck.mli: Catalog Expr Vtype
