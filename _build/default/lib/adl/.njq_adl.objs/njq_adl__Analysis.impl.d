lib/adl/analysis.ml: Expr List Set String
