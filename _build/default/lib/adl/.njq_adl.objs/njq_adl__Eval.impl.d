lib/adl/eval.ml: Catalog Counters Expr Float Fmt Hashtbl List Value
