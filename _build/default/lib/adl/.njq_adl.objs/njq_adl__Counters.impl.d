lib/adl/counters.ml: Fmt Fun Hashtbl List String
