lib/adl/serialize.mli: Catalog Value Vtype
