lib/adl/rng.ml: Array Int64 List
