lib/adl/counters.mli: Format
