lib/adl/catalog.mli: Hashtbl Value Vtype
