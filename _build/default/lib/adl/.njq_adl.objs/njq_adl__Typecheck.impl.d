lib/adl/typecheck.ml: Catalog Expr List String Value Vtype
