lib/adl/rng.mli:
