lib/adl/pretty.mli: Expr Format
