lib/adl/adlsyntax.mli: Expr
