lib/adl/vtype.ml: Fmt List String Value
