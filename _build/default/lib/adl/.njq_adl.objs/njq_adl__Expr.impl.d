lib/adl/expr.ml: List Printf Stdlib Value
