lib/adl/emptyset.ml: Analysis Expr Fmt Fold Value
