lib/adl/value.mli: Format
