lib/adl/adlsyntax.ml: Buffer Expr Fmt List Serialize String Value
