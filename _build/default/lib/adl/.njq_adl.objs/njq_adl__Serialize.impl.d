lib/adl/serialize.ml: Buffer Catalog Char Float Fmt In_channel List Out_channel Printf String Value Vtype
