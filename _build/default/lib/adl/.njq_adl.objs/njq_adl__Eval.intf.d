lib/adl/eval.mli: Catalog Expr Value
