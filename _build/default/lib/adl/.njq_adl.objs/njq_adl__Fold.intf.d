lib/adl/fold.mli: Expr
