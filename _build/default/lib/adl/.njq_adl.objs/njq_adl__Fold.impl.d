lib/adl/fold.ml: Eval Expr List String Value
