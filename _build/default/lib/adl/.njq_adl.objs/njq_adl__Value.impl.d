lib/adl/value.ml: Bool Float Fmt Int List String
