lib/adl/vtype.mli: Format Value
