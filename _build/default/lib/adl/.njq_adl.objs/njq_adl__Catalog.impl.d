lib/adl/catalog.ml: Counters Hashtbl List Printf String Value Vtype
