(* Types for ADL complex objects.

   The type language mirrors the value domain: atomic types, [TOid] for raw
   object identity, [TRef cls] for a typed reference to an object of class
   [cls] (implemented as an oid pointer, per the paper's logical design
   mapping), and the tuple and set constructors.  Tuple field lists are kept
   sorted by name so that type equality is structural equality. *)

type t =
  | TAny (* wildcard: the element type of an empty set literal *)
  | TBool
  | TInt
  | TFloat
  | TString
  | TDate
  | TOid
  | TRef of string (* reference to an object of the named class/extent *)
  | TTuple of (string * t) list
  | TSet of t

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let tuple fields =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then type_error "duplicate field %s in tuple type" a
      else check rest
    | _ -> ()
  in
  check sorted;
  TTuple sorted

let set t = TSet t

let rec equal a b =
  match a, b with
  | TAny, TAny -> true
  | TBool, TBool | TInt, TInt | TFloat, TFloat | TString, TString
  | TDate, TDate | TOid, TOid -> true
  | TRef c1, TRef c2 -> String.equal c1 c2
  | TTuple xs, TTuple ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal t1 t2) xs ys
  | TSet x, TSet y -> equal x y
  | ( TAny | TBool | TInt | TFloat | TString | TDate | TOid | TRef _
    | TTuple _ | TSet _ ), _ ->
    false

(* Structural compatibility treating [TAny] as a wildcard on either side;
   this is the notion of "same type" used by the typechecker, where [TAny]
   only ever arises from empty set literals. *)
let rec compat a b =
  match a, b with
  | TAny, _ | _, TAny -> true
  | TTuple xs, TTuple ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && compat t1 t2) xs ys
  | TSet x, TSet y -> compat x y
  | (TOid | TRef _), (TOid | TRef _) -> true
  | _ -> equal a b

(* Least upper bound of two compatible types: prefers the more informative
   side wherever the other is [TAny]. *)
let rec lub a b =
  match a, b with
  | TAny, t | t, TAny -> t
  | TSet x, TSet y -> TSet (lub x y)
  | TTuple xs, TTuple ys when List.length xs = List.length ys ->
    TTuple (List.map2 (fun (n, t1) (_, t2) -> (n, lub t1 t2)) xs ys)
  | _ -> a

(* References are oid-compatible: a TRef may be compared with a TOid. *)
let comparable a b =
  equal a b
  || (match a, b with
      | (TOid | TRef _), (TOid | TRef _) -> true
      | _ -> false)

let is_set = function TSet _ -> true | _ -> false
let is_tuple = function TTuple _ -> true | _ -> false

let elem = function
  | TSet t -> t
  | TAny -> TAny
  | _ -> type_error "element type of a non-set type"

let fields = function
  | TTuple fs -> fs
  | _ -> type_error "fields of non-tuple type"

(* The paper's SCH function: top-level attribute names of a table type. *)
let sch = function
  | TSet (TTuple fs) -> List.map fst fs
  | _ -> type_error "SCH applied to a non-table type"

let field ty a =
  match ty with
  | TTuple fs ->
    (match List.assoc_opt a fs with
     | Some t -> t
     | None -> type_error "type has no field %s" a)
  | _ -> type_error "field %s of non-tuple type" a

let has_field ty a =
  match ty with TTuple fs -> List.mem_assoc a fs | _ -> false

let project ty attrs =
  match ty with
  | TTuple fs ->
    tuple
      (List.map
         (fun a ->
           match List.assoc_opt a fs with
           | Some t -> (a, t)
           | None -> type_error "projection type: missing field %s" a)
         attrs)
  | _ -> type_error "tuple projection on non-tuple type"

let project_away ty attrs =
  match ty with
  | TTuple fs -> tuple (List.filter (fun (a, _) -> not (List.mem a attrs)) fs)
  | _ -> type_error "tuple projection on non-tuple type"

(* Concatenation of tuple types (for products and joins). *)
let concat a b =
  match a, b with
  | TTuple fa, TTuple fb ->
    List.iter
      (fun (n, _) ->
        if List.mem_assoc n fa then type_error "type concat: duplicate field %s" n)
      fb;
    tuple (fa @ fb)
  | _ -> type_error "type concat on non-tuple types"

let rec pp ppf = function
  | TAny -> Fmt.string ppf "_"
  | TBool -> Fmt.string ppf "bool"
  | TInt -> Fmt.string ppf "int"
  | TFloat -> Fmt.string ppf "float"
  | TString -> Fmt.string ppf "string"
  | TDate -> Fmt.string ppf "date"
  | TOid -> Fmt.string ppf "oid"
  | TRef c -> Fmt.pf ppf "ref %s" c
  | TTuple fs ->
    Fmt.pf ppf "(@[%a@])"
      (Fmt.list ~sep:Fmt.comma (fun ppf (n, t) -> Fmt.pf ppf "%s : %a" n pp t))
      fs
  | TSet t -> Fmt.pf ppf "{ %a }" pp t

let show t = Fmt.str "%a" pp t

(* [of_value v] infers the type of a closed value.  Sets of mixed element
   types and NULL are rejected: they have no type in the model. *)
let rec of_value (v : Value.t) : t =
  match v with
  | Value.VNull -> type_error "NULL has no type"
  | Value.VBool _ -> TBool
  | Value.VInt _ -> TInt
  | Value.VFloat _ -> TFloat
  | Value.VString _ -> TString
  | Value.VDate _ -> TDate
  | Value.VOid _ -> TOid
  | Value.VTuple fs -> tuple (List.map (fun (n, x) -> (n, of_value x)) fs)
  | Value.VSet [] -> type_error "empty set has no inferable element type"
  | Value.VSet (x :: rest) ->
    let t = of_value x in
    List.iter
      (fun y -> if not (equal t (of_value y)) then type_error "heterogeneous set")
      rest;
    TSet t

(* [check_value ty v] verifies that closed value [v] inhabits [ty]; unlike
   [of_value] it accepts empty sets (at any set type) and treats references
   as oids. *)
let rec check_value ty (v : Value.t) : bool =
  match ty, v with
  | TAny, _ -> true
  | TBool, Value.VBool _ -> true
  | TInt, Value.VInt _ -> true
  | TFloat, Value.VFloat _ -> true
  | TString, Value.VString _ -> true
  | TDate, Value.VDate _ -> true
  | (TOid | TRef _), Value.VOid _ -> true
  | TTuple fs, Value.VTuple vs ->
    List.length fs = List.length vs
    && List.for_all2
         (fun (n, t) (m, x) -> String.equal n m && check_value t x)
         fs vs
  | TSet t, Value.VSet xs -> List.for_all (check_value t) xs
  | _ -> false
