(** Serialization of values, types and whole catalogs to an unambiguous
    textual format, so generated databases can be saved, inspected and
    reloaded.

    Value syntax: [null], [true]/[false], [42], [42.5] (floats always carry
    ['.'] or an exponent), ["escaped string"], [#42] (oid), [d19940101]
    (date), [(a = v, ...)], [{v, ...}].  Type syntax: [bool], [int],
    [float], [string], [date], [oid], [ref Name], [_], [(a : t, ...)],
    [{t}].  Catalog files are line-oriented: a [nextoid N] header, then per
    table a [table NAME : TYPE] header followed by one [= VALUE] row per
    line. *)

exception Parse_error of string

val value_to_string : Value.t -> string

(** Raises {!Parse_error} on malformed input. *)
val value_of_string : string -> Value.t

(** Read one value from the front of the string, returning it and the
    number of characters consumed (for embedding value literals in other
    syntaxes). *)
val read_value_prefix : string -> Value.t * int

val type_to_string : Vtype.t -> string
val type_of_string : string -> Vtype.t

(** Lossless JSON rendering: tuples become objects, sets arrays, oids and
    dates tagged objects ([{"$oid": n}], [{"$date": d}]). *)
val value_to_json : Value.t -> string

(** CSV rendering of a set of tuples: header from the first row's sorted
    field names, nested values rendered in the value syntax.  Empty string
    for the empty set. *)
val rows_to_csv : Value.t -> string

(** Serialize every table (name, row type, rows) and the oid counter. *)
val save_catalog : Catalog.t -> string

(** Rebuild a catalog from {!save_catalog} output. *)
val load_catalog : string -> Catalog.t

val save_catalog_file : Catalog.t -> string -> unit
val load_catalog_file : string -> Catalog.t
