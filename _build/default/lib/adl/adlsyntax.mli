(** A textual (ASCII) syntax for ADL expressions: a writer and a parser
    that round-trip ([of_string (to_string e) = e]).

    Syntax summary: [@NAME] base table, [select\[x : p\](e)],
    [map\[x : b\](e)], [project\[a,b\](e)], [join\[x,y : p\](l, r)] (and
    [semijoin]/[antijoin]/[outerjoin\[pad a,b; ...\]]),
    [nestjoin\[x,y : p ; attr g ; body e\](l, r)], [unnest\[a\](e)],
    [nest\[a,b -> g\](e)], [deref\[NAME\](e)], [flatten]/[union]/[inter]/
    [diff]/[product]/[divide] calls, aggregates, [exists/forall x in e : p],
    OOSQL-style comparison and set-comparison keywords, and [Serialize]
    value literals. *)

exception Parse_error of string

(** Canonicalize literal ambiguity: a [SetLit]/[Tuple] node whose parts are
    all constants becomes the corresponding [Const] (the syntax cannot
    distinguish the two).  Round-tripping satisfies
    [of_string (to_string e) = canon e]. *)
val canon : Expr.t -> Expr.t

val to_string : Expr.t -> string

(** Raises {!Parse_error} on malformed input.  Output is canonical
    ({!canon}). *)
val of_string : string -> Expr.t
