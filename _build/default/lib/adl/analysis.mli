(** Static analysis over ADL expressions: free variables, capture-avoiding
    substitution, base-table usage and structural search — the building
    blocks of every rewrite rule. *)

module S : Set.S with type elt = string

(** Free variables, respecting the binding structure of iterators. *)
val free_vars : Expr.t -> S.t

val is_free : string -> Expr.t -> bool

(** No free variables: the expression denotes a constant (an uncorrelated
    subquery, treated as such per Section 3). *)
val is_closed : Expr.t -> bool

(** Does the expression mention a base table anywhere, including inside
    iterator parameters?  [Deref] does not count: pointer lookup is not
    base-table iteration (the paper treats it with materialize). *)
val uses_base_table : Expr.t -> bool

(** Names of all base tables mentioned. *)
val base_tables : Expr.t -> S.t

(** Is this an operand that iterates stored extents (a base table possibly
    under selections/maps/projections/joins), as opposed to a set-valued
    attribute? *)
val is_base_table_expr : Expr.t -> bool

(** Capture-avoiding parallel substitution of free variables. *)
val subst : (string * Expr.t) list -> Expr.t -> Expr.t

(** [subst1 x r e] replaces the single free variable [x] by [r]. *)
val subst1 : string -> Expr.t -> Expr.t -> Expr.t

(** Structural replacement of a sub-expression (used to substitute z.g for
    a subquery occurrence in the grouping/nestjoin rewrites).  The caller
    guarantees no binder in [e] captures variables of [old_e]. *)
val replace_subexpr : old_e:Expr.t -> by:Expr.t -> Expr.t -> Expr.t

(** Number of structural occurrences of [needle]. *)
val count_subexpr : needle:Expr.t -> Expr.t -> int

(** AST node count. *)
val size : Expr.t -> int

(** All sub-expressions satisfying the predicate, outermost first. *)
val find_all : (Expr.t -> bool) -> Expr.t -> Expr.t list
