(** Deterministic splitmix64 pseudo-random number generator.

    All workload generation derives randomness from this module, so every
    experiment is reproducible from a seed independent of the OCaml stdlib
    [Random] implementation. *)

type t

val create : int -> t
val copy : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Uniform over [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** Uniform over the inclusive range. *)
val int_in_range : t -> lo:int -> hi:int -> int

val bool : t -> bool

(** Uniform over [0, 1). *)
val float : t -> float

(** Bernoulli draw with probability [p]. *)
val chance : t -> float -> bool

val pick : t -> 'a list -> 'a
val pick_array : t -> 'a array -> 'a

(** Independent substream derived from the state and a salt. *)
val split : t -> salt:int -> t

(** Fisher–Yates shuffle. *)
val shuffle : t -> 'a list -> 'a list

(** [sample t k xs]: [k] distinct elements of [xs] (all of them if [k]
    exceeds the length). *)
val sample : t -> int -> 'a list -> 'a list
