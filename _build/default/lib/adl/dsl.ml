(* Terse combinators for building ADL expressions in tests, example programs
   and the workload query library.  Purely syntactic sugar over [Expr]. *)

open Expr

let var x = Var x
let table t = Table t
let int n = Const (Value.int n)
let str s = Const (Value.string s)
let bool b = Const (Value.bool b)
let date d = Const (Value.date d)
let oid n = Const (Value.oid n)
let const v = Const v
let empty = Const Value.empty_set
let tuple fields = Tuple fields
let set_lit xs = SetLit xs

(* e.a and e.a.b.c *)
let ( $. ) e a = Field (e, a)
let path e attrs = List.fold_left (fun acc a -> Field (acc, a)) e attrs

let proj e attrs = TupleProj (e, attrs)
let except e updates = Except (e, updates)
let ( ^^ ) a b = Concat (a, b)

let eq a b = Cmp (Eq, a, b)
let neq a b = Cmp (Neq, a, b)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)

let mem x s = SetCmp (Mem, x, s)
let not_mem x s = SetCmp (NotMem, x, s)
let subseteq a b = SetCmp (SubsetEq, a, b)
let subset a b = SetCmp (Subset, a, b)
let supseteq a b = SetCmp (SupsetEq, a, b)
let supset a b = SetCmp (Supset, a, b)
let set_eq a b = SetCmp (SetEq, a, b)
let set_neq a b = SetCmp (SetNeq, a, b)
let ni s x = SetCmp (Ni, s, x)

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let not_ a = Not a
let if_ c a b = If (c, a, b)

let add a b = Arith (Add, a, b)
let sub a b = Arith (Sub, a, b)
let mul a b = Arith (Mul, a, b)

let exists x range pred = Quant (Exists, x, range, pred)
let forall x range pred = Quant (Forall, x, range, pred)

let map_ var src body = Map { var; body; src }
let select var src pred = Select { var; pred; src }
let project attrs src = Project (attrs, src)
let flatten e = Flatten e
let union a b = Union (a, b)
let inter a b = Inter (a, b)
let diff a b = Diff (a, b)
let product a b = Product (a, b)

let join ?(x = "x") ?(y = "y") pred left right =
  Join { kind = Inner; xvar = x; yvar = y; pred; left; right }

let semijoin ?(x = "x") ?(y = "y") pred left right =
  Join { kind = Semi; xvar = x; yvar = y; pred; left; right }

let antijoin ?(x = "x") ?(y = "y") pred left right =
  Join { kind = Anti; xvar = x; yvar = y; pred; left; right }

let outerjoin ?(x = "x") ?(y = "y") ~pad pred left right =
  Join { kind = LeftOuter pad; xvar = x; yvar = y; pred; left; right }

let nestjoin ?(x = "x") ?(y = "y") ?body ~attr pred left right =
  let body = match body with Some b -> b | None -> Var y in
  Nestjoin { xvar = x; yvar = y; pred; body; attr; left; right }

let unnest a e = Unnest (a, e)
let nest ~attrs ~into e = Nest { attrs; into; src = e }
let divide a b = Divide (a, b)

let count e = Agg (Count, e)
let sum e = Agg (Sum, e)
let min_ e = Agg (Min, e)
let max_ e = Agg (Max, e)
let avg e = Agg (Avg, e)

let deref cls e = Deref (cls, e)

(* Row helpers for building test tables. *)
let row fields = Value.tuple fields
let vint = Value.int
let vstr = Value.string
let vset = Value.set
let voidv n = Value.oid n
