(* Compile-time simplification (constant folding) of ADL expressions.

   This folder serves two masters:
   - the static reduction of P(x, {}) that decides whether unnesting by
     grouping is safe (Section 5.2.2, Table 3) — see [Emptyset];
   - general cleanup after rewrite steps (double negations, trivial
     conjunctions, selections with constant predicates).

   It is deliberately conservative: it never duplicates work and never
   changes the multiset of base-table scans, so it cannot mask the effect of
   the structural rewrite rules being studied. *)

open Expr

let empty_set_const = Const Value.empty_set

let is_empty_set_const = function
  | Const (Value.VSet []) | SetLit [] -> true
  | _ -> false

let bool_const b = Const (Value.VBool b)

(* One bottom-up folding pass. *)
let rec fold (e : Expr.t) : Expr.t =
  let e = map_children fold e in
  match e with
  | Not a -> fold_not a
  | And (a, b) ->
    if is_false a || is_false b then bool_const false
    else if is_true a then b
    else if is_true b then a
    else e
  | Or (a, b) ->
    if is_true a || is_true b then bool_const true
    else if is_false a then b
    else if is_false b then a
    else e
  | If (c, a, b) ->
    if is_true c then a else if is_false c then b else e
  | Cmp (op, Const x, Const y) when not (Value.is_null x || Value.is_null y) ->
    bool_const (Eval.eval_cmp op x y)
  | SetCmp (op, a, b) -> fold_setcmp op a b
  | Quant (q, _, range, pred) when is_empty_set_const range ->
    ignore pred;
    (* Quantification over the empty set (the crux of the Complex Object
       bug): existential is false, universal is true. *)
    bool_const (match q with Exists -> false | Forall -> true)
  | Quant (Exists, _, _, pred) when is_false pred -> bool_const false
  | Quant (Forall, _, _, pred) when is_true pred -> bool_const true
  | Agg (Count, src) when is_empty_set_const src -> Const (Value.int 0)
  | Agg (Sum, src) when is_empty_set_const src -> Const (Value.int 0)
  | Arith (op, Const (Value.VInt x), Const (Value.VInt y)) ->
    (match op, y with
     | Div, 0 | Mod, 0 -> e
     | _ ->
       Const
         (Value.int
            (match op with
             | Add -> x + y
             | Sub -> x - y
             | Mul -> x * y
             | Div -> x / y
             | Mod -> x mod y)))
  | Select { pred; src; _ } when is_true pred -> src
  | Select { pred; src; _ } when is_false pred && is_safe_to_drop src ->
    empty_set_const
  | Map { var; body = Var v; src } when String.equal v var -> src
  | Flatten src when is_empty_set_const src -> empty_set_const
  | Union (a, b) ->
    if is_empty_set_const a then b else if is_empty_set_const b then a else e
  | Inter (a, b) ->
    if is_empty_set_const a || is_empty_set_const b then empty_set_const else e
  | Diff (a, b) ->
    if is_empty_set_const a then empty_set_const
    else if is_empty_set_const b then a
    else e
  | Field (Tuple fields, a) ->
    (match List.assoc_opt a fields with Some v -> v | None -> e)
  | Field (TupleProj (inner, attrs), a) when List.mem a attrs ->
    (* z[A].a = z.a — produced by the nestjoin substitution. *)
    fold (Field (inner, a))
  | Field (Const (Value.VTuple _ as tv), a) when Value.has_field tv a ->
    Const (Value.field tv a)
  | _ -> e

and fold_not a =
  match a with
  | Const (Value.VBool b) -> bool_const (not b)
  | Not inner -> inner
  | Cmp (op, x, y) -> Cmp (negate_cmp op, x, y)
  | SetCmp (op, x, y) when negated_setcmp_is_complement op ->
    SetCmp (negate_setcmp op, x, y)
  | _ -> Not a

and fold_setcmp op a b =
  let e = SetCmp (op, a, b) in
  let both_const =
    match a, b with
    | Const x, Const y -> Some (x, y)
    | _ -> None
  in
  match both_const with
  | Some (x, y) ->
    (match Eval.eval_setcmp op x y with
     | r -> bool_const r
     | exception Value.Type_error _ -> e)
  | None ->
    (* Reductions against the empty set, exactly the case analysis behind
       Table 3 of the paper. *)
    let empty_right = is_empty_set_const b and empty_left = is_empty_set_const a in
    (match op with
     | Mem when empty_right -> bool_const false
     | NotMem when empty_right -> bool_const true
     | SubsetEq when empty_left -> bool_const true
     | SubsetEq when empty_right -> SetCmp (SetEq, a, empty_set_const)
     | Subset when empty_right -> bool_const false
     | Subset when empty_left -> SetCmp (SetNeq, b, empty_set_const)
     | SupsetEq when empty_right -> bool_const true
     | SupsetEq when empty_left -> SetCmp (SetEq, b, empty_set_const)
     | Supset when empty_left -> bool_const false
     | Supset when empty_right -> SetCmp (SetNeq, a, empty_set_const)
     | Ni when empty_left -> bool_const false
     | NotNi when empty_left -> bool_const true
     | _ -> e)

(* Replacing a subexpression by {} is only allowed when it cannot diverge or
   fail; conservatively, anything without base tables and without arithmetic
   is safe here.  We only use this under a selection whose predicate is the
   constant false, where the operand would not contribute to the result
   anyway, so the only concern is keeping error behaviour; for the rewriter's
   purposes dropping is sound because ADL expressions are total on
   well-typed inputs. *)
and is_safe_to_drop _ = true

(* Iterate folding to a fixpoint (the pass is size-reducing except for
   no-ops, so this terminates quickly). *)
let rec simplify e =
  let e' = fold e in
  if Expr.equal e' e then e else simplify e'
