(** Compile-time simplification (constant folding) of ADL expressions.

    Serves the static reduction of P(x, ∅) behind Table 3 (see
    {!Emptyset}) and general cleanup after rewrite steps (double negations,
    trivial conjunctions, selections with constant predicates).
    Deliberately conservative: never duplicates work, never changes the
    multiset of base-table scans, and leaves division-by-zero in place. *)

(** The empty-set constant used when reducing P(x, ∅). *)
val empty_set_const : Expr.t

val is_empty_set_const : Expr.t -> bool

(** One bottom-up folding pass. *)
val fold : Expr.t -> Expr.t

(** Iterate {!fold} to a fixpoint. *)
val simplify : Expr.t -> Expr.t
