(* Static reduction of P(x, {}) — the paper's criterion (Section 5.2.2,
   Table 3) for deciding whether unnesting by grouping loses dangling outer
   tuples.

   Given the predicate P between query blocks and the name under which the
   subquery result Y' occurs in it, [reduce] substitutes the empty set for
   Y' and constant-folds.  Three outcomes:

   - [True]: every dangling outer tuple must be included — a flat join query
     silently drops them all, so grouping unnesting is incorrect;
   - [False]: no dangling tuple belongs in the result — the flat join query
     is correct (this is the only case in which [Grouping] may use the
     relational join);
   - [Runtime e]: whether a dangling tuple x qualifies depends on x itself
     (e.g. x.c 'subseteq' {} holds iff x.c = {}), so a flat join is again
     incorrect and the nestjoin (or outer join) must be used. *)

type outcome =
  | True
  | False
  | Runtime of Expr.t (* the residual predicate on the dangling tuple *)

(* [reduce ~subquery pred] replaces every structural occurrence of
   [subquery] in [pred] by the empty set and folds. *)
let reduce ~subquery pred =
  let substituted =
    Analysis.replace_subexpr ~old_e:subquery ~by:Fold.empty_set_const pred
  in
  match Fold.simplify substituted with
  | Expr.Const (Value.VBool true) -> True
  | Expr.Const (Value.VBool false) -> False
  | residual -> Runtime residual

(* Convenience: the subquery occurs as the variable [yname]. *)
let reduce_var ~yname pred = reduce ~subquery:(Expr.Var yname) pred

let pp_outcome ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Runtime _ -> Fmt.string ppf "?"

(* Unnesting by grouping into a flat relational join is only guaranteed to
   deliver correct results when P(x, {}) reduces statically to false. *)
let grouping_join_is_safe ~subquery pred =
  match reduce ~subquery pred with False -> true | True | Runtime _ -> false
