(* Serialization of values, types and whole catalogs to an unambiguous
   textual format, so that generated databases can be saved and reloaded
   (e.g. to share a workload between runs or inspect extents by hand).

   Value syntax:
     null | true | false | 42 | 42.5 (floats always carry '.' or 'e')
     | "string with \" and \\ escapes" | #42 (oid) | d19940101 (date)
     | (a = v, b = v) | {v, v}

   Type syntax:
     bool | int | float | string | date | oid | ref Name | _ (wildcard)
     | (a : t, b : t) | {t}

   Catalog syntax (line-oriented):
     nextoid N
     table NAME : TYPE
     = VALUE        (one row per line; strings escape newlines)
*)

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

let rec write_value buf (v : Value.t) =
  match v with
  | Value.VNull -> Buffer.add_string buf "null"
  | Value.VBool b -> Buffer.add_string buf (if b then "true" else "false")
  | Value.VInt n -> Buffer.add_string buf (string_of_int n)
  | Value.VFloat f ->
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf
      (if String.contains s '.' || String.contains s 'e'
          || String.contains s 'n' (* nan, inf *)
       then s
       else s ^ ".")
  | Value.VString s ->
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | Value.VDate d ->
    Buffer.add_char buf 'd';
    Buffer.add_string buf (string_of_int d)
  | Value.VOid n ->
    Buffer.add_char buf '#';
    Buffer.add_string buf (string_of_int n)
  | Value.VTuple fields ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i (name, fv) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf name;
        Buffer.add_string buf " = ";
        write_value buf fv)
      fields;
    Buffer.add_char buf ')'
  | Value.VSet elems ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_string buf ", ";
        write_value buf ev)
      elems;
    Buffer.add_char buf '}'

let value_to_string v =
  let buf = Buffer.create 64 in
  write_value buf v;
  Buffer.contents buf

let rec write_type buf (t : Vtype.t) =
  match t with
  | Vtype.TAny -> Buffer.add_char buf '_'
  | Vtype.TBool -> Buffer.add_string buf "bool"
  | Vtype.TInt -> Buffer.add_string buf "int"
  | Vtype.TFloat -> Buffer.add_string buf "float"
  | Vtype.TString -> Buffer.add_string buf "string"
  | Vtype.TDate -> Buffer.add_string buf "date"
  | Vtype.TOid -> Buffer.add_string buf "oid"
  | Vtype.TRef cls ->
    Buffer.add_string buf "ref ";
    Buffer.add_string buf cls
  | Vtype.TTuple fields ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i (name, ft) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf name;
        Buffer.add_string buf " : ";
        write_type buf ft)
      fields;
    Buffer.add_char buf ')'
  | Vtype.TSet t ->
    Buffer.add_char buf '{';
    write_type buf t;
    Buffer.add_char buf '}'

let type_to_string t =
  let buf = Buffer.create 32 in
  write_type buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Readers: a tiny character-level recursive-descent parser             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable i : int }

let peek c = if c.i < String.length c.src then Some c.src.[c.i] else None

let advance c = c.i <- c.i + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C, found %C at offset %d" ch x c.i
  | None -> fail "expected %C, found end of input" ch

let is_digit ch = ch >= '0' && ch <= '9'
let is_ident_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || is_digit ch || ch = '_'

let read_ident c =
  skip_ws c;
  let start = c.i in
  let rec go () =
    match peek c with
    | Some ch when is_ident_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  if c.i = start then fail "expected an identifier at offset %d" c.i;
  String.sub c.src start (c.i - start)

let read_int c =
  skip_ws c;
  let start = c.i in
  (match peek c with Some '-' -> advance c | _ -> ());
  let rec go () =
    match peek c with
    | Some ch when is_digit ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  if c.i = start then fail "expected a number at offset %d" c.i;
  int_of_string (String.sub c.src start (c.i - start))

let read_string_lit c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some ch -> Buffer.add_char buf ch
       | None -> fail "unterminated escape");
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let rec read_value c : Value.t =
  skip_ws c;
  match peek c with
  | None -> fail "expected a value, found end of input"
  | Some '"' -> Value.string (read_string_lit c)
  | Some '#' ->
    advance c;
    Value.oid (read_int c)
  | Some 'd' when c.i + 1 < String.length c.src && is_digit c.src.[c.i + 1] ->
    advance c;
    Value.date (read_int c)
  | Some '(' ->
    advance c;
    skip_ws c;
    if peek c = Some ')' then (advance c; Value.tuple [])
    else begin
      let rec fields acc =
        let name = read_ident c in
        skip_ws c;
        expect c '=';
        let v = read_value c in
        let acc = (name, v) :: acc in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields acc
        | Some ')' ->
          advance c;
          List.rev acc
        | _ -> fail "expected ',' or ')' in tuple at offset %d" c.i
      in
      Value.tuple (fields [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then (advance c; Value.empty_set)
    else begin
      let rec elems acc =
        let v = read_value c in
        let acc = v :: acc in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems acc
        | Some '}' ->
          advance c;
          List.rev acc
        | _ -> fail "expected ',' or '}' in set at offset %d" c.i
      in
      Value.set (elems [])
    end
  | Some ch when is_digit ch || ch = '-' ->
    (* number: float iff it carries '.' or an exponent *)
    let start = c.i in
    (match peek c with Some '-' -> advance c | _ -> ());
    let rec digits () =
      match peek c with
      | Some ch when is_digit ch ->
        advance c;
        digits ()
      | _ -> ()
    in
    digits ();
    let is_float = ref false in
    (match peek c with
     | Some '.' ->
       is_float := true;
       advance c;
       digits ()
     | _ -> ());
    (match peek c with
     | Some ('e' | 'E') ->
       is_float := true;
       advance c;
       (match peek c with Some ('+' | '-') -> advance c | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub c.src start (c.i - start) in
    if !is_float then Value.float (float_of_string text)
    else Value.int (int_of_string text)
  | Some _ ->
    (match read_ident c with
     | "null" -> Value.VNull
     | "true" -> Value.bool true
     | "false" -> Value.bool false
     | "nan" -> Value.float Float.nan
     | "inf" -> Value.float Float.infinity
     | word -> fail "unexpected word %S in value" word)

let value_of_string s =
  let c = { src = s; i = 0 } in
  let v = read_value c in
  skip_ws c;
  if c.i < String.length s then fail "trailing input after value at offset %d" c.i;
  v

(* Partial reads, for embedding value literals in other syntaxes (the ADL
   textual syntax delegates its literals here). *)
let read_value_prefix (s : string) : Value.t * int =
  let c = { src = s; i = 0 } in
  let v = read_value c in
  (v, c.i)

let rec read_type c : Vtype.t =
  skip_ws c;
  match peek c with
  | Some '_' ->
    advance c;
    Vtype.TAny
  | Some '(' ->
    advance c;
    skip_ws c;
    if peek c = Some ')' then (advance c; Vtype.tuple [])
    else begin
      let rec fields acc =
        let name = read_ident c in
        skip_ws c;
        expect c ':';
        let t = read_type c in
        let acc = (name, t) :: acc in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields acc
        | Some ')' ->
          advance c;
          List.rev acc
        | _ -> fail "expected ',' or ')' in tuple type at offset %d" c.i
      in
      Vtype.tuple (fields [])
    end
  | Some '{' ->
    advance c;
    let t = read_type c in
    skip_ws c;
    expect c '}';
    Vtype.TSet t
  | _ ->
    (match read_ident c with
     | "bool" -> Vtype.TBool
     | "int" -> Vtype.TInt
     | "float" -> Vtype.TFloat
     | "string" -> Vtype.TString
     | "date" -> Vtype.TDate
     | "oid" -> Vtype.TOid
     | "ref" -> Vtype.TRef (read_ident c)
     | word -> fail "unknown type %S" word)

let type_of_string s =
  let c = { src = s; i = 0 } in
  let t = read_type c in
  skip_ws c;
  if c.i < String.length s then fail "trailing input after type at offset %d" c.i;
  t

(* ------------------------------------------------------------------ *)
(* Catalogs                                                            *)
(* ------------------------------------------------------------------ *)

let save_catalog (cat : Catalog.t) : string =
  let buf = Buffer.create 4096 in
  (* Reserve the next oid by allocating one; keeps loaded catalogs from
     reusing identifiers. *)
  let probe = Catalog.fresh_oid cat in
  Buffer.add_string buf (Printf.sprintf "nextoid %d\n" probe);
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "table %s : %s\n" name
           (type_to_string (Catalog.row_type cat name)));
      List.iter
        (fun row ->
          Buffer.add_string buf "= ";
          write_value buf row;
          Buffer.add_char buf '\n')
        (Catalog.rows cat name))
    (Catalog.table_names cat);
  Buffer.contents buf

let load_catalog (text : string) : Catalog.t =
  let cat = Catalog.create () in
  let lines = String.split_on_char '\n' text in
  let current = ref None in
  let flush_rows name rows = Catalog.set_rows cat name (List.rev rows) in
  let next_oid = ref 1 in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if String.length line = 0 then ()
      else if String.length line > 8 && String.sub line 0 8 = "nextoid " then
        next_oid := int_of_string (String.trim (String.sub line 8 (String.length line - 8)))
      else if String.length line > 6 && String.sub line 0 6 = "table " then begin
        (match !current with
         | Some (name, rows) -> flush_rows name rows
         | None -> ());
        let rest = String.sub line 6 (String.length line - 6) in
        match String.index_opt rest ':' with
        | None -> fail "line %d: missing ':' in table header" (lineno + 1)
        | Some colon ->
          let name = String.trim (String.sub rest 0 colon) in
          let ty =
            type_of_string
              (String.trim (String.sub rest (colon + 1) (String.length rest - colon - 1)))
          in
          Catalog.add_table cat ~name ~row_type:ty [];
          current := Some (name, [])
      end
      else if line.[0] = '=' then begin
        match !current with
        | None -> fail "line %d: row outside any table" (lineno + 1)
        | Some (name, rows) ->
          let v = value_of_string (String.sub line 1 (String.length line - 1)) in
          current := Some (name, v :: rows)
      end
      else fail "line %d: unrecognized line %S" (lineno + 1) line)
    lines;
  (match !current with
   | Some (name, rows) -> flush_rows name rows
   | None -> ());
  Catalog.ensure_oid_above cat !next_oid;
  cat

(* ------------------------------------------------------------------ *)
(* Export formats                                                      *)
(* ------------------------------------------------------------------ *)

(* JSON rendering: tuples become objects, sets arrays; oids and dates are
   tagged objects so the representation stays lossless. *)
let rec write_json buf (v : Value.t) =
  match v with
  | Value.VNull -> Buffer.add_string buf "null"
  | Value.VBool b -> Buffer.add_string buf (if b then "true" else "false")
  | Value.VInt n -> Buffer.add_string buf (string_of_int n)
  | Value.VFloat f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | Value.VString s ->
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
        | ch -> Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"'
  | Value.VDate d -> Buffer.add_string buf (Printf.sprintf "{\"$date\": %d}" d)
  | Value.VOid n -> Buffer.add_string buf (Printf.sprintf "{\"$oid\": %d}" n)
  | Value.VTuple fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, fv) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%S: " name);
        write_json buf fv)
      fields;
    Buffer.add_char buf '}'
  | Value.VSet elems ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_string buf ", ";
        write_json buf ev)
      elems;
    Buffer.add_char buf ']'

let value_to_json v =
  let buf = Buffer.create 64 in
  write_json buf v;
  Buffer.contents buf

(* CSV rendering of a set of tuples: a header line from the first row's
   (sorted) field names, then one line per row.  Nested values are rendered
   in the value syntax inside the cell; cells are quoted when needed. *)
let rows_to_csv (v : Value.t) : string =
  let rows = Value.as_set v in
  match rows with
  | [] -> ""
  | first :: _ ->
    let headers = Value.field_names first in
    let buf = Buffer.create 256 in
    let cell s =
      if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') s then begin
        Buffer.add_char buf '"';
        String.iter
          (fun ch ->
            if ch = '"' then Buffer.add_string buf "\"\""
            else Buffer.add_char buf ch)
          s;
        Buffer.add_char buf '"'
      end
      else Buffer.add_string buf s
    in
    List.iteri
      (fun i h ->
        if i > 0 then Buffer.add_char buf ',';
        cell h)
      headers;
    Buffer.add_char buf '\n';
    List.iter
      (fun row ->
        List.iteri
          (fun i h ->
            if i > 0 then Buffer.add_char buf ',';
            let field = Value.field row h in
            let text =
              match field with
              | Value.VString s -> s
              | Value.VInt n -> string_of_int n
              | Value.VBool b -> string_of_bool b
              | other -> value_to_string other
            in
            cell text)
          headers;
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf

let save_catalog_file cat path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (save_catalog cat))

let load_catalog_file path =
  load_catalog (In_channel.with_open_text path In_channel.input_all)
