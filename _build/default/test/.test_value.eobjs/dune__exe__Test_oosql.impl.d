test/test_oosql.ml: Alcotest Array Ast Catalog Expr Lexer List Njq_adl Njq_oosql Njq_workload Parser Pretty Schema Sqlpretty Translate Typecheck Util Value Vtype
