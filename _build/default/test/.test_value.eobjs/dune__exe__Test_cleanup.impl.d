test/test_cleanup.ml: Alcotest Dsl Eval Expr Njq_adl Njq_core Pretty Util Value
