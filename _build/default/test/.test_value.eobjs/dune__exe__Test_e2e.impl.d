test/test_e2e.ml: Alcotest Counters Eval List Njq_adl Njq_core Njq_engine Njq_workload Printf Util
