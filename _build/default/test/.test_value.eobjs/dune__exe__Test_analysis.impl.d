test/test_analysis.ml: Alcotest Analysis Catalog Dsl Expr List Njq_adl String Util Value Vtype
