test/test_oosql_gen.mli:
