test/test_oosql.mli:
