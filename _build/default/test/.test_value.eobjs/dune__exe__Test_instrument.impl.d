test/test_instrument.ml: Alcotest Dsl List Njq_adl Njq_core Njq_engine Njq_workload Util Value
