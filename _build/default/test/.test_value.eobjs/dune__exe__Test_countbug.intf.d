test/test_countbug.mli:
