test/test_infra.ml: Alcotest Catalog Counters Dsl Expr List Njq_adl Njq_core Njq_engine Pretty String Util Value Vtype
