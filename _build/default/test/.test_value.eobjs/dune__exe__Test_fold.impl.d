test/test_fold.ml: Alcotest Catalog Dsl Emptyset Eval Expr Fmt Fold Njq_adl Util Value
