test/test_adlsyntax.ml: Adlsyntax Alcotest Dsl Expr List Njq_adl Njq_core Util Value
