test/test_stats.ml: Alcotest Catalog Dsl Eval Expr Njq_adl Njq_core Njq_engine Njq_workload Util Value Vtype
