test/test_eval.ml: Alcotest Catalog Dsl Eval Expr Njq_adl Njq_workload Util Value
