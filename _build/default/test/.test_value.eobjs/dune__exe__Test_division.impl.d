test/test_division.ml: Alcotest Catalog Dsl Eval Expr Fmt List Njq_adl Njq_core Njq_engine Njq_oosql Njq_workload Printf QCheck Util Value
