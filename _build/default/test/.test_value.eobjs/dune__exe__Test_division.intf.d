test/test_division.mli:
