test/test_views.ml: Alcotest Eval Expr List Njq_adl Njq_core Njq_engine Njq_oosql Njq_workload Util
