test/test_cost.ml: Alcotest Catalog Dsl Eval Expr List Njq_adl Njq_core Njq_engine Njq_workload Util Value Vtype
