test/test_grace.mli:
