test/test_oosql_gen.ml: Alcotest Eval List Njq_adl Njq_core Njq_engine Njq_oosql Njq_workload QCheck String Typecheck Util Value Vtype
