test/test_value.ml: Alcotest List Njq_adl QCheck Util Value
