test/test_typecheck.ml: Alcotest Dsl Eval Expr List Njq_adl Typecheck Util Value Vtype
