test/test_derivations.mli:
