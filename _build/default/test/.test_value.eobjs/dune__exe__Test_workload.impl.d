test/test_workload.ml: Alcotest Catalog List Njq_adl Njq_workload Rng Util Value Vtype
