test/test_engine.ml: Alcotest Analysis Catalog Counters Dsl Eval Expr List Njq_adl Njq_engine Njq_workload Printf Util Value
