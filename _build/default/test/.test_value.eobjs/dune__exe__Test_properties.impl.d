test/test_properties.ml: Alcotest Analysis Dsl Eval Expr Fold Njq_adl Njq_core Util Value
