test/test_rewrite.ml: Alcotest Analysis Catalog Counters Dsl Eval Expr List Njq_adl Njq_core Njq_engine Njq_oosql Njq_workload Printf Typecheck Util Value Vtype
