test/util.ml: Alcotest Catalog Dsl Expr Fmt List Njq_adl Njq_workload Pretty Printf QCheck QCheck_alcotest Value Vtype
