test/test_serialize.ml: Alcotest Catalog Eval Filename Fun List Njq_adl Njq_workload Serialize Sys Util Value Vtype
