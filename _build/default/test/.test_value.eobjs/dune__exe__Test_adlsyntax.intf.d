test/test_adlsyntax.mli:
