test/test_derivations.ml: Alcotest List Njq_adl Njq_core Njq_workload Util
