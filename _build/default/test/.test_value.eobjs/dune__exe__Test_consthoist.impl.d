test/test_consthoist.ml: Alcotest Counters Dsl Eval Expr Njq_adl Njq_engine Njq_workload Pretty Printf Util Value
