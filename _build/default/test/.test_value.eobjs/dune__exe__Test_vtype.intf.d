test/test_vtype.mli:
