test/test_normalize.ml: Alcotest Analysis Catalog Dsl Eval Expr Fold List Njq_adl Njq_core Pretty QCheck Util Value
