test/test_consthoist.mli:
