test/test_vtype.ml: Alcotest Njq_adl Util Value Vtype
