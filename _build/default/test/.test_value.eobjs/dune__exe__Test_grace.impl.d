test/test_grace.ml: Alcotest Catalog Counters Dsl Eval Expr List Njq_adl Njq_engine Njq_workload Printf Util Value Vtype
