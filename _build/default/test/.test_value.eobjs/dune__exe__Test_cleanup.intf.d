test/test_cleanup.mli:
