test/test_multilevel.ml: Alcotest Analysis Dsl Eval Expr List Njq_adl Njq_core Njq_engine Njq_workload Util
