test/test_countbug.ml: Alcotest Catalog Dsl Emptyset Eval Expr List Njq_adl Njq_core Njq_engine Pretty Util Value Vtype
