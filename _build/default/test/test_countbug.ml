(* The relational COUNT bug (Kim 1982 / Ganski-Wong 1987), of which the
   paper shows the Complex Object bug is the complex-object generalization:
   nested queries with aggregate functions between blocks lose dangling
   outer tuples under the naive grouping transform whenever P(x, {}) is not
   statically false. *)

open Njq_adl
open Dsl
module Strategy = Njq_core.Strategy
module Grouping = Njq_core.Grouping

(* X(a, c) with c an int; the classic query: tuples whose a equals the
   NUMBER of Y-partners.  A dangling tuple with a = 0 must be in the
   result (count over the empty set is 0) but vanishes under the flat
   join. *)
let catalog () =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"XC"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("k", Vtype.TInt) ])
    [ Value.tuple [ ("a", Value.int 1); ("k", Value.int 2) ];
      Value.tuple [ ("a", Value.int 2); ("k", Value.int 0) ] ];
  Catalog.add_table cat ~name:"YC"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ];
      Value.tuple [ ("d", Value.int 1); ("e", Value.int 2) ] ];
  cat

let count_query =
  select "x" (table "XC")
    (eq
       (count (select "y" (table "YC") (eq (var "x" $. "a") (var "y" $. "d"))))
       (var "x" $. "k"))

let expected_correct =
  Value.set
    [ Value.tuple [ ("a", Value.int 1); ("k", Value.int 2) ];
      Value.tuple [ ("a", Value.int 2); ("k", Value.int 0) ] ]

let test_count_bug () =
  let cat = catalog () in
  Alcotest.check Util.value "nested-loop answer keeps the k = 0 tuple"
    expected_correct (Eval.run cat count_query);
  (* The unsafe transform loses it. *)
  let buggy = Grouping.rewrite_unsafe cat count_query in
  Alcotest.check Util.value "flat join loses the dangling tuple"
    (Value.set [ Value.tuple [ ("a", Value.int 1); ("k", Value.int 2) ] ])
    (Eval.run cat buggy)

let test_emptyset_analysis () =
  (* P(x, {}) = (count({}) = x.k) = (0 = x.k): run-time dependent, so the
     guarded grouping must refuse. *)
  let sub = select "y" (table "YC") (eq (var "x" $. "a") (var "y" $. "d")) in
  match Emptyset.reduce ~subquery:sub (eq (count sub) (var "x" $. "k")) with
  | Emptyset.Runtime residual ->
    (* the residual is exactly the predicate Kim's method would need to
       apply to dangling tuples *)
    (match residual with
     | Expr.Cmp (Expr.Eq, Expr.Const (Value.VInt 0), _) -> ()
     | e -> Alcotest.failf "unexpected residual %a" Pretty.pp e)
  | o -> Alcotest.failf "expected Runtime, got %a" Emptyset.pp_outcome o

let test_strategy_is_correct () =
  let cat = catalog () in
  List.iter
    (fun (name, mode) ->
      let options = { Strategy.default_options with Strategy.grouping_mode = mode } in
      let out = Strategy.optimize ~options cat count_query in
      Alcotest.check Util.value (name ^ " correct") expected_correct
        (Eval.run cat out);
      Alcotest.check Util.value (name ^ " engine correct") expected_correct
        (Njq_engine.Planner.run cat out))
    [ ("nestjoin", Strategy.Nestjoin_always);
      ("guarded flat join", Strategy.Flat_join_when_safe);
      ("outer join", Strategy.Outerjoin) ]

(* A COUNT query that IS safe: count(Y') > 0 reduces to false on the empty
   set (it is rewritten to an existence test first and unnests to a
   semijoin, never needing grouping at all). *)
let test_count_positive () =
  let cat = catalog () in
  let q =
    select "x" (table "XC")
      (gt (count (select "y" (table "YC") (eq (var "x" $. "a") (var "y" $. "d"))))
         (int 0))
  in
  let out = Strategy.optimize cat q in
  let rec contains p e =
    p e || Expr.fold_children (fun acc c -> acc || contains p c) false e
  in
  Alcotest.(check bool) "count>0 becomes a semijoin" true
    (contains
       (function Expr.Join { kind = Expr.Semi; _ } -> true | _ -> false)
       out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* Aggregate comparisons between blocks under random data: all grouping
   modes agree with the reference. *)
let prop_aggregates_between_blocks =
  Util.qcheck ~count:120 "aggregate-between-blocks soundness" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let sub = select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")) in
      let queries =
        [ select "x" (table "X") (eq (count sub) (count (var "x" $. "c")));
          select "x" (table "X") (le (count sub) (int 1));
          select "x" (table "X")
            (eq (count (map_ "y" sub (var "y" $. "e"))) (count (var "x" $. "c"))) ]
      in
      List.for_all
        (fun q ->
          List.for_all
            (fun mode ->
              let options =
                { Strategy.default_options with Strategy.grouping_mode = mode }
              in
              Value.equal (Eval.run cat q)
                (Eval.run cat (Strategy.optimize ~options cat q)))
            [ Strategy.Nestjoin_always; Strategy.Flat_join_when_safe;
              Strategy.Outerjoin ])
        queries)

let () =
  Alcotest.run "countbug"
    [ ( "count bug",
        [ Alcotest.test_case "the classic COUNT bug" `Quick test_count_bug;
          Alcotest.test_case "P(x,∅) analysis" `Quick test_emptyset_analysis;
          Alcotest.test_case "strategy correctness" `Quick test_strategy_is_correct;
          Alcotest.test_case "count>0 is a semijoin" `Quick test_count_positive ] );
      ("properties", [ prop_aggregates_between_blocks ]) ]
