(* Tests for the cost model and cost-based planning: estimates are sane and
   monotone, the cost-based planner picks hash algorithms where keys exist,
   swaps the build side onto the smaller operand, and never changes
   semantics. *)

open Njq_adl
open Dsl
module Plan = Njq_engine.Plan
module Planner = Njq_engine.Planner
module Cost = Njq_engine.Cost
module Exec = Njq_engine.Exec
module Gen = Njq_workload.Generator

(* A catalog with two tables of very different sizes for build-side tests. *)
let skewed_catalog ~small ~big =
  let cat = Catalog.create () in
  let row_a n = Value.tuple [ ("a", Value.int n); ("va", Value.int (n * 2)) ] in
  let row_b n = Value.tuple [ ("b", Value.int n); ("vb", Value.int (n * 3)) ] in
  Catalog.add_table cat ~name:"SMALL"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("va", Vtype.TInt) ])
    (List.init small row_a);
  Catalog.add_table cat ~name:"BIG"
    ~row_type:(Vtype.tuple [ ("b", Vtype.TInt); ("vb", Vtype.TInt) ])
    (List.init big row_b);
  cat

let inner_join left right =
  join ~x:"x" ~y:"y" (eq (var "x" $. "a") (var "y" $. "b")) left right

let test_rows_out_sanity () =
  let cat = skewed_catalog ~small:10 ~big:1000 in
  Alcotest.(check (float 0.01)) "scan is exact" 10.0
    (Cost.rows_out cat (Plan.Scan "SMALL"));
  Alcotest.(check (float 0.01)) "big scan is exact" 1000.0
    (Cost.rows_out cat (Plan.Scan "BIG"));
  let filtered =
    Plan.Filter
      { var = "x"; pred = eq (var "x" $. "a") (int 1); input = Plan.Scan "BIG" }
  in
  let est = Cost.rows_out cat filtered in
  Alcotest.(check bool) "filter shrinks" true (est < 1000.0 && est > 0.0)

let test_selectivity_shapes () =
  let s = Cost.selectivity in
  Alcotest.(check bool) "eq < range" true
    (s (eq (var "a") (int 1)) < s (lt (var "a") (int 1)));
  Alcotest.(check bool) "and multiplies" true
    (s (eq (var "a") (int 1) &&& eq (var "b") (int 1)) < s (eq (var "a") (int 1)));
  Alcotest.(check bool) "or adds" true
    (s (eq (var "a") (int 1) ||| eq (var "b") (int 1)) > s (eq (var "a") (int 1)));
  Alcotest.(check (float 0.0001)) "true is 1" 1.0 (s (bool true));
  Alcotest.(check (float 0.0001)) "not inverts" 0.9 (s (not_ (eq (var "a") (int 1))))

let test_cost_prefers_hash () =
  let cat = skewed_catalog ~small:100 ~big:100 in
  let e = inner_join (table "SMALL") (table "BIG") in
  match Planner.plan ~algo:(Planner.Cost_based cat) e with
  | Plan.JoinOp { algo = Plan.Hash; _ } -> ()
  | p -> Alcotest.failf "expected a hash join, got %a" Plan.pp p

let test_build_side_swap () =
  let cat = skewed_catalog ~small:4 ~big:4000 in
  (* SMALL join BIG: the executor builds on the right operand, so the
     cost-based plan must put SMALL on the right. *)
  let e = inner_join (table "SMALL") (table "BIG") in
  (match Planner.plan ~algo:(Planner.Cost_based cat) e with
   | Plan.JoinOp { algo = Plan.Hash; right = Plan.Scan "SMALL"; left = Plan.Scan "BIG"; _ } ->
     ()
   | p -> Alcotest.failf "expected swapped build side, got %a" Plan.pp p);
  (* And with the sizes flipped, no swap happens. *)
  let e2 =
    join ~x:"y" ~y:"x" (eq (var "y" $. "b") (var "x" $. "a")) (table "BIG")
      (table "SMALL")
  in
  match Planner.plan ~algo:(Planner.Cost_based cat) e2 with
  | Plan.JoinOp { algo = Plan.Hash; right = Plan.Scan "SMALL"; _ } -> ()
  | p -> Alcotest.failf "expected build side kept, got %a" Plan.pp p

let test_swap_preserves_semantics () =
  let cat = skewed_catalog ~small:5 ~big:50 in
  let e = inner_join (table "SMALL") (table "BIG") in
  let auto = Exec.run cat (Planner.plan e) in
  let cost_based = Exec.run cat (Planner.plan ~algo:(Planner.Cost_based cat) e) in
  Alcotest.check Util.value "swap preserves semantics" auto cost_based

let test_cost_monotone_in_algo () =
  let cat = skewed_catalog ~small:200 ~big:200 in
  let mk algo =
    Plan.JoinOp
      { algo; kind = Expr.Inner; xvar = "x"; yvar = "y";
        keys = [ (var "x" $. "a", var "y" $. "b") ]; residual = Expr.true_;
        left = Plan.Scan "SMALL"; right = Plan.Scan "BIG" }
  in
  Alcotest.(check bool) "hash < sort-merge < nested loop" true
    (Cost.cost cat (mk Plan.Hash) < Cost.cost cat (mk Plan.Sort_merge)
     && Cost.cost cat (mk Plan.Sort_merge) < Cost.cost cat (mk Plan.Nested_loop))

(* Cost-based planning is always sound on the paper corpus and on random
   nested predicates. *)
let test_cost_based_corpus () =
  let cat = Gen.catalog { Gen.default_config with dangling_rate = 0.0 } in
  List.iter
    (fun (q : Njq_workload.Queries.query) ->
      let adl = Njq_workload.Queries.to_adl q in
      let out = Njq_core.Strategy.optimize cat adl in
      Alcotest.check Util.value (q.id ^ " cost-based sound")
        (Eval.run cat adl)
        (Exec.run cat (Planner.plan ~algo:(Planner.Cost_based cat) out)))
    Njq_workload.Queries.all

let prop_cost_based_sound =
  Util.qcheck ~count:150 "cost-based planning preserves semantics"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let q = select "x" (table "X") pred in
      let out = Njq_core.Strategy.optimize cat q in
      Value.equal (Eval.run cat q)
        (Exec.run cat (Planner.plan ~algo:(Planner.Cost_based cat) out)))

let () =
  Alcotest.run "cost"
    [ ( "estimation",
        [ Alcotest.test_case "rows_out sanity" `Quick test_rows_out_sanity;
          Alcotest.test_case "selectivity shapes" `Quick test_selectivity_shapes;
          Alcotest.test_case "algorithm ordering" `Quick test_cost_monotone_in_algo ] );
      ( "planning",
        [ Alcotest.test_case "prefers hash" `Quick test_cost_prefers_hash;
          Alcotest.test_case "build-side swap" `Quick test_build_side_swap;
          Alcotest.test_case "swap preserves semantics" `Quick test_swap_preserves_semantics;
          Alcotest.test_case "corpus soundness" `Quick test_cost_based_corpus ] );
      ("properties", [ prop_cost_based_sound ]) ]
