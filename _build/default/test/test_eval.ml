(* Semantics tests for the reference evaluator: one group per operator of
   the paper's Section 3 list (items 1-12), plus the Section 6 operators
   (nestjoin, outer join, division, deref/materialize) and aggregates. *)

open Njq_adl
open Dsl

let vi = Value.int
let vset = Value.set
let tr fields = Value.tuple fields

let cat0 () = Catalog.create ()

let run e = Eval.run (cat0 ()) e

let xy_cat () =
  Util.xy_catalog
    ( [ tr [ ("a", vi 1); ("c", vset [ vi 1; vi 2 ]) ];
        tr [ ("a", vi 2); ("c", vset []) ] ],
      [ tr [ ("d", vi 1); ("e", vi 1) ];
        tr [ ("d", vi 1); ("e", vi 2) ];
        tr [ ("d", vi 3); ("e", vi 3) ] ] )

(* item 1: flatten *)
let test_flatten () =
  Util.check_value "flatten"
    (vset [ vi 1; vi 2; vi 3 ])
    (run (flatten (set_lit [ set_lit [ int 1; int 2 ]; set_lit [ int 2; int 3 ] ])))

(* item 2: tuple subscription *)
let test_subscription () =
  Util.check_value "e[a,b]"
    (tr [ ("a", vi 1); ("b", vi 2) ])
    (run (proj (tuple [ ("a", int 1); ("b", int 2); ("c", int 3) ]) [ "a"; "b" ]))

(* item 3: except *)
let test_except () =
  Util.check_value "update and extend"
    (tr [ ("a", vi 9); ("b", vi 2); ("c", vi 3) ])
    (run
       (except (tuple [ ("a", int 1); ("b", int 2) ]) [ ("a", int 9); ("c", int 3) ]))

(* item 4: map *)
let test_map () =
  Util.check_value "alpha"
    (vset [ vi 2; vi 3 ])
    (run (map_ "x" (set_lit [ int 1; int 2 ]) (add (var "x") (int 1))));
  (* map may collapse duplicates: it produces a set *)
  Util.check_value "alpha collapses"
    (vset [ vi 0 ])
    (run (map_ "x" (set_lit [ int 1; int 2 ]) (mul (var "x") (int 0))))

(* item 5: selection *)
let test_select () =
  Util.check_value "sigma"
    (vset [ vi 2; vi 3 ])
    (run (select "x" (set_lit [ int 1; int 2; int 3 ]) (gt (var "x") (int 1))))

(* item 6: projection *)
let test_project () =
  Util.check_value "pi"
    (vset [ tr [ ("a", vi 1) ] ])
    (run
       (project [ "a" ]
          (set_lit
             [ tuple [ ("a", int 1); ("b", int 1) ];
               tuple [ ("a", int 1); ("b", int 2) ] ])))

(* item 7: unnest *)
let test_unnest () =
  let src =
    set_lit
      [ tuple [ ("k", int 1); ("s", set_lit [ tuple [ ("v", int 10) ]; tuple [ ("v", int 20) ] ]) ];
        tuple [ ("k", int 2); ("s", set_lit []) ] ]
  in
  Util.check_value "mu over tuples"
    (vset [ tr [ ("k", vi 1); ("v", vi 10) ]; tr [ ("k", vi 1); ("v", vi 20) ] ])
    (run (unnest "s" src));
  (* sets of atoms keep the attribute name; tuples with empty sets vanish *)
  let atoms = set_lit [ tuple [ ("k", int 1); ("s", set_lit [ int 5; int 6 ]) ] ] in
  Util.check_value "mu over atoms"
    (vset [ tr [ ("k", vi 1); ("s", vi 5) ]; tr [ ("k", vi 1); ("s", vi 6) ] ])
    (run (unnest "s" atoms))

(* item 8: nest *)
let test_nest () =
  let src =
    set_lit
      [ tuple [ ("k", int 1); ("v", int 10) ];
        tuple [ ("k", int 1); ("v", int 20) ];
        tuple [ ("k", int 2); ("v", int 30) ] ]
  in
  Util.check_value "nu groups"
    (vset
       [ tr [ ("k", vi 1); ("g", vset [ tr [ ("v", vi 10) ]; tr [ ("v", vi 20) ] ]) ];
         tr [ ("k", vi 2); ("g", vset [ tr [ ("v", vi 30) ] ]) ] ])
    (run (nest ~attrs:[ "v" ] ~into:"g" src))

(* nest and unnest are inverse on PNF relations without empty sets, and NOT
   inverse in the presence of empty set-valued attributes (the paper's
   caveat in Section 4). *)
let test_nest_unnest_inverse () =
  let pnf =
    set_lit
      [ tuple [ ("k", int 1); ("g", set_lit [ tuple [ ("v", int 10) ] ]) ];
        tuple [ ("k", int 2); ("g", set_lit [ tuple [ ("v", int 20) ]; tuple [ ("v", int 30) ] ]) ] ]
  in
  Util.check_value "nu ∘ mu = id on PNF"
    (run pnf)
    (run (nest ~attrs:[ "v" ] ~into:"g" (unnest "g" pnf)));
  let with_empty =
    set_lit [ tuple [ ("k", int 1); ("g", set_lit []) ] ]
  in
  Alcotest.(check bool) "empty sets lost" false
    (Value.equal (run with_empty)
       (run (nest ~attrs:[ "v" ] ~into:"g" (unnest "g" with_empty))))

(* items 9-12: product and the join family *)
let test_product () =
  Util.check_value "cartesian product"
    (vset
       [ tr [ ("a", vi 1); ("b", vi 3) ];
         tr [ ("a", vi 1); ("b", vi 4) ];
         tr [ ("a", vi 2); ("b", vi 3) ];
         tr [ ("a", vi 2); ("b", vi 4) ] ])
    (run
       (product
          (set_lit [ tuple [ ("a", int 1) ]; tuple [ ("a", int 2) ] ])
          (set_lit [ tuple [ ("b", int 3) ]; tuple [ ("b", int 4) ] ])))

let test_joins () =
  let cat = xy_cat () in
  let j pred kind =
    Eval.run cat
      (Expr.Join
         { kind; xvar = "x"; yvar = "y"; pred; left = Expr.Table "X";
           right = Expr.Table "Y" })
  in
  let p = eq (var "x" $. "a") (var "y" $. "d") in
  Util.check_value "regular join"
    (vset
       [ tr [ ("a", vi 1); ("c", vset [ vi 1; vi 2 ]); ("d", vi 1); ("e", vi 1) ];
         tr [ ("a", vi 1); ("c", vset [ vi 1; vi 2 ]); ("d", vi 1); ("e", vi 2) ] ])
    (j p Expr.Inner);
  Util.check_value "semijoin"
    (vset [ tr [ ("a", vi 1); ("c", vset [ vi 1; vi 2 ]) ] ])
    (j p Expr.Semi);
  Util.check_value "antijoin"
    (vset [ tr [ ("a", vi 2); ("c", vset []) ] ])
    (j p Expr.Anti);
  Util.check_value "left outer join pads with NULL"
    (vset
       [ tr [ ("a", vi 1); ("c", vset [ vi 1; vi 2 ]); ("d", vi 1); ("e", vi 1) ];
         tr [ ("a", vi 1); ("c", vset [ vi 1; vi 2 ]); ("d", vi 1); ("e", vi 2) ];
         tr [ ("a", vi 2); ("c", vset []); ("d", Value.VNull); ("e", Value.VNull) ] ])
    (j p (Expr.LeftOuter [ "d"; "e" ]))

(* Definition 1: the nestjoin, on the tables of Figure 3 *)
let test_nestjoin_figure3 () =
  let cat = Njq_workload.Queries.fig3_catalog () in
  Util.check_value "figure 3"
    (vset
       [ tr [ ("a", vi 1); ("b", vi 1);
              ("m", vset [ tr [ ("d", vi 1); ("e", vi 10) ]; tr [ ("d", vi 1); ("e", vi 20) ] ]) ];
         tr [ ("a", vi 2); ("b", vi 1);
              ("m", vset [ tr [ ("d", vi 1); ("e", vi 10) ]; tr [ ("d", vi 1); ("e", vi 20) ] ]) ];
         tr [ ("a", vi 3); ("b", vi 3); ("m", vset []) ] ])
    (Eval.run cat Njq_workload.Queries.fig3_query)

(* Extended nestjoin: the function parameter applied to right tuples *)
let test_nestjoin_body () =
  let cat = xy_cat () in
  let e =
    nestjoin ~x:"x" ~y:"y" ~attr:"es"
      ~body:(var "y" $. "e")
      (eq (var "x" $. "a") (var "y" $. "d"))
      (table "X") (table "Y")
  in
  Util.check_value "body projects e"
    (vset
       [ tr [ ("a", vi 1); ("c", vset [ vi 1; vi 2 ]); ("es", vset [ vi 1; vi 2 ]) ];
         tr [ ("a", vi 2); ("c", vset []); ("es", vset []) ] ])
    (Eval.run cat e)

(* The renaming operator rho. *)
let test_rename () =
  let src =
    set_lit
      [ tuple [ ("a", int 1); ("b", int 2) ];
        tuple [ ("a", int 3); ("b", int 4) ] ]
  in
  Util.check_value "rho renames"
    (vset [ tr [ ("x", vi 1); ("b", vi 2) ]; tr [ ("x", vi 3); ("b", vi 4) ] ])
    (run (Expr.Rename ([ ("a", "x") ], src)));
  (* swap two attributes in one step *)
  Util.check_value "rho swaps"
    (vset [ tr [ ("a", vi 2); ("b", vi 1) ] ])
    (run (Expr.Rename ([ ("a", "b"); ("b", "a") ],
                       set_lit [ tuple [ ("a", int 1); ("b", int 2) ] ])))

let test_division () =
  let a =
    set_lit
      [ tuple [ ("s", int 1); ("p", int 1) ];
        tuple [ ("s", int 1); ("p", int 2) ];
        tuple [ ("s", int 2); ("p", int 1) ] ]
  in
  let b = set_lit [ tuple [ ("p", int 1) ]; tuple [ ("p", int 2) ] ] in
  Util.check_value "division"
    (vset [ tr [ ("s", vi 1) ] ])
    (run (divide a b))

let test_quantifiers () =
  Util.check_value "exists true" (Value.bool true)
    (run (exists "x" (set_lit [ int 1; int 2 ]) (eq (var "x") (int 2))));
  Util.check_value "exists over empty is false" (Value.bool false)
    (run (exists "x" empty (bool true)));
  Util.check_value "forall over empty is true" (Value.bool true)
    (run (forall "x" empty (bool false)));
  Util.check_value "forall" (Value.bool true)
    (run (forall "x" (set_lit [ int 1; int 2 ]) (gt (var "x") (int 0))))

let test_set_comparisons () =
  let s12 = set_lit [ int 1; int 2 ] and s123 = set_lit [ int 1; int 2; int 3 ] in
  let chk name e expected =
    Util.check_value name (Value.bool expected) (run e)
  in
  chk "mem" (mem (int 1) s12) true;
  chk "not mem" (not_mem (int 5) s12) true;
  chk "subseteq" (subseteq s12 s123) true;
  chk "subset proper" (subset s12 s123) true;
  chk "subset irrefl" (subset s12 s12) false;
  chk "supseteq" (supseteq s123 s12) true;
  chk "supset" (supset s123 s12) true;
  chk "seteq" (set_eq s12 (set_lit [ int 2; int 1 ])) true;
  chk "ni" (ni (set_lit [ set_lit [ int 1 ] ]) (set_lit [ int 1 ])) true

let test_aggregates () =
  let s = set_lit [ int 3; int 1; int 2 ] in
  Util.check_value "count" (vi 3) (run (count s));
  Util.check_value "count dedups" (vi 1) (run (count (set_lit [ int 7; int 7 ])));
  Util.check_value "sum" (vi 6) (run (sum s));
  Util.check_value "min" (vi 1) (run (min_ s));
  Util.check_value "max" (vi 3) (run (max_ s));
  Util.check_value "avg" (Value.float 2.0) (run (avg s));
  Util.check_value "sum of empty" (vi 0) (run (sum empty));
  Alcotest.check_raises "min of empty" (Eval.Eval_error "min of empty set")
    (fun () -> ignore (run (min_ empty)))

let test_deref () =
  let cat = Util.small_catalog () in
  let e = deref "PART" (oid 3) $. "pname" in
  Util.check_value "deref" (Value.string "cam") (Eval.eval cat [] e);
  Alcotest.check_raises "dangling raises"
    (Value.Type_error "dangling reference #99 into PART") (fun () ->
      ignore (Eval.eval cat [] (deref "PART" (oid 99))))

let test_short_circuit () =
  (* And/Or short-circuit left to right, so the guarded division below never
     evaluates. *)
  let div_by_zero = Expr.Arith (Expr.Div, int 1, int 0) in
  let guarded = eq (int 1) (int 2) &&& eq div_by_zero (int 1) in
  Util.check_value "and short-circuits" (Value.bool false) (run guarded);
  Util.check_value "or short-circuits" (Value.bool true)
    (run (eq (int 1) (int 1) ||| eq div_by_zero (int 1)))

let test_errors () =
  Alcotest.check_raises "unbound variable" (Eval.Eval_error "unbound variable q")
    (fun () -> ignore (run (var "q")));
  Alcotest.check_raises "division by zero" (Eval.Eval_error "division by zero")
    (fun () -> ignore (run (Expr.Arith (Expr.Div, int 1, int 0))))

let () =
  Alcotest.run "eval"
    [ ( "operators",
        [ Alcotest.test_case "flatten (item 1)" `Quick test_flatten;
          Alcotest.test_case "subscription (item 2)" `Quick test_subscription;
          Alcotest.test_case "except (item 3)" `Quick test_except;
          Alcotest.test_case "map (item 4)" `Quick test_map;
          Alcotest.test_case "selection (item 5)" `Quick test_select;
          Alcotest.test_case "projection (item 6)" `Quick test_project;
          Alcotest.test_case "unnest (item 7)" `Quick test_unnest;
          Alcotest.test_case "nest (item 8)" `Quick test_nest;
          Alcotest.test_case "nest/unnest inverse caveat" `Quick test_nest_unnest_inverse;
          Alcotest.test_case "product (item 9)" `Quick test_product;
          Alcotest.test_case "join family (items 10-12)" `Quick test_joins;
          Alcotest.test_case "nestjoin Figure 3" `Quick test_nestjoin_figure3;
          Alcotest.test_case "extended nestjoin body" `Quick test_nestjoin_body;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "division" `Quick test_division ] );
      ( "predicates",
        [ Alcotest.test_case "quantifiers" `Quick test_quantifiers;
          Alcotest.test_case "set comparisons" `Quick test_set_comparisons;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "deref" `Quick test_deref;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "errors" `Quick test_errors ] ) ]
