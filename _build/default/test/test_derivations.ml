(* Derivation-pinning tests: the exact sequence of rewrite rules the
   strategy fires on each corpus query.  These are regression tripwires —
   when a strategy or rule change alters a derivation, the diff here shows
   exactly which query's optimization path moved and how. *)

module Strategy = Njq_core.Strategy
module Queries = Njq_workload.Queries

let cat () =
  Njq_workload.Generator.catalog
    { Njq_workload.Generator.default_config with dangling_rate = 0.0 }

let rule_names (r : Strategy.report) =
  List.concat_map
    (fun p -> List.map (fun (s : Njq_core.Rules.step) -> s.rule_name) p.Strategy.steps)
    r.Strategy.phases

let check_sequence id expected =
  let r = Strategy.rewrite (cat ()) (Queries.to_adl (Queries.find id)) in
  Alcotest.(check (list string)) id expected (rule_names r)

let test_paper_queries () =
  (* EQ1 nests only over a set-valued attribute: nothing to do. *)
  check_sequence "EQ1" [];
  (* EQ2's from-clause nesting collapses into one selection. *)
  check_sequence "EQ2" [ "σ∘σ-merge" ];
  (* EQ3.1: ⊇ expands, ∀ normalizes, Rule 1 gives the antijoin. *)
  check_sequence "EQ3.1" [ "setcmp→quantifier"; "∀→¬∃¬"; "Rule1 σ∃→⋉/▷" ];
  (* EQ3.2 keeps its attribute iteration; only the range selection fuses. *)
  check_sequence "EQ3.2" [ "range-σ-fusion" ];
  (* EQ4: attribute unnesting exposes the antijoin. *)
  check_sequence "EQ4" [ "μ-attr-unnest α"; "Rule1 σ∃→⋉/▷" ];
  (* EQ5: the paper's semijoin chain — exchange, Rule 1, hoist, pushdown. *)
  check_sequence "EQ5" [ "∃-exchange"; "Rule1 σ∃→⋉/▷"; "∃-conj-hoist"; "σ-pushdown" ];
  (* EQ6: one nestjoin for the select-clause grouping. *)
  check_sequence "EQ6" [ "nestjoin α" ]

let test_extended_queries () =
  (* EQ7: the EQ5 chain plus a second Rule 1 for the inner level. *)
  check_sequence "EQ7"
    [ "∃-exchange"; "Rule1 σ∃→⋉/▷"; "∃-conj-hoist"; "σ-pushdown";
      "Rule1 σ∃→⋉/▷" ];
  (* EQ8: two subqueries peel off one join each. *)
  check_sequence "EQ8"
    [ "Rule1 σ∃→⋉/▷"; "σ-pushdown"; "Rule1 σ∃→⋉/▷"; "σ-pushdown" ];
  (* EQ9: attribute unnest inside, chained nestjoins, then the color
     restriction pushed into the nestjoin's right operand. *)
  check_sequence "EQ9"
    [ "μ-attr-unnest α"; "nestjoin α"; "nestjoin body ⊣"; "σ-pushdown" ]

(* The strategy records phases in execution order and the output equals the
   last step's result. *)
let test_report_invariants () =
  let cat = cat () in
  List.iter
    (fun (q : Queries.query) ->
      let r = Strategy.rewrite cat (Queries.to_adl q) in
      (match List.rev (List.concat_map (fun p -> p.Strategy.steps) r.Strategy.phases) with
       | [] -> ()
       | last :: _ ->
         (* The output is the final step's result modulo final folding. *)
         Alcotest.check Util.expr (q.id ^ " output is folded last step")
           (Njq_adl.Fold.simplify last.Njq_core.Rules.result)
           r.Strategy.output);
      Alcotest.(check bool) (q.id ^ " step count consistent") true
        (Strategy.step_count r
         = List.length (rule_names r)))
    (Queries.all @ Queries.extended)

let () =
  Alcotest.run "derivations"
    [ ( "pinned sequences",
        [ Alcotest.test_case "paper queries" `Quick test_paper_queries;
          Alcotest.test_case "extended queries" `Quick test_extended_queries;
          Alcotest.test_case "report invariants" `Quick test_report_invariants ] ) ]
