(* Tests for constant folding and the static reduction of P(x, {}) —
   including the regeneration of the paper's Table 3. *)

open Njq_adl
open Dsl

let simp = Fold.simplify

let test_boolean_folding () =
  Alcotest.check Util.expr "true and p" (var "p") (simp (bool true &&& var "p"));
  Alcotest.check Util.expr "false and p" (bool false) (simp (bool false &&& var "p"));
  Alcotest.check Util.expr "double negation" (var "p") (simp (not_ (not_ (var "p"))));
  Alcotest.check Util.expr "negated comparison" (neq (var "a") (int 1))
    (simp (not_ (eq (var "a") (int 1))));
  Alcotest.check Util.expr "if true" (var "a") (simp (if_ (bool true) (var "a") (var "b")))

let test_quantifier_folding () =
  Alcotest.check Util.expr "exists over empty" (bool false)
    (simp (exists "x" empty (var "p")));
  Alcotest.check Util.expr "forall over empty" (bool true)
    (simp (forall "x" empty (var "p")));
  Alcotest.check Util.expr "count of empty is zero-comparable" (bool true)
    (simp (eq (count empty) (int 0)))

let test_selection_folding () =
  Alcotest.check Util.expr "select true" (table "T")
    (simp (select "x" (table "T") (bool true)));
  Alcotest.check Util.expr "identity map" (table "T")
    (simp (map_ "x" (table "T") (var "x")));
  Alcotest.check Util.expr "field of proj" (var "z" $. "a")
    (simp (proj (var "z") [ "a"; "b" ] $. "a"))

let test_arith_folding () =
  Alcotest.check Util.expr "constants fold" (int 7) (simp (add (int 3) (int 4)));
  (* Division by zero must NOT fold away (it would change error behavior). *)
  Alcotest.check Util.expr "div by zero stays"
    (Expr.Arith (Expr.Div, int 1, int 0))
    (simp (Expr.Arith (Expr.Div, int 1, int 0)))

(* Table 3: the value of P(x, {}) for each set comparison between blocks.
   'subset' {} = false; 'subseteq' {} = ?; = {} = ?; 'supseteq' {} = true;
   'supset' {} = ?; 'ni' {} = ?. *)
let test_table3 () =
  let c = var "x" $. "c" in
  let y' = var "Y'" in
  let outcome p =
    Fmt.str "%a" Emptyset.pp_outcome (Emptyset.reduce_var ~yname:"Y'" p)
  in
  Alcotest.(check string) "x.c ⊂ ∅" "false" (outcome (subset c y'));
  Alcotest.(check string) "x.c ⊆ ∅" "?" (outcome (subseteq c y'));
  Alcotest.(check string) "x.c = ∅" "?" (outcome (set_eq c y'));
  Alcotest.(check string) "x.c ⊇ ∅" "true" (outcome (supseteq c y'));
  Alcotest.(check string) "x.c ⊃ ∅" "?" (outcome (supset c y'));
  Alcotest.(check string) "x.c ∋ ∅" "?" (outcome (ni c y'))

(* Membership and emptiness predicates also reduce (Table 2 adjacent). *)
let test_emptyset_memberships () =
  let y' = var "Y'" in
  let reduce p = Emptyset.reduce_var ~yname:"Y'" p in
  (match reduce (mem (var "v") y') with
   | Emptyset.False -> ()
   | _ -> Alcotest.fail "v ∈ ∅ must be false");
  (match reduce (exists "y" y' (bool true)) with
   | Emptyset.False -> ()
   | _ -> Alcotest.fail "∃y∈∅ must be false");
  (match reduce (eq (count y') (int 0)) with
   | Emptyset.True -> ()
   | _ -> Alcotest.fail "count(∅)=0 must be true");
  Alcotest.(check bool) "grouping unsafe when P(x,∅) true" false
    (Emptyset.grouping_join_is_safe ~subquery:(var "Y'") (eq (count y') (int 0)));
  Alcotest.(check bool) "grouping safe when P(x,∅) false" true
    (Emptyset.grouping_join_is_safe ~subquery:(var "Y'") (mem (var "v") y'))

(* The subquery is matched structurally, not only as a variable. *)
let test_structural_subquery () =
  let sub = select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")) in
  (match Emptyset.reduce ~subquery:sub (subseteq (var "x" $. "c") sub) with
   | Emptyset.Runtime _ -> ()
   | _ -> Alcotest.fail "⊆ must be runtime-dependent");
  match Emptyset.reduce ~subquery:sub (exists "w" sub (bool true)) with
  | Emptyset.False -> ()
  | _ -> Alcotest.fail "∃ over subquery must reduce to false"

(* Folding must preserve semantics on closed boolean expressions. *)
let prop_fold_preserves_eval =
  Util.qcheck "fold preserves evaluation" Util.arbitrary_int_set (fun s ->
      let cat = Catalog.create () in
      let e =
        subseteq (const s) (set_lit [ int 0; int 1; int 2; int 3; int 4 ])
        &&& not_ (mem (int 99) (const s))
      in
      Value.equal (Eval.run cat e) (Eval.run cat (simp e)))

let () =
  Alcotest.run "fold"
    [ ( "folding",
        [ Alcotest.test_case "boolean" `Quick test_boolean_folding;
          Alcotest.test_case "quantifiers" `Quick test_quantifier_folding;
          Alcotest.test_case "selections" `Quick test_selection_folding;
          Alcotest.test_case "arithmetic" `Quick test_arith_folding ] );
      ( "emptyset (Table 3)",
        [ Alcotest.test_case "Table 3 rows" `Quick test_table3;
          Alcotest.test_case "memberships" `Quick test_emptyset_memberships;
          Alcotest.test_case "structural subquery" `Quick test_structural_subquery ] );
      ("properties", [ prop_fold_preserves_eval ]) ]
