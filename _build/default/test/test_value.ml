(* Unit and property tests for the complex-object value domain. *)

open Njq_adl

let vi = Value.int
let vs l = Value.set l

let test_set_canonical () =
  Util.check_value "duplicates removed" (vs [ vi 1; vi 2 ]) (vs [ vi 2; vi 1; vi 2 ]);
  Util.check_value "empty" Value.empty_set (vs []);
  Alcotest.(check int) "size" 2 (Value.set_size (vs [ vi 1; vi 1; vi 2 ]))

let test_tuple_canonical () =
  Util.check_value "field order irrelevant"
    (Value.tuple [ ("a", vi 1); ("b", vi 2) ])
    (Value.tuple [ ("b", vi 2); ("a", vi 1) ]);
  Alcotest.check_raises "duplicate field rejected"
    (Value.Type_error "duplicate tuple field a") (fun () ->
      ignore (Value.tuple [ ("a", vi 1); ("a", vi 2) ]))

let test_field_access () =
  let t = Value.tuple [ ("x", vi 1); ("y", vs [ vi 2 ]) ] in
  Util.check_value "field x" (vi 1) (Value.field t "x");
  Alcotest.(check bool) "has_field" true (Value.has_field t "y");
  Alcotest.(check bool) "no field" false (Value.has_field t "z");
  Alcotest.(check (list string)) "names" [ "x"; "y" ] (Value.field_names t)

let test_projection () =
  let t = Value.tuple [ ("a", vi 1); ("b", vi 2); ("c", vi 3) ] in
  Util.check_value "project" (Value.tuple [ ("a", vi 1); ("c", vi 3) ])
    (Value.project t [ "a"; "c" ]);
  Util.check_value "project away" (Value.tuple [ ("b", vi 2) ])
    (Value.project_away t [ "a"; "c" ])

let test_concat_except () =
  let a = Value.tuple [ ("x", vi 1) ] and b = Value.tuple [ ("y", vi 2) ] in
  Util.check_value "concat" (Value.tuple [ ("x", vi 1); ("y", vi 2) ]) (Value.concat a b);
  let u = Value.except (Value.concat a b) [ ("x", vi 9); ("z", vi 3) ] in
  Util.check_value "except updates and extends"
    (Value.tuple [ ("x", vi 9); ("y", vi 2); ("z", vi 3) ])
    u

let test_set_operations () =
  let s12 = vs [ vi 1; vi 2 ] and s23 = vs [ vi 2; vi 3 ] in
  Util.check_value "union" (vs [ vi 1; vi 2; vi 3 ]) (Value.union s12 s23);
  Util.check_value "inter" (vs [ vi 2 ]) (Value.inter s12 s23);
  Util.check_value "diff" (vs [ vi 1 ]) (Value.diff s12 s23);
  Alcotest.(check bool) "mem" true (Value.mem (vi 2) s12);
  Alcotest.(check bool) "subset_eq refl" true (Value.subset_eq s12 s12);
  Alcotest.(check bool) "subset strict" false (Value.subset s12 s12);
  Alcotest.(check bool) "subset proper" true
    (Value.subset s12 (vs [ vi 1; vi 2; vi 3 ]))

let test_flatten () =
  let nested = vs [ vs [ vi 1; vi 2 ]; vs [ vi 2; vi 3 ]; vs [] ] in
  Util.check_value "flatten" (vs [ vi 1; vi 2; vi 3 ]) (Value.flatten nested)

let test_compare_cross_shape () =
  (* The order across shapes is arbitrary but must be total and consistent. *)
  let vals = [ Value.VNull; Value.bool true; vi 0; Value.string "x"; vs [] ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetry" true (compare c1 0 = compare 0 c2))
        vals)
    vals

(* Properties *)

let prop_compare_reflexive =
  Util.qcheck "compare x x = 0" Util.arbitrary_value (fun v -> Value.compare v v = 0)

let prop_set_idempotent =
  Util.qcheck "set canonicalization is idempotent"
    QCheck.(pair Util.arbitrary_value Util.arbitrary_value)
    (fun (a, b) ->
      let s = Value.set [ a; b; a ] in
      Value.equal s (Value.set (Value.as_set s)))

let prop_union_commutative =
  Util.qcheck "union commutative"
    QCheck.(pair Util.arbitrary_int_set Util.arbitrary_int_set)
    (fun (a, b) -> Value.equal (Value.union a b) (Value.union b a))

let prop_union_associative =
  Util.qcheck "union associative"
    QCheck.(triple Util.arbitrary_int_set Util.arbitrary_int_set Util.arbitrary_int_set)
    (fun (a, b, c) ->
      Value.equal (Value.union a (Value.union b c)) (Value.union (Value.union a b) c))

let prop_inter_absorption =
  Util.qcheck "A ∩ (A ∪ B) = A"
    QCheck.(pair Util.arbitrary_int_set Util.arbitrary_int_set)
    (fun (a, b) -> Value.equal (Value.inter a (Value.union a b)) a)

let prop_diff_disjoint =
  Util.qcheck "(A \\ B) ∩ B = ∅"
    QCheck.(pair Util.arbitrary_int_set Util.arbitrary_int_set)
    (fun (a, b) -> Value.equal (Value.inter (Value.diff a b) b) Value.empty_set)

let prop_subset_eq_antisym =
  Util.qcheck "A ⊆ B ∧ B ⊆ A ⇒ A = B"
    QCheck.(pair Util.arbitrary_int_set Util.arbitrary_int_set)
    (fun (a, b) ->
      (not (Value.subset_eq a b && Value.subset_eq b a)) || Value.equal a b)

let prop_concat_project_inverse =
  Util.qcheck "projection splits a concatenation"
    QCheck.(pair Util.arbitrary_value Util.arbitrary_value)
    (fun (a, b) ->
      let ta = Value.tuple [ ("l", a) ] and tb = Value.tuple [ ("r", b) ] in
      let c = Value.concat ta tb in
      Value.equal (Value.project c [ "l" ]) ta && Value.equal (Value.project c [ "r" ]) tb)

let () =
  Alcotest.run "value"
    [ ( "unit",
        [ Alcotest.test_case "set canonical" `Quick test_set_canonical;
          Alcotest.test_case "tuple canonical" `Quick test_tuple_canonical;
          Alcotest.test_case "field access" `Quick test_field_access;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "concat/except" `Quick test_concat_except;
          Alcotest.test_case "set operations" `Quick test_set_operations;
          Alcotest.test_case "flatten" `Quick test_flatten;
          Alcotest.test_case "total order" `Quick test_compare_cross_shape ] );
      ( "properties",
        [ prop_compare_reflexive;
          prop_set_idempotent;
          prop_union_commutative;
          prop_union_associative;
          prop_inter_absorption;
          prop_diff_disjoint;
          prop_subset_eq_antisym;
          prop_concat_project_inverse ] ) ]
