(* Round-trip and error tests for the serialization substrate. *)

open Njq_adl
module S = Serialize

let roundtrip_value v = S.value_of_string (S.value_to_string v)

let test_value_examples () =
  let cases =
    [ Value.VNull; Value.bool true; Value.bool false; Value.int 42;
      Value.int (-7); Value.float 1.5; Value.float (-0.25);
      Value.float 1e100; Value.string ""; Value.string "a\"b\\c\nd\te";
      Value.date 19940101; Value.oid 3;
      Value.tuple [];
      Value.tuple [ ("a", Value.int 1); ("b", Value.set [ Value.string "x" ]) ];
      Value.set [];
      Value.set [ Value.set [ Value.int 1 ]; Value.set [] ] ]
  in
  List.iter
    (fun v -> Alcotest.check Util.value (S.value_to_string v) v (roundtrip_value v))
    cases

let test_value_syntax () =
  Alcotest.check Util.value "int" (Value.int 5) (S.value_of_string " 5 ");
  Alcotest.check Util.value "float needs dot" (Value.float 5.0) (S.value_of_string "5.");
  Alcotest.check Util.value "exponent is float" (Value.float 500.0)
    (S.value_of_string "5e2");
  Alcotest.check Util.value "date" (Value.date 940101) (S.value_of_string "d940101");
  Alcotest.check Util.value "oid" (Value.oid 12) (S.value_of_string "#12");
  Alcotest.check Util.value "nested"
    (Value.tuple [ ("s", Value.set [ Value.int 1; Value.int 2 ]) ])
    (S.value_of_string "( s = { 2, 1, 2 } )")

let test_value_errors () =
  let bad s =
    match S.value_of_string s with
    | v -> Alcotest.failf "accepted %S as %a" s Value.pp v
    | exception S.Parse_error _ -> ()
  in
  bad "";
  bad "(a = )";
  bad "{1, }";
  bad "\"unterminated";
  bad "5 trailing";
  bad "frobnicate"

let test_type_roundtrip () =
  let cases =
    [ Vtype.TBool; Vtype.TInt; Vtype.TFloat; Vtype.TString; Vtype.TDate;
      Vtype.TOid; Vtype.TAny; Vtype.TRef "PART";
      Vtype.TSet (Vtype.tuple [ ("a", Vtype.TInt); ("r", Vtype.TRef "X") ]);
      Njq_workload.Generator.delivery_row_type ]
  in
  List.iter
    (fun t ->
      Alcotest.check Util.vtype (S.type_to_string t) t
        (S.type_of_string (S.type_to_string t)))
    cases

let test_catalog_roundtrip () =
  let cat = Njq_workload.Generator.catalog Njq_workload.Generator.default_config in
  let cat' = S.load_catalog (S.save_catalog cat) in
  Alcotest.(check (list string)) "table names" (Catalog.table_names cat)
    (Catalog.table_names cat');
  List.iter
    (fun t ->
      Alcotest.check Util.vtype (t ^ " row type") (Catalog.row_type cat t)
        (Catalog.row_type cat' t);
      Alcotest.check Util.value (t ^ " rows")
        (Value.set (Catalog.rows cat t))
        (Value.set (Catalog.rows cat' t)))
    (Catalog.table_names cat);
  (* Queries over the reloaded catalog give identical results. *)
  let q = Njq_workload.Queries.to_adl (Njq_workload.Queries.find "EQ5") in
  Alcotest.check Util.value "query over reloaded catalog" (Eval.run cat q)
    (Eval.run cat' q);
  (* The oid counter does not go backwards. *)
  let o = Catalog.fresh_oid cat' in
  List.iter
    (fun t ->
      List.iter
        (fun row ->
          match Value.field row "oid" with
          | Value.VOid n when n < 1_000_000 (* skip injected dangling refs *) ->
            if n >= o then Alcotest.failf "fresh oid %d collides with stored %d" o n
          | _ -> ())
        (Catalog.rows cat' t))
    (Catalog.table_names cat')

let test_catalog_file_roundtrip () =
  let cat = Njq_workload.Generator.catalog { Njq_workload.Generator.default_config with suppliers = 5; parts = 5; deliveries = 5 } in
  let path = Filename.temp_file "njq" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save_catalog_file cat path;
      let cat' = S.load_catalog_file path in
      Alcotest.check Util.value "file round trip"
        (Value.set (Catalog.rows cat "SUPPLIER"))
        (Value.set (Catalog.rows cat' "SUPPLIER")))

let test_json () =
  let v =
    Value.tuple
      [ ("n", Value.string "a\"b"); ("k", Value.oid 3);
        ("d", Value.date 19940101);
        ("s", Value.set [ Value.int 1; Value.float 0.5 ]);
        ("z", Value.VNull) ]
  in
  Alcotest.(check string) "json shape"
    "{\"d\": {\"$date\": 19940101}, \"k\": {\"$oid\": 3}, \"n\": \"a\\\"b\", \"s\": [1, 0.5], \"z\": null}"
    (S.value_to_json v)

let test_csv () =
  let rows =
    Value.set
      [ Value.tuple [ ("a", Value.int 1); ("b", Value.string "x,y") ];
        Value.tuple [ ("a", Value.int 2); ("b", Value.string "plain") ] ]
  in
  Alcotest.(check string) "csv shape" "a,b\n1,\"x,y\"\n2,plain\n"
    (S.rows_to_csv rows);
  Alcotest.(check string) "empty set" "" (S.rows_to_csv Value.empty_set);
  (* nested values are rendered in value syntax *)
  let nested =
    Value.set [ Value.tuple [ ("s", Value.set [ Value.int 1; Value.int 2 ]) ] ]
  in
  Alcotest.(check string) "nested cell" "s\n\"{1, 2}\"\n" (S.rows_to_csv nested)

let prop_value_roundtrip =
  Util.qcheck ~count:500 "value round trip" Util.arbitrary_value (fun v ->
      Value.equal v (roundtrip_value v))

let () =
  Alcotest.run "serialize"
    [ ( "values",
        [ Alcotest.test_case "examples" `Quick test_value_examples;
          Alcotest.test_case "syntax" `Quick test_value_syntax;
          Alcotest.test_case "errors" `Quick test_value_errors;
          Alcotest.test_case "json export" `Quick test_json;
          Alcotest.test_case "csv export" `Quick test_csv ] );
      ( "types",
        [ Alcotest.test_case "round trip" `Quick test_type_roundtrip ] );
      ( "catalogs",
        [ Alcotest.test_case "round trip" `Quick test_catalog_roundtrip;
          Alcotest.test_case "file round trip" `Quick test_catalog_file_roundtrip ] );
      ("properties", [ prop_value_roundtrip ]) ]
