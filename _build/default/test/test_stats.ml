(* Tests for table statistics and their effect on cardinality estimates. *)

open Njq_adl
open Dsl
module Stats = Njq_engine.Stats
module Cost = Njq_engine.Cost
module Plan = Njq_engine.Plan

let fixed_catalog () =
  let cat = Catalog.create () in
  let row a b = Value.tuple [ ("a", Value.int a); ("b", Value.string b) ] in
  Catalog.add_table cat ~name:"T"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("b", Vtype.TString) ])
    [ row 1 "x"; row 1 "y"; row 2 "x"; row 3 "x"; row 4 "z" ];
  cat

let test_analyze () =
  let st = Stats.analyze (fixed_catalog ()) in
  Alcotest.(check (option int)) "cardinality" (Some 5) (Stats.cardinality st "T");
  Alcotest.(check (option int)) "ndv a" (Some 4) (Stats.ndv st ~table:"T" ~attr:"a");
  Alcotest.(check (option int)) "ndv b" (Some 3) (Stats.ndv st ~table:"T" ~attr:"b");
  (match Stats.column st ~table:"T" ~attr:"a" with
   | Some c ->
     Alcotest.(check (option int)) "lo" (Some 1) c.Stats.lo;
     Alcotest.(check (option int)) "hi" (Some 4) c.Stats.hi
   | None -> Alcotest.fail "missing column stats");
  Alcotest.(check (option int)) "unknown column" None
    (Stats.ndv st ~table:"T" ~attr:"zzz")

let test_eq_selectivity () =
  let st = Stats.analyze (fixed_catalog ()) in
  Alcotest.(check (option (float 0.001))) "1/ndv" (Some 0.25)
    (Stats.eq_selectivity st ~table:"T" ~attr:"a")

(* Estimated cardinalities under statistics land within a small factor of
   the truth for equality filters and equi joins on generated data. *)
let test_estimate_accuracy () =
  let cat = Njq_workload.Generator.xy_catalog ~seed:33 256 in
  let st = Stats.analyze cat in
  let check_accuracy name plan actual =
    let est = Cost.rows_out ~stats:st cat plan in
    let ratio = (est +. 1.0) /. (float_of_int actual +. 1.0) in
    if ratio < 0.2 || ratio > 5.0 then
      Alcotest.failf "%s: estimate %.1f vs actual %d (ratio %.2f)" name est
        actual ratio
  in
  (* equality filter: X rows with a given key *)
  let filter =
    Plan.Filter
      { var = "x"; pred = eq (var "x" $. "a") (int 17); input = Plan.Scan "X" }
  in
  let actual_filter =
    Value.set_size
      (Eval.run cat (select "x" (table "X") (eq (var "x" $. "a") (int 17))))
  in
  check_accuracy "equality filter" filter actual_filter;
  (* equi join X.a = Y.d *)
  let join_plan =
    Plan.JoinOp
      { algo = Plan.Hash; kind = Expr.Inner; xvar = "x"; yvar = "y";
        keys = [ (var "x" $. "a", var "y" $. "d") ]; residual = Expr.true_;
        left = Plan.Scan "X"; right = Plan.Scan "Y" }
  in
  let actual_join =
    Value.set_size
      (Eval.run cat
         (join ~x:"x" ~y:"y" (eq (var "x" $. "a") (var "y" $. "d")) (table "X")
            (table "Y")))
  in
  check_accuracy "equi join" join_plan actual_join

(* Statistics never change plan SEMANTICS, only cost numbers: cost-based
   planning with stats still agrees with the reference. *)
let test_stats_cost_planning () =
  let cat = Njq_workload.Generator.xy_catalog ~seed:9 64 in
  let q =
    select "x" (table "X")
      (exists "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
  in
  let out = Njq_core.Strategy.optimize cat q in
  let plan = Njq_engine.Planner.plan ~algo:(Njq_engine.Planner.Cost_based cat) out in
  Alcotest.check Util.value "cost-based with stats sound" (Eval.run cat q)
    (Njq_engine.Exec.run cat plan)

let () =
  Alcotest.run "stats"
    [ ( "statistics",
        [ Alcotest.test_case "analyze" `Quick test_analyze;
          Alcotest.test_case "eq selectivity" `Quick test_eq_selectivity;
          Alcotest.test_case "estimate accuracy" `Quick test_estimate_accuracy;
          Alcotest.test_case "cost planning" `Quick test_stats_cost_planning ] ) ]
