(* Tests for the supporting infrastructure: catalog, the rewrite-rule
   driver, counters, and the pretty-printers (ADL and plans). *)

open Njq_adl
open Dsl

(* ---------------- Catalog ---------------- *)

let test_catalog_basics () =
  let cat = Catalog.create () in
  let row_type = Vtype.tuple [ ("oid", Vtype.TOid); ("v", Vtype.TInt) ] in
  let r n v = Value.tuple [ ("oid", Value.oid n); ("v", Value.int v) ] in
  Catalog.add_table cat ~name:"T" ~row_type [ r 2 20; r 1 10; r 1 10 ];
  Alcotest.(check int) "rows deduplicated" 2 (Catalog.cardinality cat "T");
  Alcotest.(check bool) "mem" true (Catalog.mem cat "T");
  Alcotest.(check (list string)) "names" [ "T" ] (Catalog.table_names cat);
  Alcotest.check Util.vtype "table type" (Vtype.TSet row_type)
    (Catalog.table_type cat "T");
  Alcotest.check_raises "unknown table" (Catalog.Unknown_table "U") (fun () ->
      ignore (Catalog.rows cat "U"));
  (match Catalog.add_table cat ~name:"T" ~row_type [] with
   | () -> Alcotest.fail "duplicate table accepted"
   | exception Invalid_argument _ -> ());
  match Catalog.add_table cat ~name:"B" ~row_type:Vtype.TInt [] with
  | () -> Alcotest.fail "non-tuple row type accepted"
  | exception Invalid_argument _ -> ()

let test_catalog_oids_and_deref () =
  let cat = Catalog.create () in
  let a = Catalog.fresh_oid cat and b = Catalog.fresh_oid cat in
  Alcotest.(check bool) "fresh oids distinct" true (a <> b);
  let row_type = Vtype.tuple [ ("oid", Vtype.TOid); ("v", Vtype.TInt) ] in
  let r n v = Value.tuple [ ("oid", Value.oid n); ("v", Value.int v) ] in
  Catalog.add_table cat ~name:"T" ~row_type [ r 1 10; r 2 20 ];
  Alcotest.check Util.value "deref hits" (r 2 20) (Catalog.deref cat "T" (Value.oid 2));
  Alcotest.(check bool) "deref_opt miss" true
    (Catalog.deref_opt cat "T" (Value.oid 99) = None);
  (* set_rows invalidates the oid index *)
  Catalog.set_rows cat "T" [ r 3 30 ];
  Alcotest.(check bool) "old oid gone" true
    (Catalog.deref_opt cat "T" (Value.oid 2) = None);
  Alcotest.check Util.value "new oid found" (r 3 30)
    (Catalog.deref cat "T" (Value.oid 3))

(* ---------------- Rules driver ---------------- *)

let incr_rule =
  Njq_core.Rules.rule "incr" (fun _cat e ->
      match e with
      | Expr.Const (Value.VInt n) when n < 3 -> Some (Expr.Const (Value.int (n + 1)))
      | _ -> None)

let test_driver_fixpoint () =
  let cat = Catalog.create () in
  let e = add (int 0) (int 5) in
  let out, trace = Njq_core.Rules.fixpoint cat [ incr_rule ] e in
  Alcotest.check Util.expr "both positions saturated" (add (int 3) (int 5)) out;
  Alcotest.(check int) "three steps" 3 (List.length trace);
  List.iter
    (fun s -> Alcotest.(check string) "rule name" "incr" s.Njq_core.Rules.rule_name)
    trace

let test_driver_outermost_first () =
  (* A rule matching both an outer and an inner node must fire at the outer
     one first. *)
  let wrap_rule =
    Njq_core.Rules.rule "strip-not" (fun _cat e ->
        match e with Expr.Not inner -> Some inner | _ -> None)
  in
  let cat = Catalog.create () in
  let e = not_ (not_ (bool true)) in
  match Njq_core.Rules.step_anywhere cat [ wrap_rule ] e with
  | Some ("strip-not", Expr.Not (Expr.Const _)) -> ()
  | Some (_, e') -> Alcotest.failf "unexpected step result %a" Pretty.pp e'
  | None -> Alcotest.fail "no step"

let test_driver_fuel () =
  let diverging =
    Njq_core.Rules.rule "spin" (fun _cat e ->
        match e with
        | Expr.Const (Value.VInt n) -> Some (Expr.Const (Value.int (n + 1)))
        | _ -> None)
  in
  let cat = Catalog.create () in
  match Njq_core.Rules.fixpoint ~fuel:10 cat [ diverging ] (int 0) with
  | _ -> Alcotest.fail "diverging rule set not caught"
  | exception Failure _ -> ()

(* ---------------- Counters ---------------- *)

let test_counters () =
  Counters.reset ();
  Counters.tick "a";
  Counters.tick ~n:4 "a";
  Counters.tick "b";
  Alcotest.(check int) "a" 5 (Counters.get "a");
  Alcotest.(check int) "unknown" 0 (Counters.get "zz");
  Alcotest.(check (list (pair string int))) "snapshot sorted"
    [ ("a", 5); ("b", 1) ] (Counters.snapshot ());
  Counters.without_counting (fun () -> Counters.tick "a");
  Alcotest.(check int) "disabled ticks ignored" 5 (Counters.get "a");
  let x, snap = Counters.measure (fun () -> Counters.tick "c"; 42) in
  Alcotest.(check int) "measure result" 42 x;
  Alcotest.(check (list (pair string int))) "measure snapshot" [ ("c", 1) ] snap

(* ---------------- Pretty-printers ---------------- *)

let contains_sub ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_adl_pretty () =
  let check_str name needle e =
    let s = Pretty.to_string e in
    if not (contains_sub ~needle s) then
      Alcotest.failf "%s: %S not in %S" name needle s
  in
  check_str "select" "σ[x :" (select "x" (table "T") (bool true));
  check_str "map" "α[x :" (map_ "x" (table "T") (var "x"));
  check_str "semijoin" "⋉" (semijoin (bool true) (table "T") (table "U"));
  check_str "antijoin" "▷" (antijoin (bool true) (table "T") (table "U"));
  check_str "nestjoin" "⊣" (nestjoin ~attr:"g" (bool true) (table "T") (table "U"));
  check_str "unnest" "μ_c" (unnest "c" (table "T"));
  check_str "nest" "ν_{a→g}" (nest ~attrs:[ "a" ] ~into:"g" (table "T"));
  check_str "division" "÷" (divide (table "T") (table "U"));
  check_str "exists" "∃" (exists "x" (table "T") (bool true));
  check_str "deref" "deref⟨P⟩" (deref "P" (oid 1));
  (* precedence: and of or needs parens *)
  check_str "parens" "(a ∨ b) ∧ c"
    ((var "a" ||| var "b") &&& var "c")

let test_plan_pretty () =
  let p =
    Njq_engine.Planner.plan
      (semijoin ~x:"a" ~y:"b"
         (eq (var "a" $. "k") (var "b" $. "k"))
         (table "T") (table "U"))
  in
  let s = Njq_engine.Plan.to_string p in
  Alcotest.(check bool) "hash semijoin printed" true
    (contains_sub ~needle:"hash_semijoin" s)

let () =
  Alcotest.run "infra"
    [ ( "catalog",
        [ Alcotest.test_case "basics" `Quick test_catalog_basics;
          Alcotest.test_case "oids and deref" `Quick test_catalog_oids_and_deref ] );
      ( "rules driver",
        [ Alcotest.test_case "fixpoint" `Quick test_driver_fixpoint;
          Alcotest.test_case "outermost first" `Quick test_driver_outermost_first;
          Alcotest.test_case "fuel" `Quick test_driver_fuel ] );
      ( "counters",
        [ Alcotest.test_case "ticks" `Quick test_counters ] );
      ( "printers",
        [ Alcotest.test_case "ADL notation" `Quick test_adl_pretty;
          Alcotest.test_case "plan notation" `Quick test_plan_pretty ] ) ]
