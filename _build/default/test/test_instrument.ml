(* Tests for the instrumented executor: per-node reports agree with plain
   execution, cardinalities are exact, and work attribution is local. *)

open Njq_adl
open Dsl
module Plan = Njq_engine.Plan
module Planner = Njq_engine.Planner
module Exec = Njq_engine.Exec
module Instrument = Njq_engine.Instrument

let cat () = Util.small_catalog ()

let semijoin_plan () =
  Planner.plan
    (semijoin ~x:"s" ~y:"p"
       (exists "z" (var "s" $. "parts_supplied") (eq (var "z") (var "p" $. "oid")))
       (table "SUPPLIER")
       (select "p" (table "PART") (eq (var "p" $. "color") (str "red"))))

let test_same_result () =
  let cat = cat () in
  let plan = semijoin_plan () in
  let plain = Exec.run cat plan in
  let instrumented, _ = Instrument.run cat plan in
  Alcotest.check Util.value "instrumented = plain" plain instrumented

let test_report_structure () =
  let cat = cat () in
  let plan = semijoin_plan () in
  let _, reports = Instrument.run cat plan in
  (* pre-order: root first, then left subtree, then right subtree *)
  (match reports with
   | root :: rest ->
     Alcotest.(check int) "root depth" 0 root.Instrument.depth;
     Alcotest.(check string) "root label" "member_semijoin" root.Instrument.label;
     Alcotest.(check bool) "children deeper" true
       (List.for_all (fun r -> r.Instrument.depth >= 1) rest)
   | [] -> Alcotest.fail "empty report");
  Alcotest.(check int) "one report per node" 4 (List.length reports)

let test_exact_cardinalities () =
  let cat = cat () in
  let _, reports = Instrument.run cat (semijoin_plan ()) in
  let by_label l =
    match List.find_opt (fun r -> r.Instrument.label = l) reports with
    | Some r -> r
    | None -> Alcotest.failf "no report for %s" l
  in
  Alcotest.(check int) "scan cardinality" 4 (by_label "scan SUPPLIER").Instrument.rows;
  (* red parts: oid 1 (bolt) and oid 3 (cam) *)
  Alcotest.(check int) "filter cardinality" 2 (by_label "filter").Instrument.rows;
  (* suppliers supplying a red part: s0 {1,2}, s1 {1,2,3,4} *)
  Alcotest.(check int) "semijoin cardinality" 2
    (by_label "member_semijoin").Instrument.rows

let test_local_work_attribution () =
  let cat = cat () in
  let _, reports = Instrument.run cat (semijoin_plan ()) in
  List.iter
    (fun r ->
      match r.Instrument.label with
      | "filter" ->
        Alcotest.(check bool) "filter ticks filter_eval only" true
          (List.mem_assoc "filter_eval" r.Instrument.work
           && not (List.mem_assoc "scan_row" r.Instrument.work))
      | "member_semijoin" ->
        Alcotest.(check bool) "semijoin ticks hash counters" true
          (List.mem_assoc "hash_build" r.Instrument.work
           && List.mem_assoc "hash_probe" r.Instrument.work)
      | _ -> ())
    reports

(* Differential: instrumented execution equals plain execution on the full
   corpus (Materialized splicing must not change any operator's result). *)
let test_corpus_equivalence () =
  let gcat =
    Njq_workload.Generator.catalog
      { Njq_workload.Generator.default_config with dangling_rate = 0.0 }
  in
  List.iter
    (fun (q : Njq_workload.Queries.query) ->
      let adl = Njq_workload.Queries.to_adl q in
      let plan = Planner.plan (Njq_core.Strategy.optimize gcat adl) in
      let plain = Exec.run gcat plan in
      let instrumented, reports = Instrument.run gcat plan in
      Alcotest.check Util.value (q.id ^ " equal") plain instrumented;
      Alcotest.(check bool) (q.id ^ " has reports") true (reports <> []))
    (Njq_workload.Queries.all @ Njq_workload.Queries.extended)

let prop_instrumented_equal =
  Util.qcheck ~count:120 "instrumented = plain on random plans"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let plan =
        Planner.plan (Njq_core.Strategy.optimize cat (select "x" (table "X") pred))
      in
      Value.equal (Exec.run cat plan) (fst (Instrument.run cat plan)))

let () =
  Alcotest.run "instrument"
    [ ( "instrumentation",
        [ Alcotest.test_case "same result" `Quick test_same_result;
          Alcotest.test_case "report structure" `Quick test_report_structure;
          Alcotest.test_case "exact cardinalities" `Quick test_exact_cardinalities;
          Alcotest.test_case "local work attribution" `Quick test_local_work_attribution;
          Alcotest.test_case "corpus equivalence" `Quick test_corpus_equivalence ] );
      ("properties", [ prop_instrumented_equal ]) ]
