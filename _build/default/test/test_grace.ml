(* Tests for the Grace-style partitioned hash join: equivalence with the
   in-memory hash join across memory budgets and join kinds, partition
   accounting, and guard rails. *)

open Njq_adl
open Dsl
module Plan = Njq_engine.Plan
module Exec = Njq_engine.Exec
module Planner = Njq_engine.Planner

let grace ~kind ~budget left right =
  Plan.GraceJoin
    { kind; xvar = "x"; yvar = "y";
      keys = [ (var "x" $. "a", var "y" $. "d") ]; residual = Expr.true_;
      mem_budget = budget; left; right }

let logical kind =
  Expr.Join
    { kind; xvar = "x"; yvar = "y";
      pred = eq (var "x" $. "a") (var "y" $. "d"); left = Expr.Table "X";
      right = Expr.Table "Y" }

let test_matches_hash_join () =
  let cat = Njq_workload.Generator.xy_catalog ~seed:12 96 in
  List.iter
    (fun kind ->
      let expected = Eval.run cat (logical kind) in
      List.iter
        (fun budget ->
          let got =
            Exec.run cat (grace ~kind ~budget (Plan.Scan "X") (Plan.Scan "Y"))
          in
          Alcotest.check Util.value
            (Printf.sprintf "%s at budget %d" (Plan.kind_name kind) budget)
            expected got)
        [ 1; 7; 32; 1000 ])
    [ Expr.Inner; Expr.Semi; Expr.Anti ]

let test_partition_count () =
  let cat = Njq_workload.Generator.xy_catalog ~seed:12 64 in
  Counters.reset ();
  ignore (Exec.run cat (grace ~kind:Expr.Inner ~budget:16 (Plan.Scan "X") (Plan.Scan "Y")));
  Alcotest.(check int) "ceil(64/16) partitions" 4 (Counters.get "grace_partition");
  Alcotest.(check int) "each row partitioned once" 128
    (Counters.get "grace_partition_row")

let test_guards () =
  let cat = Njq_workload.Generator.xy_catalog ~seed:12 8 in
  Alcotest.check_raises "outer join rejected"
    (Exec.Exec_error "grace join does not support outer joins") (fun () ->
      ignore
        (Exec.run cat
           (Plan.GraceJoin
              { kind = Expr.LeftOuter [ "d"; "e" ]; xvar = "x"; yvar = "y";
                keys = [ (var "x" $. "a", var "y" $. "d") ];
                residual = Expr.true_; mem_budget = 4; left = Plan.Scan "X";
                right = Plan.Scan "Y" })));
  Alcotest.check_raises "zero budget rejected"
    (Exec.Exec_error "grace join: memory budget must be positive") (fun () ->
      ignore
        (Exec.run cat
           (grace ~kind:Expr.Inner ~budget:0 (Plan.Scan "X") (Plan.Scan "Y"))))

(* Anti join: left rows in partitions with no right rows must survive. *)
let test_anti_dangling_partitions () =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt) ])
    (List.init 20 (fun i -> Value.tuple [ ("a", Value.int i) ]));
  Catalog.add_table cat ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 0) ] ];
  let kind = Expr.Anti in
  let expected = Eval.run cat (logical kind) in
  Alcotest.(check int) "19 dangling rows" 19 (Value.set_size expected);
  let got = Exec.run cat (grace ~kind ~budget:1 (Plan.Scan "X") (Plan.Scan "Y")) in
  Alcotest.check Util.value "anti join across partitions" expected got

let prop_grace_differential =
  Util.qcheck ~count:150 "grace join matches reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      List.for_all
        (fun kind ->
          let expected = Eval.run cat (logical kind) in
          List.for_all
            (fun budget ->
              Value.equal expected
                (Exec.run cat
                   (grace ~kind ~budget (Plan.Scan "X") (Plan.Scan "Y"))))
            [ 1; 3 ])
        [ Expr.Inner; Expr.Semi; Expr.Anti ])

let () =
  Alcotest.run "grace"
    [ ( "grace join",
        [ Alcotest.test_case "matches hash join" `Quick test_matches_hash_join;
          Alcotest.test_case "partition count" `Quick test_partition_count;
          Alcotest.test_case "guards" `Quick test_guards;
          Alcotest.test_case "anti join dangling partitions" `Quick
            test_anti_dangling_partitions ] );
      ("properties", [ prop_grace_differential ]) ]
