(* Tests for the ADL type language. *)

open Njq_adl

let tt fields = Vtype.tuple fields

let test_equal_structural () =
  Alcotest.check Util.vtype "field order irrelevant"
    (tt [ ("a", Vtype.TInt); ("b", Vtype.TString) ])
    (tt [ ("b", Vtype.TString); ("a", Vtype.TInt) ]);
  Alcotest.(check bool) "set types" true
    (Vtype.equal (Vtype.TSet Vtype.TInt) (Vtype.TSet Vtype.TInt));
  Alcotest.(check bool) "distinct" false (Vtype.equal Vtype.TInt Vtype.TBool)

let test_compat_wildcard () =
  Alcotest.(check bool) "TAny left" true (Vtype.compat Vtype.TAny Vtype.TInt);
  Alcotest.(check bool) "TAny nested" true
    (Vtype.compat (Vtype.TSet Vtype.TAny) (Vtype.TSet (tt [ ("a", Vtype.TInt) ])));
  Alcotest.(check bool) "ref vs oid" true (Vtype.compat (Vtype.TRef "PART") Vtype.TOid);
  Alcotest.(check bool) "incompatible" false (Vtype.compat Vtype.TInt Vtype.TString)

let test_lub () =
  Alcotest.check Util.vtype "lub picks informative side"
    (Vtype.TSet Vtype.TInt)
    (Vtype.lub (Vtype.TSet Vtype.TAny) (Vtype.TSet Vtype.TInt))

let test_sch () =
  let table = Vtype.TSet (tt [ ("b", Vtype.TInt); ("a", Vtype.TString) ]) in
  Alcotest.(check (list string)) "sch sorted" [ "a"; "b" ] (Vtype.sch table);
  Alcotest.check_raises "sch of non-table"
    (Vtype.Type_error "SCH applied to a non-table type") (fun () ->
      ignore (Vtype.sch Vtype.TInt))

let test_projections () =
  let row = tt [ ("a", Vtype.TInt); ("b", Vtype.TBool); ("c", Vtype.TString) ] in
  Alcotest.check Util.vtype "project"
    (tt [ ("a", Vtype.TInt); ("c", Vtype.TString) ])
    (Vtype.project row [ "a"; "c" ]);
  Alcotest.check Util.vtype "project away"
    (tt [ ("b", Vtype.TBool) ])
    (Vtype.project_away row [ "a"; "c" ]);
  Alcotest.check Util.vtype "concat"
    (tt [ ("a", Vtype.TInt); ("d", Vtype.TDate) ])
    (Vtype.concat (tt [ ("a", Vtype.TInt) ]) (tt [ ("d", Vtype.TDate) ]))

let test_of_value () =
  Alcotest.check Util.vtype "tuple of set"
    (tt [ ("s", Vtype.TSet Vtype.TInt) ])
    (Vtype.of_value (Value.tuple [ ("s", Value.set [ Value.int 1 ]) ]));
  Alcotest.check_raises "empty set has no type"
    (Vtype.Type_error "empty set has no inferable element type") (fun () ->
      ignore (Vtype.of_value (Value.set [])))

let test_check_value () =
  let ty = Vtype.TSet (tt [ ("a", Vtype.TInt) ]) in
  Alcotest.(check bool) "empty set inhabits any set type" true
    (Vtype.check_value ty (Value.set []));
  Alcotest.(check bool) "row matches" true
    (Vtype.check_value ty (Value.set [ Value.tuple [ ("a", Value.int 1) ] ]));
  Alcotest.(check bool) "wrong field type" false
    (Vtype.check_value ty (Value.set [ Value.tuple [ ("a", Value.bool true) ] ]));
  Alcotest.(check bool) "ref accepts oid value" true
    (Vtype.check_value (Vtype.TRef "PART") (Value.oid 3))

let prop_of_value_check =
  Util.qcheck "of_value's type accepts the value" Util.arbitrary_value (fun v ->
      match Vtype.of_value v with
      | t -> Vtype.check_value t v
      | exception Vtype.Type_error _ ->
        (* Only empty sets (possibly nested) lack a type. *)
        true)

let () =
  Alcotest.run "vtype"
    [ ( "unit",
        [ Alcotest.test_case "structural equality" `Quick test_equal_structural;
          Alcotest.test_case "compat wildcard" `Quick test_compat_wildcard;
          Alcotest.test_case "lub" `Quick test_lub;
          Alcotest.test_case "sch" `Quick test_sch;
          Alcotest.test_case "projections" `Quick test_projections;
          Alcotest.test_case "of_value" `Quick test_of_value;
          Alcotest.test_case "check_value" `Quick test_check_value ] );
      ("properties", [ prop_of_value_check ]) ]
