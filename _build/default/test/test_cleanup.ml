(* Tests for the final cleanup phase: projection-join reduction and
   union pushdowns, each checked for shape and for semantics. *)

open Njq_adl
open Dsl
module Rules = Njq_core.Rules
module Cleanup = Njq_core.Cleanup

let cat () = Util.small_catalog ()

let run_rules cat e = fst (Rules.fixpoint_simplify cat Cleanup.rules e)

let check_semantics name cat e =
  let e' = run_rules cat e in
  Alcotest.check Util.value name (Eval.run cat e) (Eval.run cat e')

let rec contains p e =
  p e || Expr.fold_children (fun acc c -> acc || contains p c) false e

let test_project_join_to_semijoin () =
  let cat = cat () in
  (* part names of supplied parts: the join's right side only witnesses *)
  let e =
    project [ "sname" ]
      (join ~x:"s" ~y:"p"
         (ni (var "s" $. "parts_supplied") (var "p" $. "pid"))
         (table "SUPPLIER")
         (map_ "p" (table "PART") (tuple [ ("pid", var "p" $. "oid") ])))
  in
  let e' = run_rules cat e in
  Alcotest.(check bool) "inner join becomes semijoin" true
    (contains (function Expr.Join { kind = Expr.Semi; _ } -> true | _ -> false) e');
  Alcotest.(check bool) "no inner join left" false
    (contains (function Expr.Join { kind = Expr.Inner; _ } -> true | _ -> false) e');
  check_semantics "semantics preserved" cat e

let test_project_merging () =
  let cat = cat () in
  let e = project [ "sname" ] (project [ "sname"; "oid" ] (table "SUPPLIER")) in
  let e' = run_rules cat e in
  (match e' with
   | Expr.Project ([ "sname" ], Expr.Table "SUPPLIER") -> ()
   | _ -> Alcotest.failf "expected merged projection, got %a" Pretty.pp e');
  check_semantics "semantics preserved" cat e

let test_project_identity () =
  let cat = cat () in
  let e = project [ "oid"; "parts_supplied"; "sname" ] (table "SUPPLIER") in
  Alcotest.check Util.expr "identity projection removed" (table "SUPPLIER")
    (run_rules cat e)

let test_union_distribution () =
  let cat = cat () in
  let reds = select "p" (table "PART") (eq (var "p" $. "color") (str "red")) in
  let blues = select "p" (table "PART") (eq (var "p" $. "color") (str "blue")) in
  let e =
    select "q" (union reds blues) (gt (var "q" $. "price") (int 8))
  in
  let e' = run_rules cat e in
  (match e' with
   | Expr.Union (Expr.Select _, Expr.Select _) -> ()
   | _ -> Alcotest.failf "expected distributed selection, got %a" Pretty.pp e');
  check_semantics "selection over union" cat e;
  check_semantics "map over union" cat
    (map_ "q" (union reds blues) (var "q" $. "pname"));
  check_semantics "projection over union" cat
    (project [ "pname" ] (union reds blues))

let test_project_into_semijoin () =
  let cat = cat () in
  let e =
    project [ "oid"; "parts_supplied" ]
      (semijoin ~x:"s" ~y:"p"
         (ni (var "s" $. "parts_supplied") (var "p" $. "oid"))
         (table "SUPPLIER") (table "PART"))
  in
  let e' = run_rules cat e in
  (match e' with
   | Expr.Join { kind = Expr.Semi; left = Expr.Project _; _ } -> ()
   | _ -> Alcotest.failf "expected pushed projection, got %a" Pretty.pp e');
  check_semantics "semantics preserved" cat e;
  (* Not pushed when the predicate needs a dropped attribute. *)
  let blocked =
    project [ "oid" ]
      (semijoin ~x:"s" ~y:"p"
         (ni (var "s" $. "parts_supplied") (var "p" $. "oid"))
         (table "SUPPLIER") (table "PART"))
  in
  let b' = run_rules cat blocked in
  (match b' with
   | Expr.Project ([ "oid" ], Expr.Join _) -> ()
   | _ -> Alcotest.failf "projection must stay outside, got %a" Pretty.pp b');
  check_semantics "blocked case semantics" cat blocked

(* Cleanup must never change semantics on random nested predicates (it runs
   inside the strategy, which is already property-tested; this pins the
   rules in isolation). *)
let prop_cleanup_sound =
  Util.qcheck ~count:200 "cleanup rules preserve semantics"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let e = project [ "a" ] (select "x" (table "X") pred) in
      Value.equal (Eval.run cat e) (Eval.run cat (run_rules cat e)))

let () =
  Alcotest.run "cleanup"
    [ ( "rules",
        [ Alcotest.test_case "π∘⋈→⋉" `Quick test_project_join_to_semijoin;
          Alcotest.test_case "π merging" `Quick test_project_merging;
          Alcotest.test_case "π identity" `Quick test_project_identity;
          Alcotest.test_case "union distribution" `Quick test_union_distribution;
          Alcotest.test_case "π into semijoin" `Quick test_project_into_semijoin ] );
      ("properties", [ prop_cleanup_sound ]) ]
