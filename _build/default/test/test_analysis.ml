(* Tests for free variables, substitution and structural search. *)

open Njq_adl
open Dsl

let fv e = Analysis.S.elements (Analysis.free_vars e)

let test_free_vars () =
  Alcotest.(check (list string)) "var" [ "x" ] (fv (var "x"));
  Alcotest.(check (list string)) "quantifier binds in pred"
    [ "y" ]
    (fv (exists "x" (var "y") (eq (var "x") (int 1))));
  Alcotest.(check (list string)) "range is not in scope"
    [ "x" ]
    (fv (exists "x" (var "x") (bool true)));
  Alcotest.(check (list string)) "select binds"
    []
    (fv (select "x" (table "T") (eq (var "x" $. "a") (int 1))));
  Alcotest.(check (list string)) "join binds both"
    [ "z" ]
    (fv
       (semijoin ~x:"a" ~y:"b"
          (eq (var "a" $. "k") (var "b" $. "k") &&& eq (var "z") (int 1))
          (table "T") (table "U")));
  Alcotest.(check (list string)) "nestjoin body binds"
    []
    (fv (nestjoin ~x:"a" ~y:"b" ~attr:"g" ~body:(var "b" $. "e") (bool true)
           (table "T") (table "U")))

let test_subst_basic () =
  Alcotest.check Util.expr "replaces free occurrence" (int 5)
    (Analysis.subst1 "x" (int 5) (var "x"));
  Alcotest.check Util.expr "respects shadowing"
    (exists "x" (int 5) (eq (var "x") (int 1)))
    (Analysis.subst1 "x" (int 5) (exists "x" (var "x") (eq (var "x") (int 1))))

let test_subst_capture_avoidance () =
  (* Substituting y := x under a binder for x must rename the binder. *)
  let e = exists "x" (table "T") (eq (var "x") (var "y")) in
  let result = Analysis.subst1 "y" (var "x") e in
  (match result with
   | Expr.Quant (Expr.Exists, x', _, Expr.Cmp (Expr.Eq, Expr.Var inner, Expr.Var replaced)) ->
     Alcotest.(check bool) "binder renamed" false (String.equal x' "x");
     Alcotest.(check string) "binder use follows" x' inner;
     Alcotest.(check string) "free var inserted" "x" replaced
   | _ -> Alcotest.fail "unexpected shape");
  (* And the result must evaluate correctly. *)
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"T" ~row_type:(Vtype.tuple [ ("a", Vtype.TInt) ])
    [ Value.tuple [ ("a", Value.int 1) ] ];
  ignore cat

let test_uses_base_table () =
  Alcotest.(check bool) "direct" true (Analysis.uses_base_table (table "T"));
  Alcotest.(check bool) "nested in predicate" true
    (Analysis.uses_base_table
       (select "x" (var "c") (exists "y" (table "T") (bool true))));
  Alcotest.(check bool) "attribute only" false
    (Analysis.uses_base_table (select "x" (var "c") (bool true)));
  Alcotest.(check bool) "deref is not a base-table iteration" false
    (Analysis.uses_base_table (deref "PART" (var "r")))

let test_base_tables () =
  Alcotest.(check (list string)) "collects"
    [ "T"; "U" ]
    (Analysis.S.elements
       (Analysis.base_tables (product (table "T") (select "x" (table "U") (bool true)))))

let test_is_base_table_expr () =
  Alcotest.(check bool) "table" true (Analysis.is_base_table_expr (table "T"));
  Alcotest.(check bool) "selection over table" true
    (Analysis.is_base_table_expr (select "x" (table "T") (bool true)));
  Alcotest.(check bool) "attribute" false
    (Analysis.is_base_table_expr (var "s" $. "parts"))

let test_replace_subexpr () =
  let needle = select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")) in
  let host = subseteq (var "x" $. "c") needle in
  Alcotest.check Util.expr "replaced"
    (subseteq (var "x" $. "c") (var "G"))
    (Analysis.replace_subexpr ~old_e:needle ~by:(var "G") host);
  Alcotest.(check int) "count" 1 (Analysis.count_subexpr ~needle host)

let test_size_and_find () =
  let e = select "x" (table "T") (exists "y" (table "U") (bool true)) in
  Alcotest.(check bool) "size positive" true (Analysis.size e > 4);
  let tables = Analysis.find_all (function Expr.Table _ -> true | _ -> false) e in
  Alcotest.(check int) "find_all finds both tables" 2 (List.length tables)

let () =
  Alcotest.run "analysis"
    [ ( "analysis",
        [ Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "substitution" `Quick test_subst_basic;
          Alcotest.test_case "capture avoidance" `Quick test_subst_capture_avoidance;
          Alcotest.test_case "uses_base_table" `Quick test_uses_base_table;
          Alcotest.test_case "base_tables" `Quick test_base_tables;
          Alcotest.test_case "is_base_table_expr" `Quick test_is_base_table_expr;
          Alcotest.test_case "replace_subexpr" `Quick test_replace_subexpr;
          Alcotest.test_case "size/find" `Quick test_size_and_find ] ) ]
