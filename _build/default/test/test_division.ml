(* Tests for the division-based unnesting of universal quantification
   (Section 5.2.1 / Codd's division), the ablation alternative to the
   antijoin of Rule 1. *)

open Njq_adl
module Strategy = Njq_core.Strategy
module Gen = Njq_workload.Generator

let division_options =
  { Strategy.default_options with Strategy.enable_division = true }

(* "Suppliers supplying all <color> parts" in OOSQL. *)
let coverage_query color =
  Fmt.str
    {| select s.sname from s in SUPPLIER
       where forall p in PART : not (p.color = %S) or p.oid in s.parts_supplied |}
    color

let translate q = fst (Njq_oosql.Translate.query_string Njq_workload.Queries.schema q)

let rec contains p e =
  p e || Expr.fold_children (fun acc c -> acc || contains p c) false e

let has_division e = contains (function Expr.Divide _ -> true | _ -> false) e

let test_rule_fires () =
  let cat = Gen.catalog { (Gen.scaled ~seed:3 32) with Gen.dangling_rate = 0.0 } in
  let q = translate (coverage_query "red") in
  let out = Strategy.optimize ~options:division_options cat q in
  Alcotest.(check bool) "division operator introduced" true (has_division out);
  (* The default strategy produces the antijoin instead. *)
  let anti = Strategy.optimize cat q in
  Alcotest.(check bool) "default avoids division" false (has_division anti)

let test_equivalence_across_scales () =
  List.iter
    (fun (seed, n) ->
      let cat =
        Gen.catalog
          { (Gen.scaled ~seed n) with Gen.dangling_rate = 0.0; Gen.empty_rate = 0.3 }
      in
      List.iter
        (fun color ->
          let q = translate (coverage_query color) in
          let expected = Eval.run cat q in
          let div = Strategy.optimize ~options:division_options cat q in
          Alcotest.check Util.value
            (Printf.sprintf "seed %d n %d color %s (eval)" seed n color)
            expected (Eval.run cat div);
          Alcotest.check Util.value
            (Printf.sprintf "seed %d n %d color %s (engine)" seed n color)
            expected
            (Njq_engine.Planner.run cat div))
        [ "red"; "green" ])
    [ (1, 8); (2, 16); (3, 32); (4, 64) ]

(* The empty-divisor corner: a color no part has.  Every supplier —
   including those with an empty parts set — vacuously qualifies. *)
let test_empty_divisor () =
  let cat =
    Gen.catalog
      { (Gen.scaled ~seed:5 16) with Gen.dangling_rate = 0.0; Gen.empty_rate = 0.5 }
  in
  let q = translate (coverage_query "no-such-color") in
  let div = Strategy.optimize ~options:division_options cat q in
  let expected = Eval.run cat q in
  Alcotest.(check int) "all suppliers qualify vacuously"
    (Catalog.cardinality cat "SUPPLIER")
    (Value.set_size expected);
  Alcotest.check Util.value "division result" expected (Eval.run cat div);
  Alcotest.check Util.value "engine result" expected (Njq_engine.Planner.run cat div)

(* A supplier whose set-valued attribute is empty must not qualify when the
   divisor is non-empty — μ drops it and the union term is empty. *)
let test_empty_attribute () =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"PART" ~row_type:Gen.part_row_type
    [ Util.part ~oid:1 ~pname:"bolt" ~price:1 ~color:"red" ];
  Catalog.add_table cat ~name:"SUPPLIER" ~row_type:Gen.supplier_row_type
    [ Util.supplier ~oid:10 ~sname:"has" ~parts:[ 1 ];
      Util.supplier ~oid:11 ~sname:"empty" ~parts:[] ];
  let q = translate (coverage_query "red") in
  let div = Strategy.optimize ~options:division_options cat q in
  let expected = Value.set [ Value.string "has" ] in
  Alcotest.check Util.value "reference" expected (Eval.run cat q);
  Alcotest.check Util.value "division" expected (Eval.run cat div)

(* Two suppliers differing only in their parts set: the oid guard keeps the
   rewrite applicable (oids differ), and no element pooling occurs. *)
let test_no_pooling () =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"PART" ~row_type:Gen.part_row_type
    [ Util.part ~oid:1 ~pname:"a" ~price:1 ~color:"red";
      Util.part ~oid:2 ~pname:"b" ~price:1 ~color:"red" ];
  Catalog.add_table cat ~name:"SUPPLIER" ~row_type:Gen.supplier_row_type
    [ Util.supplier ~oid:10 ~sname:"half1" ~parts:[ 1 ];
      Util.supplier ~oid:11 ~sname:"half2" ~parts:[ 2 ];
      Util.supplier ~oid:12 ~sname:"full" ~parts:[ 1; 2 ] ];
  let q = translate (coverage_query "red") in
  let div = Strategy.optimize ~options:division_options cat q in
  let expected = Value.set [ Value.string "full" ] in
  Alcotest.check Util.value "only the full supplier" expected (Eval.run cat q);
  Alcotest.check Util.value "division agrees" expected (Eval.run cat div)

(* Property: antijoin and division strategies agree on random databases. *)
let prop_division_vs_antijoin =
  Util.qcheck ~count:60 "division ≡ antijoin on random databases"
    QCheck.(pair (int_range 1 1000) (int_range 4 32))
    (fun (seed, n) ->
      let cat =
        Gen.catalog
          { (Gen.scaled ~seed n) with Gen.dangling_rate = 0.0; Gen.empty_rate = 0.25 }
      in
      let q = translate (coverage_query "red") in
      let anti = Strategy.optimize cat q in
      let div = Strategy.optimize ~options:division_options cat q in
      Value.equal (Eval.run cat anti) (Eval.run cat div)
      && Value.equal
           (Njq_engine.Planner.run cat anti)
           (Njq_engine.Planner.run cat div))

(* The engine's hash division agrees with the reference division operator. *)
let prop_engine_division =
  Util.qcheck ~count:150 "hash division matches reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let open Dsl in
      let dividend =
        map_ "y" (table "Y") (tuple [ ("d", var "y" $. "d"); ("e", var "y" $. "e") ])
      in
      let divisor = project [ "e" ] (table "Y") in
      let e = divide dividend divisor in
      Value.equal (Eval.run cat e) (Njq_engine.Planner.run cat e))

let () =
  Alcotest.run "division"
    [ ( "rewrite",
        [ Alcotest.test_case "rule fires under the option" `Quick test_rule_fires;
          Alcotest.test_case "equivalence across scales" `Quick test_equivalence_across_scales;
          Alcotest.test_case "empty divisor corner" `Quick test_empty_divisor;
          Alcotest.test_case "empty attribute corner" `Quick test_empty_attribute;
          Alcotest.test_case "no element pooling" `Quick test_no_pooling ] );
      ( "properties",
        [ prop_division_vs_antijoin; prop_engine_division ] ) ]
