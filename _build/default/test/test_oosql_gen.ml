(* Randomized OOSQL-level testing: a generator of well-typed OOSQL queries
   against the supplier-part schema, used to property-test the whole
   front-end — pretty-printer round trips, translation totality and typing,
   and end-to-end pipeline soundness starting from surface syntax. *)

open Njq_adl
module Ast = Njq_oosql.Ast
module Parser = Njq_oosql.Parser
module Sqlpretty = Njq_oosql.Sqlpretty
module Translate = Njq_oosql.Translate
module Gen = Njq_workload.Generator

let p0 = Ast.dummy_pos

(* Expression builders (positions are irrelevant to semantics). *)
let v x = Ast.EVar (x, p0)
let path e a = Ast.EPath (e, a, p0)
let ilit n = Ast.ELit (Ast.LInt n, p0)
let slit s = Ast.ELit (Ast.LString s, p0)
let bin op a b = Ast.EBin (op, a, b, p0)
let quant q x r pred = Ast.EQuant (q, x, r, pred, p0)
let sfw proj froms where = Ast.ESfw ({ proj; froms; where }, p0)

(* Boolean predicates over a supplier variable [s], nesting over PART. *)
let gen_supplier_pred : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let color = oneofl [ "red"; "green"; "blue"; "yellow"; "black" ] in
  let part_pred pv =
    oneof
      [ (let* c = color in
         return (bin Ast.Eq (path (v pv) "color") (slit c)));
        (let* k = int_range 0 400 in
         let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
         return (bin op (path (v pv) "price") (ilit k))) ]
  in
  let atom =
    oneof
      [ (* correlated existential over PART *)
        (let* pp = part_pred "p" in
         return
           (quant Ast.QExists "p" (v "PART")
              (Some
                 (bin Ast.And
                    (bin Ast.In (path (v "p") "oid") (path (v "s") "parts_supplied"))
                    pp))));
        (* universal over PART *)
        (let* pp = part_pred "p" in
         return
           (quant Ast.QForall "p" (v "PART")
              (Some
                 (bin Ast.Or
                    (Ast.ENot (pp, p0))
                    (bin Ast.In (path (v "p") "oid") (path (v "s") "parts_supplied"))))));
        (* subquery count comparison *)
        (let* pp = part_pred "q" in
         let* k = int_range 0 3 in
         let* op = oneofl [ Ast.Eq; Ast.Le; Ast.Gt ] in
         let sub =
           sfw (v "q")
             [ ("q", v "PART") ]
             (Some
                (bin Ast.And
                   (bin Ast.In (path (v "q") "oid") (path (v "s") "parts_supplied"))
                   pp))
         in
         return (bin op (Ast.EAgg (Ast.ACount, sub, p0)) (ilit k)));
        (* subquery set comparison against the stored attribute *)
        (let* pp = part_pred "q" in
         let* op = oneofl [ Ast.SubsetEq; Ast.SupsetEq; Ast.Eq; Ast.SubsetOp ] in
         let sub =
           sfw (path (v "q") "oid") [ ("q", v "PART") ] (Some pp)
         in
         return (bin op (path (v "s") "parts_supplied") sub));
        (* emptiness of the attribute *)
        return (bin Ast.Eq (path (v "s") "parts_supplied") (Ast.ESet ([], p0)));
        (* plain scalar predicate *)
        (let* c = oneofl [ "s0"; "s1"; "s2" ] in
         return (bin Ast.Neq (path (v "s") "sname") (slit c))) ]
  in
  sized_size (int_range 0 2) @@ fix (fun self n ->
      if n = 0 then atom
      else
        frequency
          [ (3, atom);
            (2,
             let* a = self (n - 1) in
             let* b = self (n - 1) in
             let* op = oneofl [ Ast.And; Ast.Or ] in
             return (bin op a b));
            (1, map (fun a -> Ast.ENot (a, p0)) (self (n - 1))) ])

(* A whole query: either a filtered scan or a grouping report. *)
let gen_query : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let* pred = gen_supplier_pred in
  oneof
    [ return (sfw (path (v "s") "sname") [ ("s", v "SUPPLIER") ] (Some pred));
      return
        (sfw
           (Ast.ETuple
              ( [ ("n", path (v "s") "sname");
                  ( "ps",
                    sfw (path (v "p") "pname")
                      [ ("p", v "PART") ]
                      (Some
                         (bin Ast.In (path (v "p") "oid")
                            (path (v "s") "parts_supplied"))) ) ],
                p0 ))
           [ ("s", v "SUPPLIER") ]
           (Some pred)) ]

let arbitrary_query =
  QCheck.make gen_query ~print:Sqlpretty.to_string

let schema = Njq_workload.Queries.schema

(* Pretty-printed queries re-parse to the same text. *)
let prop_pretty_roundtrip =
  Util.qcheck ~count:300 "OOSQL pretty round trip" arbitrary_query (fun q ->
      let printed = Sqlpretty.to_string q in
      let reparsed = Parser.parse_query printed in
      String.equal printed (Sqlpretty.to_string reparsed))

(* Every generated query translates and typechecks. *)
let prop_translation_total =
  Util.qcheck ~count:300 "generated queries translate and typecheck"
    arbitrary_query
    (fun q ->
      let cat = Gen.catalog { Gen.default_config with dangling_rate = 0.0 } in
      match Translate.query schema q with
      | adl, declared ->
        (match Typecheck.infer cat [] adl with
         | inferred -> Vtype.compat declared inferred
         | exception Vtype.Type_error _ -> false)
      | exception Translate.Translate_error _ -> false)

(* End-to-end: optimized + planned execution equals naive evaluation, from
   surface syntax, across grouping modes. *)
let prop_pipeline_sound =
  Util.qcheck ~count:150 "full pipeline soundness from OOSQL"
    QCheck.(pair arbitrary_query (int_range 1 100))
    (fun (q, seed) ->
      let cat =
        Gen.catalog
          { (Gen.scaled ~seed 24) with Gen.dangling_rate = 0.0; Gen.empty_rate = 0.2 }
      in
      let adl, _ = Translate.query schema q in
      let expected = Eval.run cat adl in
      List.for_all
        (fun mode ->
          let options =
            { Njq_core.Strategy.default_options with
              Njq_core.Strategy.grouping_mode = mode }
          in
          let out = Njq_core.Strategy.optimize ~options cat adl in
          Value.equal expected (Njq_engine.Planner.run cat out))
        [ Njq_core.Strategy.Nestjoin_always;
          Njq_core.Strategy.Flat_join_when_safe;
          Njq_core.Strategy.Outerjoin ])

let () =
  Alcotest.run "oosql_gen"
    [ ( "properties",
        [ prop_pretty_roundtrip; prop_translation_total; prop_pipeline_sound ] ) ]
