(* Tests for predicate normalization: Table 1 (set comparison operators into
   quantifier expressions), Table 2 (emptiness-style predicates), negation
   pushing and range fusion.

   Every Table 1 row is verified semantically: the expansion and the
   original operator must agree on randomized operands, including empty
   sets. *)

open Njq_adl
open Dsl
module Normalize = Njq_core.Normalize

let cat0 = Catalog.create ()

let eval_bool e = Value.as_bool (Eval.run cat0 e)

(* Semantic check of [Normalize.expand_setcmp] on random concrete sets. *)
let table1_ops =
  [ ("∈", Expr.Mem); ("∉", Expr.NotMem); ("⊆", Expr.SubsetEq);
    ("⊂", Expr.Subset); ("⊇", Expr.SupsetEq); ("⊃", Expr.Supset);
    ("=", Expr.SetEq); ("≠", Expr.SetNeq) ]

let prop_table1 =
  Util.qcheck ~count:500 "Table 1 expansions are equivalences"
    QCheck.(pair Util.arbitrary_int_set Util.arbitrary_int_set)
    (fun (a, b) ->
      List.for_all
        (fun (_, op) ->
          let lhs, rhs =
            match op with
            | Expr.Mem | Expr.NotMem ->
              (* element-level membership: pick an element-shaped left side *)
              (Expr.Const (Value.int 2), Expr.Const b)
            | _ -> (Expr.Const a, Expr.Const b)
          in
          match Normalize.expand_setcmp op lhs rhs with
          | Some expanded ->
            eval_bool (Expr.SetCmp (op, lhs, rhs)) = eval_bool expanded
          | None -> false)
        table1_ops)

(* The 'ni' row needs a set-of-sets left operand. *)
let prop_table1_ni =
  Util.qcheck ~count:300 "Table 1 ∋ expansion"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 3) Util.arbitrary_int_set) Util.arbitrary_int_set)
    (fun (sets, b) ->
      let a = Value.set sets in
      List.for_all
        (fun op ->
          match Normalize.expand_setcmp op (Expr.Const a) (Expr.Const b) with
          | Some expanded ->
            eval_bool (Expr.SetCmp (op, Expr.Const a, Expr.Const b)) = eval_bool expanded
          | None -> false)
        [ Expr.Ni; Expr.NotNi ])

(* Table 2 rewrites, demonstrated as strategy-level equivalences on the
   supplier catalog. *)
let norm cat e = fst (Normalize.run cat e)

let test_emptiness_rewrites () =
  let cat = Util.small_catalog () in
  let red = select "p" (table "PART") (eq (var "p" $. "color") (str "red")) in
  (* Y' = {}  ~>  not exists *)
  let q1 = select "s" (table "SUPPLIER") (set_eq red empty) in
  let n1 = norm cat q1 in
  (match n1 with
   | Expr.Select { pred = Expr.Not (Expr.Quant (Expr.Exists, _, _, _)); _ } -> ()
   | e -> Alcotest.failf "expected ¬∃ form, got %a" Pretty.pp e);
  Util.check_value "same result" (Eval.run cat q1) (Eval.run cat n1);
  (* count(Y') = 0  ~>  not exists *)
  let q2 = select "s" (table "SUPPLIER") (eq (count red) (int 0)) in
  let n2 = norm cat q2 in
  (match n2 with
   | Expr.Select { pred = Expr.Not (Expr.Quant (Expr.Exists, _, _, _)); _ } -> ()
   | e -> Alcotest.failf "expected ¬∃ form, got %a" Pretty.pp e);
  Util.check_value "same result" (Eval.run cat q2) (Eval.run cat n2)

let test_intersection_rewrite () =
  let cat = Util.small_catalog () in
  let reds =
    map_ "p" (select "p" (table "PART") (eq (var "p" $. "color") (str "red")))
      (var "p" $. "oid")
  in
  let q =
    select "s" (table "SUPPLIER")
      (set_eq (inter (var "s" $. "parts_supplied") reds) empty)
  in
  let n = norm cat q in
  Util.check_value "∩=∅ rewrite preserves semantics" (Eval.run cat q) (Eval.run cat n);
  Alcotest.(check bool) "quantifier over the base-table side" true
    (match n with
     | Expr.Select { pred = Expr.Not (Expr.Quant (Expr.Exists, _, range, _)); _ } ->
       Analysis.uses_base_table range
     | _ -> false)

let test_forall_elimination () =
  let cat = Util.small_catalog () in
  let q =
    select "s" (table "SUPPLIER")
      (forall "p" (table "PART") (mem (var "p" $. "oid") (var "s" $. "parts_supplied")))
  in
  let n = norm cat q in
  (* No universal quantifier survives normalization. *)
  let rec has_forall e =
    (match e with Expr.Quant (Expr.Forall, _, _, _) -> true | _ -> false)
    || Expr.fold_children (fun acc c -> acc || has_forall c) false e
  in
  Alcotest.(check bool) "forall eliminated" false (has_forall n);
  Util.check_value "semantics kept" (Eval.run cat q) (Eval.run cat n)

let test_range_fusion () =
  let cat = Util.small_catalog () in
  let q =
    select "s" (table "SUPPLIER")
      (exists "p"
         (select "p" (table "PART") (eq (var "p" $. "color") (str "red")))
         (mem (var "p" $. "oid") (var "s" $. "parts_supplied")))
  in
  let n = norm cat q in
  (* After fusion the quantifier ranges directly over the base table. *)
  (match n with
   | Expr.Select { pred = Expr.Quant (Expr.Exists, _, Expr.Table "PART", _); _ } -> ()
   | e -> Alcotest.failf "expected fused range, got %a" Pretty.pp e);
  Util.check_value "semantics kept" (Eval.run cat q) (Eval.run cat n)

let test_map_range_fusion () =
  let cat = Util.small_catalog () in
  let q =
    select "s" (table "SUPPLIER")
      (exists "o"
         (map_ "p" (table "PART") (var "p" $. "oid"))
         (mem (var "o") (var "s" $. "parts_supplied")))
  in
  let n = norm cat q in
  Util.check_value "map fusion keeps semantics" (Eval.run cat q) (Eval.run cat n)

let test_hoist () =
  let cat = Util.small_catalog () in
  let q =
    select "s" (table "SUPPLIER")
      (exists "z" (var "s" $. "parts_supplied")
         (eq (var "s" $. "sname") (str "s1") &&& eq (var "z") (oid 1)))
  in
  let n = norm cat q in
  (match n with
   | Expr.Select { pred = Expr.And (Expr.Cmp (Expr.Eq, _, _), Expr.Quant _); _ } -> ()
   | e -> Alcotest.failf "expected hoisted conjunct, got %a" Pretty.pp e);
  Util.check_value "hoist keeps semantics" (Eval.run cat q) (Eval.run cat n)

(* The gating: comparisons between two stored attributes are never expanded,
   and 'subseteq' with the subquery on the right (non-unnestable per the
   paper) is left for the grouping phase. *)
let test_expansion_gating () =
  let cat = Util.small_catalog () in
  let attr_only =
    select "s" (table "SUPPLIER")
      (subseteq (var "s" $. "parts_supplied") (var "s" $. "parts_supplied"))
  in
  Alcotest.check Util.expr "attribute-only comparison untouched"
    (Fold.simplify attr_only) (norm cat attr_only);
  let sub =
    map_ "p" (select "p" (table "PART") (eq (var "p" $. "color") (str "red")))
      (var "p" $. "oid")
  in
  let non_unnestable =
    select "s" (table "SUPPLIER") (subseteq (var "s" $. "parts_supplied") sub)
  in
  (match norm cat non_unnestable with
   | Expr.Select { pred = Expr.SetCmp (Expr.SubsetEq, _, _); _ } -> ()
   | e -> Alcotest.failf "⊆ with base table on the right must survive, got %a" Pretty.pp e);
  (* ...but with the subquery on the left ('Rewriting Example 2') it expands. *)
  let unnestable =
    select "s" (table "SUPPLIER") (subseteq sub (var "s" $. "parts_supplied"))
  in
  match norm cat unnestable with
  | Expr.Select { pred = Expr.Not (Expr.Quant (Expr.Exists, _, _, _)); _ } -> ()
  | e -> Alcotest.failf "expected ¬∃ after expansion, got %a" Pretty.pp e

let () =
  Alcotest.run "normalize"
    [ ( "Table 1",
        [ prop_table1; prop_table1_ni ] );
      ( "Table 2 and fusion",
        [ Alcotest.test_case "emptiness" `Quick test_emptiness_rewrites;
          Alcotest.test_case "empty intersection" `Quick test_intersection_rewrite;
          Alcotest.test_case "forall elimination" `Quick test_forall_elimination;
          Alcotest.test_case "range select fusion" `Quick test_range_fusion;
          Alcotest.test_case "range map fusion" `Quick test_map_range_fusion;
          Alcotest.test_case "conjunct hoisting" `Quick test_hoist;
          Alcotest.test_case "expansion gating" `Quick test_expansion_gating ] ) ]
