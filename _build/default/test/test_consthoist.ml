(* Tests for uncorrelated-subquery hoisting (paper Section 3: uncorrelated
   subqueries are constants). *)

open Njq_adl
open Dsl
module Consthoist = Njq_engine.Consthoist

let cat () = Util.small_catalog ()

let rec contains p e =
  p e || Expr.fold_children (fun acc c -> acc || contains p c) false e

let has_table e = contains (function Expr.Table _ -> true | _ -> false) e

let red_oids =
  map_ "p" (select "p" (table "PART") (eq (var "p" $. "color") (str "red")))
    (var "p" $. "oid")

let test_hoists_uncorrelated () =
  let cat = cat () in
  (* sigma[s : s.parts 'inter' RED_OIDS <> {}](SUPPLIER): the subquery is
     closed and would be re-evaluated per supplier. *)
  let q =
    select "s" (table "SUPPLIER")
      (set_neq (inter (var "s" $. "parts_supplied") red_oids) empty)
  in
  let hoisted = Consthoist.hoist cat q in
  (match hoisted with
   | Expr.Select { pred; src = Expr.Table "SUPPLIER"; _ } ->
     Alcotest.(check bool) "no base table left in the predicate" false
       (has_table pred);
     Alcotest.(check bool) "a constant set appears" true
       (contains (function Expr.Const (Value.VSet _) -> true | _ -> false) pred)
   | e -> Alcotest.failf "unexpected shape %a" Pretty.pp e);
  Alcotest.check Util.value "semantics preserved" (Eval.run cat q)
    (Eval.run cat hoisted)

let test_keeps_correlated () =
  let cat = cat () in
  let correlated =
    select "s" (table "SUPPLIER")
      (exists "p" (table "PART")
         (mem (var "p" $. "oid") (var "s" $. "parts_supplied")))
  in
  let hoisted = Consthoist.hoist cat correlated in
  (* The quantifier range (Table PART) is itself closed, so it is hoisted
     to its row set; the correlated predicate around it must remain. *)
  (match hoisted with
   | Expr.Select { pred = Expr.Quant (Expr.Exists, _, Expr.Const (Value.VSet _), _); _ } ->
     ()
   | e -> Alcotest.failf "unexpected shape %a" Pretty.pp e);
  Alcotest.check Util.value "semantics preserved" (Eval.run cat correlated)
    (Eval.run cat hoisted)

let test_operands_untouched () =
  let cat = cat () in
  let q = semijoin ~x:"s" ~y:"p" (ni (var "s" $. "parts_supplied") (var "p" $. "oid"))
      (table "SUPPLIER")
      (select "p" (table "PART") (eq (var "p" $. "color") (str "red")))
  in
  let hoisted = Consthoist.hoist cat q in
  (match hoisted with
   | Expr.Join { left = Expr.Table "SUPPLIER"; right = Expr.Select { src = Expr.Table "PART"; _ }; _ } ->
     ()
   | e -> Alcotest.failf "operands must stay symbolic, got %a" Pretty.pp e);
  Alcotest.check Util.value "semantics preserved" (Eval.run cat q)
    (Eval.run cat hoisted)

let test_work_reduction () =
  let cat =
    Njq_workload.Generator.catalog (Njq_workload.Generator.scaled ~seed:5 128)
  in
  let q =
    select "s" (table "SUPPLIER")
      (set_neq (inter (var "s" $. "parts_supplied") red_oids) empty)
  in
  let work e =
    Counters.reset ();
    ignore (Eval.run cat e);
    Counters.get "nl_pred_eval"
  in
  let before = work q and after = work (Consthoist.hoist cat q) in
  Alcotest.(check bool)
    (Printf.sprintf "hoisting removes per-tuple evaluation (%d -> %d)" before after)
    true
    (after * 10 < before)

let prop_hoist_sound =
  Util.qcheck ~count:200 "hoisting preserves semantics"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let q = select "x" (table "X") pred in
      Value.equal (Eval.run cat q) (Eval.run cat (Consthoist.hoist cat q)))

let () =
  Alcotest.run "consthoist"
    [ ( "hoisting",
        [ Alcotest.test_case "uncorrelated hoisted" `Quick test_hoists_uncorrelated;
          Alcotest.test_case "correlated kept" `Quick test_keeps_correlated;
          Alcotest.test_case "operands untouched" `Quick test_operands_untouched;
          Alcotest.test_case "work reduction" `Quick test_work_reduction ] );
      ("properties", [ prop_hoist_sound ]) ]
