(* Tests for the unnesting rewrites: Rule 1, Rule 2, quantifier exchange
   (Rewriting Examples 1-3), attribute unnesting (Example Query 4), the
   grouping transform and its Complex Object bug (Figure 2), the nestjoin
   rewrite (Section 6.1), and the full strategy, with semantic soundness
   checked against the reference evaluator on randomized databases. *)

open Njq_adl
open Dsl
module Strategy = Njq_core.Strategy
module Normalize = Njq_core.Normalize
module Grouping = Njq_core.Grouping

let strategy ?options cat e = (Strategy.rewrite ?options cat e).Strategy.output

let _check_equiv name cat e =
  let e' = strategy cat e in
  Alcotest.check Util.value name (Eval.run cat e) (Eval.run cat e')

(* Shape inspectors *)
let rec contains p e = p e || Expr.fold_children (fun acc c -> acc || contains p c) false e

let has_join_kind k e =
  contains (function Expr.Join { kind; _ } -> kind = k | _ -> false) e

let has_nestjoin e = contains (function Expr.Nestjoin _ -> true | _ -> false) e

(* A selection or map whose parameter expression still iterates a base
   table: the unnesting goal is to eliminate these. *)
let has_nested_base_table e =
  contains
    (function
      | Expr.Select { pred = param; _ }
      | Expr.Map { body = param; _ }
      | Expr.Join { pred = param; _ } -> Analysis.uses_base_table param
      | _ -> false)
    e

(* ---------------- Rewriting Example 1: set membership ---------------- *)

let test_rewriting_example1 () =
  let cat = Util.small_catalog () in
  (* sigma[x : x.c 'in' sigma[y : q](Y)](X) — membership of an atomic
     attribute in a subquery: here, the supplier's oid among red parts'
     oids would be ill-typed, so we use a dedicated pair of tables. *)
  let cat2 =
    Util.xy_catalog
      ( [ Value.tuple [ ("a", Value.int 1); ("c", Value.set [ Value.int 7 ]) ];
          Value.tuple [ ("a", Value.int 3); ("c", Value.set []) ] ],
        [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 7) ];
          Value.tuple [ ("d", Value.int 2); ("e", Value.int 9) ] ] )
  in
  ignore cat;
  let q =
    select "x" (table "X")
      (mem (var "x" $. "a")
         (map_ "y" (select "y" (table "Y") (gt (var "y" $. "e") (int 0)))
            (var "y" $. "d")))
  in
  let out = strategy cat2 q in
  Alcotest.(check bool) "becomes a semijoin" true (has_join_kind Expr.Semi out);
  Alcotest.(check bool) "no nested base table" false (has_nested_base_table out);
  Alcotest.check Util.value "equivalent" (Eval.run cat2 q) (Eval.run cat2 out)

(* ---------------- Rewriting Example 2: set inclusion ----------------- *)

let test_rewriting_example2 () =
  (* sigma[x : sigma[y : q](Y) 'subseteq' x.c](X) — the subquery on the
     LEFT of the inclusion expands to a universal quantifier over the base
     table and unnests to an antijoin. *)
  let cat =
    Util.xy_catalog
      ( [ Value.tuple [ ("a", Value.int 1); ("c", Value.set [ Value.int 1; Value.int 2 ]) ];
          Value.tuple [ ("a", Value.int 2); ("c", Value.set [ Value.int 1 ]) ] ],
        [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ];
          Value.tuple [ ("d", Value.int 2); ("e", Value.int 2) ] ] )
  in
  let sub =
    map_ "y" (select "y" (table "Y") (gt (var "y" $. "d") (int 0))) (var "y" $. "e")
  in
  let q = select "x" (table "X") (subseteq sub (var "x" $. "c")) in
  let out = strategy cat q in
  Alcotest.(check bool) "becomes an antijoin" true (has_join_kind Expr.Anti out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* ------------- Rewriting Example 3: exchanging quantifiers ----------- *)

let test_rewriting_example3 () =
  (* forall z 'in' x.c . z 'supseteq' Y' — a set-of-sets attribute compared
     against a base-table subquery; exchange moves the base-table
     quantifier leftmost and an antijoin results. *)
  let sos v = Value.set (List.map (fun l -> Value.set (List.map Value.int l)) v) in
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TSet (Vtype.TSet Vtype.TInt)) ])
    [ Value.tuple [ ("a", Value.int 1); ("c", sos [ [ 1; 2 ]; [ 1; 2; 3 ] ]) ];
      Value.tuple [ ("a", Value.int 2); ("c", sos [ [ 1 ] ]) ];
      Value.tuple [ ("a", Value.int 3); ("c", sos [] ) ] ];
  Catalog.add_table cat ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ];
      Value.tuple [ ("d", Value.int 2); ("e", Value.int 2) ] ];
  let sub =
    map_ "y" (select "y" (table "Y") (lt (var "y" $. "d") (int 2))) (var "y" $. "e")
  in
  let q = select "x" (table "X") (forall "z" (var "x" $. "c") (supseteq (var "z") sub)) in
  let out = strategy cat q in
  Alcotest.(check bool) "becomes an antijoin" true (has_join_kind Expr.Anti out);
  Alcotest.(check bool) "no nested base table" false (has_nested_base_table out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* ---------------- Rule 2: nesting in the map operator ---------------- *)

let test_rule2 () =
  let cat =
    Util.xy_catalog
      ( [ Value.tuple [ ("a", Value.int 1); ("c", Value.set []) ];
          Value.tuple [ ("a", Value.int 2); ("c", Value.set []) ] ],
        [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 5) ];
          Value.tuple [ ("d", Value.int 2); ("e", Value.int 6) ] ] )
  in
  let q =
    flatten
      (map_ "x" (table "X")
         (map_ "y"
            (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
            (var "x" ^^ var "y")))
  in
  let out = strategy cat q in
  Alcotest.(check bool) "becomes a regular join" true (has_join_kind Expr.Inner out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* Generalized Rule 2: arbitrary map bodies over a correlated inner range
   become a map over a join (multi-binding from-clauses). *)
let test_rule2_general () =
  let cat =
    Util.xy_catalog
      ( [ Value.tuple [ ("a", Value.int 1); ("c", Value.set []) ];
          Value.tuple [ ("a", Value.int 2); ("c", Value.set [ Value.int 9 ]) ] ],
        [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 5) ];
          Value.tuple [ ("d", Value.int 2); ("e", Value.int 6) ] ] )
  in
  let q =
    flatten
      (map_ "x" (table "X")
         (map_ "y"
            (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
            (tuple [ ("k", var "x" $. "a"); ("v", var "y" $. "e") ])))
  in
  let out = strategy cat q in
  Alcotest.(check bool) "join introduced" true (has_join_kind Expr.Inner out);
  Alcotest.(check bool) "no nested base table" false (has_nested_base_table out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* Overlapping schemas: generalized Rule 2 inserts the renaming operator
   rho on the right operand instead of giving up. *)
let test_rule2_rename () =
  let cat =
    Njq_workload.Generator.catalog
      { Njq_workload.Generator.default_config with dangling_rate = 0.0 }
  in
  let q, _ =
    Njq_oosql.Translate.query_string Njq_workload.Queries.schema
      {| select (d = d.oid, s = s.sname)
         from d in DELIVERY, s in SUPPLIER
         where d.supplier = s.oid |}
  in
  let out = strategy cat q in
  Alcotest.(check bool) "join with rename" true
    (has_join_kind Expr.Inner out
     && contains (function Expr.Rename _ -> true | _ -> false) out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q)
    (Njq_engine.Planner.run cat out)

(* Disjunctive predicates with base-table subqueries split into unions so
   each branch unnests. *)
let test_disjunction_split () =
  let cat = Util.small_catalog () in
  let wants color =
    exists "p" (table "PART")
      (mem (var "p" $. "oid") (var "s" $. "parts_supplied")
       &&& eq (var "p" $. "color") (str color))
  in
  let q = select "s" (table "SUPPLIER") (wants "red" ||| wants "blue") in
  let out = strategy cat q in
  Alcotest.(check bool) "union of semijoins" true
    (contains (function Expr.Union _ -> true | _ -> false) out
     && has_join_kind Expr.Semi out);
  Alcotest.(check bool) "no nested base table" false (has_nested_base_table out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* ---------------- Example Query 4: attribute unnesting ---------------- *)

let test_attr_unnest_query4 () =
  let cat = Util.small_catalog () in
  let q =
    project [ "oid" ]
      (select "s" (table "SUPPLIER")
         (exists "z" (var "s" $. "parts_supplied")
            (not_ (exists "p" (table "PART") (eq (var "z") (var "p" $. "oid"))))))
  in
  let out = strategy cat q in
  Alcotest.(check bool) "uses mu" true
    (contains (function Expr.Unnest _ -> true | _ -> false) out);
  Alcotest.(check bool) "uses antijoin" true (has_join_kind Expr.Anti out);
  (* The only violator is s2 (dangling oid 99). *)
  Alcotest.check Util.value "finds s2"
    (Value.set [ Value.tuple [ ("oid", Value.oid 12) ] ])
    (Eval.run cat out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* The option is NOT taken when the projection still needs the attribute. *)
let test_attr_unnest_guard () =
  let cat = Util.small_catalog () in
  let q =
    project [ "oid"; "parts_supplied" ]
      (select "s" (table "SUPPLIER")
         (exists "z" (var "s" $. "parts_supplied")
            (not_ (exists "p" (table "PART") (eq (var "z") (var "p" $. "oid"))))))
  in
  let out = strategy cat q in
  Alcotest.(check bool) "no unnest introduced" false
    (contains (function Expr.Unnest _ -> true | _ -> false) out);
  Alcotest.check Util.value "equivalent anyway" (Eval.run cat q) (Eval.run cat out)

(* ---------------- Figure 2: the Complex Object bug ---------------- *)

let fig2_expected_correct =
  Value.set
    [ Value.tuple [ ("a", Value.int 1); ("c", Value.set [ Value.int 1; Value.int 2 ]) ];
      Value.tuple [ ("a", Value.int 2); ("c", Value.set []) ] ]

let test_figure2_bug () =
  let cat = Njq_workload.Queries.fig2_catalog () in
  let q = Njq_workload.Queries.fig2_query in
  Alcotest.check Util.value "nested-loop answer" fig2_expected_correct (Eval.run cat q);
  (* The unguarded Ganski-Wong transform loses the dangling tuple. *)
  let buggy = Grouping.rewrite_unsafe cat q in
  Alcotest.check Util.value "grouping join drops (a=2,c={})"
    (Value.set
       [ Value.tuple [ ("a", Value.int 1); ("c", Value.set [ Value.int 1; Value.int 2 ]) ] ])
    (Eval.run cat buggy);
  (* The outer-join repair and the nestjoin strategy are both correct. *)
  let repaired = Grouping.rewrite_outerjoin cat q in
  Alcotest.check Util.value "outer join repairs" fig2_expected_correct
    (Eval.run cat repaired);
  let out = strategy cat q in
  Alcotest.(check bool) "strategy uses the nestjoin" true (has_nestjoin out);
  Alcotest.check Util.value "nestjoin correct" fig2_expected_correct (Eval.run cat out)

(* The guarded grouping applies the flat join exactly when P(x,{}) = false. *)
let test_guarded_grouping () =
  let cat = Njq_workload.Queries.fig2_catalog () in
  (* P(x, Y') = x.c 'subset' Y' reduces to false on the empty set (Table 3
     row 1): the flat join + nest transform is safe, and the
     Flat_join_when_safe mode uses it instead of the nestjoin. *)
  let sub_ye =
    map_ "y" (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
      (var "y" $. "e")
  in
  let safe_q = select "x" (table "X") (subset (var "x" $. "c") sub_ye) in
  let opts =
    { Strategy.default_options with
      Strategy.grouping_mode = Strategy.Flat_join_when_safe }
  in
  let out = strategy ~options:opts cat safe_q in
  Alcotest.(check bool) "guard admits the flat join" true
    (has_join_kind Expr.Inner out
     && contains (function Expr.Nest _ -> true | _ -> false) out
     && not (has_nestjoin out));
  Alcotest.check Util.value "flat-join grouping equivalent when safe"
    (Eval.run cat safe_q) (Eval.run cat out);
  (* For x.c 'subseteq' Y' the guard refuses and the nestjoin is used. *)
  let unsafe_q = Njq_workload.Queries.fig2_query in
  let out2 = strategy ~options:opts cat unsafe_q in
  Alcotest.(check bool) "guard routes to nestjoin" true (has_nestjoin out2);
  Alcotest.check Util.value "correct" fig2_expected_correct (Eval.run cat out2)

(* Outer-join mode end to end. *)
let test_outerjoin_mode () =
  let cat = Njq_workload.Queries.fig2_catalog () in
  let opts =
    { Strategy.default_options with Strategy.grouping_mode = Strategy.Outerjoin }
  in
  let out = strategy ~options:opts cat Njq_workload.Queries.fig2_query in
  Alcotest.(check bool) "uses outer join" true
    (contains
       (function Expr.Join { kind = Expr.LeftOuter _; _ } -> true | _ -> false)
       out);
  Alcotest.check Util.value "correct" fig2_expected_correct (Eval.run cat out)

(* ---------------- Nestjoin rewrite for map nesting (Query 6) --------- *)

let test_nestjoin_map () =
  let cat = Util.small_catalog () in
  let q =
    map_ "s" (table "SUPPLIER")
      (tuple
         [ ("sname", var "s" $. "sname");
           ( "ps",
             select "p" (table "PART")
               (mem (var "p" $. "oid") (var "s" $. "parts_supplied")) ) ])
  in
  let out = strategy cat q in
  Alcotest.(check bool) "uses the nestjoin" true (has_nestjoin out);
  Alcotest.(check bool) "no nested base table" false (has_nested_base_table out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q) (Eval.run cat out)

(* ---------------- Strategy on the paper's OOSQL corpus --------------- *)

let test_paper_corpus () =
  let clean = { Njq_workload.Generator.default_config with dangling_rate = 0.0 } in
  let dirty = Njq_workload.Generator.default_config in
  List.iter
    (fun (q : Njq_workload.Queries.query) ->
      let cfg = if q.needs_integrity then clean else dirty in
      let cat = Njq_workload.Generator.catalog cfg in
      let adl = Njq_workload.Queries.to_adl q in
      let out = strategy cat adl in
      Alcotest.check Util.value (q.id ^ " equivalent") (Eval.run cat adl)
        (Eval.run cat out))
    Njq_workload.Queries.all

(* Shape expectations per query. *)
let test_paper_corpus_shapes () =
  let cat = Njq_workload.Generator.catalog Njq_workload.Generator.default_config in
  let shape id =
    strategy cat (Njq_workload.Queries.to_adl (Njq_workload.Queries.find id))
  in
  Alcotest.(check bool) "EQ4 has antijoin" true (has_join_kind Expr.Anti (shape "EQ4"));
  Alcotest.(check bool) "EQ4 has unnest" true
    (contains (function Expr.Unnest _ -> true | _ -> false) (shape "EQ4"));
  Alcotest.(check bool) "EQ5 has semijoin" true (has_join_kind Expr.Semi (shape "EQ5"));
  Alcotest.(check bool) "EQ6 has nestjoin" true (has_nestjoin (shape "EQ6"));
  Alcotest.(check bool) "EQ3.1 has antijoin" true
    (has_join_kind Expr.Anti (shape "EQ3.1"))

(* ---------------- Randomized soundness ---------------- *)

(* A family of nested queries covering every rewrite path, evaluated on
   random X/Y tables: the strategy must preserve semantics for all of them,
   under every grouping mode. *)
let query_family =
  let sub_ye =
    map_ "y" (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
      (var "y" $. "e")
  in
  [ ("semijoin", select "x" (table "X") (exists "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d"))));
    ("antijoin", select "x" (table "X") (not_ (exists "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))));
    ("exchange", select "x" (table "X")
       (exists "z" (var "x" $. "c") (exists "y" (table "Y") (eq (var "z") (var "y" $. "e")))));
    ("subseteq-grouping", select "x" (table "X") (subseteq (var "x" $. "c") sub_ye));
    ("seteq-grouping", select "x" (table "X") (set_eq (var "x" $. "c") sub_ye));
    ("supset-grouping", select "x" (table "X") (supset (var "x" $. "c") sub_ye));
    ("supseteq-rule1", select "x" (table "X") (supseteq (var "x" $. "c") sub_ye));
    ("count-compare", select "x" (table "X") (le (count sub_ye) (count (var "x" $. "c"))));
    ("nestjoin-map", map_ "x" (table "X")
       (tuple [ ("a", var "x" $. "a"); ("matches", sub_ye) ]));
    ("emptiness", select "x" (table "X") (set_eq sub_ye empty));
    ("rule2", flatten
       (map_ "x" (table "X")
          (map_ "y" (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
             (var "x" ^^ var "y"))))
  ]

let soundness_prop mode =
  Util.qcheck ~count:120
    (Printf.sprintf "strategy soundness (%s)"
       (match mode with
        | Strategy.Nestjoin_always -> "nestjoin"
        | Strategy.Flat_join_when_safe -> "flat-join-when-safe"
        | Strategy.Outerjoin -> "outerjoin"))
    Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let options = { Strategy.default_options with Strategy.grouping_mode = mode } in
      List.for_all
        (fun (_, q) ->
          let out = strategy ~options cat q in
          Value.equal (Eval.run cat q) (Eval.run cat out))
        query_family)

(* Rewritten queries executed set-oriented (hash joins in the engine) do
   less work than the nested-loop original — the paper's whole point.  Note
   that the comparison is nested-loop evaluation vs engine execution: the
   rewrite by itself does not reduce nested-loop work (an antijoin evaluated
   by nested loops loses the early exit of the 'exists'), it enables the
   set-oriented algorithms. *)
let test_work_reduction () =
  let cat =
    Njq_workload.Generator.catalog (Njq_workload.Generator.scaled ~seed:7 64)
  in
  List.iter
    (fun id ->
      let adl = Njq_workload.Queries.to_adl (Njq_workload.Queries.find id) in
      let out = strategy cat adl in
      let w_nested =
        Counters.reset ();
        ignore (Eval.run cat adl);
        Counters.get "nl_pred_eval"
      in
      let w_engine =
        Counters.reset ();
        ignore (Njq_engine.Exec.run cat (Njq_engine.Planner.plan out));
        Counters.get "nl_pred_eval" + Counters.get "nl_pair"
        + Counters.get "hash_probe" + Counters.get "hash_build"
        + Counters.get "filter_eval"
      in
      if w_engine >= w_nested then
        Alcotest.failf "%s: set-oriented plan does more work (%d >= %d)" id
          w_engine w_nested)
    [ "EQ4"; "EQ5"; "EQ6" ]

(* Deep soundness: fully random nested predicates over the XY schema,
   rewritten under every grouping mode and with the division option, must
   preserve nested-loop semantics both under the reference evaluator and
   through the physical engine. *)
let prop_random_predicates =
  Util.qcheck ~count:400 "random nested predicates are rewritten soundly"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let q = select "x" (table "X") pred in
      let expected = Eval.run cat q in
      List.for_all
        (fun options ->
          let out = strategy ~options cat q in
          Value.equal expected (Eval.run cat out)
          && Value.equal expected (Njq_engine.Planner.run cat out))
        [ Strategy.default_options;
          { Strategy.default_options with Strategy.grouping_mode = Strategy.Flat_join_when_safe };
          { Strategy.default_options with Strategy.grouping_mode = Strategy.Outerjoin };
          { Strategy.default_options with Strategy.enable_division = true } ])

(* Rewrites preserve types as well as values: the strategy's output infers
   to a type compatible with the input's. *)
let prop_type_preservation =
  Util.qcheck ~count:200 "rewrites preserve types"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let q = select "x" (table "X") pred in
      match Typecheck.infer cat [] q with
      | exception Vtype.Type_error _ -> true
      | t ->
        (match Typecheck.infer cat [] (strategy cat q) with
         | t' -> Vtype.compat t t'
         | exception Vtype.Type_error _ -> false))

let () =
  Alcotest.run "rewrite"
    [ ( "paper derivations",
        [ Alcotest.test_case "Rewriting Example 1 (membership)" `Quick test_rewriting_example1;
          Alcotest.test_case "Rewriting Example 2 (inclusion)" `Quick test_rewriting_example2;
          Alcotest.test_case "Rewriting Example 3 (exchange)" `Quick test_rewriting_example3;
          Alcotest.test_case "Rule 2 (map nesting)" `Quick test_rule2;
          Alcotest.test_case "Rule 2 generalized" `Quick test_rule2_general;
          Alcotest.test_case "Rule 2 with renaming" `Quick test_rule2_rename;
          Alcotest.test_case "disjunction split" `Quick test_disjunction_split;
          Alcotest.test_case "Example Query 4 (attr unnest)" `Quick test_attr_unnest_query4;
          Alcotest.test_case "attr unnest guard" `Quick test_attr_unnest_guard ] );
      ( "grouping and the Complex Object bug",
        [ Alcotest.test_case "Figure 2 bug" `Quick test_figure2_bug;
          Alcotest.test_case "guarded grouping" `Quick test_guarded_grouping;
          Alcotest.test_case "outer-join mode" `Quick test_outerjoin_mode;
          Alcotest.test_case "nestjoin for map nesting" `Quick test_nestjoin_map ] );
      ( "paper corpus",
        [ Alcotest.test_case "equivalence on all queries" `Quick test_paper_corpus;
          Alcotest.test_case "plan shapes" `Quick test_paper_corpus_shapes;
          Alcotest.test_case "work reduction" `Quick test_work_reduction ] );
      ( "soundness",
        [ soundness_prop Strategy.Nestjoin_always;
          soundness_prop Strategy.Flat_join_when_safe;
          soundness_prop Strategy.Outerjoin;
          prop_random_predicates;
          prop_type_preservation ] ) ]
