(* End-to-end pipeline tests: OOSQL text -> parse -> typed translation ->
   strategy rewrite -> physical plan -> execution, validated against the
   reference (nested-loop) evaluation of the un-rewritten query, across
   database configurations and grouping modes. *)

open Njq_adl
module Strategy = Njq_core.Strategy
module Planner = Njq_engine.Planner
module Gen = Njq_workload.Generator
module Queries = Njq_workload.Queries

let configs =
  [ ("default", Gen.default_config);
    ("tiny", { Gen.default_config with parts = 3; suppliers = 2; deliveries = 2 });
    ("empty-heavy", { Gen.default_config with empty_rate = 0.8 });
    ("empty-tables", { Gen.default_config with parts = 0; suppliers = 0; deliveries = 0 });
    ("big-fanout", { Gen.default_config with fanout = 16; supply_fanout = 8 }) ]

let clean cfg = { cfg with Gen.dangling_rate = 0.0 }

let run_pipeline ?options cat adl =
  let report = Strategy.rewrite ?options cat adl in
  Njq_engine.Exec.run cat (Planner.plan report.Strategy.output)

let test_full_pipeline () =
  List.iter
    (fun (cfg_name, cfg) ->
      List.iter
        (fun (q : Queries.query) ->
          let cfg = if q.needs_integrity then clean cfg else cfg in
          let cat = Gen.catalog cfg in
          let adl = Queries.to_adl q in
          let expected = Eval.run cat adl in
          let got = run_pipeline cat adl in
          Alcotest.check Util.value
            (Printf.sprintf "%s on %s" q.id cfg_name)
            expected got)
        Queries.all)
    configs

let test_all_grouping_modes () =
  let cat = Gen.catalog (clean Gen.default_config) in
  List.iter
    (fun mode ->
      List.iter
        (fun (q : Queries.query) ->
          let adl = Queries.to_adl q in
          let options = { Strategy.default_options with Strategy.grouping_mode = mode } in
          Alcotest.check Util.value (q.id ^ " under mode")
            (Eval.run cat adl)
            (run_pipeline ~options cat adl))
        Queries.all)
    [ Strategy.Nestjoin_always; Strategy.Flat_join_when_safe; Strategy.Outerjoin ]

(* The cost-based planner with constant hoisting (the Planner.run path)
   agrees with the reference on the whole corpus. *)
let test_cost_based_hoisted () =
  let cat = Gen.catalog (clean Gen.default_config) in
  List.iter
    (fun (q : Queries.query) ->
      let adl = Queries.to_adl q in
      let out = Strategy.optimize cat adl in
      Alcotest.check Util.value (q.id ^ " cost-based + hoisted")
        (Eval.run cat adl)
        (Planner.run ~algo:(Planner.Cost_based cat) cat out))
    (Queries.all @ Queries.extended)

(* Disabling every optimization must still produce correct plans (pure
   nested-loop execution through the planner fallback). *)
let test_no_optimization () =
  let cat = Gen.catalog (clean Gen.default_config) in
  let options =
    { Strategy.enable_relational = false;
      Strategy.enable_attr_unnest = false;
      Strategy.enable_grouping = false;
      Strategy.enable_division = false;
      Strategy.grouping_mode = Strategy.Nestjoin_always }
  in
  List.iter
    (fun (q : Queries.query) ->
      let adl = Queries.to_adl q in
      Alcotest.check Util.value (q.id ^ " unoptimized")
        (Eval.run cat adl)
        (run_pipeline ~options cat adl))
    Queries.all

(* Rewriting is idempotent: optimizing an already-optimized query changes
   nothing. *)
let test_idempotence () =
  let cat = Gen.catalog (clean Gen.default_config) in
  List.iter
    (fun (q : Queries.query) ->
      let once = Strategy.optimize cat (Queries.to_adl q) in
      let twice = Strategy.optimize cat once in
      Alcotest.check Util.expr (q.id ^ " idempotent") once twice)
    Queries.all

(* The rewritten pipeline reduces measured work on a larger database. *)
let test_scaled_work_reduction () =
  let cat = Gen.catalog (clean (Gen.scaled ~seed:11 128)) in
  let q = Queries.to_adl (Queries.find "EQ5") in
  let nested_work =
    Counters.reset ();
    ignore (Eval.run cat q);
    Counters.get "nl_pred_eval"
  in
  let rewritten = Strategy.optimize cat q in
  let set_oriented_work =
    Counters.reset ();
    ignore (Njq_engine.Exec.run cat (Planner.plan rewritten));
    Counters.get "nl_pred_eval" + Counters.get "hash_probe"
    + Counters.get "hash_build" + Counters.get "filter_eval"
  in
  Alcotest.(check bool)
    (Printf.sprintf "set-oriented %d << nested %d" set_oriented_work nested_work)
    true
    (set_oriented_work * 4 < nested_work)

(* Query results over the paper's schema stay stable across runs (catalog
   determinism + canonical values make results reproducible). *)
let test_reproducibility () =
  let run_once () =
    let cat = Gen.catalog (clean Gen.default_config) in
    List.map
      (fun (q : Queries.query) -> run_pipeline cat (Queries.to_adl q))
      Queries.all
  in
  List.iter2
    (fun a b -> Alcotest.check Util.value "stable" a b)
    (run_once ()) (run_once ())

let () =
  Alcotest.run "e2e"
    [ ( "pipeline",
        [ Alcotest.test_case "all queries x all configs" `Slow test_full_pipeline;
          Alcotest.test_case "all grouping modes" `Quick test_all_grouping_modes;
          Alcotest.test_case "cost-based + hoisted" `Quick test_cost_based_hoisted;
          Alcotest.test_case "no optimization" `Quick test_no_optimization;
          Alcotest.test_case "idempotence" `Quick test_idempotence;
          Alcotest.test_case "work reduction at scale" `Quick test_scaled_work_reduction;
          Alcotest.test_case "reproducibility" `Quick test_reproducibility ] ) ]
