(* Round-trip tests for the textual ADL syntax: every constructor, plus
   property tests over random predicates and over the strategy's outputs
   (whose shapes include everything the rewriter can produce). *)

open Njq_adl
open Dsl
module A = Adlsyntax

let roundtrip e = A.of_string (A.to_string e)

(* Round trip is exact modulo the literal canonicalization. *)
let check e =
  Alcotest.check Util.expr (A.to_string e) (A.canon e) (roundtrip e)

let test_constructors () =
  List.iter check
    [ int 42; str "a\"b"; bool true; Expr.Const Value.VNull; oid 7; date 940101;
      Expr.Const (Value.float 2.5);
      var "x"; table "SUPPLIER";
      tuple [ ("a", int 1); ("b", str "s") ];
      tuple [];
      set_lit [ int 1; int 2 ];
      set_lit [];
      var "x" $. "a" $. "b";
      proj (var "x") [ "a"; "b" ];
      except (var "x") [ ("a", int 1); ("b", int 2) ];
      var "x" ^^ var "y";
      add (int 1) (mul (int 2) (int 3));
      sub (var "a") (int 1);
      eq (var "a") (int 1); neq (var "a") (int 1); lt (var "a") (int 1);
      le (var "a") (int 1); gt (var "a") (int 1); ge (var "a") (int 1);
      mem (var "a") (var "s"); not_mem (var "a") (var "s");
      subseteq (var "s") (var "t"); subset (var "s") (var "t");
      supseteq (var "s") (var "t"); supset (var "s") (var "t");
      set_eq (var "s") (var "t"); set_neq (var "s") (var "t");
      ni (var "s") (var "a"); Expr.SetCmp (Expr.NotNi, var "s", var "a");
      (var "p" ||| var "q") &&& not_ (var "r");
      if_ (var "p") (int 1) (int 2);
      exists "x" (table "T") (eq (var "x" $. "a") (int 1));
      forall "x" (var "s") (mem (var "x") (var "t"));
      map_ "x" (table "T") (var "x" $. "a");
      select "x" (table "T") (gt (var "x" $. "a") (int 0));
      project [ "a"; "b" ] (table "T");
      flatten (map_ "x" (table "T") (var "x" $. "c"));
      union (table "T") (table "U"); inter (table "T") (table "U");
      diff (table "T") (table "U"); product (table "T") (table "U");
      divide (table "T") (table "U");
      join ~x:"a" ~y:"b" (eq (var "a" $. "k") (var "b" $. "k")) (table "T") (table "U");
      semijoin (bool true) (table "T") (table "U");
      antijoin (bool false) (table "T") (table "U");
      outerjoin ~pad:[ "d"; "e" ] (eq (var "x" $. "a") (var "y" $. "d"))
        (table "T") (table "U");
      nestjoin ~attr:"g" (bool true) (table "T") (table "U");
      nestjoin ~attr:"g" ~body:(var "y" $. "e") (bool true) (table "T") (table "U");
      unnest "c" (table "T");
      Expr.Rename ([ ("a", "x"); ("b", "y") ], table "T");
      nest ~attrs:[ "d"; "e" ] ~into:"g" (table "T");
      count (table "T"); sum (var "s"); min_ (var "s"); max_ (var "s"); avg (var "s");
      deref "PART" (var "r") ]

let test_precedence_examples () =
  (* parse without writer: precedence and associativity *)
  Alcotest.check Util.expr "arith precedence"
    (add (var "a") (mul (var "b") (var "c")))
    (A.of_string "a + b * c");
  Alcotest.check Util.expr "comparison under and"
    (eq (var "a") (int 1) &&& gt (var "b") (int 2))
    (A.of_string "a = 1 and b > 2");
  Alcotest.check Util.expr "not binds tighter than and"
    (not_ (var "p") &&& var "q")
    (A.of_string "not p and q");
  Alcotest.check Util.expr "nest arrow is not minus"
    (nest ~attrs:[ "a" ] ~into:"g" (table "T"))
    (A.of_string "nest[a -> g](@T)");
  Alcotest.check Util.expr "grouping parens"
    ((var "p" ||| var "q") &&& var "r")
    (A.of_string "(p or q) and r")

let test_parse_errors () =
  let bad s =
    match A.of_string s with
    | e -> Alcotest.failf "accepted %S as %s" s (A.to_string e)
    | exception A.Parse_error _ -> ()
  in
  bad "";
  bad "select[x](T)";
  bad "join[x : p](a, b)";
  bad "nestjoin[x,y : p](a, b)";
  bad "1 +";
  bad "@";
  bad "exists x in T";
  bad "a = 1 trailing"

(* Round trip over random predicates wrapped in selections. *)
let prop_roundtrip_predicates =
  Util.qcheck ~count:400 "round trip on random predicates"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, _) ->
      let e = select "x" (table "X") pred in
      Expr.equal (A.canon e) (roundtrip e))

(* Round trip over everything the strategy can produce. *)
let prop_roundtrip_strategy_outputs =
  Util.qcheck ~count:200 "round trip on strategy outputs"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let out = Njq_core.Strategy.optimize cat (select "x" (table "X") pred) in
      Expr.equal (A.canon out) (roundtrip out))

let () =
  Alcotest.run "adlsyntax"
    [ ( "round trip",
        [ Alcotest.test_case "all constructors" `Quick test_constructors;
          Alcotest.test_case "precedence" `Quick test_precedence_examples;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "properties",
        [ prop_roundtrip_predicates; prop_roundtrip_strategy_outputs ] ) ]
