(* Tests for the workload generator: determinism, cardinalities, rate knobs
   and schema conformance, plus the Rng substrate. *)

open Njq_adl
module Gen = Njq_workload.Generator

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create 124 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_ranges () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range r ~lo:3 ~hi:7 in
    if v < 3 || v > 7 then Alcotest.failf "out of range: %d" v
  done;
  let f = Rng.float r in
  Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in_range: empty range")
    (fun () -> ignore (Rng.int_in_range r ~lo:2 ~hi:1))

let test_rng_sample_shuffle () =
  let r = Rng.create 9 in
  let xs = [ 1; 2; 3; 4; 5 ] in
  let s = Rng.sample r 3 xs in
  Alcotest.(check int) "sample size" 3 (List.length s);
  Alcotest.(check bool) "sample distinct" true
    (List.length (List.sort_uniq compare s) = 3);
  Alcotest.(check bool) "sample from source" true (List.for_all (fun x -> List.mem x xs) s);
  let sh = Rng.shuffle r xs in
  Alcotest.(check (list int)) "shuffle is a permutation" xs (List.sort compare sh)

let test_generator_determinism () =
  let cat1 = Gen.catalog Gen.default_config in
  let cat2 = Gen.catalog Gen.default_config in
  List.iter
    (fun t ->
      Alcotest.check Util.value ("table " ^ t)
        (Value.set (Catalog.rows cat1 t))
        (Value.set (Catalog.rows cat2 t)))
    [ "PART"; "SUPPLIER"; "DELIVERY" ]

let test_generator_cardinalities () =
  let cfg = { Gen.default_config with parts = 10; suppliers = 20; deliveries = 30 } in
  let cat = Gen.catalog cfg in
  Alcotest.(check int) "parts" 10 (Catalog.cardinality cat "PART");
  Alcotest.(check int) "suppliers" 20 (Catalog.cardinality cat "SUPPLIER");
  Alcotest.(check int) "deliveries" 30 (Catalog.cardinality cat "DELIVERY")

let test_generator_schema_conformance () =
  let cat = Gen.catalog Gen.default_config in
  List.iter
    (fun (t, row_type) ->
      List.iter
        (fun row ->
          if not (Vtype.check_value row_type row) then
            Alcotest.failf "row of %s does not match its type: %a" t Value.pp row)
        (Catalog.rows cat t))
    [ ("PART", Gen.part_row_type); ("SUPPLIER", Gen.supplier_row_type);
      ("DELIVERY", Gen.delivery_row_type) ]

let test_rate_knobs () =
  (* No dangling references at rate 0; some at a high rate. *)
  let count_dangling cfg =
    let cat = Gen.catalog cfg in
    let part_oids =
      List.map (fun p -> Value.field p "oid") (Catalog.rows cat "PART")
    in
    List.fold_left
      (fun acc s ->
        let refs = Value.as_set (Value.field s "parts_supplied") in
        acc
        + List.length
            (List.filter (fun r -> not (List.exists (Value.equal r) part_oids)) refs))
      0 (Catalog.rows cat "SUPPLIER")
  in
  Alcotest.(check int) "clean config has no dangling refs" 0
    (count_dangling { Gen.default_config with dangling_rate = 0.0 });
  Alcotest.(check bool) "dirty config has dangling refs" true
    (count_dangling { Gen.default_config with dangling_rate = 0.5 } > 0);
  (* Empty-set rate *)
  let count_empty cfg =
    let cat = Gen.catalog cfg in
    List.length
      (List.filter
         (fun s -> Value.as_set (Value.field s "parts_supplied") = [])
         (Catalog.rows cat "SUPPLIER"))
  in
  Alcotest.(check int) "no empties at rate 0" 0
    (count_empty { Gen.default_config with empty_rate = 0.0 });
  Alcotest.(check bool) "empties at rate 0.9" true
    (count_empty { Gen.default_config with empty_rate = 0.9 } > 0)

let test_references_resolve () =
  let cat = Gen.catalog { Gen.default_config with dangling_rate = 0.0 } in
  (* Every delivery's supplier reference dereferences. *)
  List.iter
    (fun d ->
      let s = Catalog.deref cat "SUPPLIER" (Value.field d "supplier") in
      Alcotest.(check bool) "supplier row" true (Value.has_field s "sname"))
    (Catalog.rows cat "DELIVERY")

let test_oids_unique () =
  let cat = Gen.catalog Gen.default_config in
  let all_oids =
    List.concat_map
      (fun t -> List.map (fun r -> Value.field r "oid") (Catalog.rows cat t))
      [ "PART"; "SUPPLIER"; "DELIVERY" ]
  in
  Alcotest.(check int) "oids globally unique"
    (List.length all_oids)
    (List.length (List.sort_uniq Value.compare all_oids))

let test_xy_catalog () =
  let a = Gen.xy_catalog ~seed:4 32 and b = Gen.xy_catalog ~seed:4 32 in
  List.iter
    (fun t ->
      Alcotest.check Util.value ("xy " ^ t)
        (Value.set (Catalog.rows a t))
        (Value.set (Catalog.rows b t)))
    [ "X"; "Y" ];
  Alcotest.(check int) "X cardinality" 32 (Catalog.cardinality a "X");
  Alcotest.(check int) "Y cardinality" 32 (Catalog.cardinality a "Y");
  (* empty_rate = 0 gives no empty c sets *)
  let c = Gen.xy_catalog ~seed:4 ~empty_rate:0.0 32 in
  Alcotest.(check int) "no empty sets at rate 0" 0
    (List.length
       (List.filter
          (fun row -> Value.as_set (Value.field row "c") = [])
          (Catalog.rows c "X")))

let () =
  Alcotest.run "workload"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "sample/shuffle" `Quick test_rng_sample_shuffle ] );
      ( "generator",
        [ Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "cardinalities" `Quick test_generator_cardinalities;
          Alcotest.test_case "schema conformance" `Quick test_generator_schema_conformance;
          Alcotest.test_case "rate knobs" `Quick test_rate_knobs;
          Alcotest.test_case "references resolve" `Quick test_references_resolve;
          Alcotest.test_case "oid uniqueness" `Quick test_oids_unique;
          Alcotest.test_case "xy tables" `Quick test_xy_catalog ] ) ]
