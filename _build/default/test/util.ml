(* Shared helpers for the test suites: alcotest testables, small fixture
   catalogs, and QCheck generators for random databases and values. *)

open Njq_adl

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

let vtype : Vtype.t Alcotest.testable = Alcotest.testable Vtype.pp Vtype.equal

let expr : Expr.t Alcotest.testable = Alcotest.testable Pretty.pp Expr.equal

let check_value = Alcotest.check value

(* QCheck test registered as an alcotest case. *)
let qcheck ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ------------------------------------------------------------------ *)
(* Fixture: the supplier-part catalog used throughout the rewriter and
   evaluator tests, small enough to reason about by hand. *)

let row = Value.tuple
let vset = Value.set
let vi = Value.int
let vs = Value.string
let vo = Value.oid

let part ~oid ~pname ~price ~color =
  row [ ("oid", vo oid); ("pname", vs pname); ("price", vi price); ("color", vs color) ]

let supplier ~oid ~sname ~parts =
  row [ ("oid", vo oid); ("sname", vs sname);
        ("parts_supplied", vset (List.map vo parts)) ]

let part_row_type = Njq_workload.Generator.part_row_type
let supplier_row_type = Njq_workload.Generator.supplier_row_type

(* Four parts, four suppliers; s3 has an empty parts set, s2 has a dangling
   reference (oid 99). *)
let small_catalog () =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"PART" ~row_type:part_row_type
    [ part ~oid:1 ~pname:"bolt" ~price:10 ~color:"red";
      part ~oid:2 ~pname:"nut" ~price:5 ~color:"green";
      part ~oid:3 ~pname:"cam" ~price:25 ~color:"red";
      part ~oid:4 ~pname:"cog" ~price:50 ~color:"blue" ];
  Catalog.add_table cat ~name:"SUPPLIER" ~row_type:supplier_row_type
    [ supplier ~oid:10 ~sname:"s0" ~parts:[ 1; 2 ];
      supplier ~oid:11 ~sname:"s1" ~parts:[ 1; 2; 3; 4 ];
      supplier ~oid:12 ~sname:"s2" ~parts:[ 2; 99 ];
      supplier ~oid:13 ~sname:"s3" ~parts:[] ];
  cat

(* ------------------------------------------------------------------ *)
(* QCheck generators *)

(* Random flat X(a, c:{int}) and Y(d, e) tables in the shape of Figures 1-2,
   exercising empty sets and dangling tuples. *)
let gen_small_int = QCheck.Gen.int_range 0 4

let gen_int_set = QCheck.Gen.(list_size (int_range 0 4) gen_small_int)

let gen_x_row =
  QCheck.Gen.(
    map2
      (fun a c ->
        row [ ("a", vi a); ("c", vset (List.map vi c)) ])
      gen_small_int gen_int_set)

let gen_y_row =
  QCheck.Gen.(
    map2 (fun d e -> row [ ("d", vi d); ("e", vi e) ]) gen_small_int gen_small_int)

let gen_xy_tables =
  QCheck.Gen.(
    pair (list_size (int_range 0 6) gen_x_row) (list_size (int_range 0 6) gen_y_row))

let xy_catalog (xs, ys) =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TSet Vtype.TInt) ])
    xs;
  Catalog.add_table cat ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    ys;
  cat

let arbitrary_xy =
  QCheck.make gen_xy_tables
    ~print:(fun (xs, ys) ->
      Fmt.str "X=%a@.Y=%a" (Fmt.Dump.list Value.pp) xs (Fmt.Dump.list Value.pp) ys)

(* Random ground values (no NULL), used for Value algebra laws. *)
let gen_value : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let atom =
        oneof
          [ map Value.int (int_range (-20) 20);
            map Value.string (oneofl [ "a"; "b"; "c"; "d" ]);
            map Value.bool bool;
            map Value.oid (int_range 0 9) ]
      in
      if n = 0 then atom
      else
        frequency
          [ (3, atom);
            (1,
             map
               (fun vs -> Value.set vs)
               (list_size (int_range 0 4) (self (n / 2))));
            (1,
             map
               (fun vs ->
                 Value.tuple (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) vs))
               (list_size (int_range 0 3) (self (n / 2)))) ])

let arbitrary_value = QCheck.make gen_value ~print:Value.show

let gen_int_set_value =
  QCheck.Gen.map (fun xs -> Value.set (List.map Value.int xs)) gen_int_set

let arbitrary_int_set =
  QCheck.make gen_int_set_value ~print:Value.show

(* ------------------------------------------------------------------ *)
(* Random nested predicates over the XY schema: boolean expressions with
   one free variable "x" (a row of X), mixing scalar comparisons,
   correlated subqueries over the base table Y, set comparisons against
   x.c, quantifiers and aggregates — the full space the strategy must
   rewrite soundly. *)

let gen_xy_pred : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Dsl in
  let xa = var "x" $. "a" and xc = var "x" $. "c" in
  (* correlated / uncorrelated subqueries over Y producing a set of ints *)
  let gen_sub =
    oneofl
      [ map_ "y" (select "y" (table "Y") (eq xa (var "y" $. "d"))) (var "y" $. "e");
        map_ "y" (select "y" (table "Y") (le (var "y" $. "d") xa)) (var "y" $. "e");
        map_ "y" (table "Y") (var "y" $. "d");
        map_ "y" (select "y" (table "Y") (eq xa (var "y" $. "d"))) (var "y" $. "d") ]
  in
  let gen_cmp_op = oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
  let gen_setcmp_op =
    oneofl
      [ Expr.SubsetEq; Expr.Subset; Expr.SupsetEq; Expr.Supset; Expr.SetEq;
        Expr.SetNeq ]
  in
  let atom =
    oneof
      [ (let* op = gen_cmp_op in
         let* k = int_range 0 4 in
         return (Expr.Cmp (op, xa, int k)));
        (let* sub = gen_sub in
         return (mem xa sub));
        (let* op = gen_setcmp_op in
         let* sub = gen_sub in
         return (Expr.SetCmp (op, xc, sub)));
        (let* op = gen_setcmp_op in
         let* sub = gen_sub in
         return (Expr.SetCmp (op, sub, xc)));
        (let* sub = gen_sub in
         return (set_eq sub empty));
        (let* op = gen_cmp_op in
         let* sub = gen_sub in
         return (Expr.Cmp (op, count sub, count xc)));
        (let* sub = gen_sub in
         return (exists "z" xc (mem (var "z") sub)));
        (let* sub = gen_sub in
         return (forall "z" xc (mem (var "z") sub)));
        return (exists "z" xc (exists "y" (table "Y") (eq (var "z") (var "y" $. "e"))));
        return (forall "y" (table "Y") (mem (var "y" $. "e") xc)) ]
  in
  sized_size (int_range 0 2) @@ fix (fun self n ->
      if n = 0 then atom
      else
        frequency
          [ (3, atom);
            (2,
             let* a = self (n - 1) in
             let* b = self (n - 1) in
             oneofl [ Expr.And (a, b); Expr.Or (a, b) ]);
            (1, map (fun a -> Expr.Not a) (self (n - 1))) ])

let arbitrary_xy_pred_and_tables =
  QCheck.make
    QCheck.Gen.(pair gen_xy_pred gen_xy_tables)
    ~print:(fun (p, (xs, ys)) ->
      Fmt.str "pred = %a@.X=%a@.Y=%a" Njq_adl.Pretty.pp p
        (Fmt.Dump.list Value.pp) xs (Fmt.Dump.list Value.pp) ys)
