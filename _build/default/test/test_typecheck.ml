(* Tests for ADL type inference. *)

open Njq_adl
open Dsl

let cat () = Util.small_catalog ()

let infer ?(env = []) e = Typecheck.infer (cat ()) env e

let check_ty name expected e = Alcotest.check Util.vtype name expected (infer e)

let fails name e =
  match infer e with
  | t -> Alcotest.failf "%s: expected type error, got %a" name Vtype.pp t
  | exception Vtype.Type_error _ -> ()

let test_basics () =
  check_ty "int" Vtype.TInt (int 3);
  check_ty "tuple" (Vtype.tuple [ ("a", Vtype.TInt) ]) (tuple [ ("a", int 3) ]);
  check_ty "empty set" (Vtype.TSet Vtype.TAny) empty;
  check_ty "set literal" (Vtype.TSet Vtype.TInt) (set_lit [ int 1; int 2 ]);
  check_ty "table" (Vtype.TSet Util.part_row_type) (table "PART");
  fails "unknown table" (table "NOPE");
  fails "heterogeneous set" (set_lit [ int 1; str "x" ])

let test_tuple_ops () =
  let t = tuple [ ("a", int 1); ("b", str "s") ] in
  check_ty "field" Vtype.TInt (t $. "a");
  check_ty "projection" (Vtype.tuple [ ("a", Vtype.TInt) ]) (proj t [ "a" ]);
  check_ty "except"
    (Vtype.tuple [ ("a", Vtype.TString); ("b", Vtype.TString); ("c", Vtype.TInt) ])
    (except t [ ("a", str "z"); ("c", int 2) ]);
  check_ty "concat"
    (Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TBool) ])
    (tuple [ ("a", int 1) ] ^^ tuple [ ("c", bool true) ]);
  fails "missing field" (t $. "z");
  fails "concat clash" (t ^^ tuple [ ("a", int 2) ])

let test_iterators () =
  check_ty "map" (Vtype.TSet Vtype.TString)
    (map_ "p" (table "PART") (var "p" $. "pname"));
  check_ty "select keeps type" (Vtype.TSet Util.part_row_type)
    (select "p" (table "PART") (eq (var "p" $. "color") (str "red")));
  check_ty "projection over table"
    (Vtype.TSet (Vtype.tuple [ ("pname", Vtype.TString) ]))
    (project [ "pname" ] (table "PART"));
  fails "non-boolean selection" (select "p" (table "PART") (var "p" $. "price"));
  fails "map over scalar" (map_ "x" (int 3) (var "x"))

let test_joins () =
  let p = eq (var "x" $. "oid") (var "y" $. "oid") in
  check_ty "semijoin keeps left" (Vtype.TSet Util.part_row_type)
    (semijoin p (table "PART") (table "PART"));
  fails "inner join with clashing schemas" (join p (table "PART") (table "PART"));
  check_ty "nestjoin adds group attr"
    (Vtype.TSet
       (Vtype.concat Util.supplier_row_type
          (Vtype.tuple [ ("g", Vtype.TSet Util.part_row_type) ])))
    (nestjoin ~attr:"g"
       (mem (var "y" $. "oid") (var "x" $. "parts_supplied"))
       (table "SUPPLIER") (table "PART"));
  fails "nestjoin attr clash"
    (nestjoin ~attr:"sname" (bool true) (table "SUPPLIER") (table "PART"))

let test_unnest_nest () =
  check_ty "unnest atom set keeps attr name"
    (Vtype.TSet
       (Vtype.tuple
          [ ("oid", Vtype.TOid); ("sname", Vtype.TString);
            ("parts_supplied", Vtype.TRef "PART") ]))
    (unnest "parts_supplied" (table "SUPPLIER"));
  check_ty "nest groups"
    (Vtype.TSet
       (Vtype.tuple
          [ ("color", Vtype.TString);
            ("g",
             Vtype.TSet
               (Vtype.tuple
                  [ ("oid", Vtype.TOid); ("pname", Vtype.TString);
                    ("price", Vtype.TInt) ])) ]))
    (nest ~attrs:[ "oid"; "pname"; "price" ] ~into:"g" (table "PART"));
  fails "unnest non-set attr" (unnest "sname" (table "SUPPLIER"))

let test_rename () =
  check_ty "rename type"
    (Vtype.TSet
       (Vtype.tuple
          [ ("pid", Vtype.TOid); ("pname", Vtype.TString);
            ("price", Vtype.TInt); ("color", Vtype.TString) ]))
    (Expr.Rename ([ ("oid", "pid") ], table "PART"));
  fails "rename unknown attribute" (Expr.Rename ([ ("zzz", "w") ], table "PART"));
  fails "rename collision" (Expr.Rename ([ ("oid", "pname") ], table "PART"))

let test_quantifiers_and_setcmp () =
  check_ty "exists" Vtype.TBool
    (exists "p" (table "PART") (gt (var "p" $. "price") (int 10)));
  check_ty "membership with ref-oid compat" Vtype.TBool
    (exists "s" (table "SUPPLIER") (mem (oid 1) (var "s" $. "parts_supplied")));
  check_ty "subset of compatible sets" Vtype.TBool
    (subseteq (set_lit [ int 1 ]) (set_lit [ int 2 ]));
  fails "subset of incompatible sets" (subseteq (set_lit [ int 1 ]) (set_lit [ str "a" ]));
  fails "mem wrong element type"
    (exists "s" (table "SUPPLIER") (mem (str "x") (var "s" $. "parts_supplied")))

let test_aggregates_and_deref () =
  check_ty "count" Vtype.TInt (count (table "PART"));
  check_ty "sum over prices" Vtype.TInt
    (sum (map_ "p" (table "PART") (var "p" $. "price")));
  check_ty "avg is float" Vtype.TFloat
    (avg (map_ "p" (table "PART") (var "p" $. "price")));
  fails "sum over tuples" (sum (table "PART"));
  check_ty "deref" Util.part_row_type (deref "PART" (oid 1));
  fails "deref non-oid" (deref "PART" (int 1));
  fails "deref unknown extent" (deref "NOPE" (oid 1))

let test_outer_join_padding () =
  let p = eq (var "x" $. "a") (var "y" $. "d") in
  let cat =
    Util.xy_catalog
      ( [ Value.tuple [ ("a", Value.int 1); ("c", Value.set []) ] ],
        [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ] ] )
  in
  let good = outerjoin ~pad:[ "d"; "e" ] p (table "X") (table "Y") in
  (match Typecheck.infer cat [] good with
   | Vtype.TSet _ -> ()
   | t -> Alcotest.failf "unexpected type %a" Vtype.pp t);
  match Typecheck.infer cat [] (outerjoin ~pad:[ "d" ] p (table "X") (table "Y")) with
  | _ -> Alcotest.fail "bad padding must be rejected"
  | exception Vtype.Type_error _ -> ()

(* Every well-typed closed expression evaluates to a value of its type (on
   the generated XY tables, for a family of template queries). *)
let prop_soundness =
  Util.qcheck ~count:100 "type soundness on XY templates" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let queries =
        [ select "x" (table "X") (supseteq (var "x" $. "c") (set_lit [ int 1 ]));
          map_ "x" (table "X") (count (var "x" $. "c"));
          nestjoin ~attr:"g" (mem (var "y" $. "e") (var "x" $. "c")) (table "X")
            (table "Y");
          nest ~attrs:[ "e" ] ~into:"es" (table "Y") ]
      in
      List.for_all
        (fun q ->
          match Typecheck.infer cat [] q with
          | t -> Vtype.check_value t (Eval.run cat q)
          | exception Vtype.Type_error _ -> false)
        queries)

let () =
  Alcotest.run "typecheck"
    [ ( "inference",
        [ Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "tuple ops" `Quick test_tuple_ops;
          Alcotest.test_case "iterators" `Quick test_iterators;
          Alcotest.test_case "joins" `Quick test_joins;
          Alcotest.test_case "unnest/nest" `Quick test_unnest_nest;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "quantifiers and set comparisons" `Quick
            test_quantifiers_and_setcmp;
          Alcotest.test_case "aggregates and deref" `Quick test_aggregates_and_deref;
          Alcotest.test_case "outer join padding" `Quick test_outer_join_padding ] );
      ("properties", [ prop_soundness ]) ]
