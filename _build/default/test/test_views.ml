(* Tests for named view definitions and their expansion into from-clause
   nesting (paper Section 2, Example Query 2). *)

open Njq_adl
module Views = Njq_oosql.Views
module Parser = Njq_oosql.Parser
module Strategy = Njq_core.Strategy

let schema = Njq_workload.Queries.schema

let run_program src =
  let prog = Parser.parse_program src in
  match Views.expand_program prog with
  | Some q -> fst (Njq_oosql.Translate.query schema q)
  | None -> Alcotest.fail "program has no query"

let cat () =
  Njq_workload.Generator.catalog
    { Njq_workload.Generator.default_config with dangling_rate = 0.0 }

let test_parse_defines () =
  let prog =
    Parser.parse_program
      {| define reds as select p from p in PART where p.color = "red";
         select r.pname from r in reds |}
  in
  Alcotest.(check int) "one define" 1 (List.length prog.Njq_oosql.Ast.defines);
  Alcotest.(check bool) "query present" true (prog.Njq_oosql.Ast.query <> None)

let test_expansion_semantics () =
  let cat = cat () in
  let via_view =
    run_program
      {| define reds as select p from p in PART where p.color = "red";
         select r.pname from r in reds |}
  in
  let direct =
    fst
      (Njq_oosql.Translate.query_string schema
         {| select r.pname from r in (select p from p in PART where p.color = "red") |})
  in
  Alcotest.check Util.value "view ≡ inline subquery" (Eval.run cat direct)
    (Eval.run cat via_view)

let test_view_of_view () =
  let cat = cat () in
  let q =
    run_program
      {| define reds as select p from p in PART where p.color = "red";
         define cheap_reds as select p from p in reds where p.price < 100;
         select r.pname from r in cheap_reds |}
  in
  let direct =
    fst
      (Njq_oosql.Translate.query_string schema
         {| select p.pname from p in PART where p.color = "red" and p.price < 100 |})
  in
  Alcotest.check Util.value "chained views" (Eval.run cat direct) (Eval.run cat q)

let test_shadowing () =
  (* A from-binding with the view's name shadows it. *)
  let cat = cat () in
  let q =
    run_program
      {| define v as select p from p in PART where p.color = "red";
         select v.sname from v in SUPPLIER |}
  in
  let direct =
    fst (Njq_oosql.Translate.query_string schema "select s.sname from s in SUPPLIER")
  in
  Alcotest.check Util.value "binding shadows view" (Eval.run cat direct)
    (Eval.run cat q)

let test_quantifier_shadowing () =
  let cat = cat () in
  let q2 =
    run_program
      {| define v as select p.oid from p in PART where p.color = "red";
         select s.sname from s in SUPPLIER where exists z in v : z in s.parts_supplied |}
  in
  let direct =
    fst
      (Njq_oosql.Translate.query_string schema
         {| select s.sname from s in SUPPLIER
            where exists z in (select p.oid from p in PART where p.color = "red")
                  : z in s.parts_supplied |})
  in
  Alcotest.check Util.value "view in quantifier range" (Eval.run cat direct)
    (Eval.run cat q2)

(* Expanded views produce from-clause nesting that the optimizer flattens
   and unnests end to end. *)
let test_views_through_strategy () =
  let cat = cat () in
  let q =
    run_program
      {| define reds as select p from p in PART where p.color = "red";
         select s.sname from s in SUPPLIER
         where exists z in s.parts_supplied : exists p in reds : z = p.oid |}
  in
  let out = Strategy.optimize cat q in
  let rec contains p e =
    p e || Expr.fold_children (fun acc c -> acc || contains p c) false e
  in
  Alcotest.(check bool) "semijoin after view expansion" true
    (contains
       (function Expr.Join { kind = Expr.Semi; _ } -> true | _ -> false)
       out);
  Alcotest.check Util.value "equivalent" (Eval.run cat q)
    (Njq_engine.Planner.run cat out)

let () =
  Alcotest.run "views"
    [ ( "views",
        [ Alcotest.test_case "parsing" `Quick test_parse_defines;
          Alcotest.test_case "expansion semantics" `Quick test_expansion_semantics;
          Alcotest.test_case "view of view" `Quick test_view_of_view;
          Alcotest.test_case "from-binding shadowing" `Quick test_shadowing;
          Alcotest.test_case "quantifier range expansion" `Quick test_quantifier_shadowing;
          Alcotest.test_case "through the strategy" `Quick test_views_through_strategy ] ) ]
