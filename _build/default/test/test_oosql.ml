(* Tests for the OOSQL front-end: lexer, parser, schema mapping, and the
   type-directed translation to ADL. *)

open Njq_adl
open Njq_oosql

let schema = Schema.supplier_part ()

let parse = Parser.parse_query

let translate src = Translate.query_string schema src



let fails_translate name src =
  match translate src with
  | _ -> Alcotest.failf "%s: expected a translation error" name
  | exception Translate.Translate_error _ -> ()

(* ---------------- Lexer ---------------- *)

let test_lexer () =
  let toks = Lexer.tokenize "select s.sname from s in SUPPLIER -- comment\nwhere 1 <= 2" in
  let kinds = Array.to_list (Array.map (fun l -> l.Lexer.tok) toks) in
  Alcotest.(check int) "token count" 13 (List.length kinds);
  (match kinds with
   | Lexer.KW_SELECT :: Lexer.IDENT "s" :: Lexer.DOT :: Lexer.IDENT "sname" :: _ -> ()
   | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.check_raises "bad character"
    (Lexer.Lex_error ("unexpected character '#'", { Ast.line = 1; col = 1 }))
    (fun () -> ignore (Lexer.tokenize "#"));
  (* strings with escapes; line tracking *)
  let toks2 = Lexer.tokenize "\"a\\\"b\"\n42" in
  (match toks2.(0).Lexer.tok, toks2.(1).Lexer.tok with
   | Lexer.STRING s, Lexer.INT 42 -> Alcotest.(check string) "escape" "a\"b" s
   | _ -> Alcotest.fail "string/int tokens expected");
  Alcotest.(check int) "line of second token" 2 toks2.(1).Lexer.pos.Ast.line

(* ---------------- Parser ---------------- *)

let test_parser_precedence () =
  (* a + b * c parses as a + (b * c) *)
  (match parse "a + b * c" with
   | Ast.EBin (Ast.Add, Ast.EVar ("a", _), Ast.EBin (Ast.Mul, _, _, _), _) -> ()
   | _ -> Alcotest.fail "arith precedence");
  (* not a and b parses as (not a) and b *)
  (match parse "not a and b" with
   | Ast.EBin (Ast.And, Ast.ENot _, Ast.EVar ("b", _), _) -> ()
   | _ -> Alcotest.fail "not binds tighter than and");
  (* a = b or c = d parses as (a=b) or (c=d) *)
  match parse "a = b or c = d" with
  | Ast.EBin (Ast.Or, Ast.EBin (Ast.Eq, _, _, _), Ast.EBin (Ast.Eq, _, _, _), _) -> ()
  | _ -> Alcotest.fail "comparison binds tighter than or"

let test_parser_tuple_vs_grouping () =
  (match parse "(a = 1, b = 2)" with
   | Ast.ETuple ([ ("a", _); ("b", _) ], _) -> ()
   | _ -> Alcotest.fail "tuple constructor");
  match parse "(a = 1)" with
  | Ast.ETuple ([ ("a", _) ], _) -> ()
  | _ -> Alcotest.fail "single-field tuple still a tuple"

let test_parser_sfw () =
  match parse "select d from d in DELIVERY, x in d.supply where d.date = 940101" with
  | Ast.ESfw ({ froms = [ ("d", _); ("x", _) ]; where = Some _; _ }, _) -> ()
  | _ -> Alcotest.fail "sfw structure"

let test_parser_quantifiers () =
  (match parse "exists x in s.parts_supplied" with
   | Ast.EQuant (Ast.QExists, "x", _, None, _) -> ()
   | _ -> Alcotest.fail "bare exists");
  (match parse "forall x in PART : x.price > 0" with
   | Ast.EQuant (Ast.QForall, "x", _, Some _, _) -> ()
   | _ -> Alcotest.fail "forall with predicate");
  (match parse "a not in b" with
   | Ast.EBin (Ast.NotIn, _, _, _) -> ()
   | _ -> Alcotest.fail "not in");
  match parse "not a in b" with
  | Ast.ENot (Ast.EBin (Ast.In, _, _, _), _) -> ()
  | _ -> Alcotest.fail "not (a in b) when separated"

let test_parser_errors () =
  let bad src =
    match parse src with
    | _ -> Alcotest.failf "expected parse error on %S" src
    | exception Parser.Parse_error _ -> ()
  in
  bad "select";
  bad "select x from";
  bad "select x from x in";
  bad "(a = 1";
  bad "{1, }";
  bad "exists in X"

let test_parse_schema () =
  Alcotest.(check int) "three classes" 3 (List.length schema);
  let delivery = Schema.find_class schema "Delivery" in
  Alcotest.(check string) "extent" "DELIVERY" delivery.Ast.extent;
  Alcotest.(check int) "attrs" 3 (List.length delivery.Ast.attributes);
  match List.assoc "supply" delivery.Ast.attributes with
  | Ast.SSet (Ast.STuple [ ("part", Ast.SClass "Part"); ("quantity", Ast.SInt) ]) -> ()
  | _ -> Alcotest.fail "supply type"

(* ---------------- Pretty-printer round trip ---------------- *)

let strip_pos_rountrip src =
  let e = parse src in
  let printed = Sqlpretty.to_string e in
  let e2 = parse printed in
  (* compare via printing again: positions differ, text should not *)
  Alcotest.(check string) ("round trip: " ^ src) printed (Sqlpretty.to_string e2)

let test_pretty_roundtrip () =
  List.iter strip_pos_rountrip
    [ "select s.sname from s in SUPPLIER where s.sname = \"s1\"";
      "select (a = 1 + 2 * 3, b = {1, 2}) from x in PART";
      "exists x in s.parts_supplied : not exists p in PART : x = p.oid";
      "a subseteq b union c intersect d";
      "count(PART) > 0 and not (1 = 2)";
      "select d from d in (select e from e in DELIVERY where e.date = 1) where true" ];
  List.iter
    (fun (q : Njq_workload.Queries.query) -> strip_pos_rountrip q.oosql)
    Njq_workload.Queries.all

(* ---------------- Schema mapping ---------------- *)

let test_schema_mapping () =
  let cat = Schema.to_catalog schema in
  Alcotest.(check (list string)) "extents"
    [ "DELIVERY"; "PART"; "SUPPLIER" ] (Catalog.table_names cat);
  Alcotest.check Util.vtype "supplier row type"
    Util.supplier_row_type (Catalog.row_type cat "SUPPLIER");
  Alcotest.check Util.vtype "delivery row type"
    Njq_workload.Generator.delivery_row_type (Catalog.row_type cat "DELIVERY")

(* ---------------- Translation ---------------- *)

let test_translate_sfw () =
  let e, t = translate "select s.sname from s in SUPPLIER where s.sname = \"a\"" in
  Alcotest.check Util.vtype "type" (Vtype.TSet Vtype.TString) t;
  match e with
  | Expr.Map { body = Expr.Field (Expr.Var "s", "sname");
               src = Expr.Select { src = Expr.Table "SUPPLIER"; _ }; _ } -> ()
  | _ -> Alcotest.failf "unexpected translation %a" Pretty.pp e

let test_translate_paths () =
  (* Path through a class reference inserts a Deref (materialize). *)
  let e, t = translate "select d.supplier.sname from d in DELIVERY" in
  Alcotest.check Util.vtype "type" (Vtype.TSet Vtype.TString) t;
  let rec has_deref e =
    (match e with Expr.Deref ("SUPPLIER", _) -> true | _ -> false)
    || Expr.fold_children (fun acc c -> acc || has_deref c) false e
  in
  Alcotest.(check bool) "deref inserted" true (has_deref e)

let test_translate_multifrom () =
  let e, t =
    translate "select (s = x.sname, p = y.pname) from x in SUPPLIER, y in PART"
  in
  Alcotest.check Util.vtype "type"
    (Vtype.TSet (Vtype.tuple [ ("s", Vtype.TString); ("p", Vtype.TString) ]))
    t;
  match e with
  | Expr.Flatten (Expr.Map _) -> ()
  | _ -> Alcotest.failf "expected flatten of map, got %a" Pretty.pp e

let test_translate_setcmp_dispatch () =
  (* '=' on sets becomes SetEq; on atoms Cmp Eq. *)
  let e, _ =
    translate "select s from s in SUPPLIER where s.parts_supplied = {}"
  in
  let rec find p e =
    p e || Expr.fold_children (fun acc c -> acc || find p c) false e
  in
  Alcotest.(check bool) "set equality" true
    (find (function Expr.SetCmp (Expr.SetEq, _, _) -> true | _ -> false) e);
  let e2, _ = translate "select s from s in SUPPLIER where s.sname = \"x\"" in
  Alcotest.(check bool) "atomic equality" true
    (find (function Expr.Cmp (Expr.Eq, _, _) -> true | _ -> false) e2)

let test_translate_date_coercion () =
  let e, _ = translate "select d from d in DELIVERY where d.date = 940101" in
  let rec find p e =
    p e || Expr.fold_children (fun acc c -> acc || find p c) false e
  in
  Alcotest.(check bool) "int literal coerced to date" true
    (find
       (function
         | Expr.Cmp (Expr.Eq, _, Expr.Const (Value.VDate 940101)) -> true
         | _ -> false)
       e)

let test_translate_quantifier_forms () =
  let e, _ =
    translate
      "select d from d in DELIVERY where exists x in (select s from s in d.supply where s.quantity > 1)"
  in
  let rec find p e = p e || Expr.fold_children (fun acc c -> acc || find p c) false e in
  Alcotest.(check bool) "bare exists is a non-emptiness test" true
    (find
       (function
         | Expr.Quant (Expr.Exists, _, _, pred) -> Expr.is_true pred
         | _ -> false)
       e)

let test_translate_errors () =
  fails_translate "unknown extent" "select x from x in NOPE";
  fails_translate "unknown attribute" "select s.nope from s in SUPPLIER";
  fails_translate "non-boolean where" "select s from s in SUPPLIER where s.sname";
  fails_translate "heterogeneous set" "select s from s in SUPPLIER where 1 in {1, \"a\"}";
  fails_translate "arith on strings" "select s from s in SUPPLIER where s.sname + 1 = 2";
  fails_translate "forall without predicate" "select s from s in SUPPLIER where forall x in PART";
  fails_translate "in on non-set" "select s from s in SUPPLIER where 1 in 2";
  fails_translate "aggregate over scalar" "select s from s in SUPPLIER where count(1) = 1"

(* Translation of the whole corpus typechecks against the generated data. *)
let test_corpus_types () =
  let cat =
    Njq_workload.Generator.catalog Njq_workload.Generator.default_config
  in
  List.iter
    (fun (q : Njq_workload.Queries.query) ->
      let e, t = translate q.oosql in
      match Typecheck.infer cat [] e with
      | t' ->
        Alcotest.(check bool)
          (q.id ^ " type agrees with ADL inference")
          true (Vtype.compat t t')
      | exception Vtype.Type_error msg -> Alcotest.failf "%s: %s" q.id msg)
    Njq_workload.Queries.all

let () =
  Alcotest.run "oosql"
    [ ( "lexer",
        [ Alcotest.test_case "tokens" `Quick test_lexer ] );
      ( "parser",
        [ Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "tuple vs grouping" `Quick test_parser_tuple_vs_grouping;
          Alcotest.test_case "sfw" `Quick test_parser_sfw;
          Alcotest.test_case "quantifiers" `Quick test_parser_quantifiers;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "schema" `Quick test_parse_schema;
          Alcotest.test_case "pretty round trip" `Quick test_pretty_roundtrip ] );
      ( "translation",
        [ Alcotest.test_case "schema mapping" `Quick test_schema_mapping;
          Alcotest.test_case "sfw translation" `Quick test_translate_sfw;
          Alcotest.test_case "paths and deref" `Quick test_translate_paths;
          Alcotest.test_case "multiple from bindings" `Quick test_translate_multifrom;
          Alcotest.test_case "set comparison dispatch" `Quick test_translate_setcmp_dispatch;
          Alcotest.test_case "date coercion" `Quick test_translate_date_coercion;
          Alcotest.test_case "quantifier forms" `Quick test_translate_quantifier_forms;
          Alcotest.test_case "type errors" `Quick test_translate_errors;
          Alcotest.test_case "corpus types" `Quick test_corpus_types ] ) ]
