(* Tests for the extended corpus: multiple nesting levels and multiple
   subqueries per predicate — the paper's Section 7 future-work directions,
   which the recursive strategy handles. *)

open Njq_adl
module Strategy = Njq_core.Strategy
module Gen = Njq_workload.Generator
module Queries = Njq_workload.Queries

let cat ?(n = 48) ?(seed = 17) () =
  Gen.catalog { (Gen.scaled ~seed n) with Gen.dangling_rate = 0.0 }

let rec contains p e =
  p e || Expr.fold_children (fun acc c -> acc || contains p c) false e

let count_nodes p e =
  let rec go acc e =
    Expr.fold_children go (if p e then acc + 1 else acc) e
  in
  go 0 e

let is_nestjoin = function Expr.Nestjoin _ -> true | _ -> false
let is_semi = function Expr.Join { kind = Expr.Semi; _ } -> true | _ -> false
let is_anti = function Expr.Join { kind = Expr.Anti; _ } -> true | _ -> false

let check_all_modes name cat adl =
  let expected = Eval.run cat adl in
  List.iter
    (fun mode ->
      let options = { Strategy.default_options with Strategy.grouping_mode = mode } in
      let out = Strategy.optimize ~options cat adl in
      Alcotest.check Util.value (name ^ " eval") expected (Eval.run cat out);
      Alcotest.check Util.value (name ^ " engine") expected
        (Njq_engine.Planner.run cat out))
    [ Strategy.Nestjoin_always; Strategy.Flat_join_when_safe; Strategy.Outerjoin ]

let test_eq7_three_levels () =
  let cat = cat () in
  let adl = Queries.to_adl Queries.q7 in
  let out = Strategy.optimize cat adl in
  (* The outermost nesting level is unnested into a semijoin. *)
  Alcotest.(check bool) "outer level becomes a semijoin" true (contains is_semi out);
  check_all_modes "EQ7" cat adl

let test_eq8_two_subqueries () =
  let cat = cat () in
  let adl = Queries.to_adl Queries.q8 in
  let out = Strategy.optimize cat adl in
  Alcotest.(check bool) "positive subquery becomes a semijoin" true
    (contains is_semi out);
  Alcotest.(check bool) "negative subquery becomes an antijoin" true
    (contains is_anti out);
  (* No selection with a base table left in its predicate. *)
  Alcotest.(check bool) "fully unnested" false
    (contains
       (function
         | Expr.Select { pred; _ } -> Analysis.uses_base_table pred
         | _ -> false)
       out);
  check_all_modes "EQ8" cat adl

let test_eq9_nested_grouping () =
  let cat = cat ~n:24 () in
  let adl = Queries.to_adl Queries.q9 in
  let out = Strategy.optimize cat adl in
  Alcotest.(check bool) "two nestjoin levels" true
    (count_nodes is_nestjoin out >= 2);
  check_all_modes "EQ9" cat adl

(* Chained semijoin extraction: three positive subqueries in one
   conjunction peel off one join each. *)
let test_conjunct_chain () =
  let cat = cat () in
  let open Dsl in
  let wants color =
    exists "p" (table "PART")
      (mem (var "p" $. "oid") (var "s" $. "parts_supplied")
       &&& eq (var "p" $. "color") (str color))
  in
  let adl =
    select "s" (table "SUPPLIER")
      (wants "red" &&& wants "green" &&& wants "blue")
  in
  let out = Strategy.optimize cat adl in
  Alcotest.(check int) "three semijoins" 3 (count_nodes is_semi out);
  check_all_modes "chain" cat adl

let () =
  Alcotest.run "multilevel"
    [ ( "extended corpus",
        [ Alcotest.test_case "EQ7: three levels" `Quick test_eq7_three_levels;
          Alcotest.test_case "EQ8: two subqueries" `Quick test_eq8_two_subqueries;
          Alcotest.test_case "EQ9: nested grouping" `Quick test_eq9_nested_grouping;
          Alcotest.test_case "semijoin chains" `Quick test_conjunct_chain ] ) ]
