(* Cross-cutting algebraic properties: folding, normalization, the exchange
   rule in isolation, and substitution laws — each validated on the random
   nested-predicate generator. *)

open Njq_adl
open Dsl
module Rules = Njq_core.Rules
module Normalize = Njq_core.Normalize
module Exchange = Njq_core.Exchange

let with_catalog (pred, tables) f =
  let cat = Util.xy_catalog tables in
  f cat (select "x" (table "X") pred)

(* Folding is idempotent. *)
let prop_fold_idempotent =
  Util.qcheck ~count:300 "Fold.simplify is idempotent"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, _) ->
      let e = select "x" (table "X") pred in
      let once = Fold.simplify e in
      Expr.equal once (Fold.simplify once))

(* Folding preserves semantics on full queries. *)
let prop_fold_sound =
  Util.qcheck ~count:300 "Fold.simplify preserves semantics"
    Util.arbitrary_xy_pred_and_tables
    (fun input ->
      with_catalog input (fun cat e ->
          Value.equal (Eval.run cat e) (Eval.run cat (Fold.simplify e))))

(* Normalization alone (Table 1/2 expansions, negation pushing, fusions,
   hoisting, disjunction splitting) preserves semantics. *)
let prop_normalize_sound =
  Util.qcheck ~count:250 "Normalize.run preserves semantics"
    Util.arbitrary_xy_pred_and_tables
    (fun input ->
      with_catalog input (fun cat e ->
          let e', _ = Normalize.run cat e in
          Value.equal (Eval.run cat e) (Eval.run cat e')))

(* The exchange rule applied anywhere, repeatedly, preserves semantics. *)
let prop_exchange_sound =
  Util.qcheck ~count:250 "quantifier exchange preserves semantics"
    Util.arbitrary_xy_pred_and_tables
    (fun input ->
      with_catalog input (fun cat e ->
          (* exchange fires on normalized forms; normalize first *)
          let e1, _ = Normalize.run cat e in
          let e2, _ = Rules.fixpoint_simplify cat Exchange.rules e1 in
          Value.equal (Eval.run cat e) (Eval.run cat e2)))

(* Substitution laws. *)
let prop_subst_identity =
  Util.qcheck ~count:300 "subst x (Var x) is the identity"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, _) ->
      Expr.equal pred (Analysis.subst1 "x" (Expr.Var "x") pred))

let prop_subst_closes =
  Util.qcheck ~count:300 "substituting the only free variable closes the term"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, _) ->
      let closed =
        Analysis.subst1 "x"
          (Expr.Const
             (Value.tuple [ ("a", Value.int 1); ("c", Value.set [ Value.int 2 ]) ]))
          pred
      in
      Analysis.is_closed closed)

(* Substitution commutes with evaluation: evaluating with x bound in the
   environment equals evaluating the substituted term. *)
let prop_subst_eval =
  Util.qcheck ~count:250 "substitution commutes with evaluation"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let row = Value.tuple [ ("a", Value.int 2); ("c", Value.set [ Value.int 1 ]) ] in
      let via_env = Eval.eval cat [ ("x", row) ] pred in
      let via_subst =
        Eval.run cat (Analysis.subst1 "x" (Expr.Const row) pred)
      in
      Value.equal via_env via_subst)

(* Expression size never grows under folding. *)
let prop_fold_no_growth =
  Util.qcheck ~count:300 "folding never grows the term"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, _) ->
      Analysis.size (Fold.simplify pred) <= Analysis.size pred)

(* The strategy's output never re-optimizes into something different
   (global idempotence, here on random queries rather than the corpus). *)
let prop_strategy_idempotent =
  Util.qcheck ~count:150 "strategy is idempotent on random queries"
    Util.arbitrary_xy_pred_and_tables
    (fun input ->
      with_catalog input (fun cat e ->
          let once = Njq_core.Strategy.optimize cat e in
          Expr.equal once (Njq_core.Strategy.optimize cat once)))

let () =
  Alcotest.run "properties"
    [ ( "algebraic laws",
        [ prop_fold_idempotent; prop_fold_sound; prop_normalize_sound;
          prop_exchange_sound; prop_subst_identity; prop_subst_closes;
          prop_subst_eval; prop_fold_no_growth; prop_strategy_idempotent ] ) ]
