(* Regenerate every table and figure of the paper from the implementation.

   Usage: paper_artifacts [table1|table2|table3|fig1|fig2|fig3|derivations|
                           queries|all]

   Each section prints the paper artifact next to what the implementation
   computes, so the output can be read side by side with the paper. *)

open Njq_adl
open Dsl
module Normalize = Njq_core.Normalize
module Strategy = Njq_core.Strategy
module Grouping = Njq_core.Grouping

let header title =
  Fmt.pr "@.=== %s ===@.@." title

(* Small X(a, c:{int}) / Y(d, e) catalogs for the derivation examples. *)
let xy_tables xrows yrows =
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TSet Vtype.TInt) ])
    (List.map
       (fun (a, c) ->
         Value.tuple
           [ ("a", Value.int a); ("c", Value.set (List.map Value.int c)) ])
       xrows);
  Catalog.add_table cat ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    (List.map
       (fun (d, e) -> Value.tuple [ ("d", Value.int d); ("e", Value.int e) ])
       yrows);
  cat

(* ------------------------------------------------------------------ *)
(* Table 1: rewriting set comparison operations into quantifiers       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: Rewriting Set Comparison Operations";
  let c = var "x" $. "c" and y' = var "Y'" in
  let rows =
    [ ("x.c ∈ Y'", Expr.Mem, c, y');
      ("x.c ∉ Y'", Expr.NotMem, c, y');
      ("x.c ⊆ Y'", Expr.SubsetEq, c, y');
      ("x.c ⊂ Y'", Expr.Subset, c, y');
      ("x.c ⊇ Y'", Expr.SupsetEq, c, y');
      ("x.c ⊃ Y'", Expr.Supset, c, y');
      ("x.c = Y'", Expr.SetEq, c, y');
      ("x.c ≠ Y'", Expr.SetNeq, c, y');
      ("x.c ∋ Y'", Expr.Ni, c, y') ]
  in
  List.iter
    (fun (label, op, a, b) ->
      match Normalize.expand_setcmp op a b with
      | Some q -> Fmt.pr "  %-10s ≡  %a@." label Pretty.pp q
      | None -> Fmt.pr "  %-10s (no expansion)@." label)
    rows;
  Fmt.pr
    "@.  Expanding ∈ and ⊇ yields (negated) existentials suited for Rule 1;@.\
    \  the other operators yield multiple-subquery expressions and are left@.\
    \  for the grouping/nestjoin phase (strategy gate).@."

(* ------------------------------------------------------------------ *)
(* Table 2: rewriting predicates into (negated) existentials           *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: Rewriting Predicates";
  let cat = Njq_workload.Queries.fig2_catalog () in
  let sub = select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")) in
  let show label pred =
    let q = select "x" (table "X") pred in
    let out = Strategy.optimize cat q in
    Fmt.pr "  %-24s ⇒  %a@." label Pretty.pp out
  in
  show "Y' = ∅" (set_eq sub empty);
  show "count(Y') = 0" (eq (count sub) (int 0));
  show "x.c ∩ Y'' = ∅"
    (set_eq
       (inter (var "x" $. "c")
          (map_ "y" (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
             (var "y" $. "e")))
       empty);
  (* The last row needs a set-of-sets attribute; build a dedicated pair. *)
  let cat2 = Catalog.create () in
  let sos v = Value.set (List.map (fun l -> Value.set (List.map Value.int l)) v) in
  Catalog.add_table cat2 ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TSet (Vtype.TSet Vtype.TInt)) ])
    [ Value.tuple [ ("a", Value.int 1); ("c", sos [ [ 1 ] ]) ] ];
  Catalog.add_table cat2 ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ] ];
  let sub2 =
    map_ "y" (select "y" (table "Y") (eq (var "x" $. "a") (var "y" $. "d")))
      (var "y" $. "e")
  in
  let q = select "x" (table "X") (forall "z" (var "x" $. "c") (supseteq (var "z") sub2)) in
  Fmt.pr "  %-24s ⇒  %a@." "∀z∈x.c • z ⊇ Y''" Pretty.pp (Strategy.optimize cat2 q)

(* ------------------------------------------------------------------ *)
(* Table 3: set comparison operators and bugs — P(x, ∅)                *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3: Set Comparison Operators And Bugs — P(x, ∅)";
  let c = var "x" $. "c" and y' = var "Y'" in
  let rows =
    [ ("x.c ⊂ Y'", subset c y'); ("x.c ⊆ Y'", subseteq c y');
      ("x.c = Y'", set_eq c y'); ("x.c ⊇ Y'", supseteq c y');
      ("x.c ⊃ Y'", supset c y'); ("x.c ∋ Y'", ni c y') ]
  in
  Fmt.pr "  %-12s | P(x, ∅)@." "P(x, Y')";
  Fmt.pr "  %s@." (String.make 26 '-');
  List.iter
    (fun (label, p) ->
      Fmt.pr "  %-12s | %a@." label Emptyset.pp_outcome
        (Emptyset.reduce_var ~yname:"Y'" p))
    rows;
  Fmt.pr
    "@.  Unnesting by grouping into a flat join is guaranteed correct only@.\
    \  when P(x, ∅) reduces statically to false.@."

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let print_table cat name =
  Fmt.pr "  %s = %a@." name Value.pp (Value.set (Catalog.rows cat name))

let fig1 () =
  header "Figure 1: Nesting Involving Set-Valued Attribute";
  let cat = Njq_workload.Queries.fig2_catalog () in
  print_table cat "X";
  print_table cat "Y";
  let q = Njq_workload.Queries.fig2_query in
  Fmt.pr "@.  query  : %a@." Pretty.pp q;
  Fmt.pr "  result : %a@." Value.pp (Eval.run cat q)

let fig2 () =
  header "Figure 2: The Complex Object Bug";
  let cat = Njq_workload.Queries.fig2_catalog () in
  print_table cat "X";
  print_table cat "Y";
  let q = Njq_workload.Queries.fig2_query in
  Fmt.pr "@.  nested query        : %a@." Pretty.pp q;
  Fmt.pr "  nested-loop answer  : %a@." Value.pp (Eval.run cat q);
  (* Intermediate results of the (buggy) flat-join transformation *)
  let join =
    join ~x:"x" ~y:"y" (eq (var "x" $. "a") (var "y" $. "d")) (table "X") (table "Y")
  in
  Fmt.pr "@.  X ⋈ Y               : %a@." Value.pp (Eval.run cat join);
  let nested = nest ~attrs:[ "d"; "e" ] ~into:"g" join in
  Fmt.pr "  ν(X ⋈ Y)            : %a@." Value.pp (Eval.run cat nested);
  let buggy = Grouping.rewrite_unsafe cat q in
  Fmt.pr "@.  flat join query     : %a@." Pretty.pp buggy;
  Fmt.pr "  BUGGY answer        : %a@." Value.pp (Eval.run cat buggy);
  Fmt.pr "    — the dangling tuple ⟨a = 2, c = {}⟩ is lost: ∅ ⊆ ∅ holds, so it@.";
  Fmt.pr "      belongs in the result but never survives the join.@.";
  let repaired = Grouping.rewrite_outerjoin cat q in
  Fmt.pr "@.  outer-join repair   : %a@." Value.pp (Eval.run cat repaired);
  let report = Strategy.rewrite cat q in
  Fmt.pr "  nestjoin (strategy) : %a@." Pretty.pp report.Strategy.output;
  Fmt.pr "  correct answer      : %a@." Value.pp (Eval.run cat report.Strategy.output)

let fig3 () =
  header "Figure 3: Nestjoin Example";
  let cat = Njq_workload.Queries.fig3_catalog () in
  print_table cat "X3";
  print_table cat "Y3";
  Fmt.pr "@.  query  : %a@." Pretty.pp Njq_workload.Queries.fig3_query;
  Fmt.pr "  result : %a@." Value.pp (Eval.run cat Njq_workload.Queries.fig3_query)

(* ------------------------------------------------------------------ *)
(* Derivations: Rewriting Examples 1-3 step by step                    *)
(* ------------------------------------------------------------------ *)

let derivations () =
  header "Rewriting Examples 1-3 (derivation traces)";
  let show title cat q =
    Fmt.pr "— %s —@." title;
    Fmt.pr "%a@.@." Strategy.pp_report (Strategy.rewrite cat q)
  in
  (* Example 1: set membership *)
  let cat1 = xy_tables [ (1, [ 7 ]); (3, []) ] [ (1, 7); (2, 9) ] in
  show "Rewriting Example 1: set membership" cat1
    (select "x" (table "X")
       (mem (var "x" $. "a")
          (map_ "y" (select "y" (table "Y") (gt (var "y" $. "e") (int 0)))
             (var "y" $. "d"))));
  (* Example 2: set inclusion with the subquery on the left *)
  let cat2 = xy_tables [ (1, [ 1; 2 ]) ] [ (1, 1); (2, 2) ] in
  show "Rewriting Example 2: set inclusion" cat2
    (select "x" (table "X")
       (subseteq
          (map_ "y" (select "y" (table "Y") (gt (var "y" $. "d") (int 0)))
             (var "y" $. "e"))
          (var "x" $. "c")));
  (* Example 3: exchanging quantifiers *)
  let cat3 = Catalog.create () in
  let sos v = Value.set (List.map (fun l -> Value.set (List.map Value.int l)) v) in
  Catalog.add_table cat3 ~name:"X"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("c", Vtype.TSet (Vtype.TSet Vtype.TInt)) ])
    [ Value.tuple [ ("a", Value.int 1); ("c", sos [ [ 1; 2 ] ]) ] ];
  Catalog.add_table cat3 ~name:"Y"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ] ];
  show "Rewriting Example 3: exchanging quantifiers" cat3
    (select "x" (table "X")
       (forall "z" (var "x" $. "c")
          (supseteq (var "z")
             (map_ "y" (select "y" (table "Y") (lt (var "y" $. "d") (int 2)))
                (var "y" $. "e")))))

(* ------------------------------------------------------------------ *)
(* Example Queries 1-6 end to end                                      *)
(* ------------------------------------------------------------------ *)

let queries () =
  header "Example Queries 1-6: OOSQL → ADL → rewrite → plan";
  let clean = { Njq_workload.Generator.default_config with dangling_rate = 0.0 } in
  let dirty = Njq_workload.Generator.default_config in
  List.iter
    (fun (q : Njq_workload.Queries.query) ->
      let cfg = if q.needs_integrity then clean else dirty in
      let cat = Njq_workload.Generator.catalog cfg in
      Fmt.pr "— %s: %s —@." q.id q.title;
      Fmt.pr "  OOSQL:@.%s@.@." q.oosql;
      let adl = Njq_workload.Queries.to_adl q in
      let report = Strategy.rewrite cat adl in
      Fmt.pr "  ADL      : %a@." Pretty.pp adl;
      Fmt.pr "  rewritten: %a@." Pretty.pp report.Strategy.output;
      Fmt.pr "  plan     : %a@." Njq_engine.Plan.pp
        (Njq_engine.Planner.plan report.Strategy.output);
      let v = Njq_engine.Exec.run cat (Njq_engine.Planner.plan report.Strategy.output) in
      Fmt.pr "  |result| : %d rows (equal to nested-loop evaluation: %b)@.@."
        (Value.set_size v)
        (Value.equal v (Eval.run cat adl)))
    Njq_workload.Queries.all

(* ------------------------------------------------------------------ *)
(* The relational COUNT bug (Kim82), of which the Complex Object bug is
   the generalization (Section 5.2.2).                                  *)
(* ------------------------------------------------------------------ *)

let countbug () =
  header "The COUNT bug (Kim82) as a special case";
  let cat = Catalog.create () in
  Catalog.add_table cat ~name:"XC"
    ~row_type:(Vtype.tuple [ ("a", Vtype.TInt); ("k", Vtype.TInt) ])
    [ Value.tuple [ ("a", Value.int 1); ("k", Value.int 2) ];
      Value.tuple [ ("a", Value.int 2); ("k", Value.int 0) ] ];
  Catalog.add_table cat ~name:"YC"
    ~row_type:(Vtype.tuple [ ("d", Vtype.TInt); ("e", Vtype.TInt) ])
    [ Value.tuple [ ("d", Value.int 1); ("e", Value.int 1) ];
      Value.tuple [ ("d", Value.int 1); ("e", Value.int 2) ] ];
  print_table cat "XC";
  print_table cat "YC";
  let q =
    select "x" (table "XC")
      (eq
         (count (select "y" (table "YC") (eq (var "x" $. "a") (var "y" $. "d"))))
         (var "x" $. "k"))
  in
  Fmt.pr "@.  query (count(Y') = x.k) : %a@." Pretty.pp q;
  Fmt.pr "  nested-loop answer      : %a@." Value.pp (Eval.run cat q);
  let buggy = Grouping.rewrite_unsafe cat q in
  Fmt.pr "  flat-join answer (BUG)  : %a@." Value.pp (Eval.run cat buggy);
  Fmt.pr "    — count over the empty set is 0, so ⟨a = 2, k = 0⟩ belongs in@.";
  Fmt.pr "      the answer but dangles out of the join: the COUNT bug.@.";
  let sub = select "y" (table "YC") (eq (var "x" $. "a") (var "y" $. "d")) in
  Fmt.pr "  P(x, ∅) analysis        : %a (flat join unsafe)@."
    Emptyset.pp_outcome
    (Emptyset.reduce ~subquery:sub (eq (count sub) (var "x" $. "k")));
  let fixed = Strategy.rewrite cat q in
  Fmt.pr "  nestjoin (strategy)     : %a@." Pretty.pp fixed.Strategy.output;
  Fmt.pr "  correct answer          : %a@." Value.pp
    (Eval.run cat fixed.Strategy.output)

let sections =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig1", fig1); ("fig2", fig2); ("fig3", fig3);
    ("derivations", derivations); ("queries", queries);
    ("countbug", countbug) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match args with
    | [] | [ "all" ] -> List.map fst sections
    | picked -> picked
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown section %s (available: %s, all)@." name
          (String.concat ", " (List.map fst sections));
        exit 1)
    to_run
