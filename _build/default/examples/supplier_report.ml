(* Building complex-object reports with the nestjoin — the paper's Example
   Queries 1 and 6.

   The query nests in the select-clause: for each supplier, the set of part
   objects it supplies.  This cannot be rewritten into a flat relational
   join (the result is a complex object, and dangling suppliers must keep
   their empty set), so the strategy uses the nestjoin:

     alpha[z : (sname = z.sname, parts = z.g)](SUPPLIER nestjoin[...] PART)

   The example also shows the three execution strategies for grouping
   queries side by side: nested loops, nestjoin (hash), and the flat
   join+nest (which silently loses suppliers — the Complex Object bug).

   Run with: dune exec examples/supplier_report.exe *)

open Njq_adl
module Gen = Njq_workload.Generator
module Strategy = Njq_core.Strategy

let () =
  let cfg = { (Gen.scaled ~seed:7 128) with dangling_rate = 0.0; empty_rate = 0.2 } in
  let cat = Gen.catalog cfg in

  let query =
    {| select (sname = s.sname,
               parts_suppl = select p.pname from p in PART
                             where p.oid in s.parts_supplied)
       from s in SUPPLIER |}
  in
  Fmt.pr "OOSQL:@.%s@.@." query;
  let adl, ty = Njq_oosql.Translate.query_string Njq_workload.Queries.schema query in
  Fmt.pr "Result type: %a@.@." Vtype.pp ty;

  let report = Strategy.rewrite cat adl in
  Fmt.pr "Rewritten (nestjoin):@.  %a@.@." Pretty.pp report.Strategy.output;

  Counters.reset ();
  let result =
    Njq_engine.Exec.run cat (Njq_engine.Planner.plan report.Strategy.output)
  in
  Fmt.pr "Computed %d supplier rows; work: %a@.@." (Value.set_size result)
    Counters.pp_snapshot (Counters.snapshot ());

  (* Print the first few report rows. *)
  let rows = Value.as_set result in
  List.iteri
    (fun i row -> if i < 4 then Fmt.pr "  %a@." Value.pp row)
    rows;
  Fmt.pr "  ...@.@.";

  (* The Complex Object bug, live: group with a flat join instead.  The
     predicate between blocks here is trivially true (every supplier row is
     wanted), so P(x, {}) = true: the paper's Table 3 analysis says the
     flat join MUST lose the suppliers with no parts, and it does. *)
  let total = Catalog.cardinality cat "SUPPLIER" in
  let empties =
    List.length
      (List.filter
         (fun s -> Value.as_set (Value.field s "parts_supplied") = [])
         (Catalog.rows cat "SUPPLIER"))
  in
  let flat_join_rows =
    let open Dsl in
    Value.set_size
      (Eval.run cat
         (nest
            ~attrs:[ "oid_p"; "pname" ]
            ~into:"parts_suppl"
            (join ~x:"s" ~y:"p"
               (mem (var "p" $. "oid_p") (var "s" $. "parts_supplied"))
               (table "SUPPLIER")
               (map_ "p" (table "PART")
                  (tuple
                     [ ("oid_p", var "p" $. "oid"); ("pname", var "p" $. "pname") ])))))
  in
  Fmt.pr "Suppliers total               : %d@." total;
  Fmt.pr "  with empty parts_supplied   : %d@." empties;
  Fmt.pr "Nestjoin report rows          : %d (all suppliers kept)@."
    (Value.set_size result);
  Fmt.pr "Flat join+nest report rows    : %d (Complex Object bug: %d lost)@."
    flat_join_rows (total - flat_join_rows);
  assert (Value.set_size result = total);
  assert (flat_join_rows = total - empties)
