(* Auditing deliveries: path expressions, quantifiers over set-valued
   attributes, and pointer-based materialization (Section 6.2).

   Three queries over the DELIVERY extent:
   1. deliveries by a given supplier on a given date (nesting in the
      from-clause, Example Query 2) — path expression through an oid
      reference, executed by assembly-style dereferencing;
   2. deliveries including red parts (Example Query 3.2) — an existential
      over the set-valued 'supply' attribute, kept nested per the paper's
      goal (set-valued attributes are stored clustered);
   3. materializing supplier objects into delivery rows: value-based join
      vs the assembly operator, comparing work counters.

   Run with: dune exec examples/delivery_audit.exe *)

open Njq_adl
module Gen = Njq_workload.Generator

let schema = Njq_workload.Queries.schema

let () =
  let cfg = { (Gen.scaled ~seed:99 256) with dangling_rate = 0.0 } in
  let cat = Gen.catalog cfg in
  Fmt.pr "Database: %d deliveries, %d suppliers@.@."
    (Catalog.cardinality cat "DELIVERY")
    (Catalog.cardinality cat "SUPPLIER");

  (* 1. From-clause nesting + path expression through a reference. *)
  let q1 =
    {| select d
       from d in (select e from e in DELIVERY where e.supplier.sname = "s1")
       where d.date = 940105 |}
  in
  let adl1, _ = Njq_oosql.Translate.query_string schema q1 in
  let out1 = Njq_core.Strategy.optimize cat adl1 in
  Fmt.pr "Q1 (from-clause nesting) rewrites to a single selection:@.  %a@."
    Pretty.pp out1;
  Fmt.pr "Q1 rows: %d@.@."
    (Value.set_size (Njq_engine.Exec.run cat (Njq_engine.Planner.plan out1)));

  (* 2. Existential over a set-valued attribute: left nested (the paper's
     goal is only to remove BASE TABLES from iterator parameters). *)
  let q2 =
    {| select d
       from d in DELIVERY
       where exists x in (select s from s in d.supply where s.part.color = "red") |}
  in
  let adl2, _ = Njq_oosql.Translate.query_string schema q2 in
  let out2 = Njq_core.Strategy.optimize cat adl2 in
  Fmt.pr "Q2 (exists over supply) stays a selection over DELIVERY:@.  %a@."
    Pretty.pp out2;
  Fmt.pr "Q2 rows: %d@.@."
    (Value.set_size (Njq_engine.Exec.run cat (Njq_engine.Planner.plan out2)));

  (* 3. Materializing the supplier reference: assembly vs value join. *)
  let assembly_plan =
    Njq_engine.Plan.Assembly
      { cls = "SUPPLIER"; ref_attr = "supplier"; into = "supplier";
        input = Njq_engine.Plan.Scan "DELIVERY" }
  in
  Counters.reset ();
  let via_assembly = Njq_engine.Exec.run cat assembly_plan in
  let assembly_work = Counters.snapshot () in

  (* The equivalent value-based formulation: a nestjoin on oid equality and
     a repack (each delivery has exactly one supplier). *)
  let open Dsl in
  let value_join =
    map_ "z"
      (nestjoin ~x:"d" ~y:"s" ~attr:"sset"
         (eq (var "d" $. "supplier") (var "s" $. "oid"))
         (table "DELIVERY") (table "SUPPLIER"))
      (except (proj (var "z") [ "oid"; "supply"; "date"; "supplier" ])
         [ ("supplier", min_ (map_ "w" (var "z" $. "sset") (var "w" $. "oid")) ) ])
  in
  ignore value_join;
  let join_plan =
    Njq_engine.Planner.plan
      (map_ "d" (table "DELIVERY")
         (except (var "d")
            [ ("supplier", deref "SUPPLIER" (var "d" $. "supplier")) ]))
  in
  Counters.reset ();
  let via_join = Njq_engine.Exec.run cat join_plan in
  let join_work = Counters.snapshot () in
  Fmt.pr "Q3 materialize supplier into deliveries:@.";
  Fmt.pr "  assembly operator : %d rows, work %a@." (Value.set_size via_assembly)
    Counters.pp_snapshot assembly_work;
  Fmt.pr "  per-tuple deref   : %d rows, work %a@." (Value.set_size via_join)
    Counters.pp_snapshot join_work;
  (* Results agree modulo the attribute holding the object. *)
  assert (Value.set_size via_assembly = Value.set_size via_join)
