examples/university.mli:
