examples/university.ml: Catalog Eval Filename Fmt Fun List Njq_adl Njq_core Njq_engine Njq_oosql Pretty Serialize Sys Value
