examples/referential_integrity.ml: Catalog Counters Eval Fmt List Njq_adl Njq_core Njq_engine Njq_oosql Njq_workload Pretty Value
