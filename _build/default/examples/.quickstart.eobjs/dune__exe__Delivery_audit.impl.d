examples/delivery_audit.ml: Catalog Counters Dsl Fmt Njq_adl Njq_core Njq_engine Njq_oosql Njq_workload Pretty Value
