examples/supplier_report.ml: Catalog Counters Dsl Eval Fmt List Njq_adl Njq_core Njq_engine Njq_oosql Njq_workload Pretty Value Vtype
