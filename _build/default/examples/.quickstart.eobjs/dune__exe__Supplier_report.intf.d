examples/supplier_report.mli:
