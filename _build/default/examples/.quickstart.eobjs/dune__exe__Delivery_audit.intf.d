examples/delivery_audit.mli:
