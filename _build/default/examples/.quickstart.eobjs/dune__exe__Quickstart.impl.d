examples/quickstart.ml: Catalog Counters Eval Fmt List Njq_adl Njq_core Njq_engine Njq_oosql Pretty Value Vtype
