examples/quickstart.mli:
