(* Quickstart: define a schema in OOSQL, load data, run a nested query
   through the full pipeline, and look at what the optimizer did.

   Run with: dune exec examples/quickstart.exe *)

open Njq_adl

let () =
  (* 1. A schema, in OOSQL.  Each class extension becomes a base table with
     an implicit oid attribute; class references become typed pointers. *)
  let schema =
    Njq_oosql.Parser.parse_schema
      {|
        class Author with extension AUTHOR attributes
          name : string
        end
        class Book with extension BOOK attributes
          title : string,
          year : int,
          authors : { Author }
        end
      |}
  in
  let cat = Njq_oosql.Schema.to_catalog schema in

  (* 2. Some data.  Values are canonical complex objects: tuples and sets. *)
  let author oid name =
    Value.tuple [ ("oid", Value.oid oid); ("name", Value.string name) ]
  in
  Catalog.set_rows cat "AUTHOR"
    [ author 1 "Steenhagen"; author 2 "Apers"; author 3 "Blanken"; author 4 "de By" ];
  let book oid title year authors =
    Value.tuple
      [ ("oid", Value.oid oid);
        ("title", Value.string title);
        ("year", Value.int year);
        ("authors", Value.set (List.map Value.oid authors)) ]
  in
  Catalog.set_rows cat "BOOK"
    [ book 10 "Nested-Loop to Join Queries" 1994 [ 1; 2; 3; 4 ];
      book 11 "Optimization of Nested Queries" 1994 [ 1; 2; 3 ];
      book 12 "An Unrelated Novel" 1994 [] ];

  (* 3. A nested OOSQL query: books having at least one author named
     "de By" — nesting over a base table inside the where-clause. *)
  let query =
    {| select b.title
       from b in BOOK
       where exists z in b.authors : exists a in AUTHOR : z = a.oid and a.name = "de By" |}
  in
  Fmt.pr "OOSQL query:@.%s@.@." query;

  (* 4. Translate to the ADL algebra. *)
  let adl, ty = Njq_oosql.Translate.query_string schema query in
  Fmt.pr "ADL translation (type %a):@.  %a@.@." Vtype.pp ty Pretty.pp adl;

  (* 5. Optimize: the nested existential over the base table AUTHOR becomes
     a semijoin (Rule 1, after quantifier exchange). *)
  let report = Njq_core.Strategy.rewrite cat adl in
  Fmt.pr "Derivation:@.%a@.@." Njq_core.Strategy.pp_report report;

  (* 6. Plan and execute, with work counters. *)
  let plan = Njq_engine.Planner.plan report.Njq_core.Strategy.output in
  Fmt.pr "Physical plan:@.  %a@.@." Njq_engine.Plan.pp plan;
  Counters.reset ();
  let result = Njq_engine.Exec.run cat plan in
  Fmt.pr "Result: %a@." Value.pp result;
  Fmt.pr "Work:   %a@.@." Counters.pp_snapshot (Counters.snapshot ());

  (* 7. Sanity: the optimizer must agree with naive nested-loop semantics. *)
  let reference = Eval.run cat adl in
  assert (Value.equal result reference);
  Fmt.pr "Matches the reference nested-loop evaluation: true@."
