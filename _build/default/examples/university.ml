(* Adopting the library on a new domain: define your own schema, load your
   own data, run nested queries through the optimizer, inspect the
   execution, and persist the database.

   Run with: dune exec examples/university.exe *)

open Njq_adl

let schema_source =
  {|
    class Course with extension COURSE attributes
      title : string,
      credits : int,
      prereqs : { Course }
    end
    class Student with extension STUDENT attributes
      name : string,
      enrolled : { Course }
    end
  |}

let () =
  (* 1. Schema and data. *)
  let schema = Njq_oosql.Parser.parse_schema schema_source in
  let cat = Njq_oosql.Schema.to_catalog schema in
  let course oid title credits prereqs =
    Value.tuple
      [ ("oid", Value.oid oid); ("title", Value.string title);
        ("credits", Value.int credits);
        ("prereqs", Value.set (List.map Value.oid prereqs)) ]
  in
  Catalog.set_rows cat "COURSE"
    [ course 1 "Databases I" 6 []; course 2 "Databases II" 6 [ 1 ];
      course 3 "Logic" 4 []; course 4 "Query Optimization" 8 [ 1; 2 ];
      course 5 "Art History" 3 [] ];
  let student oid name enrolled =
    Value.tuple
      [ ("oid", Value.oid oid); ("name", Value.string name);
        ("enrolled", Value.set (List.map Value.oid enrolled)) ]
  in
  Catalog.set_rows cat "STUDENT"
    [ student 10 "ada" [ 1; 2; 4 ]; student 11 "erwin" [ 1; 3 ];
      student 12 "edgar" [ 5 ]; student 13 "hennie" [ 1; 2; 3; 4 ] ];

  (* 2. A universally quantified nested query: students enrolled in ALL
     database-heavy courses (credits >= 6). *)
  let q =
    {| select s.name
       from s in STUDENT
       where forall c in COURSE : not (c.credits >= 6) or c.oid in s.enrolled |}
  in
  Fmt.pr "Query:@.%s@.@." q;
  let adl, _ = Njq_oosql.Translate.query_string schema q in
  let report = Njq_core.Strategy.rewrite cat adl in
  Fmt.pr "Rewritten: %a@.@." Pretty.pp report.Njq_core.Strategy.output;
  let plan = Njq_engine.Planner.plan report.Njq_core.Strategy.output in
  let result, node_reports = Njq_engine.Instrument.run cat plan in
  Fmt.pr "Result: %a@.@." Value.pp result;
  Fmt.pr "Execution profile:@.%a@." Njq_engine.Instrument.pp_report node_reports;
  assert (Value.equal result (Eval.run cat adl));

  (* 3. Grouping: per student, the enrolled course titles — a nestjoin. *)
  let report_q =
    {| select (student = s.name,
               courses = select c.title from c in COURSE where c.oid in s.enrolled)
       from s in STUDENT |}
  in
  let adl2, _ = Njq_oosql.Translate.query_string schema report_q in
  let out2 = Njq_core.Strategy.optimize cat adl2 in
  let v2 = Njq_engine.Planner.run cat out2 in
  Fmt.pr "Per-student report (%d rows):@." (Value.set_size v2);
  List.iter (fun row -> Fmt.pr "  %s@." (Serialize.value_to_json row)) (Value.as_set v2);
  assert (Value.equal v2 (Eval.run cat adl2));

  (* 4. Referential integrity over prerequisites (Example Query 4's shape
     on this schema). *)
  let ri =
    {| select (cid = c.oid)
       from c in COURSE
       where exists z in c.prereqs : not exists d in COURSE : z = d.oid |}
  in
  let adl3, _ = Njq_oosql.Translate.query_string schema ri in
  let v3 = Njq_engine.Planner.run cat (Njq_core.Strategy.optimize cat adl3) in
  Fmt.pr "@.Dangling prerequisites: %a@." Value.pp v3;

  (* 5. Persist and reload; results survive the round trip. *)
  let path = Filename.temp_file "university" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_catalog_file cat path;
      let cat' = Serialize.load_catalog_file path in
      let v2' = Njq_engine.Planner.run cat' out2 in
      assert (Value.equal v2 v2');
      Fmt.pr "@.Saved to %s and reloaded: identical results.@." path)
