(* Referential integrity checking — the paper's Example Query 4.

   Suppliers referencing parts that do not exist violate referential
   integrity.  The naive plan iterates every supplier's references and for
   each runs a nested loop over PART; the optimizer unnests the set-valued
   attribute with mu (option 2: the attribute is not needed in the result
   and the quantification is existential) and then applies Rule 1, yielding
   the antijoin query of the paper:

     pi_sid(mu_parts(SUPPLIER) antijoin[z = p.oid] PART)

   Run with: dune exec examples/referential_integrity.exe *)

open Njq_adl
module Gen = Njq_workload.Generator

let () =
  (* A database with 5% dangling references injected. *)
  let cfg = { (Gen.scaled ~seed:2024 256) with dangling_rate = 0.05 } in
  let cat = Gen.catalog cfg in
  Fmt.pr "Database: %d suppliers, %d parts, dangling rate %.2f@.@."
    (Catalog.cardinality cat "SUPPLIER")
    (Catalog.cardinality cat "PART")
    cfg.Gen.dangling_rate;

  let query =
    {| select (sid = s.oid)
       from s in SUPPLIER
       where exists z in s.parts_supplied : not exists p in PART : z = p.oid |}
  in
  Fmt.pr "OOSQL:@.%s@.@." query;
  let adl, _ = Njq_oosql.Translate.query_string Njq_workload.Queries.schema query in

  (* Nested-loop execution *)
  Counters.reset ();
  let naive = Eval.run cat adl in
  let naive_work = Counters.get "nl_pred_eval" in

  (* Optimized execution *)
  let report = Njq_core.Strategy.rewrite cat adl in
  Fmt.pr "Rewritten ADL:@.  %a@.@." Pretty.pp report.Njq_core.Strategy.output;
  let plan = Njq_engine.Planner.plan report.Njq_core.Strategy.output in
  Fmt.pr "Plan:@.  %a@.@." Njq_engine.Plan.pp plan;
  Counters.reset ();
  let optimized = Njq_engine.Exec.run cat plan in
  let opt_snapshot = Counters.snapshot () in

  assert (Value.equal naive optimized);
  Fmt.pr "Violating suppliers: %d@.@." (Value.set_size optimized);
  Fmt.pr "Nested-loop predicate evaluations : %d@." naive_work;
  Fmt.pr "Set-oriented plan work            : %a@." Counters.pp_snapshot
    opt_snapshot;
  let opt_total = List.fold_left (fun acc (_, v) -> acc + v) 0 opt_snapshot in
  Fmt.pr "Speedup in touched units          : %.1fx@."
    (float_of_int naive_work /. float_of_int (max 1 opt_total))
