(* njq — command-line driver for the OOSQL/ADL pipeline.

   Subcommands:
     njq parse     -q QUERY             print the OOSQL abstract syntax
     njq translate -q QUERY             print the ADL translation and type
     njq explain   -q QUERY [opts]      print the rewrite derivation + plan
     njq run       -q QUERY [opts]      execute against a generated database
     njq serve     -q TEMPLATE [opts]   concurrent prepared-query serving
     njq schema                         print the supplier-part schema

   Queries run against the paper's supplier-part-delivery schema on a
   deterministic generated database; generation knobs are flags. *)

open Njq_adl
module Strategy = Njq_core.Strategy
module Span = Njq_obs.Span
module Json = Njq_obs.Json
module Qlog = Njq_obs.Qlog
module Clock = Njq_obs.Clock

let schema = Njq_workload.Queries.schema

let mode_name = function
  | Strategy.Nestjoin_always -> "nestjoin"
  | Strategy.Flat_join_when_safe -> "flatjoin"
  | Strategy.Outerjoin -> "outerjoin"

(* ---------------- generation flags ---------------- *)

open Cmdliner

let query_arg =
  let doc = "The OOSQL query text." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let scale_arg =
  let doc = "Rows per extent of the generated database." in
  Arg.(value & opt int 64 & info [ "n"; "scale" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Generator seed (runs are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let dangling_arg =
  let doc = "Fraction of dangling part references." in
  Arg.(value & opt float 0.0 & info [ "dangling" ] ~docv:"RATE" ~doc)

let empty_arg =
  let doc = "Fraction of suppliers with an empty parts_supplied set." in
  Arg.(value & opt float 0.1 & info [ "empty" ] ~docv:"RATE" ~doc)

let mode_arg =
  let modes =
    [ ("nestjoin", Strategy.Nestjoin_always);
      ("flatjoin", Strategy.Flat_join_when_safe);
      ("outerjoin", Strategy.Outerjoin) ]
  in
  let doc =
    "Grouping mode: how correlated subqueries that need grouping are \
     unnested (nestjoin, flatjoin, outerjoin)."
  in
  Arg.(value & opt (enum modes) Strategy.Nestjoin_always & info [ "mode" ] ~doc)

let no_opt_arg =
  let doc = "Skip logical optimization (pure nested-loop execution)." in
  Arg.(value & flag & info [ "no-opt" ] ~doc)

let domains_arg =
  let doc =
    "Execute with this many domains: the planner rewrites large joins, \
     PNHL, filters and maps to partitioned parallel operators run on the \
     engine's domain pool.  0 (the default) defers to the NJQ_DOMAINS \
     environment variable; 1 is the sequential engine."
  in
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"K" ~doc)

let apply_domains k = if k > 0 then Njq_engine.Pool.set_domains k

let batch_size_arg =
  let doc =
    "Rows per batch in the batched executor (defaults to the NJQ_BATCH \
     environment variable, else 256).  0 (the default) keeps the current \
     setting; 1 degenerates to single-row batches.  Results are \
     identical at every size."
  in
  Arg.(value & opt int 0 & info [ "batch-size" ] ~docv:"N" ~doc)

let apply_batch n = if n > 0 then Njq_engine.Batch.set_size n

let mem_budget_arg =
  let doc =
    "Engine memory budget in build-side rows, with an optional k or m \
     suffix (e.g. 1k = 1024 rows).  A hash-join build side estimated past \
     the budget is Grace-partitioned to temp files under NJQ_TMPDIR and \
     processed one resident partition at a time; sort inputs past it use \
     an external sort.  Results are identical at every budget.  Unset \
     means unlimited (everything stays resident)."
  in
  Arg.(value & opt (some string) None
       & info [ "mem-budget" ] ~docv:"N[k|m]" ~doc)

let apply_mem_budget = function
  | None -> ()
  | Some s ->
    (match Njq_engine.Memory.parse s with
     | Some n -> Njq_engine.Memory.budget := n
     | None ->
       Fmt.epr "--mem-budget: expected a positive row count like 4096 or \
                1k, got %S@." s;
       exit 1)

(* The active batch size for EXPLAIN's pipeline rendering, [None] when
   the batched executor cannot engage (either flag off). *)
let explain_batch () =
  if !Njq_engine.Exec.pipeline_exec && !Njq_engine.Exec.batch_exec then
    Some !Njq_engine.Batch.size
  else None

let counters_arg =
  let doc = "Print work counters after execution." in
  Arg.(value & flag & info [ "counters" ] ~doc)

(* ---------------- query log ---------------- *)

let env_qlog () =
  match Sys.getenv_opt "NJQ_QLOG" with
  | None | Some "" -> None
  | Some path -> Some path

let env_slow_ms () =
  match Sys.getenv_opt "NJQ_SLOW_MS" with
  | None | Some "" -> None
  | Some s -> float_of_string_opt (String.trim s)

let qlog_arg =
  let doc =
    "Append one structured event (JSONL) per executed query to this file: \
     query hash, plan fingerprint, cache hit/miss, rows, work counters, \
     GC words, wall+CPU time, max q-error.  Defaults to the NJQ_QLOG \
     environment variable; aggregate with $(b,njq top)."
  in
  Arg.(value & opt (some string) None & info [ "qlog" ] ~docv:"FILE" ~doc)

let slow_ms_arg =
  let doc =
    "Slow-query threshold in milliseconds: qlog events under it are \
     dropped, and a query at or over it prints a notice on stderr.  \
     Defaults to the NJQ_SLOW_MS environment variable."
  in
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

(* Work counters from the legacy facade as qlog fields, plus their sum —
   the deterministic cost of the query. *)
let work_fields () =
  let work = Counters.snapshot () in
  (work, List.fold_left (fun acc (_, n) -> acc + n) 0 work)

(* Execute [run ()] (which must reset counters itself just before the
   measured region), timing wall/CPU and the GC word deltas, and append
   one event to [sink].  [max_qerror] is produced by the runner (1.0 when
   it did not profile). *)
let log_query ?(queue_ns = 0) ?(batch = 1) sink ~slow_ms ~query ~fingerprint
    ~hit run =
  (* [Gc.counters] (not [quick_stat]) reads the live young pointer, so
     sub-minor-collection allocations are visible in the deltas. *)
  let min0, _, maj0 = Gc.counters () in
  let cpu0 = Clock.cpu_seconds () in
  let t0 = Clock.now_ns () in
  let v, max_qerror = run () in
  let wall_ns = Clock.elapsed_ns t0 in
  let cpu_ns = int_of_float ((Clock.cpu_seconds () -. cpu0) *. 1e9) in
  let min1, _, maj1 = Gc.counters () in
  let work, work_total = work_fields () in
  let spilled =
    match List.assoc_opt "spill_bytes" work with Some n -> n | None -> 0
  in
  let slow =
    match slow_ms with Some t -> Clock.ns_to_ms wall_ns >= t | None -> false
  in
  Qlog.log sink
    { Qlog.ts_ns = Clock.now_ns ();
      query_hash = Qlog.hash_hex (Njq_engine.Plancache.normalize query);
      fingerprint;
      cache = (if hit then "hit" else "miss");
      rows = Value.set_size v;
      work;
      work_total;
      minor_words = min1 -. min0;
      major_words = maj1 -. maj0;
      wall_ns;
      cpu_ns;
      queue_ns;
      batch;
      max_qerror;
      spilled;
      slow };
  if slow then
    Fmt.epr "slow query: %.3f ms (>= %.1f ms) fp=%s@."
      (Clock.ns_to_ms wall_ns)
      (Option.value ~default:0.0 slow_ms)
      fingerprint;
  v

(* One-shot variant for [njq run]: open the sink, log, close. *)
let with_qlog ~path ~slow_ms ~query ~fingerprint ~hit run =
  let sink = Qlog.open_sink ?slow_ms path in
  Fun.protect
    ~finally:(fun () -> Qlog.close sink)
    (fun () -> log_query sink ~slow_ms ~query ~fingerprint ~hit run)

let schema_arg =
  let doc = "Load class definitions from a file instead of the built-in \
             supplier-part-delivery schema.  Without --db the extents start \
             empty (data generation only exists for the built-in schema)." in
  Arg.(value & opt (some string) None & info [ "schema" ] ~docv:"FILE" ~doc)

let db_arg =
  let doc = "Load the database from a file saved with --save-db instead of \
             generating one." in
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc)

let save_db_arg =
  let doc = "Save the (generated or loaded) database to a file." in
  Arg.(value & opt (some string) None & info [ "save-db" ] ~docv:"FILE" ~doc)

let index_arg =
  let doc =
    "Declare an index before planning: TABLE.ATTR[,ATTR...][:hash|:sorted] \
     (default hash; sorted indexes also answer range predicates on their \
     first attribute).  The planner rewrites sargable filters and joins \
     over the table into index access paths when the cost model prices \
     them cheaper.  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "index" ] ~docv:"SPEC" ~doc)

let apply_indexes cat specs =
  List.iter
    (fun spec ->
      let spec, kind =
        match String.rindex_opt spec ':' with
        | Some i ->
          let k = String.sub spec (i + 1) (String.length spec - i - 1) in
          let kind =
            match k with
            | "hash" -> Catalog.Hash_index
            | "sorted" -> Catalog.Sorted_index
            | _ ->
              Fmt.epr "--index: unknown kind %S (expected hash or sorted)@." k;
              exit 1
          in
          (String.sub spec 0 i, kind)
        | None -> (spec, Catalog.Hash_index)
      in
      match String.index_opt spec '.' with
      | None ->
        Fmt.epr "--index: expected TABLE.ATTRS, got %S@." spec;
        exit 1
      | Some i ->
        let table = String.sub spec 0 i in
        let attrs =
          String.split_on_char ','
            (String.sub spec (i + 1) (String.length spec - i - 1))
        in
        (match Catalog.create_index cat ~table ~kind ~attrs () with
         | (_ : string) -> ()
         | exception Invalid_argument msg ->
           Fmt.epr "--index %s: %s@." spec msg;
           exit 1
         | exception Catalog.Unknown_table t ->
           Fmt.epr "--index %s: unknown table %s@." spec t;
           exit 1))
    specs

let load_schema = function
  | None -> schema
  | Some path ->
    Njq_oosql.Parser.parse_schema
      (In_channel.with_open_text path In_channel.input_all)

let make_catalog ?db ?save_db ?schema_file scale seed dangling empty =
  let cat =
    match db, schema_file with
    | Some path, _ ->
      (* Sniff the magic: --db accepts both the textual format and NJQC
         binary catalogs written by `njq catalog pack`. *)
      if Njq_engine.Rowcodec.is_njqc path then Catalog.load_binary path
      else Serialize.load_catalog_file path
    | None, Some _ -> Njq_oosql.Schema.to_catalog (load_schema schema_file)
    | None, None ->
      Njq_workload.Generator.catalog
        { (Njq_workload.Generator.scaled ~seed scale) with
          dangling_rate = dangling;
          empty_rate = empty }
  in
  Option.iter (Serialize.save_catalog_file cat) save_db;
  cat

let options_of mode =
  { Strategy.default_options with Strategy.grouping_mode = mode }

(* Parse query text that may include view definitions (define v as ...;). *)
let parse_query_text q =
  let prog = Njq_oosql.Parser.parse_program q in
  if prog.Njq_oosql.Ast.classes <> [] then begin
    Fmt.epr "class definitions are not accepted here (the schema is built in)@.";
    exit 1
  end;
  match Njq_oosql.Views.expand_program prog with
  | Some e -> e
  | None ->
    Fmt.epr "no query in input@.";
    exit 1

let or_die f =
  try f () with
  | Njq_oosql.Parser.Parse_error (msg, pos) ->
    Fmt.epr "parse error at line %d, column %d: %s@." pos.Njq_oosql.Ast.line
      pos.Njq_oosql.Ast.col msg;
    exit 1
  | Njq_oosql.Lexer.Lex_error (msg, pos) ->
    Fmt.epr "lexical error at line %d, column %d: %s@." pos.Njq_oosql.Ast.line
      pos.Njq_oosql.Ast.col msg;
    exit 1
  | Njq_oosql.Translate.Translate_error (msg, pos) ->
    Fmt.epr "type error at line %d, column %d: %s@." pos.Njq_oosql.Ast.line
      pos.Njq_oosql.Ast.col msg;
    exit 1
  | Value.Type_error msg | Vtype.Type_error msg ->
    Fmt.epr "runtime type error: %s@." msg;
    exit 1

(* ---------------- subcommands ---------------- *)

let parse_cmd =
  let run q =
    or_die (fun () ->
        let ast = parse_query_text q in
        Fmt.pr "%s@." (Njq_oosql.Sqlpretty.to_string ast))
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse an OOSQL query and print it back")
    Term.(const run $ query_arg)

let translate_cmd =
  let run q =
    or_die (fun () ->
        let adl, ty = Njq_oosql.Translate.query schema (parse_query_text q) in
        Fmt.pr "type: %a@.@.%a@." Vtype.pp ty Pretty.pp adl)
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"Translate an OOSQL query to the ADL algebra")
    Term.(const run $ query_arg)

let analyze_arg =
  let doc = "Also execute the plan, printing per-node cardinalities, work \
             counters and timings (explain analyze)." in
  Arg.(value & flag & info [ "analyze" ] ~doc)

let cost_arg =
  let doc = "Use cost-based algorithm and build-side choice." in
  Arg.(value & flag & info [ "cost" ] ~doc)

let json_arg =
  let doc = "Emit a single JSON document: rewrite derivation spans, the \
             physical plan, and with --analyze the per-node estimated vs \
             actual cardinalities with q-errors." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_out_arg =
  let doc = "Write the pipeline spans as a Chrome trace_event file \
             (load in chrome://tracing or Perfetto)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let adl_flag_arg =
  let doc = "Interpret the query text as a raw ADL algebra expression \
             (the njq adl syntax: join[x,y : p](l, r), ...) instead of \
             OOSQL." in
  Arg.(value & flag & info [ "adl" ] ~doc)

let no_reorder_arg =
  let doc = "Disable the cost-based join-order enumerator and keep the \
             rewriter's join order." in
  Arg.(value & flag & info [ "no-reorder" ] ~doc)

(* The enumerator's per-region reports, as recorded by the planning call
   that produced the displayed plan. *)
let enumeration_json regions =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("relations",
              Json.List
                (List.map (fun s -> Json.Str s)
                   r.Njq_engine.Joinorder.relations));
             ("considered", Json.Int r.Njq_engine.Joinorder.considered);
             ("pruned", Json.Int r.Njq_engine.Joinorder.pruned);
             ("chosen_cost", Json.Float r.Njq_engine.Joinorder.chosen_cost);
             ("rewriter_cost", Json.Float r.Njq_engine.Joinorder.rewriter_cost);
             ("reordered", Json.Bool r.Njq_engine.Joinorder.reordered);
             ("hoisted", Json.Int r.Njq_engine.Joinorder.hoisted);
             ("chosen_fingerprint",
              Json.Str r.Njq_engine.Joinorder.chosen_fingerprint);
             ("rewriter_fingerprint",
              Json.Str r.Njq_engine.Joinorder.rewriter_fingerprint) ])
       regions)

let pp_enumeration ppf regions =
  match regions with
  | [] -> Fmt.pf ppf "join enumeration: no join region@."
  | _ ->
    List.iter
      (fun r ->
        Fmt.pf ppf
          "join enumeration: {%s}@.  considered %d plans (%d pruned); \
           chosen cost %.1f vs rewriter %.1f%s%s@.  fingerprint %s \
           (rewriter %s)@."
          (String.concat ", " r.Njq_engine.Joinorder.relations)
          r.Njq_engine.Joinorder.considered r.Njq_engine.Joinorder.pruned
          r.Njq_engine.Joinorder.chosen_cost
          r.Njq_engine.Joinorder.rewriter_cost
          (if r.Njq_engine.Joinorder.reordered then " [reordered]"
           else " [kept rewriter order]")
          (if r.Njq_engine.Joinorder.hoisted > 0 then
             Fmt.str " [%d selection(s) hoisted]"
               r.Njq_engine.Joinorder.hoisted
           else "")
          r.Njq_engine.Joinorder.chosen_fingerprint
          r.Njq_engine.Joinorder.rewriter_fingerprint)
      regions

let explain_cmd =
  let run q scale seed dangling empty mode analyze cost json trace_out domains
      batch_size indexes raw_adl no_reorder mem_budget =
    or_die (fun () ->
        apply_domains domains;
        apply_batch batch_size;
        apply_mem_budget mem_budget;
        let tracing = json || Option.is_some trace_out in
        if tracing then Span.start_tracing ();
        let cat = make_catalog scale seed dangling empty in
        apply_indexes cat indexes;
        let report, plan, regions, analysis =
          Span.with_span "explain" (fun () ->
              let adl =
                if raw_adl then Adlsyntax.of_string q
                else
                  fst (Njq_oosql.Translate.query schema (parse_query_text q))
              in
              (* Re-check the translation against the concrete catalog; this
                 also puts the typecheck span on the trace. *)
              (match Typecheck.check_closed cat adl with
               | Ok _ -> ()
               | Error msg ->
                 Fmt.epr "warning: typecheck against catalog failed: %s@." msg);
              let report = Strategy.rewrite ~options:(options_of mode) cat adl in
              let stats =
                if cost then Some (Njq_engine.Stats.cached cat) else None
              in
              let algo =
                if cost then Njq_engine.Planner.Cost_based cat
                else Njq_engine.Planner.Auto
              in
              let plan =
                let prev = !Njq_engine.Joinorder.use_joinorder in
                if no_reorder then Njq_engine.Joinorder.use_joinorder := false;
                Fun.protect
                  ~finally:(fun () ->
                    Njq_engine.Joinorder.use_joinorder := prev)
                  (fun () ->
                    Njq_engine.Planner.plan ~algo ~cat
                      (Njq_engine.Consthoist.hoist cat report.Strategy.output))
              in
              let regions =
                if no_reorder then []
                else !Njq_engine.Joinorder.last_report
              in
              let analysis =
                if analyze then begin
                  Counters.reset ();
                  let v, prof =
                    Span.with_span "execute" (fun () ->
                        Njq_engine.Profile.run ?stats cat plan)
                  in
                  Some (v, prof)
                end
                else None
              in
              (report, plan, regions, analysis))
        in
        let spans =
          if tracing then begin
            Span.stop_tracing ();
            Span.finished ()
          end
          else []
        in
        Option.iter
          (fun path ->
            Njq_obs.Export.write_chrome_trace path spans;
            if not json then Fmt.pr "trace written to %s@." path)
          trace_out;
        if json then begin
          let phases =
            List.map
              (fun ph ->
                Json.Obj
                  [ ("phase", Json.Str ph.Strategy.phase);
                    ("steps", Json.Int (List.length ph.Strategy.steps)) ])
              report.Strategy.phases
          in
          let doc =
            Json.Obj
              ([ ("query", Json.Str q);
                 ("scale", Json.Int scale);
                 ("seed", Json.Int seed) ]
              @ (if Njq_engine.Memory.unlimited () then []
                 else
                   [ ("mem_budget", Json.Int !Njq_engine.Memory.budget) ])
              @ [ ("phases", Json.List phases);
                 ("plan", Json.Str (Fmt.str "%a" Njq_engine.Plan.pp plan));
                 ("pipelines",
                  Json.Str
                    (Fmt.str "%a"
                       (Njq_engine.Plan.pp_pipelines ?batch:(explain_batch ()))
                       plan));
                 ("enumeration", enumeration_json regions);
                 ("derivation", Njq_obs.Export.spans_to_json spans) ]
              @
              match analysis with
              | None -> []
              | Some (v, prof) ->
                [ ("analyze",
                   Json.Obj
                     [ ("result_rows", Json.Int (Value.set_size v));
                       ("fingerprint",
                        Json.Str (Njq_engine.Plan.fingerprint plan));
                       ("max_qerror",
                        Json.Float (Njq_engine.Profile.max_qerror prof));
                       ("plan", Njq_engine.Profile.to_json prof) ]) ])
          in
          print_endline (Json.to_string ~pretty:true doc)
        end
        else begin
          Fmt.pr "%a@.@.plan:@.%a@." Strategy.pp_report report
            Njq_engine.Plan.pp plan;
          if not (Njq_engine.Memory.unlimited ()) then
            Fmt.pr
              "@.mem budget: %d build-side rows — over-budget hash joins \
               run as Grace joins with spill partitions under %s; \
               over-budget sorts go external@."
              !Njq_engine.Memory.budget
              (Njq_engine.Rowcodec.temp_dir ());
          Fmt.pr "@.pipelines (~> fused edge, => materialized edge):@.%a"
            (Njq_engine.Plan.pp_pipelines ?batch:(explain_batch ()))
            plan;
          if not no_reorder then Fmt.pr "@.%a" pp_enumeration regions;
          match analysis with
          | None -> ()
          | Some (v, prof) ->
            (* The fingerprint joins this table against `njq top` rows. *)
            Fmt.pr "@.analyze (%d result rows):@.fingerprint: %s@.%a"
              (Value.set_size v)
              (Njq_engine.Plan.fingerprint plan)
              Njq_engine.Profile.pp prof
        end)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the rewrite derivation and the physical plan of a query")
    Term.(
      const run $ query_arg $ scale_arg $ seed_arg $ dangling_arg $ empty_arg
      $ mode_arg $ analyze_arg $ cost_arg $ json_arg $ trace_out_arg
      $ domains_arg $ batch_size_arg $ index_arg $ adl_flag_arg
      $ no_reorder_arg $ mem_budget_arg)

let refresh_arg =
  let doc = "Recompute statistics even when a cached snapshot exists for \
             the catalog's current epoch." in
  Arg.(value & flag & info [ "refresh" ] ~doc)

let stats_cmd =
  let run scale seed dangling empty db schema_file json refresh =
    or_die (fun () ->
        let cat = make_catalog ?db ?schema_file scale seed dangling empty in
        let stats = Njq_engine.Stats.cached ~refresh cat in
        if json then begin
          let opt_int = function None -> Json.Null | Some n -> Json.Int n in
          let table t =
            let fields =
              try Vtype.fields (Catalog.row_type cat t) with _ -> []
            in
            let cols =
              List.map
                (fun (attr, ty) ->
                  let base =
                    [ ("attr", Json.Str attr);
                      ("type", Json.Str (Vtype.show ty)) ]
                  in
                  let stat =
                    match Njq_engine.Stats.column stats ~table:t ~attr with
                    | None -> []
                    | Some { Njq_engine.Stats.ndv; lo; hi } ->
                      [ ("ndv", Json.Int ndv); ("lo", opt_int lo);
                        ("hi", opt_int hi) ]
                  in
                  Json.Obj (base @ stat))
                fields
            in
            Json.Obj
              [ ("name", Json.Str t);
                ("cardinality", Json.Int (Catalog.cardinality cat t));
                ("columns", Json.List cols) ]
          in
          print_endline
            (Json.to_string ~pretty:true
               (Json.Obj
                  [ ("tables",
                     Json.List (List.map table (Catalog.table_names cat))) ]))
        end
        else Fmt.pr "%a@." Njq_engine.Stats.pp stats)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Analyze the database and print per-table cardinalities and \
             per-column NDV/min/max statistics")
    Term.(
      const run $ scale_arg $ seed_arg $ dangling_arg $ empty_arg $ db_arg
      $ schema_arg $ json_arg $ refresh_arg)

let format_arg =
  let doc = "Output format: adl (value notation), json, or csv." in
  Arg.(value & opt (enum [ ("adl", `Adl); ("json", `Json); ("csv", `Csv) ]) `Adl
       & info [ "format" ] ~docv:"FMT" ~doc)

let run_cmd =
  let run q scale seed dangling empty mode no_opt counters db save_db format
      schema_file domains batch_size indexes qlog slow_ms mem_budget =
    or_die (fun () ->
        apply_domains domains;
        apply_batch batch_size;
        apply_mem_budget mem_budget;
        let cat = make_catalog ?db ?save_db ?schema_file scale seed dangling empty in
        apply_indexes cat indexes;
        (* Derivation goes through the plan cache so the qlog's hit/miss
           bit is real (the repl and a future server share the entry). *)
        let options = Fmt.str "run/%s/noopt=%b" (mode_name mode) no_opt in
        let plan, hit =
          Njq_engine.Plancache.find_or_derive_report cat ~options q
            ~derive:(fun text ->
              (* [text] is the cache's auto-parameterized template (or the
                 normalized query); deriving exactly it keeps the cached
                 plan reusable across constant-only variations. *)
              let adl, _ =
                Njq_oosql.Translate.query (load_schema schema_file)
                  (parse_query_text text)
              in
              let final =
                if no_opt then adl
                else Strategy.optimize ~options:(options_of mode) cat adl
              in
              Njq_engine.Planner.plan ~cat final)
        in
        let qlog = match qlog with Some _ -> qlog | None -> env_qlog () in
        let slow_ms =
          match slow_ms with Some _ -> slow_ms | None -> env_slow_ms ()
        in
        let v =
          match qlog with
          | None ->
            Counters.reset ();
            Njq_engine.Exec.run cat plan
          | Some path ->
            (* Profiled execution: the event records the worst per-node
               cardinality q-error alongside the costs. *)
            with_qlog ~path ~slow_ms ~query:q
              ~fingerprint:(Njq_engine.Plan.fingerprint plan) ~hit (fun () ->
                Counters.reset ();
                let v, prof = Njq_engine.Profile.run cat plan in
                (v, Njq_engine.Profile.max_qerror prof))
        in
        (match format with
         | `Adl ->
           Fmt.pr "%a@." Value.pp v;
           Fmt.pr "(%d rows)@." (Value.set_size v)
         | `Json -> print_endline (Serialize.value_to_json v)
         | `Csv -> print_string (Serialize.rows_to_csv v));
        if counters then
          Fmt.pr "counters: %a@." Counters.pp_snapshot (Counters.snapshot ()))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a query against a generated database")
    Term.(
      const run $ query_arg $ scale_arg $ seed_arg $ dangling_arg $ empty_arg
      $ mode_arg $ no_opt_arg $ counters_arg $ db_arg $ save_db_arg
      $ format_arg $ schema_arg $ domains_arg $ batch_size_arg $ index_arg
      $ qlog_arg $ slow_ms_arg $ mem_budget_arg)

let adl_cmd =
  let run q scale seed dangling empty mode no_opt counters db schema_file
      domains mem_budget =
    or_die (fun () ->
        apply_domains domains;
        apply_mem_budget mem_budget;
        let cat = make_catalog ?db ?schema_file scale seed dangling empty in
        (match Adlsyntax.of_string q with
         | adl ->
           (match Typecheck.check_closed cat adl with
            | Error msg ->
              Fmt.epr "type error: %s@." msg;
              exit 1
            | Ok ty ->
              let final =
                if no_opt then adl
                else Strategy.optimize ~options:(options_of mode) cat adl
              in
              Fmt.pr "-- type: %a@." Vtype.pp ty;
              if not (Expr.equal final adl) then
                Fmt.pr "-- rewritten: %s@." (Adlsyntax.to_string final);
              Counters.reset ();
              let v = Njq_engine.Planner.run cat final in
              Fmt.pr "%a@.(%d rows)@." Value.pp v (Value.set_size v);
              if counters then
                Fmt.pr "counters: %a@." Counters.pp_snapshot (Counters.snapshot ()))
         | exception Adlsyntax.Parse_error msg ->
           Fmt.epr "ADL parse error: %s@." msg;
           exit 1))
  in
  Cmd.v
    (Cmd.info "adl"
       ~doc:"Execute a raw ADL algebra expression (textual syntax: \
             select[x : p](@T), semijoin[x,y : p](l, r), ...)")
    Term.(
      const run $ query_arg $ scale_arg $ seed_arg $ dangling_arg $ empty_arg
      $ mode_arg $ no_opt_arg $ counters_arg $ db_arg $ schema_arg
      $ domains_arg $ mem_budget_arg)

let schema_cmd =
  let run () =
    Fmt.pr "%a@." Njq_oosql.Sqlpretty.pp_schema schema;
    Fmt.pr "@.ADL extent types:@.";
    let cat = Njq_oosql.Schema.to_catalog schema in
    List.iter
      (fun t -> Fmt.pr "  %s : { %a }@." t Vtype.pp (Catalog.row_type cat t))
      (Catalog.table_names cat)
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the built-in supplier-part-delivery schema")
    Term.(const run $ const ())

(* Interactive loop: read a query per line (terminated by ';'), execute it
   against one generated database, with :explain, :mode and :help
   directives. *)
let repl_cmd =
  let run scale seed dangling empty =
    let cat = make_catalog scale seed dangling empty in
    let mode = ref Strategy.Nestjoin_always in
    let views : (string * Njq_oosql.Ast.expr) list ref = ref [] in
    (* Result types keyed like the plan cache, so repeated queries whose
       derivation is skipped on a cache hit still print their type. *)
    let types : (string * string, Vtype.t) Hashtbl.t = Hashtbl.create 16 in
    (* With NJQ_QLOG set, one sink stays open for the whole session —
       repeated queries hit the plan cache, so the logged hit/miss bits
       (and `njq top`'s hit rate) are meaningful here. *)
    let slow_ms = env_slow_ms () in
    let qsink = Option.map (Qlog.open_sink ?slow_ms) (env_qlog ()) in
    Fmt.pr
      "njq repl — supplier-part-delivery database with %d rows per extent.@.\
       Terminate queries with ';'.  Directives: :explain <query>;  \
       :mode nestjoin|flatjoin|outerjoin;  :cache;  :quit@."
      scale;
    let buffer = Buffer.create 256 in
    let rec read_statement () =
      Fmt.pr "njq> %!";
      match In_channel.input_line stdin with
      | None -> None
      | Some line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        if String.contains line ';' || String.length (String.trim line) = 0
           || (String.length (String.trim text) > 0 && (String.trim text).[0] = ':')
        then begin
          Buffer.clear buffer;
          Some (String.trim text)
        end
        else read_statement ()
    in
    let execute text =
      let prog = Njq_oosql.Parser.parse_program text in
      views := !views @ prog.Njq_oosql.Ast.defines;
      match prog.Njq_oosql.Ast.query with
      | None -> List.iter (fun (n, _) -> Fmt.pr "view %s defined@." n) prog.Njq_oosql.Ast.defines
      | Some q ->
        let options =
          Fmt.str "%s/v%d" (mode_name !mode) (List.length !views)
        in
        let tkey = (options, Njq_engine.Plancache.normalize text) in
        let plan, hit =
          Njq_engine.Plancache.find_or_derive_report cat ~options text
            ~derive:(fun dtext ->
              (* Re-parse the text the cache asks for — the auto-param
                 template when templating fired — so the cached plan covers
                 every constant variation of the statement. *)
              let q =
                match
                  (Njq_oosql.Parser.parse_program dtext).Njq_oosql.Ast.query
                with
                | Some dq -> dq
                | None -> q
              in
              let q = Njq_oosql.Views.expand !views q in
              let adl, ty = Njq_oosql.Translate.query schema q in
              Hashtbl.replace types tkey ty;
              let final =
                Strategy.optimize ~options:(options_of !mode) cat adl
              in
              Njq_engine.Planner.plan ~cat final)
        in
        let exec () =
          Counters.reset ();
          Njq_engine.Exec.run cat plan
        in
        let v =
          match qsink with
          | None -> exec ()
          | Some sink ->
            log_query sink ~slow_ms ~query:text
              ~fingerprint:(Njq_engine.Plan.fingerprint plan) ~hit (fun () ->
                (exec (), 1.0))
        in
        let pp_ty ppf () =
          match Hashtbl.find_opt types tkey with
          | Some ty -> Fmt.pf ppf " of type %a" Vtype.pp ty
          | None -> ()
        in
        Fmt.pr "%a@.(%d rows%a; work: %a)@." Value.pp v
          (Value.set_size v) pp_ty () Counters.pp_snapshot (Counters.snapshot ())
    in
    let explain text =
      let q = Njq_oosql.Views.expand !views (parse_query_text text) in
      let adl, _ = Njq_oosql.Translate.query schema q in
      let report = Strategy.rewrite ~options:(options_of !mode) cat adl in
      Fmt.pr "%a@.plan: %a@." Strategy.pp_report report Njq_engine.Plan.pp
        (Njq_engine.Planner.plan ~cat report.Strategy.output)
    in
    let rec loop () =
      match read_statement () with
      | None -> ()
      | Some "" -> loop ()
      | Some ":quit" | Some ":q" -> ()
      | Some ":cache" ->
        Fmt.pr "plan cache: %d entries; hits %d  misses %d  evictions %d@."
          (Njq_engine.Plancache.size ())
          (Njq_engine.Plancache.hits ())
          (Njq_engine.Plancache.misses ())
          (Njq_engine.Plancache.evictions ());
        loop ()
      | Some text ->
        (try
           if String.length text > 8 && String.sub text 0 8 = ":explain" then
             explain (String.sub text 8 (String.length text - 8))
           else if String.length text > 6 && String.sub text 0 6 = ":mode " then begin
             (match String.trim (String.sub text 6 (String.length text - 6)) with
              | "nestjoin" -> mode := Strategy.Nestjoin_always
              | "flatjoin" -> mode := Strategy.Flat_join_when_safe
              | "outerjoin" -> mode := Strategy.Outerjoin
              | m -> Fmt.pr "unknown mode %s@." m);
             Fmt.pr "ok@."
           end
           else execute text
         with
         | Njq_oosql.Parser.Parse_error (msg, pos) ->
           Fmt.pr "parse error at %d:%d: %s@." pos.Njq_oosql.Ast.line
             pos.Njq_oosql.Ast.col msg
         | Njq_oosql.Translate.Translate_error (msg, pos) ->
           Fmt.pr "type error at %d:%d: %s@." pos.Njq_oosql.Ast.line
             pos.Njq_oosql.Ast.col msg
         | Value.Type_error msg | Vtype.Type_error msg ->
           Fmt.pr "runtime type error: %s@." msg);
        loop ()
    in
    Fun.protect ~finally:(fun () -> Option.iter Qlog.close qsink) loop
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query loop against a generated database")
    Term.(const run $ scale_arg $ seed_arg $ dangling_arg $ empty_arg)

(* ---------------- serving ---------------- *)

let template_arg =
  let doc =
    "The prepared-query template: OOSQL with ?0, ?1, ... parameter \
     placeholders."
  in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"TEMPLATE" ~doc)

let clients_arg =
  let doc = "Concurrent client domains issuing invocations." in
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)

let requests_arg =
  let doc = "Invocations issued by each client." in
  Arg.(value & opt int 64 & info [ "requests" ] ~docv:"N" ~doc)

let burst_arg =
  let doc =
    "Outstanding invocations per client: each client sends a burst and \
     waits for all its replies before the next."
  in
  Arg.(value & opt int 4 & info [ "burst" ] ~docv:"N" ~doc)

let window_arg =
  let doc =
    "Largest parameter batch the scheduler merges into one set-oriented \
     execution."
  in
  Arg.(value & opt int 16 & info [ "window" ] ~docv:"K" ~doc)

let no_batching_arg =
  let doc =
    "Serve one invocation at a time (the contrast case: same admission \
     queue, no parameter batching)."
  in
  Arg.(value & flag & info [ "no-batching" ] ~doc)

let params_arg =
  let doc =
    "One parameter vector, comma-separated (e.g. --params red or \
     --params 25,red).  Repeatable; clients cycle through the vectors.  \
     Values parse as int, then float, else string."
  in
  Arg.(value & opt_all string [] & info [ "params" ] ~docv:"V0[,V1...]" ~doc)

let parse_param_value s =
  match int_of_string_opt s with
  | Some n -> Value.int n
  | None ->
    (match float_of_string_opt s with
     | Some f -> Value.float f
     | None -> Value.string s)

let serve_cmd =
  let run q scale seed dangling empty mode no_opt db schema_file domains
      batch_size indexes clients requests burst window no_batching params
      json qlog slow_ms mem_budget =
    or_die (fun () ->
        apply_domains domains;
        apply_batch batch_size;
        apply_mem_budget mem_budget;
        let cat = make_catalog ?db ?schema_file scale seed dangling empty in
        apply_indexes cat indexes;
        let schema = load_schema schema_file in
        let translate text =
          let adl, _ = Njq_oosql.Translate.query schema (parse_query_text text) in
          if no_opt then adl else Strategy.optimize ~options:(options_of mode) cat adl
        in
        let h =
          Njq_engine.Serve.prepare cat
            ~options:(Fmt.str "serve/%s/noopt=%b" (mode_name mode) no_opt)
            ~translate q
        in
        let vectors =
          match params with
          | [] ->
            if Njq_engine.Serve.nparams h > 0 then begin
              Fmt.epr "template takes %d parameter(s); pass --params@."
                (Njq_engine.Serve.nparams h);
              exit 1
            end;
            [| [] |]
          | ps ->
            Array.of_list
              (List.map
                 (fun p -> List.map parse_param_value (String.split_on_char ',' p))
                 ps)
        in
        let params ~client ~seq =
          (h, vectors.((client + seq) mod Array.length vectors))
        in
        let t0 = Clock.now_ns () in
        let replies =
          Njq_engine.Serve.run ~batching:(not no_batching) ~window ~burst
            ~clients ~requests ~params ()
        in
        let wall_ns = Clock.elapsed_ns t0 in
        let module H = Njq_obs.Histogram in
        let queue = H.create () and service = H.create () in
        let rows = ref 0 and inv_batch = ref 0.0 in
        List.iter
          (fun (r : Njq_engine.Serve.reply) ->
            H.record queue r.queue_ns;
            H.record service r.service_ns;
            rows := !rows + Value.set_size r.value;
            inv_batch := !inv_batch +. (1.0 /. float_of_int r.batch))
          replies;
        let n = List.length replies in
        let batches = int_of_float (Float.round !inv_batch) in
        let mean_batch =
          if batches = 0 then 0.0 else float_of_int n /. float_of_int batches
        in
        let qps = float_of_int n /. (float_of_int wall_ns /. 1e9) in
        (* One qlog event per reply: queue wait and batch size are the
           serving-specific fields; the shared batch execution cost shows
           up as each member's service time.  Per-request work counters
           are not attributable inside a merged batch, so they stay 0. *)
        let qlog = match qlog with Some _ -> qlog | None -> env_qlog () in
        let slow_ms =
          match slow_ms with Some _ -> slow_ms | None -> env_slow_ms ()
        in
        Option.iter
          (fun path ->
            let sink = Qlog.open_sink ?slow_ms path in
            Fun.protect
              ~finally:(fun () -> Qlog.close sink)
              (fun () ->
                let fp = Njq_engine.Serve.fingerprint h in
                let qh = Qlog.hash_hex (Njq_engine.Plancache.normalize q) in
                List.iter
                  (fun (r : Njq_engine.Serve.reply) ->
                    let slow =
                      match slow_ms with
                      | Some t -> Clock.ns_to_ms r.service_ns >= t
                      | None -> false
                    in
                    Qlog.log sink
                      { Qlog.ts_ns = Clock.now_ns ();
                        query_hash = qh;
                        fingerprint = fp;
                        cache = "hit";
                        rows = Value.set_size r.value;
                        work = [];
                        work_total = 0;
                        minor_words = 0.0;
                        major_words = 0.0;
                        wall_ns = r.service_ns;
                        cpu_ns = 0;
                        queue_ns = r.queue_ns;
                        batch = r.batch;
                        max_qerror = 1.0;
                        spilled = 0;
                        slow })
                  replies))
          qlog;
        if json then
          print_endline
            (Json.to_string ~pretty:true
               (Json.Obj
                  [ ("template", Json.Str (Njq_engine.Serve.text h));
                    ("fingerprint", Json.Str (Njq_engine.Serve.fingerprint h));
                    ("batching", Json.Bool (not no_batching));
                    ("clients", Json.Int clients);
                    ("requests", Json.Int n);
                    ("result_rows", Json.Int !rows);
                    ("batches", Json.Int batches);
                    ("mean_batch", Json.Float mean_batch);
                    ("queries_per_s", Json.Float qps);
                    ("queue_p50_ns", Json.Int (H.p50 queue));
                    ("queue_p99_ns", Json.Int (H.p99 queue));
                    ("service_p50_ns", Json.Int (H.p50 service));
                    ("service_p99_ns", Json.Int (H.p99 service)) ]))
        else begin
          Fmt.pr
            "served %d invocations from %d clients (%s, window %d): %.0f \
             queries/s@."
            n clients
            (if no_batching then "one-at-a-time" else "batched")
            window qps;
          Fmt.pr "batches: %d (mean size %.1f); result rows: %d@." batches
            mean_batch !rows;
          Fmt.pr "queue wait:   p50 %.3f ms  p99 %.3f ms@."
            (Clock.ns_to_ms (H.p50 queue))
            (Clock.ns_to_ms (H.p99 queue));
          Fmt.pr "service time: p50 %.3f ms  p99 %.3f ms@."
            (Clock.ns_to_ms (H.p50 service))
            (Clock.ns_to_ms (H.p99 service))
        end)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve concurrent invocations of a prepared parameterized query \
             through the batching scheduler: client domains issue bursts, \
             outstanding invocations merge into one set-oriented execution \
             per window, replies route back per client")
    Term.(
      const run $ template_arg $ scale_arg $ seed_arg $ dangling_arg
      $ empty_arg $ mode_arg $ no_opt_arg $ db_arg $ schema_arg $ domains_arg
      $ batch_size_arg $ index_arg $ clients_arg $ requests_arg $ burst_arg
      $ window_arg $ no_batching_arg $ params_arg $ json_arg $ qlog_arg
      $ slow_ms_arg $ mem_budget_arg)

(* ---------------- plan cache ---------------- *)

let cache_query_arg =
  let doc = "Prepare this query through the plan cache before reporting \
             (repeat with --repeat to see hits)." in
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let repeat_arg =
  let doc = "Derive the query's plan this many times; the first derivation \
             is a compulsory miss, later ones hit the cache." in
  Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)

let capacity_arg =
  let doc = "Plan cache capacity in entries (0 disables caching)." in
  Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)

let cache_stats_cmd =
  let run q scale seed dangling empty mode json repeat capacity indexes =
    or_die (fun () ->
        Option.iter (fun n -> Njq_engine.Plancache.capacity := n) capacity;
        let cat = make_catalog scale seed dangling empty in
        apply_indexes cat indexes;
        Option.iter
          (fun q ->
            for _ = 1 to max 1 repeat do
              ignore
                (Njq_engine.Plancache.find_or_derive cat ~options:"cli" q
                   ~derive:(fun text ->
                     let adl, _ =
                       Njq_oosql.Translate.query schema (parse_query_text text)
                     in
                     let final =
                       Strategy.optimize ~options:(options_of mode) cat adl
                     in
                     Njq_engine.Planner.plan ~cat final)
                  : Njq_engine.Plan.t)
            done)
          q;
        let hits = Njq_engine.Plancache.hits () in
        let misses = Njq_engine.Plancache.misses () in
        let evictions = Njq_engine.Plancache.evictions () in
        let size = Njq_engine.Plancache.size () in
        if json then
          print_endline
            (Json.to_string ~pretty:true
               (Json.Obj
                  [ ("hits", Json.Int hits); ("misses", Json.Int misses);
                    ("evictions", Json.Int evictions);
                    ("size", Json.Int size);
                    ("capacity", Json.Int !Njq_engine.Plancache.capacity) ]))
        else
          Fmt.pr
            "plan cache: %d entries (capacity %d)@.hits %d  misses %d  \
             evictions %d@."
            size !Njq_engine.Plancache.capacity hits misses evictions)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Report plan-cache hits, misses, evictions and occupancy; with \
             -q, first prepare that query through the cache")
    Term.(
      const run $ cache_query_arg $ scale_arg $ seed_arg $ dangling_arg
      $ empty_arg $ mode_arg $ json_arg $ repeat_arg $ capacity_arg
      $ index_arg)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Prepared-query plan cache (LRU over compiled physical plans)")
    [ cache_stats_cmd ]

(* ---------------- binary catalog ---------------- *)

let pack_out_arg =
  let doc = "Output file for the packed NJQC catalog." in
  Arg.(required & opt (some string) None
       & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let catalog_pack_cmd =
  let run scale seed dangling empty db schema_file out =
    or_die (fun () ->
        let cat = make_catalog ?db ?schema_file scale seed dangling empty in
        let tables = Catalog.table_names cat in
        let rows =
          List.fold_left
            (fun acc t -> acc + Catalog.cardinality cat t)
            0 tables
        in
        let t0 = Clock.now_ns () in
        Njq_engine.Rowcodec.save_catalog cat out;
        let pack_ns = Clock.elapsed_ns t0 in
        let bytes =
          In_channel.with_open_bin out (fun ic ->
              Int64.to_int (In_channel.length ic))
        in
        (* Read it straight back: proves the file round-trips and shows
           the cold-start cost the binary format buys down. *)
        let t1 = Clock.now_ns () in
        let reloaded = Catalog.load_binary out in
        let load_ns = Clock.elapsed_ns t1 in
        let rows' =
          List.fold_left
            (fun acc t -> acc + Catalog.cardinality reloaded t)
            0
            (Catalog.table_names reloaded)
        in
        if rows' <> rows then begin
          Fmt.epr "pack verification failed: %d row(s) in, %d back@." rows
            rows';
          exit 1
        end;
        Fmt.pr "packed %d table(s), %d row(s) into %s: %d bytes in %.3f ms@."
          (List.length tables) rows out bytes (Clock.ns_to_ms pack_ns);
        Fmt.pr "cold-start load: %.3f ms (round trip verified)@."
          (Clock.ns_to_ms load_ns))
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:"Pack a catalog (loaded with --db/--schema or generated) into \
             the NJQC binary format; the file is accepted anywhere --db \
             is, replacing the textual parse on cold start")
    Term.(
      const run $ scale_arg $ seed_arg $ dangling_arg $ empty_arg $ db_arg
      $ schema_arg $ pack_out_arg)

let catalog_cmd =
  Cmd.group
    (Cmd.info "catalog" ~doc:"Catalog utilities (NJQC binary packing)")
    [ catalog_pack_cmd ]

(* ---------------- query-log inspection ---------------- *)

let qlog_pos_arg =
  let doc =
    "Query log file (JSONL, written by $(b,njq run --qlog) / NJQ_QLOG)."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QLOG" ~doc)

let limit_arg =
  let doc = "Show at most this many rows (0 = all)." in
  Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N" ~doc)

let load_qlog path =
  let path =
    match path with
    | Some p -> p
    | None ->
      (match env_qlog () with
       | Some p -> p
       | None ->
         Fmt.epr "no query log: pass a file or set NJQ_QLOG@.";
         exit 1)
  in
  if not (Sys.file_exists path) then begin
    Fmt.epr "query log %s does not exist@." path;
    exit 1
  end;
  let events, bad = Qlog.read_file path in
  if bad > 0 then Fmt.epr "warning: %d malformed line(s) skipped@." bad;
  events

let take n xs =
  if n <= 0 then xs
  else
    List.filteri (fun i _ -> i < n) xs

let top_cmd =
  let run path limit json =
    let events = load_qlog path in
    let aggs = take limit (Qlog.aggregate events) in
    if json then
      print_endline
        (Json.to_string ~pretty:true
           (Json.Obj
              [ ("events", Json.Int (List.length events));
                ("plans", Json.List (List.map Qlog.agg_to_json aggs)) ]))
    else begin
      Fmt.pr "%-16s %6s %5s %6s %5s %10s %10s %10s %10s %6s@." "fingerprint"
        "calls" "hit%" "slow" "batch" "p50(ms)" "p99(ms)" "max(ms)" "work"
        "qerr";
      List.iter
        (fun (a : Qlog.agg) ->
          Fmt.pr "%-16s %6d %5.0f %6d %5.1f %10.3f %10.3f %10.3f %10d %6.2f@."
            a.Qlog.a_fingerprint a.Qlog.a_calls
            (100.0 *. Qlog.hit_rate a)
            a.Qlog.a_slow (Qlog.mean_batch a)
            (Clock.ns_to_ms (Njq_obs.Histogram.p50 a.Qlog.a_wall))
            (Clock.ns_to_ms (Njq_obs.Histogram.p99 a.Qlog.a_wall))
            (Clock.ns_to_ms (Njq_obs.Histogram.max_value a.Qlog.a_wall))
            a.Qlog.a_work a.Qlog.a_max_qerror)
        aggs
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Aggregate a query log per plan fingerprint: calls, cache hit \
             rate, mean batch size, p50/p99/max latency, total work, worst \
             q-error — heaviest plans (by total wall time) first")
    Term.(const run $ qlog_pos_arg $ limit_arg $ json_arg)

let slow_only_arg =
  let doc = "Show only events that crossed the writer's slow threshold." in
  Arg.(value & flag & info [ "slow-only" ] ~doc)

let fingerprint_arg =
  let doc = "Show only events of this plan fingerprint." in
  Arg.(value & opt (some string) None
       & info [ "fingerprint" ] ~docv:"FP" ~doc)

let log_cmd =
  let run path limit slow_only fingerprint json =
    let events = load_qlog path in
    let events =
      List.filter
        (fun (e : Qlog.event) ->
          ((not slow_only) || e.Qlog.slow)
          &&
          match fingerprint with
          | None -> true
          | Some fp -> String.equal fp e.Qlog.fingerprint)
        events
    in
    (* Most recent events are the interesting ones: take the tail. *)
    let total = List.length events in
    let events =
      if limit > 0 && total > limit then
        List.filteri (fun i _ -> i >= total - limit) events
      else events
    in
    if json then
      print_endline
        (Json.to_string ~pretty:true
           (Json.List (List.map Qlog.to_json events)))
    else
      List.iter (fun e -> Fmt.pr "%a@." Qlog.pp_event e) events
  in
  Cmd.v
    (Cmd.info "log"
       ~doc:"Pretty-print query-log events (filter by slowness or plan \
             fingerprint)")
    Term.(
      const run $ qlog_pos_arg $ limit_arg $ slow_only_arg $ fingerprint_arg
      $ json_arg)

let main =
  let doc = "nested-loop to join queries in OODB — OOSQL/ADL query pipeline" in
  Cmd.group (Cmd.info "njq" ~version:"1.0.0" ~doc)
    [ parse_cmd; translate_cmd; explain_cmd; run_cmd; adl_cmd; schema_cmd;
      stats_cmd; repl_cmd; serve_cmd; cache_cmd; catalog_cmd; top_cmd;
      log_cmd ]

let () = exit (Cmd.eval main)
