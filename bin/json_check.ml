(* CI smoke validator: parse a JSON file with the observability reader and
   assert the presence of required top-level keys.  Exits non-zero with a
   message on malformed JSON or a missing key.

   With --bench, the file is a BENCH_engine.json document instead: every
   experiment's work rows must carry per-variant "totals", "minor_words"
   and "major_words" arrays; the b13 mode-contrast experiment must show,
   for every "group:mat"/"group:pipe" variant pair at every scale,
   identical counter totals and strictly fewer minor words pipelined;
   the b15 batching experiment must show the same shape for every
   "group:row"/"group:batch" pair (identical totals, strictly fewer
   minor words batched); and
   the b14 access-path experiment must show, for every "group|scan" /
   "group|idx" variant pair at every scale, a strictly lower work total
   on the index side, its "cache|hit" span summary must carry none of the
   derivation spans (translate/rewrite/plan) that "cache|cold" pays, and
   when wall-clock rows are present the cache hit must be faster than the
   cold derivation. *)

module Json = Njq_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("json_check: " ^ s);
      exit 1)
    fmt

let parse file =
  let src = In_channel.with_open_text file In_channel.input_all in
  match Json.of_string src with
  | exception Json.Parse_error msg -> fail "%s: invalid JSON: %s" file msg
  | doc -> doc

let check_keys file keys =
  let doc = parse file in
  List.iter
    (fun k ->
      if Json.member k doc = None then fail "%s: missing top-level key %S" file k)
    keys

(* ------------------------------------------------------------------ *)
(* --bench                                                             *)
(* ------------------------------------------------------------------ *)

let check_bench file =
  let doc = parse file in
  let get what k o =
    match Json.member k o with
    | Some v -> v
    | None -> fail "%s: %s: missing key %S" file what k
  in
  let as_list what = function
    | Json.List l -> l
    | _ -> fail "%s: %s is not an array" file what
  in
  let as_str what = function
    | Json.Str s -> s
    | _ -> fail "%s: %s is not a string" file what
  in
  let as_num what = function
    | Json.Int n -> float_of_int n
    | Json.Float f -> f
    | _ -> fail "%s: %s is not a number" file what
  in
  List.iter
    (fun k -> if Json.member k doc = None then fail "%s: missing top-level key %S" file k)
    [ "bench_scale"; "scales"; "experiments" ];
  let experiments = as_list "experiments" (get "document" "experiments" doc) in
  let b13_rows = ref 0 in
  let b14_rows = ref 0 in
  let b15_rows = ref 0 in
  List.iter
    (fun exp ->
      let id = as_str "id" (get "experiment" "id" exp) in
      let ctx = Printf.sprintf "experiment %s" id in
      let variants =
        List.map (as_str (ctx ^ " variant")) (as_list (ctx ^ " variants") (get ctx "variants" exp))
      in
      let nv = List.length variants in
      let index_of name =
        let rec go i = function
          | [] -> None
          | v :: _ when String.equal v name -> Some i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 variants
      in
      List.iter
        (fun row ->
          let cells what =
            let xs = List.map (as_num what) (as_list what (get ctx what row)) in
            if List.length xs <> nv then
              fail "%s: %s: %s has %d cells, expected %d per variant" file ctx
                what (List.length xs) nv;
            xs
          in
          let totals = cells "totals" in
          let minor = cells "minor_words" in
          let major = cells "major_words" in
          List.iter
            (fun w -> if w < 0.0 then fail "%s: %s: negative allocation" file ctx)
            (minor @ major);
          if String.equal id "b13" then begin
            incr b13_rows;
            List.iteri
              (fun i v ->
                match String.index_opt v ':' with
                | Some c when String.equal (String.sub v c (String.length v - c)) ":mat"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ ":pipe") with
                   | None -> fail "%s: %s: %s has no :pipe twin" file ctx v
                   | Some j ->
                     if List.nth totals i <> List.nth totals j then
                       fail "%s: %s: %s work total differs between modes" file
                         ctx group;
                     if not (List.nth minor j < List.nth minor i) then
                       fail
                         "%s: %s: %s:pipe minor words (%.0f) not strictly below \
                          %s:mat (%.0f)"
                         file ctx group (List.nth minor j) group
                         (List.nth minor i))
                | _ -> ())
              variants
          end;
          if String.equal id "b15" then begin
            incr b15_rows;
            List.iteri
              (fun i v ->
                match String.index_opt v ':' with
                | Some c when String.equal (String.sub v c (String.length v - c)) ":row"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ ":batch") with
                   | None -> fail "%s: %s: %s has no :batch twin" file ctx v
                   | Some j ->
                     if List.nth totals i <> List.nth totals j then
                       fail "%s: %s: %s work total differs between modes" file
                         ctx group;
                     if not (List.nth minor j < List.nth minor i) then
                       fail
                         "%s: %s: %s:batch minor words (%.0f) not strictly below \
                          %s:row (%.0f)"
                         file ctx group (List.nth minor j) group
                         (List.nth minor i))
                | _ -> ())
              variants
          end;
          if String.equal id "b14" then begin
            incr b14_rows;
            List.iteri
              (fun i v ->
                match String.index_opt v '|' with
                | Some c
                  when String.equal (String.sub v c (String.length v - c)) "|scan"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ "|idx") with
                   | None -> fail "%s: %s: %s has no |idx twin" file ctx v
                   | Some j ->
                     if not (List.nth totals j < List.nth totals i) then
                       fail
                         "%s: %s: %s|idx work total (%.0f) not strictly below \
                          %s|scan (%.0f)"
                         file ctx group (List.nth totals j) group
                         (List.nth totals i))
                | _ -> ())
              variants
          end)
        (as_list (ctx ^ " work") (get ctx "work" exp));
      if String.equal id "b14" then begin
        (* Span summaries: a plan-cache hit must serve the compiled plan
           without re-running any derivation phase. *)
        let span_names variant =
          List.filter_map
            (fun entry ->
              let v = as_str "span variant" (get ctx "variant" entry) in
              if String.equal v variant then
                Some
                  (List.map
                     (fun s -> as_str "span name" (get ctx "name" s))
                     (as_list (ctx ^ " spans") (get ctx "spans" entry)))
              else None)
            (as_list (ctx ^ " spans") (get ctx "spans" exp))
          |> List.concat
        in
        let hit = span_names "cache|hit" in
        let cold = span_names "cache|cold" in
        if cold <> [] || hit <> [] then begin
          List.iter
            (fun phase ->
              if List.mem phase hit then
                fail "%s: %s: cache|hit re-ran the %S phase on a cache hit"
                  file ctx phase)
            [ "translate"; "rewrite"; "plan" ];
          if cold <> [] && not (List.mem "plan" cold) then
            fail "%s: %s: cache|cold shows no \"plan\" span" file ctx
        end;
        (* Wall-clock (present unless --work-only): serving the cached
           plan must beat re-deriving it. *)
        let ns variant =
          List.find_map
            (fun row ->
              let v = as_str "time variant" (get ctx "variant" row) in
              if String.equal v variant then
                Some (as_num "ns_per_run" (get ctx "ns_per_run" row))
              else None)
            (as_list (ctx ^ " time") (get ctx "time" exp))
        in
        match (ns "cache|hit", ns "cache|cold") with
        | Some hit_ns, Some cold_ns ->
          if not (hit_ns < cold_ns) then
            fail
              "%s: %s: cache|hit (%.0f ns) not faster than cache|cold (%.0f \
               ns)"
              file ctx hit_ns cold_ns
        | _ -> ()
      end)
    experiments;
  if !b13_rows = 0 then
    fail "%s: no b13 work rows (mode-contrast experiment missing or empty)" file;
  if !b14_rows = 0 then
    fail "%s: no b14 work rows (access-path experiment missing or empty)" file;
  if !b15_rows = 0 then
    fail "%s: no b15 work rows (batching experiment missing or empty)" file

let () =
  match Array.to_list Sys.argv with
  | _ :: "--bench" :: [ file ] -> check_bench file
  | _ :: file :: keys when file <> "--bench" -> check_keys file keys
  | _ -> fail "usage: json_check FILE [REQUIRED_KEY...] | json_check --bench FILE"
