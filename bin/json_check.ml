(* CI smoke validator: parse a JSON file with the observability reader and
   assert the presence of required top-level keys.  Exits non-zero with a
   message on malformed JSON or a missing key. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("json_check: " ^ s);
      exit 1)
    fmt

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: keys ->
    let src = In_channel.with_open_text file In_channel.input_all in
    (match Njq_obs.Json.of_string src with
     | exception Njq_obs.Json.Parse_error msg ->
       fail "%s: invalid JSON: %s" file msg
     | doc ->
       List.iter
         (fun k ->
           if Njq_obs.Json.member k doc = None then
             fail "%s: missing top-level key %S" file k)
         keys)
  | _ -> fail "usage: json_check FILE [REQUIRED_KEY...]"
