(* CI smoke validator: parse a JSON file with the observability reader and
   assert the presence of required top-level keys.  Exits non-zero with a
   message on malformed JSON or a missing key.

   With --bench, the file is a BENCH_engine.json document instead: every
   experiment's work rows must carry per-variant "totals", "minor_words"
   and "major_words" arrays, and the b13 mode-contrast experiment must
   show, for every "group:mat"/"group:pipe" variant pair at every scale,
   identical counter totals and strictly fewer minor words pipelined. *)

module Json = Njq_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("json_check: " ^ s);
      exit 1)
    fmt

let parse file =
  let src = In_channel.with_open_text file In_channel.input_all in
  match Json.of_string src with
  | exception Json.Parse_error msg -> fail "%s: invalid JSON: %s" file msg
  | doc -> doc

let check_keys file keys =
  let doc = parse file in
  List.iter
    (fun k ->
      if Json.member k doc = None then fail "%s: missing top-level key %S" file k)
    keys

(* ------------------------------------------------------------------ *)
(* --bench                                                             *)
(* ------------------------------------------------------------------ *)

let check_bench file =
  let doc = parse file in
  let get what k o =
    match Json.member k o with
    | Some v -> v
    | None -> fail "%s: %s: missing key %S" file what k
  in
  let as_list what = function
    | Json.List l -> l
    | _ -> fail "%s: %s is not an array" file what
  in
  let as_str what = function
    | Json.Str s -> s
    | _ -> fail "%s: %s is not a string" file what
  in
  let as_num what = function
    | Json.Int n -> float_of_int n
    | Json.Float f -> f
    | _ -> fail "%s: %s is not a number" file what
  in
  List.iter
    (fun k -> if Json.member k doc = None then fail "%s: missing top-level key %S" file k)
    [ "bench_scale"; "scales"; "experiments" ];
  let experiments = as_list "experiments" (get "document" "experiments" doc) in
  let b13_rows = ref 0 in
  List.iter
    (fun exp ->
      let id = as_str "id" (get "experiment" "id" exp) in
      let ctx = Printf.sprintf "experiment %s" id in
      let variants =
        List.map (as_str (ctx ^ " variant")) (as_list (ctx ^ " variants") (get ctx "variants" exp))
      in
      let nv = List.length variants in
      let index_of name =
        let rec go i = function
          | [] -> None
          | v :: _ when String.equal v name -> Some i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 variants
      in
      List.iter
        (fun row ->
          let cells what =
            let xs = List.map (as_num what) (as_list what (get ctx what row)) in
            if List.length xs <> nv then
              fail "%s: %s: %s has %d cells, expected %d per variant" file ctx
                what (List.length xs) nv;
            xs
          in
          let totals = cells "totals" in
          let minor = cells "minor_words" in
          let major = cells "major_words" in
          List.iter
            (fun w -> if w < 0.0 then fail "%s: %s: negative allocation" file ctx)
            (minor @ major);
          if String.equal id "b13" then begin
            incr b13_rows;
            List.iteri
              (fun i v ->
                match String.index_opt v ':' with
                | Some c when String.equal (String.sub v c (String.length v - c)) ":mat"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ ":pipe") with
                   | None -> fail "%s: %s: %s has no :pipe twin" file ctx v
                   | Some j ->
                     if List.nth totals i <> List.nth totals j then
                       fail "%s: %s: %s work total differs between modes" file
                         ctx group;
                     if not (List.nth minor j < List.nth minor i) then
                       fail
                         "%s: %s: %s:pipe minor words (%.0f) not strictly below \
                          %s:mat (%.0f)"
                         file ctx group (List.nth minor j) group
                         (List.nth minor i))
                | _ -> ())
              variants
          end)
        (as_list (ctx ^ " work") (get ctx "work" exp)))
    experiments;
  if !b13_rows = 0 then
    fail "%s: no b13 work rows (mode-contrast experiment missing or empty)" file

let () =
  match Array.to_list Sys.argv with
  | _ :: "--bench" :: [ file ] -> check_bench file
  | _ :: file :: keys when file <> "--bench" -> check_keys file keys
  | _ -> fail "usage: json_check FILE [REQUIRED_KEY...] | json_check --bench FILE"
