(* CI smoke validator: parse a JSON file with the observability reader and
   assert the presence of required top-level keys.  Exits non-zero with a
   message on malformed JSON or a missing key.

   With --bench, the file is a BENCH_engine.json document instead: every
   experiment's work rows must carry per-variant "totals", "minor_words"
   and "major_words" arrays; a "time" key, when present, must be non-empty
   (an empty array is data that silently went missing — the harness omits
   the key instead); every experiment must carry a non-empty "latency"
   section whose variants match the experiment's and whose percentiles are
   ordered (p50 <= p90 <= p99 <= max); the b13 mode-contrast experiment
   must show, for every "group:mat"/"group:pipe" variant pair at every
   scale, identical counter totals and strictly fewer minor words
   pipelined; the b15 batching experiment must show the same shape for
   every "group:row"/"group:batch" pair (identical totals, strictly fewer
   minor words batched); and the b14 access-path experiment must show, for
   every "group|scan"/"group|idx" variant pair at every scale, a strictly
   lower work total on the index side, its "cache|hit" span summary must
   carry none of the derivation spans (translate/rewrite/plan) that
   "cache|cold" pays, and the cache hit must be faster than the cold
   derivation — on bechamel wall-clock rows when "time" is present, on
   latency p50 otherwise.  The b16 serving experiment must show the
   batched execution of the K merged invocations doing strictly less
   counter work than the K one-at-a-time runs, and its concurrent-driver
   "serve" section must carry both modes at 1/2/4 pool domains with
   batching winning queries/s and p99 queue wait at 4 domains.  The b17
   join-order experiment must show, for every "group|rw"/"group|enum"
   variant pair, the enumerated order doing no more counter work than
   the rewriter order, strictly less on the chain6 groups.  The b18
   larger-than-memory experiment must carry a "spill" section whose
   per-variant counter snapshots show, for each operator family
   (grace/pnhl/extsort) across the inf/10pct/1pct budget variants,
   budget-invariant core work (scan_row, hash_build/hash_probe,
   pnhl_build), zero spill and external-sort counters on the resident
   |inf run, and nonzero spill (resp. external-sort run/merge) counters
   at the 1% budget; its "coldstart" record must show the NJQC binary
   catalog load strictly faster than the textual parse of the same
   catalog.

   With --baseline BASE, the perf-regression gate: BASE and FILE are two
   BENCH_engine.json documents; they must agree on experiment ids and
   variant lists, every (experiment, scale, variant) work total in FILE
   must not exceed BASE's (work counters are deterministic — any increase
   is a real regression), and every latency p99 must stay within
   max(BASE * (1 + band), BASE + 5ms) where band defaults to 3.0 (wall
   clock is noisy; only order-of-magnitude blowups on meaningfully long
   runs should fail CI). *)

module Json = Njq_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("json_check: " ^ s);
      exit 1)
    fmt

let parse file =
  let src = In_channel.with_open_text file In_channel.input_all in
  match Json.of_string src with
  | exception Json.Parse_error msg -> fail "%s: invalid JSON: %s" file msg
  | doc -> doc

(* The "enumeration" key of njq explain --json is structured: one object
   per join region with the enumerator's counters, costs and the chosen
   vs rewriter plan fingerprints.  Validate the shape, not just the
   presence, so a field rename can't silently break dashboards. *)
let check_enumeration file v =
  let regions =
    match v with
    | Json.List l -> l
    | _ -> fail "%s: \"enumeration\" is not an array" file
  in
  List.iteri
    (fun idx r ->
      let ctx = Printf.sprintf "enumeration[%d]" idx in
      let get k =
        match Json.member k r with
        | Some v -> v
        | None -> fail "%s: %s: missing key %S" file ctx k
      in
      (match get "relations" with
       | Json.List (_ :: _ as rels) ->
         List.iter
           (function
             | Json.Str _ -> ()
             | _ -> fail "%s: %s: non-string relation" file ctx)
           rels
       | _ -> fail "%s: %s: \"relations\" not a non-empty array" file ctx);
      List.iter
        (fun k ->
          match get k with
          | Json.Int n when n >= 0 -> ()
          | _ -> fail "%s: %s: %S not a non-negative integer" file ctx k)
        [ "considered"; "pruned"; "hoisted" ];
      List.iter
        (fun k ->
          match get k with
          | Json.Int _ | Json.Float _ -> ()
          | _ -> fail "%s: %s: %S not a number" file ctx k)
        [ "chosen_cost"; "rewriter_cost" ];
      let reordered =
        match get "reordered" with
        | Json.Bool b -> b
        | _ -> fail "%s: %s: \"reordered\" not a bool" file ctx
      in
      let fp k =
        match get k with
        | Json.Str s when String.length s > 0 -> s
        | _ -> fail "%s: %s: %S not a non-empty string" file ctx k
      in
      let chosen = fp "chosen_fingerprint" in
      let rewriter = fp "rewriter_fingerprint" in
      (* the flag and the fingerprints must tell the same story *)
      if reordered && String.equal chosen rewriter then
        fail "%s: %s: reordered but fingerprints identical" file ctx)
    regions

let check_keys file keys =
  let doc = parse file in
  List.iter
    (fun k ->
      match Json.member k doc with
      | None -> fail "%s: missing top-level key %S" file k
      | Some v -> if String.equal k "enumeration" then check_enumeration file v)
    keys

(* ------------------------------------------------------------------ *)
(* Shared accessors (fail with file context)                           *)
(* ------------------------------------------------------------------ *)

let get file what k o =
  match Json.member k o with
  | Some v -> v
  | None -> fail "%s: %s: missing key %S" file what k

let as_list file what = function
  | Json.List l -> l
  | _ -> fail "%s: %s is not an array" file what

let as_str file what = function
  | Json.Str s -> s
  | _ -> fail "%s: %s is not a string" file what

let as_num file what = function
  | Json.Int n -> float_of_int n
  | Json.Float f -> f
  | _ -> fail "%s: %s is not a number" file what

(* "latency" rows of one experiment, as (variant, p50, p99) keyed triples;
   validates shape and percentile ordering on the way. *)
let latency_rows file ctx exp =
  match Json.member "latency" exp with
  | None -> fail "%s: %s: missing \"latency\" section" file ctx
  | Some (Json.List []) -> fail "%s: %s: empty \"latency\" section" file ctx
  | Some l ->
    List.map
      (fun row ->
        let v = as_str file (ctx ^ " latency variant") (get file ctx "variant" row) in
        let num k = as_num file (ctx ^ " latency " ^ k) (get file ctx k row) in
        let samples = num "samples" in
        let p50 = num "p50_ns" and p90 = num "p90_ns" in
        let p99 = num "p99_ns" and mx = num "max_ns" in
        if samples <= 0.0 then
          fail "%s: %s: latency %s has no samples" file ctx v;
        if not (p50 <= p90 && p90 <= p99 && p99 <= mx) then
          fail
            "%s: %s: latency %s percentiles out of order \
             (p50=%.0f p90=%.0f p99=%.0f max=%.0f)"
            file ctx v p50 p90 p99 mx;
        (v, p50, p99))
      (as_list file (ctx ^ " latency") l)

(* ------------------------------------------------------------------ *)
(* --bench                                                             *)
(* ------------------------------------------------------------------ *)

let check_bench file =
  let doc = parse file in
  let get what k o = get file what k o in
  let as_list what l = as_list file what l in
  let as_str what s = as_str file what s in
  let as_num what n = as_num file what n in
  List.iter
    (fun k -> if Json.member k doc = None then fail "%s: missing top-level key %S" file k)
    [ "bench_scale"; "scales"; "experiments" ];
  let experiments = as_list "experiments" (get "document" "experiments" doc) in
  let b13_rows = ref 0 in
  let b14_rows = ref 0 in
  let b15_rows = ref 0 in
  let b16_rows = ref 0 in
  let b17_rows = ref 0 in
  let b18_rows = ref 0 in
  List.iter
    (fun exp ->
      let id = as_str "id" (get "experiment" "id" exp) in
      let ctx = Printf.sprintf "experiment %s" id in
      let variants =
        List.map (as_str (ctx ^ " variant")) (as_list (ctx ^ " variants") (get ctx "variants" exp))
      in
      let nv = List.length variants in
      let index_of name =
        let rec go i = function
          | [] -> None
          | v :: _ when String.equal v name -> Some i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 variants
      in
      (* An empty timing section is indistinguishable from lost data; the
         harness omits the key when it has no rows, so empty = bug. *)
      (match Json.member "time" exp with
       | Some (Json.List []) ->
         fail "%s: %s: \"time\" present but empty (omit the key instead)" file
           ctx
       | _ -> ());
      let lat = latency_rows file ctx exp in
      List.iter
        (fun (v, _, _) ->
          if not (List.mem v variants) then
            fail "%s: %s: latency row for unknown variant %S" file ctx v)
        lat;
      List.iter
        (fun v ->
          if not (List.exists (fun (lv, _, _) -> String.equal lv v) lat) then
            fail "%s: %s: variant %S has no latency row" file ctx v)
        variants;
      List.iter
        (fun row ->
          let cells what =
            let xs = List.map (as_num what) (as_list what (get ctx what row)) in
            if List.length xs <> nv then
              fail "%s: %s: %s has %d cells, expected %d per variant" file ctx
                what (List.length xs) nv;
            xs
          in
          let totals = cells "totals" in
          let minor = cells "minor_words" in
          let major = cells "major_words" in
          List.iter
            (fun w -> if w < 0.0 then fail "%s: %s: negative allocation" file ctx)
            (minor @ major);
          if String.equal id "b13" then begin
            incr b13_rows;
            List.iteri
              (fun i v ->
                match String.index_opt v ':' with
                | Some c when String.equal (String.sub v c (String.length v - c)) ":mat"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ ":pipe") with
                   | None -> fail "%s: %s: %s has no :pipe twin" file ctx v
                   | Some j ->
                     if List.nth totals i <> List.nth totals j then
                       fail "%s: %s: %s work total differs between modes" file
                         ctx group;
                     if not (List.nth minor j < List.nth minor i) then
                       fail
                         "%s: %s: %s:pipe minor words (%.0f) not strictly below \
                          %s:mat (%.0f)"
                         file ctx group (List.nth minor j) group
                         (List.nth minor i))
                | _ -> ())
              variants
          end;
          if String.equal id "b15" then begin
            incr b15_rows;
            List.iteri
              (fun i v ->
                match String.index_opt v ':' with
                | Some c when String.equal (String.sub v c (String.length v - c)) ":row"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ ":batch") with
                   | None -> fail "%s: %s: %s has no :batch twin" file ctx v
                   | Some j ->
                     if List.nth totals i <> List.nth totals j then
                       fail "%s: %s: %s work total differs between modes" file
                         ctx group;
                     if not (List.nth minor j < List.nth minor i) then
                       fail
                         "%s: %s: %s:batch minor words (%.0f) not strictly below \
                          %s:row (%.0f)"
                         file ctx group (List.nth minor j) group
                         (List.nth minor i))
                | _ -> ())
              variants
          end;
          if String.equal id "b16" then begin
            incr b16_rows;
            (* One batched execution of the K merged invocations must do
               strictly less counter work than the K one-at-a-time runs:
               the set-oriented form pays the base-table scan and hash
               build once. *)
            match (index_of "serve|one", index_of "serve|batch") with
            | Some i, Some j ->
              if not (List.nth totals j < List.nth totals i) then
                fail
                  "%s: %s: serve|batch work total (%.0f) not strictly below \
                   serve|one (%.0f)"
                  file ctx (List.nth totals j) (List.nth totals i)
            | _ -> fail "%s: %s: missing serve|one / serve|batch variants" file ctx
          end;
          if String.equal id "b17" then begin
            incr b17_rows;
            (* Join-order enumeration must never do more counter work than
               the rewriter's order, and on the deep selective chain
               (chain6) it must do strictly less: the enumerator joins the
               filtered relation first, shrinking every later probe. *)
            List.iteri
              (fun i v ->
                match String.index_opt v '|' with
                | Some c
                  when String.equal (String.sub v c (String.length v - c)) "|rw"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ "|enum") with
                   | None -> fail "%s: %s: %s has no |enum twin" file ctx v
                   | Some j ->
                     if List.nth totals j > List.nth totals i then
                       fail
                         "%s: %s: %s|enum work total (%.0f) above %s|rw (%.0f)"
                         file ctx group (List.nth totals j) group
                         (List.nth totals i);
                     let strict =
                       String.length group >= 6
                       && String.equal (String.sub group 0 6) "chain6"
                     in
                     if strict && not (List.nth totals j < List.nth totals i)
                     then
                       fail
                         "%s: %s: %s|enum work total (%.0f) not strictly below \
                          %s|rw (%.0f)"
                         file ctx group (List.nth totals j) group
                         (List.nth totals i))
                | _ -> ())
              variants
          end;
          if String.equal id "b18" then incr b18_rows;
          if String.equal id "b14" then begin
            incr b14_rows;
            List.iteri
              (fun i v ->
                match String.index_opt v '|' with
                | Some c
                  when String.equal (String.sub v c (String.length v - c)) "|scan"
                  ->
                  let group = String.sub v 0 c in
                  (match index_of (group ^ "|idx") with
                   | None -> fail "%s: %s: %s has no |idx twin" file ctx v
                   | Some j ->
                     if not (List.nth totals j < List.nth totals i) then
                       fail
                         "%s: %s: %s|idx work total (%.0f) not strictly below \
                          %s|scan (%.0f)"
                         file ctx group (List.nth totals j) group
                         (List.nth totals i))
                | _ -> ())
              variants
          end)
        (as_list (ctx ^ " work") (get ctx "work" exp));
      if String.equal id "b16" then begin
        (* Concurrent-driver rows: both serving modes must be measured at
           1, 2 and 4 pool domains, and at 4 domains batching must win
           throughput and p99 queue wait — the admission queue drains a
           window at a time, so requests stop piling up behind K
           individual executions. *)
        match Json.member "serve" exp with
        | None -> fail "%s: %s: missing \"serve\" section" file ctx
        | Some s ->
          let rows =
            List.map
              (fun row ->
                let mode = as_str (ctx ^ " serve mode") (get ctx "mode" row) in
                let num k = as_num (ctx ^ " serve " ^ k) (get ctx k row) in
                List.iter
                  (fun k ->
                    if num k < 0.0 then
                      fail "%s: %s: serve %s has negative %s" file ctx mode k)
                  [ "requests"; "batches"; "mean_batch"; "queries_per_s";
                    "queue_p50_ns"; "queue_p99_ns"; "service_p50_ns";
                    "service_p99_ns"; "latency_p50_ns"; "latency_p99_ns" ];
                ((int_of_float (num "domains"), mode),
                 (num "queries_per_s", num "queue_p99_ns")))
              (as_list (ctx ^ " serve") s)
          in
          let find d mode =
            match List.assoc_opt (d, mode) rows with
            | Some cell -> cell
            | None ->
              fail "%s: %s: no serve row for domains=%d mode=%s" file ctx d mode
          in
          List.iter
            (fun d ->
              ignore (find d "one");
              ignore (find d "batch"))
            [ 1; 2; 4 ];
          let one_qps, one_queue = find 4 "one" in
          let batch_qps, batch_queue = find 4 "batch" in
          if not (batch_qps > one_qps) then
            fail
              "%s: %s: batched serving (%.0f q/s) not above one-at-a-time \
               (%.0f q/s) at 4 domains"
              file ctx batch_qps one_qps;
          if not (batch_queue <= one_queue) then
            fail
              "%s: %s: batched p99 queue wait (%.0f ns) above one-at-a-time \
               (%.0f ns) at 4 domains"
              file ctx batch_queue one_queue
      end;
      if String.equal id "b18" then begin
        (* Per-variant counter snapshots: the work-table totals cannot
           gate spilling (budgeted runs legitimately do more total work),
           so the spill section carries the breakdown.  Core operator
           work must be budget-invariant — the budgeted run computes the
           same join, just through spill files — while the spill counters
           themselves must be zero resident and nonzero at the 1%
           budget.  The cold-start record must show the binary catalog
           format beating the textual parse. *)
        match Json.member "spill" exp with
        | None -> fail "%s: %s: missing \"spill\" section" file ctx
        | Some s ->
          let cells = as_list (ctx ^ " spill cells") (get ctx "cells" s) in
          let by_name =
            List.map
              (fun row ->
                (as_str (ctx ^ " spill variant") (get ctx "variant" row), row))
              cells
          in
          let find name =
            match List.assoc_opt name by_name with
            | Some row -> row
            | None -> fail "%s: %s: no spill row for variant %S" file ctx name
          in
          let field row k = as_num (ctx ^ " spill " ^ k) (get ctx k row) in
          List.iter
            (fun (fam, core) ->
              let inf = find (fam ^ "|inf") in
              let budgeted =
                [ (fam ^ "|10pct", find (fam ^ "|10pct"));
                  (fam ^ "|1pct", find (fam ^ "|1pct")) ]
              in
              List.iter
                (fun k ->
                  let v0 = field inf k in
                  List.iter
                    (fun (name, row) ->
                      if field row k <> v0 then
                        fail
                          "%s: %s: %s %s (%.0f) differs from %s|inf (%.0f) — \
                           core work must be budget-invariant"
                          file ctx name k (field row k) fam v0)
                    budgeted)
                core;
              List.iter
                (fun k ->
                  if field inf k <> 0.0 then
                    fail "%s: %s: %s|inf ticked %s (%.0f) with no budget" file
                      ctx fam k (field inf k))
                [ "spill_part"; "spill_row"; "spill_bytes"; "ext_sort_run";
                  "ext_sort_merge" ];
              let _, tight = List.nth budgeted 1 in
              let must_tick ks =
                List.iter
                  (fun k ->
                    if not (field tight k > 0.0) then
                      fail "%s: %s: %s|1pct did not tick %s" file ctx fam k)
                  ks
              in
              if String.equal fam "extsort" then
                must_tick [ "ext_sort_run"; "ext_sort_merge" ]
              else must_tick [ "spill_part"; "spill_bytes" ])
            [ ("grace", [ "scan_row"; "hash_build"; "hash_probe" ]);
              ("pnhl", [ "scan_row"; "pnhl_build" ]);
              ("extsort", [ "scan_row" ]) ];
          let cs = get ctx "coldstart" s in
          let num k = as_num (ctx ^ " coldstart " ^ k) (get ctx k cs) in
          List.iter
            (fun k ->
              if not (num k > 0.0) then
                fail "%s: %s: coldstart %s not positive" file ctx k)
            [ "rows"; "text_bytes"; "njqc_bytes"; "text_ns"; "njqc_ns" ];
          if not (num "njqc_ns" < num "text_ns") then
            fail
              "%s: %s: NJQC cold start (%.0f ns) not strictly below the \
               textual parse (%.0f ns)"
              file ctx (num "njqc_ns") (num "text_ns")
      end;
      if String.equal id "b14" then begin
        (* Span summaries: a plan-cache hit must serve the compiled plan
           without re-running any derivation phase. *)
        let span_names variant =
          List.filter_map
            (fun entry ->
              let v = as_str "span variant" (get ctx "variant" entry) in
              if String.equal v variant then
                Some
                  (List.map
                     (fun s -> as_str "span name" (get ctx "name" s))
                     (as_list (ctx ^ " spans") (get ctx "spans" entry)))
              else None)
            (as_list (ctx ^ " spans") (get ctx "spans" exp))
          |> List.concat
        in
        let hit = span_names "cache|hit" in
        let cold = span_names "cache|cold" in
        if cold <> [] || hit <> [] then begin
          List.iter
            (fun phase ->
              if List.mem phase hit then
                fail "%s: %s: cache|hit re-ran the %S phase on a cache hit"
                  file ctx phase)
            [ "translate"; "rewrite"; "plan" ];
          if cold <> [] && not (List.mem "plan" cold) then
            fail "%s: %s: cache|cold shows no \"plan\" span" file ctx
        end;
        (* Serving the cached plan must beat re-deriving it: on bechamel
           estimates when present, on latency-histogram p50 otherwise
           (--work-only runs carry no "time" key). *)
        let ns variant =
          match Json.member "time" exp with
          | Some t ->
            List.find_map
              (fun row ->
                let v = as_str "time variant" (get ctx "variant" row) in
                if String.equal v variant then
                  Some (as_num "ns_per_run" (get ctx "ns_per_run" row))
                else None)
              (as_list (ctx ^ " time") t)
          | None ->
            List.find_map
              (fun (v, p50, _) ->
                if String.equal v variant then Some p50 else None)
              lat
        in
        match (ns "cache|hit", ns "cache|cold") with
        | Some hit_ns, Some cold_ns ->
          if not (hit_ns < cold_ns) then
            fail
              "%s: %s: cache|hit (%.0f ns) not faster than cache|cold (%.0f \
               ns)"
              file ctx hit_ns cold_ns
        | _ -> ()
      end)
    experiments;
  if !b13_rows = 0 then
    fail "%s: no b13 work rows (mode-contrast experiment missing or empty)" file;
  if !b14_rows = 0 then
    fail "%s: no b14 work rows (access-path experiment missing or empty)" file;
  if !b15_rows = 0 then
    fail "%s: no b15 work rows (batching experiment missing or empty)" file;
  if !b16_rows = 0 then
    fail "%s: no b16 work rows (serving experiment missing or empty)" file;
  if !b17_rows = 0 then
    fail "%s: no b17 work rows (join-order experiment missing or empty)" file;
  if !b18_rows = 0 then
    fail "%s: no b18 work rows (larger-than-memory experiment missing or empty)"
      file

(* ------------------------------------------------------------------ *)
(* --baseline: perf-regression gate                                    *)
(* ------------------------------------------------------------------ *)

(* One experiment, digested for comparison. *)
type exp_digest = {
  d_variants : string list;
  d_work : (int * float list) list;  (* scale -> per-variant totals *)
  d_p99 : (string * float) list;  (* variant -> latency p99 ns *)
}

let digest file doc =
  let experiments =
    as_list file "experiments" (get file "document" "experiments" doc)
  in
  List.map
    (fun exp ->
      let id = as_str file "id" (get file "experiment" "id" exp) in
      let ctx = Printf.sprintf "experiment %s" id in
      let d_variants =
        List.map
          (as_str file (ctx ^ " variant"))
          (as_list file (ctx ^ " variants") (get file ctx "variants" exp))
      in
      let d_work =
        List.map
          (fun row ->
            let n =
              int_of_float (as_num file (ctx ^ " n") (get file ctx "n" row))
            in
            let totals =
              List.map
                (as_num file (ctx ^ " total"))
                (as_list file (ctx ^ " totals") (get file ctx "totals" row))
            in
            (n, totals))
          (as_list file (ctx ^ " work") (get file ctx "work" exp))
      in
      let d_p99 =
        List.map (fun (v, _, p99) -> (v, p99)) (latency_rows file ctx exp)
      in
      (id, { d_variants; d_work; d_p99 }))
    experiments

let check_baseline ~band base_file file =
  let base = digest base_file (parse base_file) in
  let cur = digest file (parse file) in
  let ids xs = List.map fst xs in
  List.iter
    (fun id ->
      if not (List.mem_assoc id cur) then
        fail "%s: experiment %s present in baseline but missing here" file id)
    (ids base);
  List.iter
    (fun id ->
      if not (List.mem_assoc id base) then
        fail
          "%s: experiment %s has no baseline row — regenerate %s (see \
           tools/baseline_check)"
          file id base_file)
    (ids cur);
  let regressions = ref 0 in
  List.iter
    (fun (id, b) ->
      let c = List.assoc id cur in
      if b.d_variants <> c.d_variants then
        fail
          "%s: experiment %s variant list differs from baseline — regenerate \
           %s alongside the bench change"
          file id base_file;
      (* Work totals are deterministic operation counts: any increase over
         the committed baseline is a genuine plan/executor regression. *)
      List.iter
        (fun (n, cur_totals) ->
          match List.assoc_opt n b.d_work with
          | None -> ()  (* scale not in baseline (e.g. different --scale) *)
          | Some base_totals ->
            if List.length base_totals <> List.length cur_totals then
              fail "%s: experiment %s n=%d: work row width differs" file id n;
            List.iteri
              (fun i cur_t ->
                let base_t = List.nth base_totals i in
                if cur_t > base_t then begin
                  incr regressions;
                  Printf.eprintf
                    "json_check: %s: experiment %s n=%d variant %s: work total \
                     %.0f exceeds baseline %.0f\n"
                    file id n
                    (List.nth c.d_variants i)
                    cur_t base_t
                end)
              cur_totals)
        c.d_work;
      (* Wall clock is noisy: only flag p99 beyond the band, and never
         below an absolute floor — one scheduler preemption on a shared
         single-CPU box costs milliseconds, far more than any
         multiplicative band on a microsecond-scale variant.  The floor
         makes the p99 gate meaningful only for runs long enough that
         timeslice jitter is a fraction of the signal; work totals gate
         the short ones exactly. *)
      List.iter
        (fun (v, cur_p99) ->
          match List.assoc_opt v b.d_p99 with
          | None -> ()
          | Some base_p99 ->
            let limit =
              Float.max (base_p99 *. (1.0 +. band)) (base_p99 +. 5_000_000.0)
            in
            if cur_p99 > limit then begin
              incr regressions;
              Printf.eprintf
                "json_check: %s: experiment %s variant %s: latency p99 %.0f ns \
                 exceeds baseline %.0f ns * %.2f = %.0f ns\n"
                file id v cur_p99 base_p99 (1.0 +. band) limit
            end)
        c.d_p99)
    base;
  if !regressions > 0 then
    fail "%d perf regression(s) against baseline %s" !regressions base_file;
  Printf.printf "json_check: %s within baseline %s (band %.2f)\n" file base_file
    band

let () =
  match Array.to_list Sys.argv with
  | _ :: "--bench" :: [ file ] -> check_bench file
  | _ :: "--baseline" :: base :: file :: rest ->
    let band =
      match rest with
      | [] -> 3.0
      | [ "--band"; f ] ->
        (match float_of_string_opt f with
         | Some f when f >= 0.0 -> f
         | _ -> fail "--band expects a non-negative float")
      | _ ->
        fail "usage: json_check --baseline BASE FILE [--band F]"
    in
    check_baseline ~band base file
  | _ :: file :: keys when file <> "--bench" && file <> "--baseline" ->
    check_keys file keys
  | _ ->
    fail
      "usage: json_check FILE [REQUIRED_KEY...] | json_check --bench FILE | \
       json_check --baseline BASE FILE [--band F]"
