(* Rewrite-rule infrastructure.

   A rule is a partial function on expressions, tried at a single node.  The
   driver applies a rule set anywhere in the tree (outermost node first),
   one step at a time, and iterates to a fixpoint, recording a derivation
   trace.  Rules receive the catalog so they can consult schemas. *)

open Njq_adl

type rule = {
  name : string;
  apply : Catalog.t -> Expr.t -> Expr.t option;
}

let rule name apply = { name; apply }

(* A derivation step: the rule fired and produced the given whole query. *)
type step = {
  rule_name : string;
  result : Expr.t;
}

type trace = step list (* in application order *)

(* Try each rule at node [e]; first success wins. *)
let try_rules cat rules e =
  List.find_map
    (fun r ->
      match r.apply cat e with
      | Some e' when not (Expr.equal e' e) -> Some (r.name, e')
      | _ -> None)
    rules

(* Apply one rewrite step anywhere in [e], outermost-first, leftmost-first.
   Returns [None] when no rule applies anywhere. *)
let rec step_anywhere cat rules (e : Expr.t) : (string * Expr.t) option =
  match try_rules cat rules e with
  | Some _ as hit -> hit
  | None ->
    (* Descend: rebuild [e] with the first child that admits a step
       replaced.  We reuse [map_children] with an exception to stop after
       the first rewritten child. *)
    let fired = ref None in
    let visit child =
      match !fired with
      | Some _ -> child
      | None ->
        (match step_anywhere cat rules child with
         | Some (name, child') ->
           fired := Some name;
           child'
         | None -> child)
    in
    let e' = Expr.map_children visit e in
    (match !fired with Some name -> Some (name, e') | None -> None)

(* Iterate [step_anywhere] to a fixpoint.  [fuel] bounds the number of steps
   as a safety net against non-terminating rule sets (a bug, but better
   reported than looped). *)
let fixpoint ?(fuel = 10_000) cat rules (e : Expr.t) : Expr.t * trace =
  let rec go fuel e acc =
    if fuel = 0 then failwith "Rules.fixpoint: out of fuel (diverging rule set?)"
    else
      (* The fired rule's name is only known after the step returns, so the
         firing is recorded as an after-the-fact span. *)
      let t0 = if Njq_obs.Span.tracing () then Njq_obs.Clock.now_ns () else 0 in
      match step_anywhere cat rules e with
      | None -> (e, List.rev acc)
      | Some (name, e') ->
        if Njq_obs.Span.tracing () then
          Njq_obs.Span.emit ~start_ns:t0 ("rule:" ^ name);
        go (fuel - 1) e' ({ rule_name = name; result = e' } :: acc)
  in
  go fuel e []

(* Run [fixpoint] and interleave a simplification pass after every step so
   that rules see folded terms (e.g. double negations removed). *)
let fixpoint_simplify ?(fuel = 10_000) cat rules (e : Expr.t) : Expr.t * trace =
  let rec go fuel e acc =
    if fuel = 0 then failwith "Rules.fixpoint_simplify: out of fuel"
    else
      let t0 = if Njq_obs.Span.tracing () then Njq_obs.Clock.now_ns () else 0 in
      match step_anywhere cat rules e with
      | None -> (e, List.rev acc)
      | Some (name, e') ->
        let e' = Fold.simplify e' in
        if Njq_obs.Span.tracing () then
          Njq_obs.Span.emit ~start_ns:t0 ("rule:" ^ name);
        go (fuel - 1) e' ({ rule_name = name; result = e' } :: acc)
  in
  go fuel (Fold.simplify e) []

let pp_step ppf { rule_name; result } =
  Fmt.pf ppf "@[<2>%-28s ⇒  %a@]" rule_name Pretty.pp result

let pp_trace ppf (t : trace) = Fmt.(list ~sep:(any "@.") pp_step) ppf t
