(** Set-oriented batching of prepared-query invocations: K runs of a
    parameterized query become one map over a parameter table — a
    correlated subquery the Section 4 strategy unnests into joins, the
    paper's nested-loop → join move applied to the invocation batch. *)

open Njq_adl

(** Reserved attribute names of the parameter table ("__cid", "__rows",
    "__p0", "__p1", ...). *)
val cid_field : string

val rows_field : string
val param_field : int -> string

(** 1 + the highest [Param] index in the expression (0 when none). *)
val param_count : Expr.t -> int

(** Row type of a parameter table with [nparams] parameter columns. *)
val row_type : nparams:int -> Vtype.t

(** One parameter-table row: [(__cid = cid, __p0 = v0, ...)].  Distinct
    cids keep rows distinct under set semantics even when two invocations
    share a parameter vector. *)
val param_row : cid:int -> Value.t list -> Value.t

(** Substitute constants for [Param 0..]: the one-at-a-time path. *)
val bind : Value.t list -> Expr.t -> Expr.t

(** [batched ~params_table ~nparams e] is
    [map\[w : (__cid = w.__cid, __rows = e\[?i := w.__pi\])\](@params_table)].
    Map totality guarantees one result tuple per parameter row. *)
val batched : params_table:string -> nparams:int -> Expr.t -> Expr.t

(** Split a batched result set into [(cid, rows)] pairs; each [rows] value
    is bit-identical to the unbatched run of that invocation. *)
val split : Value.t -> (int * Value.t) list
