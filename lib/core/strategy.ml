(* The optimization strategy of Section 4, as a priority-ordered driver:

   1. try to rewrite to the relational join operators (join, semijoin,
      antijoin) — normalization into quantifier form, quantifier exchange,
      Rule 1 and Rule 2;
   2. if not possible, try to flatten set-valued attributes (when the final
      nesting can be skipped and empty sets cause no problem), then retry 1;
   3. if not possible, rewrite to the new operators (nestjoin) introduced to
      beat nested-loop processing — optionally the guarded flat-join
      grouping or the outer-join variant instead, for ablation;
   4. otherwise leave the (sub)query as is: nested-loop execution.

   Every phase records its derivation steps; [explain] renders the chain. *)

open Njq_adl

type grouping_mode =
  | Nestjoin_always (* the paper's default: nestjoin for grouping queries *)
  | Flat_join_when_safe (* use join+nu when P(x,{}) = false, else nestjoin *)
  | Outerjoin (* use the outer-join repair instead of the nestjoin *)

type options = {
  enable_relational : bool;
  enable_attr_unnest : bool;
  enable_grouping : bool;
  enable_division : bool;
      (* unnest universal quantification with the division operator instead
         of the antijoin (ablation; Section 5.2.1) *)
  grouping_mode : grouping_mode;
}

let default_options =
  { enable_relational = true;
    enable_attr_unnest = true;
    enable_grouping = true;
    enable_division = false;
    grouping_mode = Nestjoin_always }

type phase_trace = {
  phase : string;
  steps : Rules.trace;
}

type report = {
  input : Expr.t;
  output : Expr.t;
  phases : phase_trace list;
}

let relational_rules =
  Normalize.rules @ Exchange.rules @ Reljoin.rules @ [ Reljoin.merge_selects ]

(* With division enabled, its rule must see the ¬∃ pattern before Rule 1
   turns it into an antijoin. *)
let relational_rules_with_division =
  Normalize.rules @ Exchange.rules @ Divisionrw.rules @ Reljoin.rules
  @ [ Reljoin.merge_selects ]

let grouping_rules mode =
  match mode with
  | Nestjoin_always -> Nestjoinrw.rules
  | Flat_join_when_safe -> [ Grouping.safe_rule ] @ Nestjoinrw.rules
  | Outerjoin -> [ Grouping.outerjoin_rule ] @ Nestjoinrw.rules

(* Run one rule set to fixpoint and record the phase if it did anything. *)
let run_phase cat name rules e phases =
  Njq_obs.Span.with_span ("phase:" ^ name) (fun () ->
      let e', steps = Rules.fixpoint_simplify cat rules e in
      Njq_obs.Span.add_attr "steps" (Njq_obs.Span.AInt (List.length steps));
      if steps = [] then (e, phases)
      else (e', { phase = name; steps } :: phases))

let rewrite ?(options = default_options) (cat : Catalog.t) (e : Expr.t) : report =
  Njq_obs.Span.with_span "rewrite" @@ fun () ->
  let phases = [] in
  let e0 = Fold.simplify e in
  (* Phase 1+2 loop: relational rewriting and attribute unnesting feed each
     other (unnesting an attribute exposes Rule 1 patterns, and vice
     versa). *)
  let rec relational_loop e phases fuel =
    if fuel = 0 then (e, phases)
    else
      let rules =
        if options.enable_division then relational_rules_with_division
        else relational_rules
      in
      let e1, phases =
        if options.enable_relational then
          run_phase cat "relational" rules e phases
        else (e, phases)
      in
      let e2, phases =
        if options.enable_attr_unnest then
          run_phase cat "attribute-unnest" Attrunnest.rules e1 phases
        else (e1, phases)
      in
      if Expr.equal e2 e then (e2, phases) else relational_loop e2 phases (fuel - 1)
  in
  let e1, phases = relational_loop e0 phases 32 in
  (* Phase 3: grouping-style unnesting (nestjoin / guarded flat join /
     outer join), then another relational pass over what it produced. *)
  let e2, phases =
    if options.enable_grouping then
      let e2, phases =
        run_phase cat "grouping" (grouping_rules options.grouping_mode) e1 phases
      in
      if options.enable_relational && not (Expr.equal e2 e1) then
        let e3, phases = relational_loop e2 phases 32 in
        (e3, phases)
      else (e2, phases)
    else (e1, phases)
  in
  (* Final cleanup: classical algebraic reductions (projection-join
     reduction, pushdowns through unions) that shrink intermediate results
     without changing the unnesting decisions. *)
  let e3, phases = run_phase cat "cleanup" Cleanup.rules e2 phases in
  let output = Fold.simplify e3 in
  { input = e; output; phases = List.rev phases }

(* Convenience: rewritten expression only. *)
let optimize ?options cat e = (rewrite ?options cat e).output

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>input:    %a@," Pretty.pp r.input;
  List.iter
    (fun { phase; steps } ->
      Fmt.pf ppf "— %s —@," phase;
      List.iter (fun s -> Fmt.pf ppf "  %a@," Rules.pp_step s) steps)
    r.phases;
  Fmt.pf ppf "output:   %a@]" Pretty.pp r.output

(* Count of rewrite steps across all phases, used in tests and reports. *)
let step_count (r : report) =
  List.fold_left (fun acc p -> acc + List.length p.steps) 0 r.phases
