(* Set-oriented batching of prepared-query invocations.

   The paper replaces repeated nested-loop invocation of a subquery with
   one set-oriented join; this module replays that move at the traffic
   layer (Guravannavar's batching of repeated procedure/query calls).
   Given a parameterized query e(?0, ..., ?n-1) and K outstanding
   invocations, we form a *parameter table*

     { (__cid = c_k, __p0 = v_k0, ..., __pn-1 = v_kn-1) | k < K }

   and rewrite the K runs into the single nested query

     map[w : (__cid = w.__cid, __rows = e[?i := w.__pi])](params)

   — a correlated subquery over the parameter table, which is exactly the
   shape the Section 4 strategy unnests into joins/nestjoins against the
   plan body.  Splitting the result on __cid routes each client its row
   set; Map totality guarantees every parameter tuple yields exactly one
   result tuple, so no client is ever dropped.

   Everything here is expression-level (no engine dependency): the serve
   layer owns plan caching and splicing of the materialized parameter
   table. *)

open Njq_adl

let cid_field = "__cid"
let rows_field = "__rows"
let param_field i = "__p" ^ string_of_int i

(* 1 + the highest parameter index used (parameters need not be dense;
   unused indexes simply become ignored parameter-table columns). *)
let rec param_count (e : Expr.t) : int =
  match e with
  | Expr.Param i -> i + 1
  | _ -> Expr.fold_children (fun acc c -> max acc (param_count c)) 0 e

let row_type ~nparams : Vtype.t =
  Vtype.tuple
    ((cid_field, Vtype.TInt)
    :: List.init nparams (fun i -> (param_field i, Vtype.TAny)))

(* One parameter-table row.  Callers canonicalize the full table with
   [Value.set]; distinct [cid]s make rows distinct even under equal
   parameter vectors, so no invocation collapses away. *)
let param_row ~cid (values : Value.t list) : Value.t =
  Value.tuple
    ((cid_field, Value.int cid)
    :: List.mapi (fun i v -> (param_field i, v)) values)

(* Bind parameters to constants: the one-at-a-time execution path.
   [Analysis.subst] reaches [Param i] under its free-variable name "?i". *)
let bind (values : Value.t list) (e : Expr.t) : Expr.t =
  Analysis.subst
    (List.mapi (fun i v -> (Expr.param_name i, Expr.Const v)) values)
    e

(* The batched form: a map over the parameter table whose body pairs each
   invocation id with that invocation's full result set.  Downstream, the
   ordinary rewrite strategy unnests the correlated body — the paper's
   nested-loop → join move applied to the invocation batch; if no rule
   fires the map still evaluates correctly as a nested loop. *)
let batched ~params_table ~nparams (e : Expr.t) : Expr.t =
  let w = Expr.fresh_var "pb" in
  let bindings =
    List.init nparams (fun i ->
        (Expr.param_name i, Expr.Field (Expr.Var w, param_field i)))
  in
  Expr.Map
    { var = w;
      body =
        Expr.Tuple
          [ (cid_field, Expr.Field (Expr.Var w, cid_field));
            (rows_field, Analysis.subst bindings e) ];
      src = Expr.Table params_table }

(* Split a batched result into per-invocation results, keyed by cid.
   Each element of the batched set is a (__cid, __rows) pair; __rows is
   already a canonical value, bit-identical to what the unbatched run of
   the same parameters returns. *)
let split (v : Value.t) : (int * Value.t) list =
  match v with
  | Value.VSet rows ->
    List.map
      (fun r -> (Value.as_int (Value.field r cid_field), Value.field r rows_field))
      rows
  | _ -> invalid_arg "Batchrw.split: batched result is not a set"
