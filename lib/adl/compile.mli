(** Compile-once, run-per-tuple parameter expressions.

    [expr cat ~vars e] translates [e] once into an OCaml closure over a
    slot environment: a [Value.t array] whose slot [i] holds the value of
    [List.nth vars i].  Variable references are resolved to array slots at
    compile time, closed subexpressions (uncorrelated subqueries, Section 3)
    are evaluated once and embedded as constants, and iterators mutate a
    single binder slot per element instead of allocating an assoc cell —
    eliminating the per-tuple AST-dispatch and environment-allocation tax
    of {!Eval.eval}.

    Observationally equivalent to the reference evaluator: for every
    environment the closure returns the same value (or raises the same
    exception) as {!Eval.eval}.  Compiled closures do not tick the
    per-tuple ["nl_pred_eval"]/["nl_tuple_visit"] counters — removing that
    per-tuple interpretive work is the point. *)

(** A compiled expression: apply it to the slot environment. *)
type t = Value.t array -> Value.t

(** [expr cat ~vars e] compiles [e] with the free variables [vars] mapped
    to environment slots in order. *)
val expr : Catalog.t -> vars:string list -> Expr.t -> t

(** [pred cat ~vars e] is {!expr} coerced to a boolean result. *)
val pred : Catalog.t -> vars:string list -> Expr.t -> Value.t array -> bool

(** {1 Arity-specialized entry points}

    Closures over one or two values, reusing a preallocated slot buffer
    across calls (safe because compiled closures never retain their
    environment and the engine applies each instance sequentially on one
    domain). *)

val expr1 : Catalog.t -> var:string -> Expr.t -> Value.t -> Value.t
val pred1 : Catalog.t -> var:string -> Expr.t -> Value.t -> bool

(** The first variable shadows the second when the names collide, matching
    the reference environment [(a, va) :: (b, vb) :: []]. *)
val expr2 :
  Catalog.t -> vars:string * string -> Expr.t -> Value.t -> Value.t -> Value.t

val pred2 :
  Catalog.t -> vars:string * string -> Expr.t -> Value.t -> Value.t -> bool

(** {1 Spawners}

    The per-instance slot buffer is what makes a single [expr1]-style
    closure unsafe to share between domains.  A spawner pays compilation
    once and mints a fresh instance (fresh buffer, shared compiled code)
    per call — the engine's parallel operators give each pool domain its
    own instance. *)

val expr1_spawner :
  Catalog.t -> var:string -> Expr.t -> unit -> Value.t -> Value.t

val pred1_spawner : Catalog.t -> var:string -> Expr.t -> unit -> Value.t -> bool

val expr2_spawner :
  Catalog.t ->
  vars:string * string ->
  Expr.t ->
  unit ->
  Value.t ->
  Value.t ->
  Value.t

val pred2_spawner :
  Catalog.t -> vars:string * string -> Expr.t -> unit -> Value.t -> Value.t -> bool

(** {1 Vectorizable predicates}

    The batched executor wants single-variable filter predicates as data:
    a comparison of one row attribute against a constant runs over a
    decoded column buffer with no boxed boolean per row, and And/Or/Not
    combine such kernels.  [vectorize_pred] is total — non-vectorizable
    subtrees become opaque compiled row predicates — and observationally
    equivalent to {!pred1}: same results, same exceptions, same one-time
    evaluation of closed subexpressions. *)

type vpred =
  | VpTrue
  | VpFalse
  | VpCmp of Expr.cmp * string * Value.t
      (** [row.attr CMP constant], operands already oriented *)
  | VpAnd of vpred * vpred
  | VpOr of vpred * vpred  (** right side evaluated only when the left fails *)
  | VpNot of vpred
  | VpOpaque of (Value.t -> bool)  (** compiled fallback, applied per row *)

val vectorize_pred : Catalog.t -> var:string -> Expr.t -> vpred

(** Syntactic (non-evaluating) check: [true] guarantees {!vectorize_pred}
    yields a kernel with no compiled slot buffer — safe to share across
    pool domains.  Parallel batched operators use it to choose between one
    shared kernel and per-domain spawned row predicates. *)
val vectorizable : var:string -> Expr.t -> bool

(** {1 Row makers}

    [expr1_rowmaker cat ~var e] is a fast-path variant of {!expr1} for map
    bodies that are tuple literals with distinct field names: the field
    order is sorted once at compile time and each row builds its field
    list directly through {!Value.of_sorted_fields}, skipping the per-row
    sort inside {!Value.tuple}.  Field expressions evaluate in sorted-name
    order rather than source order.  [None] when the body is not such a
    literal (or is closed); callers fall back to {!expr1}. *)
val expr1_rowmaker :
  Catalog.t -> var:string -> Expr.t -> (Value.t -> Value.t) option
