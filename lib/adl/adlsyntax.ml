(* A textual (ASCII) syntax for ADL expressions, with a writer and a
   parser that round-trip: [of_string (to_string e) = e].

   The concrete syntax mirrors the paper's notation with ASCII keywords:

     @NAME                         base table (class extent)
     x                             variable
     ?0  ?1  ...                   prepared-query parameter placeholders
     42  4.2  "s"  #3  d940101    literals (as in Serialize)
     true  false  null
     (a = e, ...)                  tuple construction
     {e, ...}                      set literal
     e.a    e[a,b]                 field / tuple subscription
     except(e; a = e1, ...)        tuple update/extend
     concat(e1, e2)                tuple concatenation
     select[x : p](e)              sigma
     map[x : b](e)                 alpha
     project[a,b](e)               pi
     flatten(e) union(e,e) inter(e,e) diff(e,e) product(e,e) divide(e,e)
     join[x,y : p](l, r)  semijoin[...]  antijoin[...]
     outerjoin[pad a,b; x,y : p](l, r)
     nestjoin[x,y : p ; attr g](l, r)
     nestjoin[x,y : p ; attr g ; body e](l, r)
     unnest[a](e)    nest[a,b -> g](e)
     deref[NAME](e)
     count(e) sum(e) min(e) max(e) avg(e)
     exists x in e : p    forall x in e : p
     if p then e1 else e2
     comparisons = <> < <= > >=; set comparisons in, notin, subseteq,
     subset, supseteq, supset, seteq, setneq, ni, notni; and, or, not;
     arithmetic + - * / %.

   Operator precedence matches [Pretty]'s and OOSQL's: or < and < not <
   comparisons < additive < multiplicative < postfix < primary. *)

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* The concrete syntax cannot distinguish a constant set/tuple from a
   [SetLit]/[Tuple] node whose parts are all constants (both print as
   {1, 2} / (a = 1)).  The parser therefore returns the [Const] form for
   such literals, and [canon] maps any expression to that canonical
   choice; round-tripping satisfies [of_string (to_string e) = canon e]. *)
let rec canon (e : Expr.t) : Expr.t =
  let e = Expr.map_children canon e in
  match e with
  | Expr.SetLit elems ->
    let consts =
      List.filter_map
        (function Expr.Const v -> Some v | _ -> None)
        elems
    in
    if List.length consts = List.length elems then
      Expr.Const (Value.set consts)
    else e
  | Expr.Tuple fields ->
    let consts =
      List.filter_map
        (fun (n, fe) ->
          match fe with Expr.Const v -> Some (n, v) | _ -> None)
        fields
    in
    if List.length consts = List.length fields then
      Expr.Const (Value.tuple consts)
    else e
  | _ -> e

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

open Expr

let setcmp_keyword = function
  | Mem -> "in" | NotMem -> "notin"
  | SubsetEq -> "subseteq" | Subset -> "subset"
  | SupsetEq -> "supseteq" | Supset -> "supset"
  | SetEq -> "seteq" | SetNeq -> "setneq"
  | Ni -> "ni" | NotNi -> "notni"

let cmp_token = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let arith_token = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"

let agg_keyword = function
  | Count -> "count" | Sum -> "sum" | Min -> "min" | Max -> "max" | Avg -> "avg"

(* Precedence levels for parenthesization (loosest first). *)
let level = function
  | Or _ -> 1
  | And _ -> 2
  | Not _ | Quant _ -> 3
  | Cmp _ | SetCmp _ -> 4
  | Arith ((Add | Sub), _, _) -> 5
  | Arith ((Mul | Div | Mod), _, _) -> 6
  | Field _ | TupleProj _ -> 8
  | _ -> 9

let rec write buf ctx e =
  let lv = level e in
  if lv < ctx then begin
    Buffer.add_char buf '(';
    write buf 0 e;
    Buffer.add_char buf ')'
  end
  else
    match e with
    | Const v -> Buffer.add_string buf (Serialize.value_to_string v)
    | Var x -> Buffer.add_string buf x
    | Param i ->
      Buffer.add_char buf '?';
      Buffer.add_string buf (string_of_int i)
    | Table t ->
      Buffer.add_char buf '@';
      Buffer.add_string buf t
    | Tuple fields ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i (n, fe) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf n;
          Buffer.add_string buf " = ";
          write buf 0 fe)
        fields;
      Buffer.add_char buf ')'
    | SetLit elems ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i ee ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf 0 ee)
        elems;
      Buffer.add_char buf '}'
    | Field (x, a) ->
      write buf 8 x;
      Buffer.add_char buf '.';
      Buffer.add_string buf a
    | TupleProj (x, attrs) ->
      write buf 8 x;
      Buffer.add_char buf '[';
      Buffer.add_string buf (String.concat "," attrs);
      Buffer.add_char buf ']'
    | Except (x, updates) ->
      Buffer.add_string buf "except(";
      write buf 0 x;
      List.iter
        (fun (n, u) ->
          Buffer.add_string buf "; ";
          Buffer.add_string buf n;
          Buffer.add_string buf " = ";
          write buf 0 u)
        updates;
      Buffer.add_char buf ')'
    | Concat (a, b) -> write_call2 buf "concat" a b
    | Arith (op, a, b) ->
      write buf lv a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (arith_token op);
      Buffer.add_char buf ' ';
      write buf (lv + 1) b
    | Cmp (op, a, b) ->
      write buf (lv + 1) a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (cmp_token op);
      Buffer.add_char buf ' ';
      write buf (lv + 1) b
    | SetCmp (op, a, b) ->
      write buf (lv + 1) a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (setcmp_keyword op);
      Buffer.add_char buf ' ';
      write buf (lv + 1) b
    | And (a, b) ->
      write buf lv a;
      Buffer.add_string buf " and ";
      write buf (lv + 1) b
    | Or (a, b) ->
      write buf lv a;
      Buffer.add_string buf " or ";
      write buf (lv + 1) b
    | Not a ->
      Buffer.add_string buf "not ";
      write buf (lv + 1) a
    | If (c, a, b) ->
      Buffer.add_string buf "if ";
      write buf 1 c;
      Buffer.add_string buf " then ";
      write buf 1 a;
      Buffer.add_string buf " else ";
      write buf 1 b
    | Quant (q, x, range, pred) ->
      Buffer.add_string buf (match q with Exists -> "exists " | Forall -> "forall ");
      Buffer.add_string buf x;
      Buffer.add_string buf " in ";
      write buf 4 range;
      Buffer.add_string buf " : ";
      write buf 3 pred
    | Map { var; body; src } -> write_iter buf "map" var body src
    | Select { var; pred; src } -> write_iter buf "select" var pred src
    | Project (attrs, src) ->
      Buffer.add_string buf "project[";
      Buffer.add_string buf (String.concat "," attrs);
      Buffer.add_string buf "](";
      write buf 0 src;
      Buffer.add_char buf ')'
    | Flatten src ->
      Buffer.add_string buf "flatten(";
      write buf 0 src;
      Buffer.add_char buf ')'
    | Union (a, b) -> write_call2 buf "union" a b
    | Inter (a, b) -> write_call2 buf "inter" a b
    | Diff (a, b) -> write_call2 buf "diff" a b
    | Product (a, b) -> write_call2 buf "product" a b
    | Divide (a, b) -> write_call2 buf "divide" a b
    | Join { kind; xvar; yvar; pred; left; right } ->
      let name, pad =
        match kind with
        | Inner -> ("join", None)
        | Semi -> ("semijoin", None)
        | Anti -> ("antijoin", None)
        | LeftOuter pad -> ("outerjoin", Some pad)
      in
      Buffer.add_string buf name;
      Buffer.add_char buf '[';
      (match pad with
       | Some attrs ->
         Buffer.add_string buf "pad ";
         Buffer.add_string buf (String.concat "," attrs);
         Buffer.add_string buf "; "
       | None -> ());
      Buffer.add_string buf xvar;
      Buffer.add_char buf ',';
      Buffer.add_string buf yvar;
      Buffer.add_string buf " : ";
      write buf 0 pred;
      Buffer.add_string buf "](";
      write buf 0 left;
      Buffer.add_string buf ", ";
      write buf 0 right;
      Buffer.add_char buf ')'
    | Nestjoin { xvar; yvar; pred; body; attr; left; right } ->
      Buffer.add_string buf "nestjoin[";
      Buffer.add_string buf xvar;
      Buffer.add_char buf ',';
      Buffer.add_string buf yvar;
      Buffer.add_string buf " : ";
      write buf 0 pred;
      Buffer.add_string buf " ; attr ";
      Buffer.add_string buf attr;
      (match body with
       | Var v when String.equal v yvar -> ()
       | _ ->
         Buffer.add_string buf " ; body ";
         write buf 0 body);
      Buffer.add_string buf "](";
      write buf 0 left;
      Buffer.add_string buf ", ";
      write buf 0 right;
      Buffer.add_char buf ')'
    | Rename (pairs, src) ->
      Buffer.add_string buf "rename[";
      List.iteri
        (fun i (o, n) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf o;
          Buffer.add_string buf " -> ";
          Buffer.add_string buf n)
        pairs;
      Buffer.add_string buf "](";
      write buf 0 src;
      Buffer.add_char buf ')'
    | Unnest (a, src) ->
      Buffer.add_string buf "unnest[";
      Buffer.add_string buf a;
      Buffer.add_string buf "](";
      write buf 0 src;
      Buffer.add_char buf ')'
    | Nest { attrs; into; src } ->
      Buffer.add_string buf "nest[";
      Buffer.add_string buf (String.concat "," attrs);
      Buffer.add_string buf " -> ";
      Buffer.add_string buf into;
      Buffer.add_string buf "](";
      write buf 0 src;
      Buffer.add_char buf ')'
    | Agg (op, src) ->
      Buffer.add_string buf (agg_keyword op);
      Buffer.add_char buf '(';
      write buf 0 src;
      Buffer.add_char buf ')'
    | Deref (cls, x) ->
      Buffer.add_string buf "deref[";
      Buffer.add_string buf cls;
      Buffer.add_string buf "](";
      write buf 0 x;
      Buffer.add_char buf ')'

and write_call2 buf name a b =
  Buffer.add_string buf name;
  Buffer.add_char buf '(';
  write buf 0 a;
  Buffer.add_string buf ", ";
  write buf 0 b;
  Buffer.add_char buf ')'

and write_iter buf name var param src =
  Buffer.add_string buf name;
  Buffer.add_char buf '[';
  Buffer.add_string buf var;
  Buffer.add_string buf " : ";
  write buf 0 param;
  Buffer.add_string buf "](";
  write buf 0 src;
  Buffer.add_char buf ')'

let to_string e =
  let buf = Buffer.create 128 in
  write buf 0 e;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser (character-level recursive descent over a cursor)            *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable i : int }

let peek c = if c.i < String.length c.src then Some c.src.[c.i] else None

let peek_at c k =
  if c.i + k < String.length c.src then Some c.src.[c.i + k] else None

let advance c = c.i <- c.i + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C, found %C at offset %d" ch x c.i
  | None -> fail "expected %C at end of input" ch

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident_char ch = is_ident_start ch || is_digit ch

let read_ident c =
  skip_ws c;
  let start = c.i in
  (match peek c with
   | Some ch when is_ident_start ch -> advance c
   | _ -> fail "expected an identifier at offset %d" c.i);
  let rec go () =
    match peek c with
    | Some ch when is_ident_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  String.sub c.src start (c.i - start)

(* Lookahead: does an identifier starting here equal [word]? *)
let looking_at_word c word =
  skip_ws c;
  let n = String.length word in
  let fits = c.i + n <= String.length c.src in
  fits
  && String.sub c.src c.i n = word
  && (match peek_at c n with
      | Some ch -> not (is_ident_char ch)
      | None -> true)

let eat_word c word =
  if looking_at_word c word then begin
    c.i <- c.i + String.length word;
    true
  end
  else false

let ident_list c =
  let rec go acc =
    let a = read_ident c in
    skip_ws c;
    if peek c = Some ',' then begin
      advance c;
      go (a :: acc)
    end
    else List.rev (a :: acc)
  in
  go []

let setcmp_words =
  [ ("in", Mem); ("notin", NotMem); ("subseteq", SubsetEq); ("subset", Subset);
    ("supseteq", SupsetEq); ("supset", Supset); ("seteq", SetEq);
    ("setneq", SetNeq); ("ni", Ni); ("notni", NotNi) ]

let rec parse_or c =
  let rec loop lhs =
    if eat_word c "or" then loop (Or (lhs, parse_and c)) else lhs
  in
  loop (parse_and c)

and parse_and c =
  let rec loop lhs =
    if eat_word c "and" then loop (And (lhs, parse_not c)) else lhs
  in
  loop (parse_not c)

and parse_not c =
  if eat_word c "not" then Not (parse_not c) else parse_cmp c

and parse_cmp c =
  let lhs = parse_add c in
  skip_ws c;
  match peek c with
  | Some '=' ->
    advance c;
    Cmp (Eq, lhs, parse_add c)
  | Some '<' ->
    advance c;
    (match peek c with
     | Some '>' ->
       advance c;
       Cmp (Neq, lhs, parse_add c)
     | Some '=' ->
       advance c;
       Cmp (Le, lhs, parse_add c)
     | _ -> Cmp (Lt, lhs, parse_add c))
  | Some '>' ->
    advance c;
    (match peek c with
     | Some '=' ->
       advance c;
       Cmp (Ge, lhs, parse_add c)
     | _ -> Cmp (Gt, lhs, parse_add c))
  | _ ->
    let rec try_words = function
      | [] -> lhs
      | (w, op) :: rest ->
        if eat_word c w then SetCmp (op, lhs, parse_add c) else try_words rest
    in
    try_words setcmp_words

and parse_add c =
  let rec loop lhs =
    skip_ws c;
    match peek c with
    | Some '+' ->
      advance c;
      loop (Arith (Add, lhs, parse_mul c))
    | Some '-' when peek_at c 1 <> Some '>' ->
      advance c;
      loop (Arith (Sub, lhs, parse_mul c))
    | _ -> lhs
  in
  loop (parse_mul c)

and parse_mul c =
  let rec loop lhs =
    skip_ws c;
    match peek c with
    | Some '*' ->
      advance c;
      loop (Arith (Mul, lhs, parse_postfix c))
    | Some '/' ->
      advance c;
      loop (Arith (Div, lhs, parse_postfix c))
    | Some '%' ->
      advance c;
      loop (Arith (Mod, lhs, parse_postfix c))
    | _ -> lhs
  in
  loop (parse_postfix c)

and parse_postfix c =
  let e = parse_primary c in
  let rec loop e =
    skip_ws c;
    match peek c with
    | Some '.' when (match peek_at c 1 with
                     | Some ch -> is_ident_start ch
                     | None -> false) ->
      advance c;
      loop (Field (e, read_ident c))
    | Some '[' ->
      advance c;
      let attrs = ident_list c in
      expect c ']';
      loop (TupleProj (e, attrs))
    | _ -> e
  in
  loop e

and parse_primary c =
  skip_ws c;
  match peek c with
  | None -> fail "expected an expression at end of input"
  | Some '@' ->
    advance c;
    Table (read_ident c)
  | Some '?' ->
    advance c;
    let start = c.i in
    let rec digits () =
      match peek c with
      | Some ch when is_digit ch ->
        advance c;
        digits ()
      | _ -> ()
    in
    digits ();
    if c.i = start then fail "expected a parameter index after '?' at offset %d" c.i;
    Param (int_of_string (String.sub c.src start (c.i - start)))
  | Some '(' ->
    advance c;
    skip_ws c;
    (* tuple constructor vs grouping: IDENT '=' (but not '==') means tuple;
       ')' means the empty tuple *)
    if peek c = Some ')' then begin
      advance c;
      Const (Value.tuple [])
    end
    else begin
      let save = c.i in
      let is_tuple =
        match peek c with
        | Some ch when is_ident_start ch ->
          let _ = read_ident c in
          skip_ws c;
          let r = peek c = Some '=' in
          c.i <- save;
          r
        | _ -> false
      in
      if is_tuple then begin
        let rec fields acc =
          let n = read_ident c in
          expect c '=';
          let v = parse_or c in
          skip_ws c;
          match peek c with
          | Some ',' ->
            advance c;
            fields ((n, v) :: acc)
          | Some ')' ->
            advance c;
            List.rev ((n, v) :: acc)
          | _ -> fail "expected ',' or ')' in tuple at offset %d" c.i
        in
        canon (Tuple (fields []))
      end
      else begin
        let e = parse_or c in
        expect c ')';
        e
      end
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Const Value.empty_set
    end
    else begin
      let rec elems acc =
        let e = parse_or c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (e :: acc)
        | Some '}' ->
          advance c;
          List.rev (e :: acc)
        | _ -> fail "expected ',' or '}' in set at offset %d" c.i
      in
      canon (SetLit (elems []))
    end
  | Some ('"' | '#' | '-') -> parse_const c
  | Some ch when is_digit ch -> parse_const c
  | Some 'd'
    when (match peek_at c 1 with Some ch -> is_digit ch | None -> false) ->
    parse_const c
  | Some ch when is_ident_start ch -> parse_keyword_or_var c
  | Some ch -> fail "unexpected character %C at offset %d" ch c.i

and parse_const c =
  (* Delegate literals (numbers, strings, oids, dates) to the Serialize
     value reader on the remaining input. *)
  let rest = String.sub c.src c.i (String.length c.src - c.i) in
  match Serialize.read_value_prefix rest with
  | v, consumed ->
    c.i <- c.i + consumed;
    Const v
  | exception Serialize.Parse_error msg -> fail "bad literal: %s" msg

and parse_keyword_or_var c =
  let kw_call1 name k =
    if eat_word c name then begin
      expect c '(';
      let e = parse_or c in
      expect c ')';
      Some (k e)
    end
    else None
  in
  let kw_call2 name k =
    if eat_word c name then begin
      expect c '(';
      let a = parse_or c in
      expect c ',';
      let b = parse_or c in
      expect c ')';
      Some (k a b)
    end
    else None
  in
  let try_rules =
    [ (fun () -> kw_call1 "flatten" (fun e -> Flatten e));
      (fun () -> kw_call1 "count" (fun e -> Agg (Count, e)));
      (fun () -> kw_call1 "sum" (fun e -> Agg (Sum, e)));
      (fun () -> kw_call1 "min" (fun e -> Agg (Min, e)));
      (fun () -> kw_call1 "max" (fun e -> Agg (Max, e)));
      (fun () -> kw_call1 "avg" (fun e -> Agg (Avg, e)));
      (fun () -> kw_call2 "union" (fun a b -> Union (a, b)));
      (fun () -> kw_call2 "inter" (fun a b -> Inter (a, b)));
      (fun () -> kw_call2 "diff" (fun a b -> Diff (a, b)));
      (fun () -> kw_call2 "product" (fun a b -> Product (a, b)));
      (fun () -> kw_call2 "divide" (fun a b -> Divide (a, b)));
      (fun () -> kw_call2 "concat" (fun a b -> Concat (a, b))) ]
  in
  let rec first = function
    | [] -> None
    | f :: rest -> (match f () with Some e -> Some e | None -> first rest)
  in
  match first try_rules with
  | Some e -> e
  | None ->
    if eat_word c "true" then true_
    else if eat_word c "false" then false_
    else if eat_word c "null" then Const Value.VNull
    else if eat_word c "select" then parse_iter c (fun var pred src ->
        Select { var; pred; src })
    else if eat_word c "map" then parse_iter c (fun var body src ->
        Map { var; body; src })
    else if eat_word c "project" then begin
      expect c '[';
      let attrs = ident_list c in
      expect c ']';
      expect c '(';
      let src = parse_or c in
      expect c ')';
      Project (attrs, src)
    end
    else if eat_word c "rename" then begin
      expect c '[';
      let rec pairs acc =
        let o = read_ident c in
        skip_ws c;
        expect c '-';
        expect c '>';
        let n = read_ident c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          pairs ((o, n) :: acc)
        | _ -> List.rev ((o, n) :: acc)
      in
      let ps = pairs [] in
      expect c ']';
      expect c '(';
      let src = parse_or c in
      expect c ')';
      Rename (ps, src)
    end
    else if eat_word c "unnest" then begin
      expect c '[';
      let a = read_ident c in
      expect c ']';
      expect c '(';
      let src = parse_or c in
      expect c ')';
      Unnest (a, src)
    end
    else if eat_word c "nest" then begin
      expect c '[';
      let attrs = ident_list c in
      skip_ws c;
      expect c '-';
      expect c '>';
      let into = read_ident c in
      expect c ']';
      expect c '(';
      let src = parse_or c in
      expect c ')';
      Nest { attrs; into; src }
    end
    else if eat_word c "deref" then begin
      expect c '[';
      let cls = read_ident c in
      expect c ']';
      expect c '(';
      let x = parse_or c in
      expect c ')';
      Deref (cls, x)
    end
    else if eat_word c "join" then parse_join c Inner
    else if eat_word c "semijoin" then parse_join c Semi
    else if eat_word c "antijoin" then parse_join c Anti
    else if eat_word c "outerjoin" then begin
      expect c '[';
      if not (eat_word c "pad") then fail "expected 'pad' in outerjoin";
      let pad = ident_list c in
      expect c ';';
      parse_join_tail c (LeftOuter pad)
    end
    else if eat_word c "nestjoin" then parse_nestjoin c
    else if eat_word c "exists" then parse_quant c Exists
    else if eat_word c "forall" then parse_quant c Forall
    else if eat_word c "except" then begin
      expect c '(';
      let x = parse_or c in
      let rec updates acc =
        skip_ws c;
        match peek c with
        | Some ';' ->
          advance c;
          let n = read_ident c in
          expect c '=';
          let v = parse_or c in
          updates ((n, v) :: acc)
        | Some ')' ->
          advance c;
          List.rev acc
        | _ -> fail "expected ';' or ')' in except at offset %d" c.i
      in
      Except (x, updates [])
    end
    else if eat_word c "if" then begin
      let cond = parse_or c in
      if not (eat_word c "then") then fail "expected 'then'";
      let a = parse_or c in
      if not (eat_word c "else") then fail "expected 'else'";
      let b = parse_or c in
      If (cond, a, b)
    end
    else Var (read_ident c)

and parse_iter c k =
  expect c '[';
  let var = read_ident c in
  expect c ':';
  let param = parse_or c in
  expect c ']';
  expect c '(';
  let src = parse_or c in
  expect c ')';
  k var param src

and parse_join c kind =
  expect c '[';
  parse_join_tail c kind

and parse_join_tail c kind =
  let xvar = read_ident c in
  expect c ',';
  let yvar = read_ident c in
  expect c ':';
  let pred = parse_or c in
  expect c ']';
  expect c '(';
  let left = parse_or c in
  expect c ',';
  let right = parse_or c in
  expect c ')';
  Join { kind; xvar; yvar; pred; left; right }

and parse_nestjoin c =
  expect c '[';
  let xvar = read_ident c in
  expect c ',';
  let yvar = read_ident c in
  expect c ':';
  let pred = parse_or c in
  expect c ';';
  if not (eat_word c "attr") then fail "expected 'attr' in nestjoin";
  let attr = read_ident c in
  skip_ws c;
  let body =
    if peek c = Some ';' then begin
      advance c;
      if not (eat_word c "body") then fail "expected 'body' in nestjoin";
      parse_or c
    end
    else Var yvar
  in
  expect c ']';
  expect c '(';
  let left = parse_or c in
  expect c ',';
  let right = parse_or c in
  expect c ')';
  Nestjoin { xvar; yvar; pred; body; attr; left; right }

and parse_quant c q =
  let x = read_ident c in
  if not (eat_word c "in") then fail "expected 'in' after quantifier variable";
  let range = parse_cmp c in
  expect c ':';
  let pred = parse_not c in
  Quant (q, x, range, pred)

let of_string s =
  let c = { src = s; i = 0 } in
  let e = parse_or c in
  skip_ws c;
  if c.i < String.length s then
    fail "trailing input after expression at offset %d" c.i;
  e
