(* Complex-object values for the ADL algebra.

   The value domain follows the paper's data model: atomic values (integers,
   floats, strings, booleans, dates), object identifiers of the basic type
   [oid], and the tuple and set constructors, closed under arbitrary nesting.
   [VNull] exists only to support the outer-join variant of unnesting by
   grouping discussed in Section 5.2.2 of the paper; no OOSQL query or
   generator produces it directly.

   Invariants (enforced by the smart constructors [tuple] and [set]):
   - tuple fields are sorted by field name and field names are distinct;
   - sets are sorted under [compare] with duplicates removed.
   Thanks to these invariants, structural equality coincides with set/tuple
   semantic equality, which the rewrite-soundness property tests rely on. *)

type t =
  | VNull
  | VBool of bool
  | VInt of int
  | VFloat of float
  | VString of string
  | VDate of int (* yyyymmdd *)
  | VOid of int
  | VTuple of (string * t) list
  | VSet of t list

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

(* Rank used to order values of different shapes; any total order works as
   long as it is fixed, because it only serves set canonicalization. *)
let rank = function
  | VNull -> 0
  | VBool _ -> 1
  | VInt _ -> 2
  | VFloat _ -> 3
  | VString _ -> 4
  | VDate _ -> 5
  | VOid _ -> 6
  | VTuple _ -> 7
  | VSet _ -> 8

let rec compare a b =
  match a, b with
  | VNull, VNull -> 0
  | VBool x, VBool y -> Bool.compare x y
  | VInt x, VInt y -> Int.compare x y
  | VFloat x, VFloat y -> Float.compare x y
  | VString x, VString y -> String.compare x y
  | VDate x, VDate y -> Int.compare x y
  | VOid x, VOid y -> Int.compare x y
  | VTuple xs, VTuple ys -> compare_fields xs ys
  | VSet xs, VSet ys -> compare_lists xs ys
  | _ -> Int.compare (rank a) (rank b)

and compare_fields xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (n1, v1) :: xs', (n2, v2) :: ys' ->
    let c = String.compare n1 n2 in
    if c <> 0 then c
    else
      let c = compare v1 v2 in
      if c <> 0 then c else compare_fields xs' ys'

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0

(* Structural hashing.

   [hash] is a full-depth hash consistent with [equal] (unlike
   [Stdlib.Hashtbl.hash], whose traversal limits make rows with long common
   prefixes collide).  Because deep hashing of set-valued attributes is the
   expensive part and rows flowing through the physical engine share their
   set values physically, hashes of [VSet] nodes are memoized, keyed on
   physical identity: re-hashing a shared set is a bounded-depth slot
   lookup instead of a full traversal.

   The memo is a fixed-size direct-mapped cache (slot chosen by the
   bounded-depth [Stdlib.Hashtbl.hash]; a colliding insert overwrites).
   An ephemeron table is the tempting alternative, but it degrades
   catastrophically under server-style workloads: each prepared-query
   execution builds fresh sets structurally identical to the previous
   execution's, so every generation lands in the *same* ephemeron buckets
   (bucket choice is structural, entry identity is physical), the entries
   are promoted to the major heap by the ephemeron store and only swept at
   rare resize-triggered cleans, and every lookup walks the whole
   accumulated chain — per-execution cost grows linearly with the number
   of executions served.  The direct-mapped cache is O(1) regardless of
   history: a stream of fresh sets just keeps overwriting slots, while the
   intended hit case (the same physical set hashed again moments later,
   e.g. as a hash-join key) still hits its slot.  A slot pins its set
   until overwritten; with a fixed slot count that retention is bounded.

   The cache is *domain-local* ([Domain.DLS]): the engine's parallel
   operators hash values from pool domains, and a single global cache
   would be a data race the moment two domains touch it.  Each domain
   memoizes independently — the hash function is pure, so the caches can
   only ever disagree about what is cached, never about a hash. *)

let hash_combine acc h = (acc * 31) + h

(* 4096 slots; each holds (set, its full-depth hash). *)
let hash_cache_bits = 12
let hash_cache_size = 1 lsl hash_cache_bits

let hash_cache_key : (t * int) option array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make hash_cache_size None)

let rec hash v =
  match v with
  | VSet _ ->
    let cache = Domain.DLS.get hash_cache_key in
    let slot = Stdlib.Hashtbl.hash v land (hash_cache_size - 1) in
    (match cache.(slot) with
     | Some (v', h) when v' == v -> h
     | _ ->
       let h = hash_node v in
       cache.(slot) <- Some (v, h);
       h)
  | _ -> hash_node v

and hash_node = function
  | VNull -> 17
  | VBool b -> if b then 19 else 23
  | VInt n -> hash_combine 29 n
  | VFloat f ->
    (* All NaNs compare equal under [Float.compare], so they must hash
       alike regardless of payload bits. *)
    hash_combine 31 (if Float.is_nan f then 0 else Stdlib.Hashtbl.hash f)
  | VString s -> hash_combine 37 (Stdlib.Hashtbl.hash s)
  | VDate d -> hash_combine 41 d
  | VOid n -> hash_combine 43 n
  | VTuple fs ->
    List.fold_left
      (fun acc (n, x) ->
        hash_combine (hash_combine acc (Stdlib.Hashtbl.hash n)) (hash x))
      47 fs
  | VSet xs -> List.fold_left (fun acc x -> hash_combine acc (hash x)) 53 xs

(* Smart constructors *)

let tuple fields =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then type_error "duplicate tuple field %s" a else check rest
    | _ -> ()
  in
  check sorted;
  VTuple sorted

let set elements =
  let sorted = List.sort_uniq compare elements in
  VSet sorted

let empty_set = VSet []

let bool b = VBool b
let int n = VInt n
let float f = VFloat f
let string s = VString s
let date d = VDate d
let oid n = VOid n

(* Accessors *)

let as_bool = function
  | VBool b -> b
  | v -> type_error "expected bool, got rank %d" (rank v)

let as_int = function
  | VInt n -> n
  | v -> type_error "expected int, got rank %d" (rank v)

let as_set = function
  | VSet xs -> xs
  | v -> type_error "expected set, got rank %d" (rank v)

let as_tuple = function
  | VTuple fs -> fs
  | v -> type_error "expected tuple, got rank %d" (rank v)

let as_oid = function
  | VOid n -> n
  | v -> type_error "expected oid, got rank %d" (rank v)

let is_null = function VNull -> true | _ -> false

(* [field v a] is the paper's tuple subscription for a single attribute. *)
let field v a =
  match v with
  | VTuple fs ->
    (match List.assoc_opt a fs with
     | Some x -> x
     | None -> type_error "tuple has no field %s" a)
  | _ -> type_error "field %s selected from non-tuple" a

let has_field v a =
  match v with
  | VTuple fs -> List.mem_assoc a fs
  | _ -> false

let field_names v =
  match v with
  | VTuple fs -> List.map fst fs
  | _ -> type_error "field_names of non-tuple"

(* Tuple subscription e[a1,...,an] (semantics item 2). *)
let project v attrs =
  let fs = as_tuple v in
  let picked =
    List.map
      (fun a ->
        match List.assoc_opt a fs with
        | Some x -> (a, x)
        | None -> type_error "projection: missing field %s" a)
      attrs
  in
  tuple picked

(* Trusted variant of [tuple] for the engine's batch fast paths: the caller
   guarantees the fields are already sorted by name and duplicate-free, so
   no per-row sort or duplicate check runs.  Violating the invariant breaks
   canonical equality — only construct from inputs whose order was
   established once per operator (e.g. a compiled row-maker). *)
let of_sorted_fields fields = VTuple fields

(* [project] for attribute lists already sorted and duplicate-free: a single
   merge walk over the (sorted) tuple fields, no per-row [List.assoc] scans
   and no re-sort in [tuple].  The missing-field error reports the first
   missing attribute in sorted order (callers that must reproduce
   [project]'s source-order message fall back to it on failure). *)
let project_sorted v attrs =
  let fs = as_tuple v in
  let rec go attrs fs =
    match attrs, fs with
    | [], _ -> []
    | a :: _, [] -> type_error "projection: missing field %s" a
    | a :: attrs', (n, x) :: fs' ->
      let c = String.compare n a in
      if c < 0 then go attrs fs'
      else if c = 0 then (n, x) :: go attrs' fs'
      else type_error "projection: missing field %s" a
  in
  VTuple (go attrs fs)

(* Tuple subscription dropping attributes instead of keeping them. *)
let project_away v attrs =
  let fs = as_tuple v in
  tuple (List.filter (fun (a, _) -> not (List.mem a attrs)) fs)

(* Tuple concatenation, the paper's o operator.  Fields must be disjoint. *)
let concat a b =
  let fa = as_tuple a and fb = as_tuple b in
  List.iter
    (fun (n, _) ->
      if List.mem_assoc n fa then type_error "tuple concat: duplicate field %s" n)
    fb;
  tuple (fa @ fb)

(* The paper's except operator (semantics item 3): updates existing fields
   and/or extends the tuple with new ones. *)
let except v updates =
  let fs = as_tuple v in
  let updated =
    List.map
      (fun (n, old) ->
        match List.assoc_opt n updates with Some x -> (n, x) | None -> (n, old))
      fs
  in
  let added = List.filter (fun (n, _) -> not (List.mem_assoc n fs)) updates in
  tuple (updated @ added)

(* Set operations; operands are canonical so merge-style code would work,
   but sizes here do not warrant it. *)
let union a b = set (as_set a @ as_set b)

let inter a b =
  let ys = as_set b in
  set (List.filter (fun x -> List.exists (equal x) ys) (as_set a))

let diff a b =
  let ys = as_set b in
  set (List.filter (fun x -> not (List.exists (equal x) ys)) (as_set a))

let mem x s = List.exists (equal x) (as_set s)

let subset_eq a b =
  let ys = as_set b in
  List.for_all (fun x -> List.exists (equal x) ys) (as_set a)

let subset a b = subset_eq a b && not (equal a b)

let set_size s = List.length (as_set s)

(* Multiple union: the paper's flatten (semantics item 1). *)
let flatten s = set (List.concat_map as_set (as_set s))

(* Pretty-printing in the paper's notation: tuples as (a = v, ...), sets as
   {v1, v2, ...}. *)
let rec pp ppf = function
  | VNull -> Fmt.string ppf "NULL"
  | VBool b -> Fmt.bool ppf b
  | VInt n -> Fmt.int ppf n
  | VFloat f -> Fmt.float ppf f
  | VString s -> Fmt.pf ppf "%S" s
  | VDate d -> Fmt.pf ppf "d%d" d
  | VOid n -> Fmt.pf ppf "#%d" n
  | VTuple fs ->
    Fmt.pf ppf "(@[%a@])" (Fmt.list ~sep:Fmt.comma pp_field) fs
  | VSet xs -> Fmt.pf ppf "{@[%a@]}" (Fmt.list ~sep:Fmt.comma pp) xs

and pp_field ppf (n, v) = Fmt.pf ppf "%s = %a" n pp v

let show v = Fmt.str "%a" pp v
