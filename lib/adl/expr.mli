(** The ADL complex-object algebra (paper Section 3).

    Constructors cover the paper's full operator list — flatten, tuple
    subscription, except, map (α), selection (σ), projection (π), unnest
    (μ), nest (ν), Cartesian product, the join family (⋈, ⋉, ▷, left outer
    join), the Section 6 nestjoin (⊣), division, set operations,
    quantifiers, set comparisons, aggregate functions and the deref form of
    the materialize operator.  Iterators ([Map], [Select], joins, [Quant])
    bind variables in their parameter expressions. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

(** Set comparison operators of Section 5.2.  [Ni] is the paper's ∋:
    [SetCmp (Ni, s, x)] holds when [x] is an element of the set [s]. *)
type setcmp =
  | Mem
  | NotMem
  | SubsetEq
  | Subset  (** proper *)
  | SupsetEq
  | Supset  (** proper *)
  | SetEq
  | SetNeq
  | Ni
  | NotNi

type arith = Add | Sub | Mul | Div | Mod
type agg = Count | Sum | Min | Max | Avg
type quant = Exists | Forall

(** [LeftOuter pad] pads dangling left tuples with NULLs on the attributes
    [pad] (the right-hand schema) — the outer-join repair of Section
    5.2.2. *)
type join_kind = Inner | Semi | Anti | LeftOuter of string list

type t =
  | Const of Value.t
  | Var of string
  | Param of int
      (** Prepared-query placeholder [?i].  Behaves as a free variable named
          ["?i"] until bound: {!Analysis.free_vars} reports it, so no pass
          constant-folds across it; binding substitutes a [Const] (one-shot)
          or a parameter-table field (batched). *)
  | Table of string  (** base table (class extent) *)
  | Tuple of (string * t) list
  | Field of t * string
  | TupleProj of t * string list  (** e[a1,...,an] *)
  | Except of t * (string * t) list
  | Concat of t * t  (** tuple concatenation ∘ *)
  | SetLit of t list
  | Arith of arith * t * t
  | Cmp of cmp * t * t
  | SetCmp of setcmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | If of t * t * t
  | Quant of quant * string * t * t  (** [Quant (q, x, range, pred)] *)
  | Map of { var : string; body : t; src : t }  (** α[x : body](src) *)
  | Select of { var : string; pred : t; src : t }  (** σ[x : pred](src) *)
  | Project of string list * t  (** π *)
  | Flatten of t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Product of t * t
  | Join of
      { kind : join_kind; xvar : string; yvar : string; pred : t;
        left : t; right : t }
  | Nestjoin of
      { xvar : string; yvar : string; pred : t; body : t; attr : string;
        left : t; right : t }
      (** Extended nestjoin: each left tuple is concatenated with
          [(attr = {body(x,y) | y ∈ right, pred(x,y)})].  The simple
          nestjoin of Definition 1 has [body = Var yvar]. *)
  | Rename of (string * string) list * t
      (** ρ_(old→new, ...): rename top-level attributes of a set of tuples
          (the paper's renaming operator) *)
  | Unnest of string * t  (** μ_a *)
  | Nest of { attrs : string list; into : string; src : t }  (** ν_{attrs→into} *)
  | Divide of t * t
  | Agg of agg * t
  | Deref of string * t
      (** [Deref (cls, e)]: follow the oid [e] into extent [cls] — the
          logical materialize operator of Section 6.2. *)

(** Structural equality. *)
val equal : t -> t -> bool

(** Rebuild with [f] applied to each immediate sub-expression.  Binders are
    not tracked — binder-aware traversals live in {!Analysis}. *)
val map_children : (t -> t) -> t -> t

(** Fold over immediate sub-expressions. *)
val fold_children : ('a -> t -> 'a) -> 'a -> t -> 'a

(** {1 Boolean structure helpers} *)

val negate_cmp : cmp -> cmp

(** Complement operator, only meaningful where
    {!negated_setcmp_is_complement} holds (e.g. ¬∈ is ∉, but ¬⊆ is NOT ⊂). *)
val negate_setcmp : setcmp -> setcmp

val negated_setcmp_is_complement : setcmp -> bool

(** The free-variable name ["?i"] a [Param i] answers to in binder-aware
    passes.  Cannot collide with source identifiers. *)
val param_name : int -> string

val true_ : t
val false_ : t
val is_true : t -> bool
val is_false : t -> bool

(** View of nested conjunctions as a list, and back. *)
val conjuncts : t -> t list

val conjoin : t list -> t
val disjuncts : t -> t list
val disjoin : t list -> t

(** {1 Fresh variables} *)

(** Fresh-name supply for capture-avoiding substitution and rewrite rules
    that introduce binders. *)
val fresh_var : string -> string

(** Reset the supply (tests only; rewrites never rely on absolute names). *)
val reset_fresh : unit -> unit
