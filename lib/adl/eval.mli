(** Reference evaluator for ADL — a direct transcription of the semantic
    equations (items 1-12) of Section 3.  Iterators evaluate by nested
    loops, so this evaluator realizes exactly the tuple-oriented processing
    the optimizer moves away from, and doubles as the correctness oracle
    for the rewriter and the physical engine.

    Work accounting: evaluating an iterator's parameter function ticks the
    ["nl_pred_eval"] counter; drawing a tuple from an operand ticks
    ["nl_tuple_visit"] (see {!Counters}). *)

type env = (string * Value.t) list

exception Eval_error of string

(** Evaluate under an environment for free variables. *)
val eval : Catalog.t -> env -> Expr.t -> Value.t

(** Evaluate a closed expression. *)
val run : Catalog.t -> Expr.t -> Value.t

(** Evaluate a boolean expression under an environment. *)
val run_pred : Catalog.t -> env -> Expr.t -> bool

(** {1 Scalar helpers} (shared with the constant folder and the engine) *)

val eval_arith : Expr.arith -> Value.t -> Value.t -> Value.t
val eval_cmp : Expr.cmp -> Value.t -> Value.t -> bool
val eval_setcmp : Expr.setcmp -> Value.t -> Value.t -> bool
val eval_agg : Expr.agg -> Value.t -> Value.t

(** [eval_nest attrs into elems] is the grouping semantics of
    [Nest { attrs; into; _ }] applied to already-evaluated elements. *)
val eval_nest : string list -> string -> Value.t list -> Value.t

(** Relational division on already-evaluated operands. *)
val eval_divide : Value.t -> Value.t -> Value.t
