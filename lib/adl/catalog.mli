(** The catalog: named base tables (class extents) with row types and
    stored rows, plus lazily built oid indexes supporting the
    materialize/assembly operator.

    Per the paper's logical design, every class extension is a table whose
    rows carry an [oid] field; class references are oid pointers into the
    referenced extent. *)

type table = {
  name : string;
  row_type : Vtype.t;  (** a tuple type *)
  mutable rows : Value.t list;  (** canonical: sorted, duplicate-free *)
  oid_index : (int, Value.t) Hashtbl.t option Atomic.t;
      (** lazy index on the [oid] field, invalidated by {!set_rows};
          published atomically for concurrent deref from pool domains *)
  rows_arr : Value.t array option Atomic.t;
      (** lazy array view of [rows] backing batched scans, invalidated by
          {!set_rows}; published atomically, immutable after publish *)
}

type t

(** Kind of attribute index: hash tables answer equality lookups, sorted
    arrays answer equality and range lookups (on their leading attribute). *)
type index_kind = Hash_index | Sorted_index

(** An attribute index over a base table.  Built lazily from the table's
    rows and invalidated by {!set_rows}; the built structure is immutable
    and published atomically (same discipline as the oid index), so pool
    domains may probe concurrently. *)
type index

exception Unknown_table of string

val create : unit -> t

(** Unique per catalog instance; keys external per-catalog caches. *)
val id : t -> int

(** Monotonic change counter, bumped by {!add_table}, {!set_rows} and
    {!create_index}.  Plan and statistics caches compare epochs to detect
    staleness without diffing catalog contents. *)
val epoch : t -> int

(** Allocate a fresh object identifier (unique per catalog). *)
val fresh_oid : t -> int

(** Raise the oid counter to at least [n] (used when reloading a saved
    catalog, so identifiers are never reused). *)
val ensure_oid_above : t -> int -> unit

(** [add_table t ~name ~row_type rows] registers an extent.  The row type
    must be a tuple type; rows are canonicalized.  Raises
    [Invalid_argument] if the name is taken. *)
val add_table : t -> name:string -> row_type:Vtype.t -> Value.t list -> unit

val find_opt : t -> string -> table option
val find : t -> string -> table
val mem : t -> string -> bool
val rows : t -> string -> Value.t list

(** Array view of the table's canonical rows, cached until the next
    {!set_rows}.  The batched executor cuts scan batches out of this shared
    array; callers must never mutate it. *)
val rows_array : t -> string -> Value.t array

val row_type : t -> string -> Vtype.t

(** The type of the table as a whole: a set of its row type. *)
val table_type : t -> string -> Vtype.t

(** Replace a table's rows (canonicalizes, drops the oid index and every
    attribute index over the table; bumps the epoch). *)
val set_rows : t -> string -> Value.t list -> unit

(** All extent names, sorted. *)
val table_names : t -> string list

val cardinality : t -> string -> int

(** Dereference an oid into the named extent via the (lazily built) oid
    index, ticking the "oid_lookup" counter.  Raises [Value.Type_error] on
    dangling references. *)
val deref : t -> string -> Value.t -> Value.t

(** Like {!deref} but [None] on dangling references. *)
val deref_opt : t -> string -> Value.t -> Value.t option

(** {1 Binary loading}

    The NJQC binary catalog codec lives in the engine library; it
    registers its loader here at link time.  {!load_binary} loads an NJQC
    file through the registered loader and raises [Invalid_argument] when
    none is registered (the codec module was not linked). *)

val register_binary_loader : (string -> t) -> unit
val load_binary : string -> t

(** {1 Attribute indexes} *)

(** [create_index t ?name ~table ~kind ~attrs ()] declares (and builds,
    from the table's current rows) an index over [attrs] in the given
    order, returning its name (default ["table_attrs_kind"]).  Bumps the
    epoch.  Raises [Invalid_argument] on an unknown attribute, duplicate
    attributes, an empty attribute list, or a taken index name. *)
val create_index :
  t ->
  ?name:string ->
  table:string ->
  kind:index_kind ->
  attrs:string list ->
  unit ->
  string

val find_index : t -> string -> index option

(** Indexes declared over the named table, sorted by index name. *)
val indexes_on : t -> string -> index list

(** Are any indexes declared at all?  (Planner fast path.) *)
val has_indexes : t -> bool

(** All index names, sorted. *)
val index_names : t -> string list

(** Force-build any unbuilt indexes over the named table (e.g. to fold the
    build into a statistics pass already touching every row). *)
val build_indexes : t -> string -> unit

val index_name : index -> string
val index_table : index -> string
val index_attrs : index -> string list
val index_kind : index -> index_kind
val kind_name : index_kind -> string

(** Point lookup: rows whose indexed attributes equal [key] (one value per
    declared attribute, in declared order), in canonical row order — the
    exact list a filtered scan would produce.  Works on both kinds.  Ticks
    "idx_probe" once and "idx_row" per row returned. *)
val index_lookup_eq : t -> index -> Value.t array -> Value.t list

(** Range lookup on the leading attribute of a sorted index.  Bounds are
    [(value, inclusive)]; [None] means unbounded.  Rows come back in
    canonical row order.  Raises [Invalid_argument] on a hash index. *)
val index_lookup_range :
  t ->
  index ->
  lo:(Value.t * bool) option ->
  hi:(Value.t * bool) option ->
  Value.t list
