(** The catalog: named base tables (class extents) with row types and
    stored rows, plus lazily built oid indexes supporting the
    materialize/assembly operator.

    Per the paper's logical design, every class extension is a table whose
    rows carry an [oid] field; class references are oid pointers into the
    referenced extent. *)

type table = {
  name : string;
  row_type : Vtype.t;  (** a tuple type *)
  mutable rows : Value.t list;  (** canonical: sorted, duplicate-free *)
  oid_index : (int, Value.t) Hashtbl.t option Atomic.t;
      (** lazy index on the [oid] field, invalidated by {!set_rows};
          published atomically for concurrent deref from pool domains *)
}

type t

exception Unknown_table of string

val create : unit -> t

(** Allocate a fresh object identifier (unique per catalog). *)
val fresh_oid : t -> int

(** Raise the oid counter to at least [n] (used when reloading a saved
    catalog, so identifiers are never reused). *)
val ensure_oid_above : t -> int -> unit

(** [add_table t ~name ~row_type rows] registers an extent.  The row type
    must be a tuple type; rows are canonicalized.  Raises
    [Invalid_argument] if the name is taken. *)
val add_table : t -> name:string -> row_type:Vtype.t -> Value.t list -> unit

val find_opt : t -> string -> table option
val find : t -> string -> table
val mem : t -> string -> bool
val rows : t -> string -> Value.t list
val row_type : t -> string -> Vtype.t

(** The type of the table as a whole: a set of its row type. *)
val table_type : t -> string -> Vtype.t

(** Replace a table's rows (canonicalizes, drops the oid index). *)
val set_rows : t -> string -> Value.t list -> unit

(** All extent names, sorted. *)
val table_names : t -> string list

val cardinality : t -> string -> int

(** Dereference an oid into the named extent via the (lazily built) oid
    index, ticking the "oid_lookup" counter.  Raises [Value.Type_error] on
    dangling references. *)
val deref : t -> string -> Value.t -> Value.t

(** Like {!deref} but [None] on dangling references. *)
val deref_opt : t -> string -> Value.t -> Value.t option
