(* The ADL complex-object algebra (Section 3 of the paper).

   The AST covers the paper's full operator list: flatten, tuple subscription,
   except, map (alpha), selection (sigma), projection (pi), unnest (mu), nest
   (nu), Cartesian product, regular join, semijoin, antijoin, plus the new
   operators of Section 6 (nestjoin) and the outer-join variant discussed in
   Section 5.2.2, division, set operations, quantifiers, set comparisons and
   aggregate functions.  Expressions with free variables are the parameter
   functions (lambda expressions) of iterators: [Map], [Select], the join
   family and [Quant] are the iterators, binding their variable(s) in the
   parameter expression.

   The reference evaluator ([Eval]) gives these constructors exactly the
   semantics of the paper's items 1-12; the rewriter ([Njq_core]) transforms
   between them. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

(* Set comparison operators of Section 5.2: element membership, the four
   inclusion operators, set equality, and the paper's "contains as element"
   operator (written x.c 'ni' Y': Y' is an element of the set-of-sets x.c). *)
type setcmp =
  | Mem        (* x in S *)
  | NotMem
  | SubsetEq   (* S1 'subseteq' S2 *)
  | Subset     (* proper *)
  | SupsetEq
  | Supset     (* proper *)
  | SetEq
  | SetNeq
  | Ni         (* S 'ni' x : x is an element of S *)
  | NotNi

type arith = Add | Sub | Mul | Div | Mod

type agg = Count | Sum | Min | Max | Avg

type quant = Exists | Forall

(* [LeftOuter pad] concatenates dangling left tuples with a tuple assigning
   NULL to every attribute in [pad] (the right-hand schema), following the
   outer-join repair of the COUNT bug recalled in Section 5.2.2. *)
type join_kind = Inner | Semi | Anti | LeftOuter of string list

type t =
  | Const of Value.t
  | Var of string
  | Param of int                               (* prepared-query placeholder ?i *)
  | Table of string                            (* base table (class extent) *)
  | Tuple of (string * t) list                 (* tuple construction *)
  | Field of t * string                        (* e.a *)
  | TupleProj of t * string list               (* e[a1,...,an] *)
  | Except of t * (string * t) list            (* e except (a = e', ...) *)
  | Concat of t * t                            (* tuple concatenation o *)
  | SetLit of t list
  | Arith of arith * t * t
  | Cmp of cmp * t * t
  | SetCmp of setcmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | If of t * t * t
  | Quant of quant * string * t * t            (* Q x 'in' range . pred *)
  | Map of { var : string; body : t; src : t } (* alpha[x : body](src) *)
  | Select of { var : string; pred : t; src : t } (* sigma[x : pred](src) *)
  | Project of string list * t                 (* pi_{attrs}(src) *)
  | Flatten of t                               (* multiple union *)
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Product of t * t
  | Join of
      { kind : join_kind; xvar : string; yvar : string; pred : t;
        left : t; right : t }
  | Nestjoin of
      { xvar : string; yvar : string; pred : t; body : t; attr : string;
        left : t; right : t }
      (* el -|[x,y : pred ; body ; attr] er: each left tuple is concatenated
         with (attr = { body(y) | y in er, pred(x,y) }).  [body] is the extra
         function parameter of the extended nestjoin of [StAB94]; the simple
         nestjoin of Definition 1 has body = Var yvar. *)
  | Rename of (string * string) list * t
      (* rho_{old->new,...}(e): rename top-level attributes of a set of
         tuples (the paper's renaming operator) *)
  | Unnest of string * t                       (* mu_a(e) *)
  | Nest of { attrs : string list; into : string; src : t } (* nu_{A -> a}(e) *)
  | Divide of t * t                            (* relational division *)
  | Agg of agg * t
  | Deref of string * t
      (* Deref (cls, e): follow the oid reference [e] into extent [cls],
         yielding the referenced object; the logical form of the materialize
         operator of Section 6.2. *)

let equal (a : t) (b : t) = Stdlib.compare a b = 0

(* [map_children f e] rebuilds [e] with [f] applied to each immediate
   sub-expression.  Binding structure is NOT taken into account: callers that
   care about binders (substitution, free variables) implement their own
   recursion; [map_children] serves whole-tree rewriting drivers that treat
   variables by name. *)
let map_children f e =
  match e with
  | Const _ | Var _ | Param _ | Table _ -> e
  | Tuple fs -> Tuple (List.map (fun (n, x) -> (n, f x)) fs)
  | Field (x, a) -> Field (f x, a)
  | TupleProj (x, attrs) -> TupleProj (f x, attrs)
  | Except (x, us) -> Except (f x, List.map (fun (n, u) -> (n, f u)) us)
  | Concat (a, b) -> Concat (f a, f b)
  | SetLit xs -> SetLit (List.map f xs)
  | Arith (op, a, b) -> Arith (op, f a, f b)
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | SetCmp (op, a, b) -> SetCmp (op, f a, f b)
  | And (a, b) -> And (f a, f b)
  | Or (a, b) -> Or (f a, f b)
  | Not a -> Not (f a)
  | If (c, a, b) -> If (f c, f a, f b)
  | Quant (q, x, range, pred) -> Quant (q, x, f range, f pred)
  | Map { var; body; src } -> Map { var; body = f body; src = f src }
  | Select { var; pred; src } -> Select { var; pred = f pred; src = f src }
  | Project (attrs, x) -> Project (attrs, f x)
  | Flatten x -> Flatten (f x)
  | Union (a, b) -> Union (f a, f b)
  | Inter (a, b) -> Inter (f a, f b)
  | Diff (a, b) -> Diff (f a, f b)
  | Product (a, b) -> Product (f a, f b)
  | Join j -> Join { j with pred = f j.pred; left = f j.left; right = f j.right }
  | Nestjoin j ->
    Nestjoin
      { j with pred = f j.pred; body = f j.body; left = f j.left; right = f j.right }
  | Rename (pairs, x) -> Rename (pairs, f x)
  | Unnest (a, x) -> Unnest (a, f x)
  | Nest n -> Nest { n with src = f n.src }
  | Divide (a, b) -> Divide (f a, f b)
  | Agg (op, x) -> Agg (op, f x)
  | Deref (cls, x) -> Deref (cls, f x)

(* [fold_children f acc e] folds [f] over the immediate sub-expressions. *)
let fold_children f acc e =
  match e with
  | Const _ | Var _ | Param _ | Table _ -> acc
  | Tuple fs -> List.fold_left (fun acc (_, x) -> f acc x) acc fs
  | Field (x, _) | TupleProj (x, _) | Flatten x | Project (_, x)
  | Rename (_, x) | Unnest (_, x) | Agg (_, x) | Not x | Deref (_, x) -> f acc x
  | Except (x, us) -> List.fold_left (fun acc (_, u) -> f acc u) (f acc x) us
  | Concat (a, b) | Arith (_, a, b) | Cmp (_, a, b) | SetCmp (_, a, b)
  | And (a, b) | Or (a, b) | Union (a, b) | Inter (a, b) | Diff (a, b)
  | Product (a, b) | Divide (a, b) -> f (f acc a) b
  | SetLit xs -> List.fold_left f acc xs
  | If (c, a, b) -> f (f (f acc c) a) b
  | Quant (_, _, range, pred) -> f (f acc range) pred
  | Map { body; src; _ } -> f (f acc body) src
  | Select { pred; src; _ } -> f (f acc pred) src
  | Join { pred; left; right; _ } -> f (f (f acc pred) left) right
  | Nestjoin { pred; body; left; right; _ } -> f (f (f (f acc pred) body) left) right
  | Nest { src; _ } -> f acc src

(* Negation of a comparison operator, used when pushing 'not' inward. *)
let negate_cmp = function
  | Eq -> Neq | Neq -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

let negate_setcmp = function
  | Mem -> NotMem | NotMem -> Mem
  | SubsetEq -> Subset | Subset -> SubsetEq
  | SupsetEq -> Supset | Supset -> SupsetEq
  | SetEq -> SetNeq | SetNeq -> SetEq
  | Ni -> NotNi | NotNi -> Ni

(* NOTE: [negate_setcmp] is only meaningful through [negate_setcmp_strict];
   'not (A 'subseteq' B)' is NOT 'A 'subset' B'.  The rewriter never uses it
   directly; it is exposed for the strict variant below. *)
let negated_setcmp_is_complement = function
  | Mem | NotMem | SetEq | SetNeq | Ni | NotNi -> true
  | SubsetEq | Subset | SupsetEq | Supset -> false

(* Parameters masquerade as free variables named "?i" inside binder-aware
   passes (free-variable analysis, substitution, compiled environments): the
   name space cannot collide with source identifiers because '?' never lexes
   as part of one. *)
let param_name i = "?" ^ string_of_int i

let true_ = Const (Value.VBool true)
let false_ = Const (Value.VBool false)

let is_true = function Const (Value.VBool true) -> true | _ -> false
let is_false = function Const (Value.VBool false) -> true | _ -> false

(* Conjunction list view: P1 'and' P2 'and' ... <-> [P1; P2; ...]. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let conjoin = function
  | [] -> true_
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let rec disjuncts = function
  | Or (a, b) -> disjuncts a @ disjuncts b
  | p -> [ p ]

let disjoin = function
  | [] -> false_
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

(* Fresh-variable supply for capture-avoiding substitution and for rewrite
   rules that introduce binders. *)
let fresh_counter = ref 0

let fresh_var prefix =
  incr fresh_counter;
  Printf.sprintf "%s_%d" prefix !fresh_counter

let reset_fresh () = fresh_counter := 0
