(* Paper-style pretty-printing of ADL expressions.

   The notation follows Section 3 of the paper as closely as plain text
   allows: map is alpha[x : e](src), selection sigma[x : p](src), the join
   family is written infix with the predicate subscript in brackets, unnest
   and nest are mu/nu.  Unicode operator glyphs are used because the output
   of [paper_artifacts] is meant to be read next to the paper. *)

open Expr

let cmp_symbol = function
  | Eq -> "=" | Neq -> "≠" | Lt -> "<" | Le -> "≤" | Gt -> ">" | Ge -> "≥"

let setcmp_symbol = function
  | Mem -> "∈" | NotMem -> "∉"
  | SubsetEq -> "⊆" | Subset -> "⊂"
  | SupsetEq -> "⊇" | Supset -> "⊃"
  | SetEq -> "=" | SetNeq -> "≠"
  | Ni -> "∋" | NotNi -> "∌"

let arith_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "mod"

let agg_name = function
  | Count -> "count" | Sum -> "sum" | Min -> "min" | Max -> "max" | Avg -> "avg"

let quant_symbol = function Exists -> "∃" | Forall -> "∀"

let join_symbol = function
  | Inner -> "⋈" | Semi -> "⋉" | Anti -> "▷" | LeftOuter _ -> "⟕"

(* Precedence levels, loosest first: or < and < not < comparisons < additive
   < multiplicative < application-like forms.  Parenthesization is driven by
   these levels so output stays readable without being drowned in parens. *)
let prec = function
  | Or _ -> 1
  | And _ -> 2
  | Not _ -> 3
  | Quant _ -> 1
  | Cmp _ | SetCmp _ -> 4
  | Union _ | Diff _ -> 5
  | Inter _ -> 6
  | Arith ((Add | Sub), _, _) -> 7
  | Arith ((Mul | Div | Mod), _, _) -> 8
  | Product _ | Join _ | Nestjoin _ | Divide _ -> 4
  | Concat _ -> 9
  | _ -> 10

let rec pp ppf e = pp_prec 0 ppf e

and pp_prec ctx ppf e =
  let p = prec e in
  if p < ctx then Fmt.pf ppf "(%a)" (pp_node p) e else pp_node p ppf e

and pp_node p ppf e =
  match e with
  | Const v -> Value.pp ppf v
  | Var x -> Fmt.string ppf x
  | Param i -> Fmt.pf ppf "?%d" i
  | Table t -> Fmt.string ppf t
  | Tuple fields ->
    Fmt.pf ppf "⟨@[%a@]⟩"
      (Fmt.list ~sep:Fmt.comma (fun ppf (n, x) -> Fmt.pf ppf "%s = %a" n pp x))
      fields
  | Field (x, a) -> Fmt.pf ppf "%a.%s" (pp_prec 10) x a
  | TupleProj (x, attrs) ->
    Fmt.pf ppf "%a[%s]" (pp_prec 10) x (String.concat "," attrs)
  | Except (x, updates) ->
    Fmt.pf ppf "%a except ⟨@[%a@]⟩" (pp_prec 10) x
      (Fmt.list ~sep:Fmt.comma (fun ppf (n, u) -> Fmt.pf ppf "%s = %a" n pp u))
      updates
  | Concat (a, b) -> Fmt.pf ppf "%a ∘ %a" (pp_prec p) a (pp_prec (p + 1)) b
  | SetLit xs -> Fmt.pf ppf "{@[%a@]}" (Fmt.list ~sep:Fmt.comma pp) xs
  | Arith (op, a, b) ->
    Fmt.pf ppf "%a %s %a" (pp_prec p) a (arith_symbol op) (pp_prec (p + 1)) b
  | Cmp (op, a, b) ->
    Fmt.pf ppf "%a %s %a" (pp_prec (p + 1)) a (cmp_symbol op) (pp_prec (p + 1)) b
  | SetCmp (op, a, b) ->
    Fmt.pf ppf "%a %s %a" (pp_prec (p + 1)) a (setcmp_symbol op) (pp_prec (p + 1)) b
  | And (a, b) -> Fmt.pf ppf "%a ∧ %a" (pp_prec p) a (pp_prec (p + 1)) b
  | Or (a, b) -> Fmt.pf ppf "%a ∨ %a" (pp_prec p) a (pp_prec (p + 1)) b
  | Not a -> Fmt.pf ppf "¬%a" (pp_prec (p + 1)) a
  | If (c, a, b) ->
    Fmt.pf ppf "if %a then %a else %a" pp c pp a (pp_prec p) b
  | Quant (q, x, range, pred) ->
    Fmt.pf ppf "%s%s ∈ %a • %a" (quant_symbol q) x (pp_prec 5) range (pp_prec 1) pred
  | Map { var; body; src } ->
    Fmt.pf ppf "α[%s : @[%a@]](@[%a@])" var pp body pp src
  | Select { var; pred; src } ->
    Fmt.pf ppf "σ[%s : @[%a@]](@[%a@])" var pp pred pp src
  | Project (attrs, src) ->
    Fmt.pf ppf "π_{%s}(@[%a@])" (String.concat "," attrs) pp src
  | Flatten src -> Fmt.pf ppf "⋃(@[%a@])" pp src
  | Union (a, b) -> Fmt.pf ppf "%a ∪ %a" (pp_prec p) a (pp_prec (p + 1)) b
  | Inter (a, b) -> Fmt.pf ppf "%a ∩ %a" (pp_prec p) a (pp_prec (p + 1)) b
  | Diff (a, b) -> Fmt.pf ppf "%a \\ %a" (pp_prec p) a (pp_prec (p + 1)) b
  | Product (a, b) -> Fmt.pf ppf "%a × %a" (pp_prec p) a (pp_prec (p + 1)) b
  | Join { kind; xvar; yvar; pred; left; right } ->
    Fmt.pf ppf "%a %s[%s,%s : @[%a@]] %a" (pp_prec (p + 1)) left
      (join_symbol kind) xvar yvar pp pred (pp_prec (p + 1)) right
  | Nestjoin { xvar; yvar; pred; body; attr; left; right } ->
    let pp_body ppf b =
      match b with
      | Var v when String.equal v yvar -> ()
      | _ -> Fmt.pf ppf " ; %a" pp b
    in
    Fmt.pf ppf "%a ⊣[%s,%s : @[%a@]%a ; %s] %a" (pp_prec (p + 1)) left xvar
      yvar pp pred pp_body body attr (pp_prec (p + 1)) right
  | Rename (pairs, src) ->
    Fmt.pf ppf "ρ_{%s}(@[%a@])"
      (String.concat ","
         (List.map (fun (o, n) -> Printf.sprintf "%s→%s" o n) pairs))
      pp src
  | Unnest (a, src) -> Fmt.pf ppf "μ_%s(@[%a@])" a pp src
  | Nest { attrs; into; src } ->
    Fmt.pf ppf "ν_{%s→%s}(@[%a@])" (String.concat "," attrs) into pp src
  | Divide (a, b) -> Fmt.pf ppf "%a ÷ %a" (pp_prec (p + 1)) a (pp_prec (p + 1)) b
  | Agg (op, src) -> Fmt.pf ppf "%s(@[%a@])" (agg_name op) pp src
  | Deref (cls, x) -> Fmt.pf ppf "deref⟨%s⟩(%a)" cls pp x

let to_string e = Fmt.str "@[%a@]" pp e
