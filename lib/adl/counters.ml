(* Named work counters used to compare tuple-oriented and set-oriented query
   processing independently of wall-clock noise.  The reference evaluator
   counts predicate evaluations and tuple visits; the physical engine counts
   hash builds/probes, oid lookups, partition spills, etc.

   This is now a facade over the observability metrics registry
   ([Njq_obs.Metrics]): the string-keyed [tick] interns a handle per call,
   while hot paths (the engine's inner loops) intern their handles once and
   increment through [Njq_obs.Metrics.incr] directly.  Both views share the
   same cells, so [snapshot] sees every increment regardless of which door
   it came through. *)

module M = Njq_obs.Metrics

let tick ?n name = M.incr ?n (M.counter name)

let get name = M.value (M.counter name)

let reset () = M.reset_counters ()

(* All counters ticked since the last [reset], sorted by name for stable
   output.  (Handles stay interned across resets; zeroed entries are
   filtered by the registry.) *)
let snapshot () = M.counter_snapshot ()

(* Run [f] with counting temporarily disabled (e.g. when an oracle result is
   computed inside a measured region). *)
let without_counting f = M.with_disabled f

(* Run [f ()] on fresh counters and return its result with the snapshot. *)
let measure f =
  reset ();
  let x = f () in
  (x, snapshot ())

let pp_snapshot ppf snap =
  Fmt.list ~sep:Fmt.sp (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v) ppf snap
