(** Complex-object values: atoms, object identifiers, tuples and sets,
    closed under nesting (the paper's data model, Section 3).

    Canonical representation: tuple fields are sorted by name, sets are
    sorted and duplicate-free under {!compare}.  Consequently structural
    equality coincides with semantic tuple/set equality. *)

type t =
  | VNull  (** outer-join padding only; never produced by queries *)
  | VBool of bool
  | VInt of int
  | VFloat of float
  | VString of string
  | VDate of int  (** calendar date as [yyyymmdd] *)
  | VOid of int  (** object identifier *)
  | VTuple of (string * t) list  (** invariant: fields sorted by name *)
  | VSet of t list  (** invariant: sorted, duplicate-free *)

(** Raised by accessors and operators applied to values of the wrong
    shape. *)
exception Type_error of string

(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Ordering} *)

(** Total structural order; arbitrary but fixed across value shapes. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Full-depth structural hash consistent with {!equal} (no traversal
    limits, so long rows do not collide).  Hashes of set values are
    memoized in an ephemeron keyed on physical identity, so repeatedly
    hashing rows that share set-valued attributes — the common case in the
    physical engine's hash tables and dedup — costs a bounded-depth bucket
    lookup, not a traversal. *)
val hash : t -> int

(** {1 Construction (canonicalizing)} *)

(** [tuple fields] sorts the fields by name.  Raises {!Type_error} on
    duplicate field names. *)
val tuple : (string * t) list -> t

(** [set elements] sorts and deduplicates. *)
val set : t list -> t

val empty_set : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t
val date : int -> t
val oid : int -> t

(** {1 Accessors} *)

val as_bool : t -> bool
val as_int : t -> int
val as_set : t -> t list
val as_tuple : t -> (string * t) list
val as_oid : t -> int
val is_null : t -> bool

(** [field v a] is tuple subscription for one attribute ([v.a]). *)
val field : t -> string -> t

val has_field : t -> string -> bool

(** Field names of a tuple, in sorted order. *)
val field_names : t -> string list

(** {1 Tuple operators} *)

(** [project v attrs] is the paper's tuple subscription [v\[a1,...,an\]]. *)
val project : t -> string list -> t

(** [project_away v attrs] keeps the complement fields. *)
val project_away : t -> string list -> t

(** {2 Trusted fast paths (engine batches)}

    These skip the canonicalizing work of {!tuple} and {!project} under
    invariants the physical engine establishes once per operator instead of
    once per row. *)

(** [of_sorted_fields fields] builds a tuple {e without} sorting or
    checking: the caller guarantees [fields] is sorted by name and
    duplicate-free.  Violating the invariant breaks canonical equality. *)
val of_sorted_fields : (string * t) list -> t

(** [project_sorted v attrs] is {!project} for an [attrs] list that is
    already sorted and duplicate-free: one merge walk, no per-field assoc
    scans, no re-sort.  Raises {!Type_error} on a missing field, reporting
    the first missing attribute in sorted (not argument) order. *)
val project_sorted : t -> string list -> t

(** Tuple concatenation (the paper's [o]); fields must be disjoint. *)
val concat : t -> t -> t

(** The paper's [except] operator: update existing fields and/or extend the
    tuple with new ones. *)
val except : t -> (string * t) list -> t

(** {1 Set operators} *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** [mem x s]: is [x] an element of set [s]? *)
val mem : t -> t -> bool

val subset_eq : t -> t -> bool

(** Proper subset. *)
val subset : t -> t -> bool

val set_size : t -> int

(** Multiple union — the paper's flatten (semantics item 1). *)
val flatten : t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val show : t -> string
