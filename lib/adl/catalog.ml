(* The catalog: named base tables (class extents) with their row types and
   stored values, plus oid indexes supporting the materialize/assembly
   operator (pointer-based dereferencing).

   Per the paper's logical database design, every class extension is mapped
   to a table of (possibly complex) objects whose rows carry an [oid] field;
   class references are oid pointers into the referenced extent. *)

type table = {
  name : string;
  row_type : Vtype.t; (* type of one row (a tuple type) *)
  mutable rows : Value.t list; (* canonical: sorted, deduplicated *)
  oid_index : (int, Value.t) Hashtbl.t option Atomic.t;
      (* lazy index on the row's "oid" field, invalidated on updates;
         published atomically so pool domains can deref concurrently — a
         lost race rebuilds an identical index, never observes a torn one *)
}

type t = {
  tables : (string, table) Hashtbl.t;
  mutable next_oid : int;
}

exception Unknown_table of string

let create () = { tables = Hashtbl.create 16; next_oid = 1 }

let fresh_oid t =
  let o = t.next_oid in
  t.next_oid <- o + 1;
  o

(* Make sure future fresh oids are at least [n]; used when reloading a
   saved catalog so identifiers are never reused. *)
let ensure_oid_above t n = if t.next_oid < n then t.next_oid <- n

let add_table t ~name ~row_type rows =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Catalog.add_table: %s already exists" name);
  (match row_type with
   | Vtype.TTuple _ -> ()
   | _ -> invalid_arg "Catalog.add_table: row type must be a tuple type");
  let rows = List.sort_uniq Value.compare rows in
  Hashtbl.add t.tables name { name; row_type; rows; oid_index = Atomic.make None }

let find_opt t name = Hashtbl.find_opt t.tables name

let find t name =
  match find_opt t name with
  | Some tbl -> tbl
  | None -> raise (Unknown_table name)

let mem t name = Hashtbl.mem t.tables name

let rows t name = (find t name).rows

let row_type t name = (find t name).row_type

(* Type of the table as a whole: a set of its row type. *)
let table_type t name = Vtype.TSet (row_type t name)

let set_rows t name rows =
  let tbl = find t name in
  tbl.rows <- List.sort_uniq Value.compare rows;
  Atomic.set tbl.oid_index None

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort String.compare

let cardinality t name = List.length (rows t name)

(* Dereference an oid into extent [name]; builds the index on first use.
   Every lookup ticks the "oid_lookup" counter so benches can compare
   assembly against value-based joins. *)
let c_oid_lookup = Njq_obs.Metrics.counter "oid_lookup"

let deref t name oid_value =
  let tbl = find t name in
  let index =
    match Atomic.get tbl.oid_index with
    | Some idx -> idx
    | None ->
      let idx = Hashtbl.create (max 16 (List.length tbl.rows)) in
      List.iter
        (fun row ->
          match row with
          | Value.VTuple _ when Value.has_field row "oid" ->
            Hashtbl.replace idx (Value.as_oid (Value.field row "oid")) row
          | _ -> ())
        tbl.rows;
      (* Publish after the table is fully built; racing domains may each
         build one, but they are identical and readers see a whole index. *)
      Atomic.set tbl.oid_index (Some idx);
      idx
  in
  Njq_obs.Metrics.incr c_oid_lookup;
  match Hashtbl.find_opt index (Value.as_oid oid_value) with
  | Some row -> row
  | None ->
    Value.type_error "dangling reference #%d into %s" (Value.as_oid oid_value) name

(* Does the oid resolve in extent [name]?  (No error on dangling refs.) *)
let deref_opt t name oid_value =
  match deref t name oid_value with
  | row -> Some row
  | exception Value.Type_error _ -> None
