(* The catalog: named base tables (class extents) with their row types and
   stored values, plus oid indexes supporting the materialize/assembly
   operator (pointer-based dereferencing) and user-declared attribute
   indexes (hash for equality, sorted arrays for ranges) backing the
   engine's index access paths.

   Per the paper's logical database design, every class extension is mapped
   to a table of (possibly complex) objects whose rows carry an [oid] field;
   class references are oid pointers into the referenced extent. *)

type table = {
  name : string;
  row_type : Vtype.t; (* type of one row (a tuple type) *)
  mutable rows : Value.t list; (* canonical: sorted, deduplicated *)
  oid_index : (int, Value.t) Hashtbl.t option Atomic.t;
      (* lazy index on the row's "oid" field, invalidated on updates;
         published atomically so pool domains can deref concurrently — a
         lost race rebuilds an identical index, never observes a torn one *)
  rows_arr : Value.t array option Atomic.t;
      (* lazy array view of [rows] backing the batched executor's scan
         batches; invalidated by [set_rows], same Atomic publish discipline
         as [oid_index] (immutable after publish, racing builders produce
         identical arrays).  Readers must never mutate the array. *)
}

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type index_kind = Hash_index | Sorted_index

(* Built index payload.  Hash buckets and sorted segments both keep their
   rows in the table's canonical (sorted, duplicate-free) order, so a point
   lookup returns exactly the row list a filtered scan would produce. *)
type index_data =
  | Dhash of Value.t list VH.t
      (* key tuple (declared attrs, canonicalized) -> matching rows *)
  | Dsorted of (Value.t array * Value.t) array
      (* (key values in declared attr order, row), sorted lexicographically
         by key with ties in canonical row order *)

type index = {
  idx_name : string;
  idx_table : string;
  idx_attrs : string list; (* one or more attributes, in declared order *)
  idx_kind : index_kind;
  idx_data : index_data option Atomic.t;
      (* lazily built from the table rows, invalidated by [set_rows];
         same Atomic publish discipline as [oid_index]: immutable after
         publish, racing builders produce identical structures *)
}

type t = {
  tables : (string, table) Hashtbl.t;
  mutable next_oid : int;
  cat_id : int; (* unique per catalog instance; keys external caches *)
  mutable epoch : int;
      (* bumped by every schema or data change ([add_table], [set_rows],
         [create_index]) so plan and statistics caches can detect
         staleness without diffing contents *)
  indexes : (string, index) Hashtbl.t; (* by index name *)
}

exception Unknown_table of string

let next_cat_id = Atomic.make 0

let create () =
  { tables = Hashtbl.create 16;
    next_oid = 1;
    cat_id = Atomic.fetch_and_add next_cat_id 1;
    epoch = 0;
    indexes = Hashtbl.create 8 }

let id t = t.cat_id
let epoch t = t.epoch

let fresh_oid t =
  let o = t.next_oid in
  t.next_oid <- o + 1;
  o

(* Make sure future fresh oids are at least [n]; used when reloading a
   saved catalog so identifiers are never reused. *)
let ensure_oid_above t n = if t.next_oid < n then t.next_oid <- n

let add_table t ~name ~row_type rows =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Catalog.add_table: %s already exists" name);
  (match row_type with
   | Vtype.TTuple _ -> ()
   | _ -> invalid_arg "Catalog.add_table: row type must be a tuple type");
  let rows = List.sort_uniq Value.compare rows in
  t.epoch <- t.epoch + 1;
  Hashtbl.add t.tables name
    { name; row_type; rows; oid_index = Atomic.make None;
      rows_arr = Atomic.make None }

let find_opt t name = Hashtbl.find_opt t.tables name

let find t name =
  match find_opt t name with
  | Some tbl -> tbl
  | None -> raise (Unknown_table name)

let mem t name = Hashtbl.mem t.tables name

let rows t name = (find t name).rows

(* Array view of a table's canonical rows, built once and cached until the
   next [set_rows]: the batched executor cuts its scan batches out of this
   shared array, so a batched scan allocates no per-row structure at all.
   The array is published whole and never mutated after publish; a racing
   domain may build an identical copy. *)
let rows_array t name =
  let tbl = find t name in
  match Atomic.get tbl.rows_arr with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list tbl.rows in
    Atomic.set tbl.rows_arr (Some arr);
    arr

let row_type t name = (find t name).row_type

(* Type of the table as a whole: a set of its row type. *)
let table_type t name = Vtype.TSet (row_type t name)

let set_rows t name rows =
  let tbl = find t name in
  tbl.rows <- List.sort_uniq Value.compare rows;
  Atomic.set tbl.oid_index None;
  Atomic.set tbl.rows_arr None;
  (* Attribute indexes over this table are rebuilt from the new rows on
     their next use. *)
  Hashtbl.iter
    (fun _ idx ->
      if String.equal idx.idx_table name then Atomic.set idx.idx_data None)
    t.indexes;
  t.epoch <- t.epoch + 1

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort String.compare

let cardinality t name = List.length (rows t name)

(* Dereference an oid into extent [name]; builds the index on first use.
   Every lookup ticks the "oid_lookup" counter so benches can compare
   assembly against value-based joins. *)
let c_oid_lookup = Njq_obs.Metrics.counter "oid_lookup"

let deref t name oid_value =
  let tbl = find t name in
  let index =
    match Atomic.get tbl.oid_index with
    | Some idx -> idx
    | None ->
      let idx = Hashtbl.create (max 16 (List.length tbl.rows)) in
      List.iter
        (fun row ->
          match row with
          | Value.VTuple _ when Value.has_field row "oid" ->
            Hashtbl.replace idx (Value.as_oid (Value.field row "oid")) row
          | _ -> ())
        tbl.rows;
      (* Publish after the table is fully built; racing domains may each
         build one, but they are identical and readers see a whole index. *)
      Atomic.set tbl.oid_index (Some idx);
      idx
  in
  Njq_obs.Metrics.incr c_oid_lookup;
  match Hashtbl.find_opt index (Value.as_oid oid_value) with
  | Some row -> row
  | None ->
    Value.type_error "dangling reference #%d into %s" (Value.as_oid oid_value) name

(* Does the oid resolve in extent [name]?  (No error on dangling refs.) *)
let deref_opt t name oid_value =
  match deref t name oid_value with
  | row -> Some row
  | exception Value.Type_error _ -> None

(* ------------------------------------------------------------------ *)
(* Attribute indexes                                                   *)
(* ------------------------------------------------------------------ *)

let c_idx_build = Njq_obs.Metrics.counter "idx_build"
let c_idx_probe = Njq_obs.Metrics.counter "idx_probe"
let c_idx_row = Njq_obs.Metrics.counter "idx_row"

let kind_name = function Hash_index -> "hash" | Sorted_index -> "sorted"

let index_name i = i.idx_name
let index_table i = i.idx_table
let index_attrs i = i.idx_attrs
let index_kind i = i.idx_kind

(* Lexicographic comparison of composite keys in declared attribute
   order (a [Value.tuple] would re-sort the attributes by name). *)
let compare_keys a b =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i = n then compare la lb
    else
      match Value.compare a.(i) b.(i) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

let hash_key attrs values =
  Value.tuple (List.map2 (fun a v -> (a, v)) attrs (Array.to_list values))

let key_of_row attrs row =
  Array.of_list (List.map (fun a -> Value.field row a) attrs)

(* Build the index payload from the table's current rows.  One tick of
   "idx_build" per row; the build happens at declaration and once after
   each invalidation, so steady-state lookups pay only probes. *)
let build t idx =
  let rs = rows t idx.idx_table in
  Njq_obs.Metrics.incr ~n:(List.length rs) c_idx_build;
  match idx.idx_kind with
  | Hash_index ->
    let tbl = VH.create (max 16 (List.length rs)) in
    List.iter
      (fun row ->
        let k = hash_key idx.idx_attrs (key_of_row idx.idx_attrs row) in
        match VH.find_opt tbl k with
        | Some bucket -> VH.replace tbl k (row :: bucket)
        | None -> VH.add tbl k [ row ])
      rs;
    (* Buckets were consed in reverse; restore canonical row order. *)
    VH.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) tbl;
    Dhash tbl
  | Sorted_index ->
    let keyed = List.map (fun row -> (key_of_row idx.idx_attrs row, row)) rs in
    (* Stable sort: rows with equal keys keep their canonical order. *)
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> compare_keys a b) keyed
    in
    Dsorted (Array.of_list sorted)

let ensure_built t idx =
  match Atomic.get idx.idx_data with
  | Some d -> d
  | None ->
    let d = build t idx in
    (* Publish whole; a racing domain may build an identical copy. *)
    Atomic.set idx.idx_data (Some d);
    d

let default_index_name ~table ~kind ~attrs =
  Printf.sprintf "%s_%s_%s" table (String.concat "_" attrs) (kind_name kind)

let create_index t ?name ~table ~kind ~attrs () =
  if attrs = [] then invalid_arg "Catalog.create_index: no attributes";
  if List.sort_uniq String.compare attrs <> List.sort String.compare attrs then
    invalid_arg "Catalog.create_index: duplicate attribute";
  let tbl = find t table in
  let fields =
    match tbl.row_type with
    | Vtype.TTuple fields -> List.map fst fields
    | _ -> []
  in
  List.iter
    (fun a ->
      if not (List.mem a fields) then
        invalid_arg
          (Printf.sprintf "Catalog.create_index: %s has no attribute %s" table a))
    attrs;
  let name =
    match name with Some n -> n | None -> default_index_name ~table ~kind ~attrs
  in
  if Hashtbl.mem t.indexes name then
    invalid_arg (Printf.sprintf "Catalog.create_index: %s already exists" name);
  let idx =
    { idx_name = name; idx_table = table; idx_attrs = attrs; idx_kind = kind;
      idx_data = Atomic.make None }
  in
  Hashtbl.add t.indexes name idx;
  (* Index availability changes what the planner may emit: cached plans
     derived before this declaration are stale. *)
  t.epoch <- t.epoch + 1;
  ignore (ensure_built t idx);
  name

let find_index t name = Hashtbl.find_opt t.indexes name

let indexes_on t table =
  Hashtbl.fold
    (fun _ idx acc -> if String.equal idx.idx_table table then idx :: acc else acc)
    t.indexes []
  |> List.sort (fun a b -> String.compare a.idx_name b.idx_name)

let has_indexes t = Hashtbl.length t.indexes > 0

let index_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.indexes [] |> List.sort String.compare

let build_indexes t table = List.iter (fun i -> ignore (ensure_built t i)) (indexes_on t table)

(* First position in the key-sorted array whose key satisfies [above]
   (monotone: false then true). *)
let partition_point arr above =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let k, _ = arr.(mid) in
    if above k then hi := mid else lo := mid + 1
  done;
  !lo

let index_lookup_eq t idx (key : Value.t array) =
  if Array.length key <> List.length idx.idx_attrs then
    invalid_arg "Catalog.index_lookup_eq: key arity mismatch";
  Njq_obs.Metrics.incr c_idx_probe;
  let matched =
    match ensure_built t idx with
    | Dhash tbl ->
      (match VH.find_opt tbl (hash_key idx.idx_attrs key) with
       | Some bucket -> bucket
       | None -> [])
    | Dsorted arr ->
      let start = partition_point arr (fun k -> compare_keys k key >= 0) in
      let stop = partition_point arr (fun k -> compare_keys k key > 0) in
      let acc = ref [] in
      for i = stop - 1 downto start do
        acc := snd arr.(i) :: !acc
      done;
      !acc
  in
  Njq_obs.Metrics.incr ~n:(List.length matched) c_idx_row;
  matched

(* ------------------------------------------------------------------ *)
(* Binary catalog loading                                              *)
(* ------------------------------------------------------------------ *)

(* The NJQC binary codec lives in the engine library (it shares the spill
   row format), which this module cannot depend on; the engine registers
   its loader here at link time and [load_binary] dispatches through it.
   A missing registration means the codec module was never linked — an
   informative failure beats a silent fallback to text parsing. *)
let binary_loader : (string -> t) option ref = ref None

let register_binary_loader f = binary_loader := Some f

let load_binary path =
  match !binary_loader with
  | Some f -> f path
  | None ->
    invalid_arg
      "Catalog.load_binary: no binary loader registered (link Njq_engine.Rowcodec)"

let index_lookup_range t idx ~lo ~hi =
  (match idx.idx_kind with
   | Sorted_index -> ()
   | Hash_index ->
     invalid_arg "Catalog.index_lookup_range: range lookup needs a sorted index");
  Njq_obs.Metrics.incr c_idx_probe;
  let matched =
    match ensure_built t idx with
    | Dhash _ -> assert false
    | Dsorted arr ->
      let first k = k.(0) in
      let start =
        match lo with
        | None -> 0
        | Some (v, inclusive) ->
          let above =
            if inclusive then fun k -> Value.compare (first k) v >= 0
            else fun k -> Value.compare (first k) v > 0
          in
          partition_point arr above
      in
      let stop =
        match hi with
        | None -> Array.length arr
        | Some (v, inclusive) ->
          let above =
            if inclusive then fun k -> Value.compare (first k) v > 0
            else fun k -> Value.compare (first k) v >= 0
          in
          partition_point arr above
      in
      let acc = ref [] in
      for i = stop - 1 downto start do
        acc := snd arr.(i) :: !acc
      done;
      (* The segment is ordered by key; restore canonical row order so a
         range scan emits exactly the rows of the filtered scan it
         replaces, in the same order. *)
      List.sort Value.compare !acc
  in
  Njq_obs.Metrics.incr ~n:(List.length matched) c_idx_row;
  matched
