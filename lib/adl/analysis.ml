(* Static analysis over ADL expressions: free variables, capture-avoiding
   substitution, base-table usage, and correlation tests.  These are the
   building blocks of every rewrite rule in [Njq_core]. *)

module S = Set.Make (String)

open Expr

(* Free variables, respecting the binding structure of iterators:
   [Quant] binds its variable in the predicate, [Map] in the body, [Select]
   in the predicate, join operators bind both variables in the predicate (and
   the nestjoin also in its body function). *)
let rec free_vars (e : Expr.t) : S.t =
  match e with
  | Var x -> S.singleton x
  (* A parameter placeholder is free under the name "?i": no binder can
     capture it, and treating it as open keeps constant-folding passes from
     evaluating across an unbound parameter. *)
  | Param i -> S.singleton (param_name i)
  | Quant (_, x, range, pred) ->
    S.union (free_vars range) (S.remove x (free_vars pred))
  | Map { var; body; src } ->
    S.union (free_vars src) (S.remove var (free_vars body))
  | Select { var; pred; src } ->
    S.union (free_vars src) (S.remove var (free_vars pred))
  | Join { xvar; yvar; pred; left; right; _ } ->
    let bound = S.remove xvar (S.remove yvar (free_vars pred)) in
    S.union bound (S.union (free_vars left) (free_vars right))
  | Nestjoin { xvar; yvar; pred; body; left; right; _ } ->
    let strip s = S.remove xvar (S.remove yvar s) in
    S.union
      (S.union (strip (free_vars pred)) (strip (free_vars body)))
      (S.union (free_vars left) (free_vars right))
  | _ -> fold_children (fun acc c -> S.union acc (free_vars c)) S.empty e

let is_free x e = S.mem x (free_vars e)

(* A closed expression denotes a constant (an uncorrelated subquery). *)
let is_closed e = S.is_empty (free_vars e)

(* Does the expression mention a base table anywhere (including nested in
   iterator parameters)?  [Deref] is excluded on purpose: a pointer lookup is
   not an iteration over a base table, and the paper handles it with the
   separate materialize operator. *)
let rec uses_base_table (e : Expr.t) : bool =
  match e with
  | Table _ -> true
  | _ -> fold_children (fun acc c -> acc || uses_base_table c) false e

let rec base_tables (e : Expr.t) : S.t =
  match e with
  | Table t -> S.singleton t
  | _ -> fold_children (fun acc c -> S.union acc (base_tables c)) S.empty e

(* A "base table expression" in the sense of the unnesting goal: an operand
   that iterates over stored extents rather than over a set-valued attribute.
   Selections, maps and projections over base tables still qualify. *)
let rec is_base_table_expr (e : Expr.t) : bool =
  match e with
  | Table _ -> true
  | Select { src; _ } | Map { src; _ } -> is_base_table_expr src
  | Project (_, src) -> is_base_table_expr src
  | Union (a, b) | Inter (a, b) | Diff (a, b) ->
    is_base_table_expr a && is_base_table_expr b
  | Join { left; right; _ } -> is_base_table_expr left && is_base_table_expr right
  | _ -> false

(* Capture-avoiding substitution.  [subst [(x, e_x); ...] e] replaces free
   occurrences of each variable; binders whose variable would capture a free
   variable of a replacement are renamed with a fresh name first. *)
let rec subst (map : (string * Expr.t) list) (e : Expr.t) : Expr.t =
  if map = [] then e
  else
    match e with
    | Var x -> (match List.assoc_opt x map with Some r -> r | None -> e)
    | Param i ->
      (match List.assoc_opt (param_name i) map with Some r -> r | None -> e)
    | Quant (q, x, range, pred) ->
      let x', pred' = subst_under map [ x ] pred |> unary in
      Quant (q, x', subst map range, pred')
    | Map { var; body; src } ->
      let var', body' = subst_under map [ var ] body |> unary in
      Map { var = var'; body = body'; src = subst map src }
    | Select { var; pred; src } ->
      let var', pred' = subst_under map [ var ] pred |> unary in
      Select { var = var'; pred = pred'; src = subst map src }
    | Join j ->
      let vars, pred' = subst_under map [ j.xvar; j.yvar ] j.pred in
      let xvar, yvar = binary vars in
      Join
        { j with xvar; yvar; pred = pred';
          left = subst map j.left; right = subst map j.right }
    | Nestjoin j ->
      (* pred and body share the same binders; rename them consistently. *)
      let renaming, map' = binder_renaming map [ j.xvar; j.yvar ] [ j.pred; j.body ] in
      let xvar, yvar =
        match renaming with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      in
      Nestjoin
        { j with xvar; yvar;
          pred = subst map' j.pred; body = subst map' j.body;
          left = subst map j.left; right = subst map j.right }
    | _ -> map_children (subst map) e

(* Substitute inside the body of a binder with variables [vs]: variables in
   [vs] are removed from the substitution, and any binder variable that
   occurs free in a replacement expression is renamed. *)
and subst_under map vs body =
  let renaming, map' = binder_renaming map vs [ body ] in
  (renaming, subst map' body)

and binder_renaming map vs bodies =
  let map = List.filter (fun (x, _) -> not (List.mem x vs)) map in
  let replacement_fvs =
    List.fold_left (fun acc (_, r) -> S.union acc (free_vars r)) S.empty map
  in
  let needs_rename x =
    S.mem x replacement_fvs
    && List.exists
         (fun b ->
           let fv = free_vars b in
           S.mem x fv)
         bodies
  in
  let renaming =
    List.map (fun x -> if needs_rename x then (x, fresh_var x) else (x, x)) vs
  in
  let rename_map =
    List.filter_map
      (fun (old_name, new_name) ->
        if String.equal old_name new_name then None else Some (old_name, Var new_name))
      renaming
  in
  let names = List.map snd renaming in
  (names, rename_map @ map)

and unary = function
  | [ x ], body -> (x, body)
  | _ -> assert false

and binary = function
  | [ a; b ] -> (a, b)
  | _ -> assert false

(* [subst1 x r e] replaces the single variable [x] by [r]. *)
let subst1 x r e = subst [ (x, r) ] e

(* Structural replacement of a sub-expression: every occurrence of [old_e]
   (up to structural equality) is replaced by [by].  Used by the grouping and
   nestjoin rewrites to substitute z.g for the subquery Y' inside the outer
   predicate.  The caller must ensure no binder in [e] captures variables of
   [old_e] differently (true for the rewrite patterns we match, where [old_e]
   is a subquery correlated only on the outer iterator variable). *)
let rec replace_subexpr ~old_e ~by (e : Expr.t) : Expr.t =
  if Expr.equal e old_e then by
  else map_children (replace_subexpr ~old_e ~by) e

(* Count structural occurrences of a sub-expression. *)
let rec count_subexpr ~needle (e : Expr.t) : int =
  if Expr.equal e needle then 1
  else fold_children (fun acc c -> acc + count_subexpr ~needle c) 0 e

(* Expression size (number of AST nodes), used to keep rewrite search
   terminating and for reporting. *)
let rec size (e : Expr.t) : int =
  fold_children (fun acc c -> acc + size c) 1 e

(* All sub-expressions satisfying [p], outermost first. *)
let find_all p (e : Expr.t) : Expr.t list =
  let rec go acc e =
    let acc = if p e then e :: acc else acc in
    fold_children go acc e
  in
  List.rev (go [] e)
