(* Compile-once, run-per-tuple parameter expressions.

   The physical engine's operators apply parameter expressions (join keys,
   filter predicates, residuals, map and nestjoin bodies) to every tuple.
   Interpreting them with [Eval.eval] pays a per-tuple tax that has nothing
   to do with the query: AST dispatch on every node, an assoc-list
   environment allocated and searched per variable reference, and repeated
   evaluation of closed subexpressions.  [expr] removes that tax by
   translating the expression once into an OCaml closure over a slot
   environment — a [Value.t array] whose slot [i] holds the value of
   [List.nth vars i]:

   - variable references are resolved to array slots at compile time;
   - closed subexpressions (Section 3: "uncorrelated subqueries simply are
     constants") are evaluated once at compile time and embedded as
     constants, with failures deferred to the first run-time use so that
     short-circuited branches keep their interpreted behavior;
   - iterators extend the slot environment by one copy per invocation and
     mutate the binder slot per element, instead of consing a new assoc
     cell per element.

   The compiled layer is observationally equivalent to the reference
   evaluator: for every environment, the closure returns the same value (or
   raises the same exception) as [Eval.eval] — [test/test_compile.ml]
   enforces the agreement on generated expressions and environments.  The
   one intentional difference is accounting: compiled closures do not tick
   the per-tuple ["nl_pred_eval"]/["nl_tuple_visit"] counters, because
   eliminating exactly that per-tuple interpretive work is their purpose
   (the engine's own operator counters are unaffected). *)

open Expr

type t = Value.t array -> Value.t

(* Slot of the innermost binding of [x].  Assoc-environment shadowing is
   modelled by appending binders to the compile-time variable list, so the
   last occurrence wins. *)
let slot vars x =
  let rec go i best = function
    | [] -> best
    | v :: rest -> go (i + 1) (if String.equal v x then Some i else best) rest
  in
  go 0 None vars

(* Copy [env] into an array with [k] extra (binder) slots. *)
let grow k env =
  let n = Array.length env in
  let env' = Array.make (n + k) Value.VNull in
  Array.blit env 0 env' 0 n;
  env'

(* A closed subexpression denotes a constant: evaluate it once now.  A
   failure is captured and re-raised at run time, because the interpreter
   only fails if evaluation actually reaches the subexpression (it may sit
   in a short-circuited conjunct or an untaken [If] branch). *)
let fold_closed cat e : t =
  match Eval.run cat e with
  | v -> fun _ -> v
  | exception exn -> fun _ -> raise exn

let rec compile cat (vars : string list) (e : Expr.t) : t =
  match e with
  | Const v -> fun _ -> v
  | _ when Analysis.is_closed e -> fold_closed cat e
  | Var x ->
    (match slot vars x with
     | Some i -> fun env -> Array.unsafe_get env i
     | None ->
       (* Unreachable variables fail only when forced, like [Eval.lookup]. *)
       fun _ -> raise (Eval.Eval_error ("unbound variable " ^ x)))
  | Param i ->
    (* Parameters compile exactly like free variables named "?i"; the serve
       layer substitutes them away before planning, so reaching execution
       with one still unbound is an error deferred to first use. *)
    let x = param_name i in
    (match slot vars x with
     | Some idx -> fun env -> Array.unsafe_get env idx
     | None -> fun _ -> raise (Eval.Eval_error ("unbound parameter " ^ x)))
  | Table name -> fun _ -> Value.VSet (Catalog.rows cat name)
  | Tuple fields ->
    let cs = List.map (fun (n, x) -> (n, compile cat vars x)) fields in
    fun env -> Value.tuple (List.map (fun (n, c) -> (n, c env)) cs)
  | Field (x, a) ->
    let c = compile cat vars x in
    fun env -> Value.field (c env) a
  | TupleProj (x, attrs) ->
    let c = compile cat vars x in
    fun env -> Value.project (c env) attrs
  | Except (x, updates) ->
    let cx = compile cat vars x in
    let cus = List.map (fun (n, u) -> (n, compile cat vars u)) updates in
    fun env -> Value.except (cx env) (List.map (fun (n, c) -> (n, c env)) cus)
  | Concat (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Value.concat (ca env) (cb env)
  | SetLit xs ->
    let cs = List.map (compile cat vars) xs in
    fun env -> Value.set (List.map (fun c -> c env) cs)
  | Arith (op, a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Eval.eval_arith op (ca env) (cb env)
  | Cmp (op, a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Value.bool (Eval.eval_cmp op (ca env) (cb env))
  | SetCmp (op, a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Value.bool (Eval.eval_setcmp op (ca env) (cb env))
  | And (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> if Value.as_bool (ca env) then cb env else Value.bool false
  | Or (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> if Value.as_bool (ca env) then Value.bool true else cb env
  | Not a ->
    let ca = compile cat vars a in
    fun env -> Value.bool (not (Value.as_bool (ca env)))
  | If (c, a, b) ->
    let cc = compile cat vars c in
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> if Value.as_bool (cc env) then ca env else cb env
  | Quant (q, x, range, pred) ->
    let crange = compile cat vars range in
    let n = List.length vars in
    let cpred = compile cat (vars @ [ x ]) pred in
    fun env ->
      let elems = Value.as_set (crange env) in
      let env' = grow 1 env in
      let holds v =
        env'.(n) <- v;
        Value.as_bool (cpred env')
      in
      Value.bool
        (match q with
         | Exists -> List.exists holds elems
         | Forall -> List.for_all holds elems)
  | Map { var; body; src } ->
    let csrc = compile cat vars src in
    let n = List.length vars in
    let cbody = compile cat (vars @ [ var ]) body in
    fun env ->
      let elems = Value.as_set (csrc env) in
      let env' = grow 1 env in
      Value.set
        (List.map
           (fun v ->
             env'.(n) <- v;
             cbody env')
           elems)
  | Select { var; pred; src } ->
    let csrc = compile cat vars src in
    let n = List.length vars in
    let cpred = compile cat (vars @ [ var ]) pred in
    fun env ->
      let elems = Value.as_set (csrc env) in
      let env' = grow 1 env in
      Value.set
        (List.filter
           (fun v ->
             env'.(n) <- v;
             Value.as_bool (cpred env'))
           elems)
  | Project (attrs, src) ->
    let c = compile cat vars src in
    fun env ->
      Value.set (List.map (fun v -> Value.project v attrs) (Value.as_set (c env)))
  | Flatten src ->
    let c = compile cat vars src in
    fun env -> Value.flatten (c env)
  | Union (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Value.union (ca env) (cb env)
  | Inter (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Value.inter (ca env) (cb env)
  | Diff (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Value.diff (ca env) (cb env)
  | Product (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env ->
      let xs = Value.as_set (ca env) and ys = Value.as_set (cb env) in
      Value.set
        (List.concat_map (fun x -> List.map (fun y -> Value.concat x y) ys) xs)
  | Join { kind; xvar; yvar; pred; left; right } ->
    let cleft = compile cat vars left and cright = compile cat vars right in
    let n = List.length vars in
    (* Binders appended in reverse precedence order: the reference env is
       [(xvar, x) :: (yvar, y) :: outer], so [xvar] must shadow [yvar] when
       the names collide — the last occurrence wins in [slot]. *)
    let cpred = compile cat (vars @ [ yvar; xvar ]) pred in
    fun env ->
      let xs = Value.as_set (cleft env) and ys = Value.as_set (cright env) in
      let env' = grow 2 env in
      let matches x =
        env'.(n + 1) <- x;
        List.filter
          (fun y ->
            env'.(n) <- y;
            Value.as_bool (cpred env'))
          ys
      in
      (match kind with
       | Inner ->
         Value.set
           (List.concat_map
              (fun x -> List.map (Value.concat x) (matches x))
              xs)
       | Semi -> Value.set (List.filter (fun x -> matches x <> []) xs)
       | Anti -> Value.set (List.filter (fun x -> matches x = []) xs)
       | LeftOuter pad ->
         let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
         Value.set
           (List.concat_map
              (fun x ->
                match matches x with
                | [] -> [ Value.concat x null_row ]
                | ms -> List.map (Value.concat x) ms)
              xs))
  | Nestjoin { xvar; yvar; pred; body; attr; left; right } ->
    let cleft = compile cat vars left and cright = compile cat vars right in
    let n = List.length vars in
    let inner = vars @ [ yvar; xvar ] in
    let cpred = compile cat inner pred and cbody = compile cat inner body in
    fun env ->
      let xs = Value.as_set (cleft env) and ys = Value.as_set (cright env) in
      let env' = grow 2 env in
      let row x =
        env'.(n + 1) <- x;
        let matches =
          List.filter_map
            (fun y ->
              env'.(n) <- y;
              if Value.as_bool (cpred env') then Some (cbody env') else None)
            ys
        in
        Value.concat x (Value.tuple [ (attr, Value.set matches) ])
      in
      Value.set (List.map row xs)
  | Rename (pairs, src) ->
    let c = compile cat vars src in
    fun env ->
      let rename_row row =
        Value.tuple
          (List.map
             (fun (name, v) ->
               match List.assoc_opt name pairs with
               | Some name' -> (name', v)
               | None -> (name, v))
             (Value.as_tuple row))
      in
      Value.set (List.map rename_row (Value.as_set (c env)))
  | Unnest (a, src) ->
    let c = compile cat vars src in
    fun env ->
      let unnest_one x =
        let rest = Value.project_away x [ a ] in
        let as_row inner =
          match inner with
          | Value.VTuple _ -> inner
          | atom -> Value.tuple [ (a, atom) ]
        in
        List.map
          (fun inner -> Value.concat (as_row inner) rest)
          (Value.as_set (Value.field x a))
      in
      Value.set (List.concat_map unnest_one (Value.as_set (c env)))
  | Nest { attrs; into; src } ->
    let c = compile cat vars src in
    fun env -> Eval.eval_nest attrs into (Value.as_set (c env))
  | Divide (a, b) ->
    let ca = compile cat vars a and cb = compile cat vars b in
    fun env -> Eval.eval_divide (ca env) (cb env)
  | Agg (op, src) ->
    let c = compile cat vars src in
    fun env -> Eval.eval_agg op (c env)
  | Deref (cls, x) ->
    let c = compile cat vars x in
    fun env -> Catalog.deref cat cls (c env)

let expr cat ~vars e = compile cat vars e

let pred cat ~vars e =
  let c = compile cat vars e in
  fun env -> Value.as_bool (c env)

(* Arity-specialized entry points for the engine's operators.  Each
   instantiation reuses one preallocated slot buffer across calls: compiled
   closures use their environment synchronously and never retain it, and
   the engine applies a given closure strictly sequentially *on one
   domain*, so the buffer is never live across two invocations.

   That per-instantiation buffer is exactly what makes a single closure
   unsafe to share between domains.  The [_spawner] variants therefore
   split the two costs: [expr1_spawner] pays the compilation once and
   returns a thunk that mints a fresh closure — fresh buffer, shared
   compiled code — so the engine's parallel operators can hand each pool
   domain its own instance.  The compiled closures themselves are safe to
   share: [compile] produces code that only reads immutable structure and
   [grow]s a private copy of the environment per iterator invocation. *)

let expr1_spawner cat ~var e =
  let c = compile cat [ var ] e in
  fun () ->
    let buf = [| Value.VNull |] in
    fun v ->
      buf.(0) <- v;
      c buf

let expr1 cat ~var e = expr1_spawner cat ~var e ()

let pred1_spawner cat ~var e =
  let s = expr1_spawner cat ~var e in
  fun () ->
    let f = s () in
    fun v -> Value.as_bool (f v)

let pred1 cat ~var e = pred1_spawner cat ~var e ()

let expr2_spawner cat ~vars:(a, b) e =
  if String.equal a b then
    (* The reference env is [(a, va) :: (b, vb) :: []], so [a] shadows [b]
       entirely when the names collide. *)
    let s = expr1_spawner cat ~var:a e in
    fun () ->
      let f = s () in
      fun va _ -> f va
  else
    let c = compile cat [ a; b ] e in
    fun () ->
      let buf = [| Value.VNull; Value.VNull |] in
      fun va vb ->
        buf.(0) <- va;
        buf.(1) <- vb;
        c buf

let expr2 cat ~vars e = expr2_spawner cat ~vars e ()

let pred2_spawner cat ~vars e =
  let s = expr2_spawner cat ~vars e in
  fun () ->
    let f = s () in
    fun va vb -> Value.as_bool (f va vb)

let pred2 cat ~vars e = pred2_spawner cat ~vars e ()

(* ------------------------------------------------------------------ *)
(* Vectorizable single-variable predicates                             *)
(*                                                                     *)
(* The batched executor ([Njq_engine.Batch]) wants filter predicates   *)
(* as data, not closures: a comparison of one row attribute against a  *)
(* constant can then run over a decoded column buffer with no boxed    *)
(* boolean per row, and And/Or/Not combine such kernels per row.       *)
(* [vectorize_pred] translates the vectorizable fragment — And/Or/Not  *)
(* over [row.attr CMP closed] leaves — into that IR; anything else     *)
(* becomes an opaque compiled row predicate, so the IR is total and    *)
(* observationally equivalent to [pred1] (same results, same           *)
(* exceptions, same one-time evaluation of closed subexpressions).     *)
(* ------------------------------------------------------------------ *)

type vpred =
  | VpTrue
  | VpFalse
  | VpCmp of Expr.cmp * string * Value.t  (* row.attr CMP constant *)
  | VpAnd of vpred * vpred
  | VpOr of vpred * vpred
  | VpNot of vpred
  | VpOpaque of (Value.t -> bool)  (* compiled fallback, applied per row *)

(* Comparison with the operands swapped — NOT negation ([Expr.flip] is the
   negation): [a op b] iff [b (swap_cmp op) a]. *)
let swap_cmp = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(* A leaf [row.attr CMP other] (operands already oriented): the non-row side
   must denote a constant.  [Const] embeds directly (like [compile]'s
   [Const] case, no interpreter ticks); a closed expression evaluates once
   now (exactly what [fold_closed] would do), with a failure deferred to the
   first per-row use, preserving short-circuit behavior. *)
let vleaf cat var whole op attr other =
  match other with
  | Const c -> VpCmp (op, attr, c)
  | _ when Analysis.is_closed other ->
    (match Eval.run cat other with
     | c -> VpCmp (op, attr, c)
     | exception exn -> VpOpaque (fun _ -> raise exn))
  | _ -> VpOpaque (pred1 cat ~var whole)

let rec vectorize cat var (e : Expr.t) : vpred =
  match e with
  | Const (Value.VBool true) -> VpTrue
  | Const (Value.VBool false) -> VpFalse
  | Const v -> VpOpaque (fun _ -> Value.as_bool v)
  | _ when Analysis.is_closed e ->
    (* Mirrors [compile]'s closed-folding: evaluate once, defer failures
       (including a non-boolean result) to the first use. *)
    (match Eval.run cat e with
     | Value.VBool true -> VpTrue
     | Value.VBool false -> VpFalse
     | v -> VpOpaque (fun _ -> Value.as_bool v)
     | exception exn -> VpOpaque (fun _ -> raise exn))
  | And (a, b) -> VpAnd (vectorize cat var a, vectorize cat var b)
  | Or (a, b) -> VpOr (vectorize cat var a, vectorize cat var b)
  | Not a -> VpNot (vectorize cat var a)
  | Cmp (op, Field (Var v, a), rhs) when String.equal v var ->
    vleaf cat var e op a rhs
  | Cmp (op, lhs, Field (Var v, a)) when String.equal v var ->
    vleaf cat var e (swap_cmp op) a lhs
  | _ -> VpOpaque (pred1 cat ~var e)

let vectorize_pred cat ~var e = vectorize cat var e

(* Syntactic check, no evaluation: [true] guarantees [vectorize_pred]
   produces only constants, column comparisons and effect-free opaque
   closures (constant or deferred-raise) — i.e. a kernel with no compiled
   slot buffer, safe to share across pool domains.  Used by the parallel
   batched operators to decide between one shared kernel and per-domain
   spawned row predicates. *)
let rec vectorizable ~var (e : Expr.t) =
  match e with
  | Const _ -> true
  | _ when Analysis.is_closed e -> true
  | And (a, b) | Or (a, b) -> vectorizable ~var a && vectorizable ~var b
  | Not a -> vectorizable ~var a
  | Cmp (_, Field (Var v, _), rhs) when String.equal v var ->
    (match rhs with Const _ -> true | _ -> Analysis.is_closed rhs)
  | Cmp (_, lhs, Field (Var v, _)) when String.equal v var ->
    (match lhs with Const _ -> true | _ -> Analysis.is_closed lhs)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Row makers                                                          *)
(*                                                                     *)
(* A map body that is a tuple literal with distinct field names can     *)
(* skip [Value.tuple]'s per-row sort: sort the (name, compiled field)   *)
(* pairs once at compile time and build the sorted field list directly  *)
(* through [Value.of_sorted_fields].  Field expressions therefore       *)
(* evaluate in sorted-name order rather than source order — observable  *)
(* only through exception *ordering* when two fields both fail, which   *)
(* no current caller distinguishes.                                     *)
(* ------------------------------------------------------------------ *)

let expr1_rowmaker cat ~var (e : Expr.t) : (Value.t -> Value.t) option =
  match e with
  | _ when Analysis.is_closed e ->
    (* A closed body folds to one shared constant in [expr1]; building a
       fresh tuple per row would only allocate more. *)
    None
  | Tuple fields ->
    let names = List.map fst fields in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then None (* duplicate names: fall back so [Value.tuple] raises per row *)
    else begin
      let sorted =
        List.sort (fun (a, _) (b, _) -> String.compare a b) fields
      in
      let cs = List.map (fun (n, x) -> (n, compile cat [ var ] x)) sorted in
      let buf = [| Value.VNull |] in
      Some
        (fun v ->
          buf.(0) <- v;
          Value.of_sorted_fields (List.map (fun (n, c) -> (n, c buf)) cs))
    end
  | _ -> None
