(* Type inference for ADL expressions.

   [infer cat env e] computes the type of [e] under the typing environment
   [env] (types of free variables) and the catalog's table types, raising
   [Vtype.Type_error] with a located message on ill-typed expressions.

   Empty set literals get the wildcard element type [TAny]; compatibility
   between types is [Vtype.compat], which treats [TAny] as unifiable with
   anything and [TRef _] as oid-compatible. *)

open Expr

type env = (string * Vtype.t) list

let err fmt = Vtype.type_error fmt

let lookup env x =
  match List.assoc_opt x env with
  | Some t -> t
  | None -> err "unbound variable %s" x

let expect_bool what t =
  if not (Vtype.compat t Vtype.TBool) then
    err "%s must be boolean, got %s" what (Vtype.show t)

let expect_set what t =
  match t with
  | Vtype.TSet e -> e
  | Vtype.TAny -> Vtype.TAny
  | _ -> err "%s must be a set, got %s" what (Vtype.show t)

let expect_tuple what t =
  match t with
  | Vtype.TTuple _ -> t
  | _ -> err "%s must be a tuple, got %s" what (Vtype.show t)

let is_numeric = function
  | Vtype.TInt | Vtype.TFloat | Vtype.TAny -> true
  | _ -> false

let rec infer (cat : Catalog.t) (env : env) (e : Expr.t) : Vtype.t =
  match e with
  | Const v ->
    (match v with
     | Value.VSet [] -> Vtype.TSet Vtype.TAny
     | _ -> Vtype.of_value v)
  | Var x -> lookup env x
  (* A parameter's type is only known at bind time; TAny unifies with
     every use site via Vtype.compat. *)
  | Param _ -> Vtype.TAny
  | Table name ->
    (match Catalog.find_opt cat name with
     | Some t -> Vtype.TSet t.row_type
     | None -> err "unknown base table %s" name)
  | Tuple fields ->
    Vtype.tuple (List.map (fun (n, x) -> (n, infer cat env x)) fields)
  | Field (x, a) ->
    let t = infer cat env x in
    (match t with
     | Vtype.TTuple _ -> Vtype.field t a
     | Vtype.TAny -> Vtype.TAny
     | _ -> err "field %s of non-tuple type %s" a (Vtype.show t))
  | TupleProj (x, attrs) ->
    let t = expect_tuple "tuple subscription operand" (infer cat env x) in
    Vtype.project t attrs
  | Except (x, updates) ->
    let t = expect_tuple "except operand" (infer cat env x) in
    let fields = Vtype.fields t in
    let updated =
      List.map
        (fun (n, old) ->
          match List.assoc_opt n updates with
          | Some u -> (n, infer cat env u)
          | None -> (n, old))
        fields
    in
    let added =
      List.filter_map
        (fun (n, u) ->
          if List.mem_assoc n fields then None else Some (n, infer cat env u))
        updates
    in
    Vtype.tuple (updated @ added)
  | Concat (a, b) ->
    let ta = expect_tuple "concat left operand" (infer cat env a) in
    let tb = expect_tuple "concat right operand" (infer cat env b) in
    Vtype.concat ta tb
  | SetLit [] -> Vtype.TSet Vtype.TAny
  | SetLit (x :: rest) ->
    let t0 = infer cat env x in
    let t =
      List.fold_left
        (fun acc y ->
          let ty = infer cat env y in
          if Vtype.compat acc ty then Vtype.lub acc ty
          else err "heterogeneous set literal: %s vs %s" (Vtype.show acc) (Vtype.show ty))
        t0 rest
    in
    Vtype.TSet t
  | Arith (_, a, b) ->
    let ta = infer cat env a and tb = infer cat env b in
    if not (is_numeric ta && is_numeric tb) then
      err "arithmetic on non-numeric types %s, %s" (Vtype.show ta) (Vtype.show tb);
    if not (Vtype.compat ta tb) then
      err "arithmetic on mixed types %s, %s" (Vtype.show ta) (Vtype.show tb);
    Vtype.lub ta tb
  | Cmp (op, a, b) ->
    let ta = infer cat env a and tb = infer cat env b in
    (match op with
     | Eq | Neq ->
       if not (Vtype.compat ta tb) then
         err "equality between incompatible types %s and %s" (Vtype.show ta)
           (Vtype.show tb)
     | Lt | Le | Gt | Ge ->
       if not (Vtype.compat ta tb) then
         err "ordering between incompatible types %s and %s" (Vtype.show ta)
           (Vtype.show tb));
    Vtype.TBool
  | SetCmp (op, a, b) ->
    let ta = infer cat env a and tb = infer cat env b in
    (match op with
     | Mem | NotMem ->
       let elem = expect_set "right operand of 'in'" tb in
       if not (Vtype.compat ta elem) then
         err "'in': element type %s does not match set of %s" (Vtype.show ta)
           (Vtype.show elem)
     | Ni | NotNi ->
       let elem = expect_set "left operand of 'ni'" ta in
       if not (Vtype.compat tb elem) then
         err "'ni': element type %s does not match set of %s" (Vtype.show tb)
           (Vtype.show elem)
     | SubsetEq | Subset | SupsetEq | Supset | SetEq | SetNeq ->
       let ea = expect_set "set comparison operand" ta in
       let eb = expect_set "set comparison operand" tb in
       if not (Vtype.compat ea eb) then
         err "set comparison between sets of %s and %s" (Vtype.show ea)
           (Vtype.show eb));
    Vtype.TBool
  | And (a, b) | Or (a, b) ->
    expect_bool "connective operand" (infer cat env a);
    expect_bool "connective operand" (infer cat env b);
    Vtype.TBool
  | Not a ->
    expect_bool "negation operand" (infer cat env a);
    Vtype.TBool
  | If (c, a, b) ->
    expect_bool "condition" (infer cat env c);
    let ta = infer cat env a and tb = infer cat env b in
    if not (Vtype.compat ta tb) then
      err "if branches of different types %s and %s" (Vtype.show ta) (Vtype.show tb);
    Vtype.lub ta tb
  | Quant (_, x, range, pred) ->
    let elem = expect_set "quantifier range" (infer cat env range) in
    expect_bool "quantifier body" (infer cat ((x, elem) :: env) pred);
    Vtype.TBool
  | Map { var; body; src } ->
    let elem = expect_set "map operand" (infer cat env src) in
    Vtype.TSet (infer cat ((var, elem) :: env) body)
  | Select { var; pred; src } ->
    let t = infer cat env src in
    let elem = expect_set "select operand" t in
    expect_bool "selection predicate" (infer cat ((var, elem) :: env) pred);
    t
  | Project (attrs, src) ->
    let elem = expect_set "projection operand" (infer cat env src) in
    let row = expect_tuple "projection row" elem in
    Vtype.TSet (Vtype.project row attrs)
  | Flatten src ->
    let elem = expect_set "flatten operand" (infer cat env src) in
    (match elem with
     | Vtype.TAny -> Vtype.TSet Vtype.TAny
     | _ -> Vtype.TSet (expect_set "flatten inner" elem))
  | Union (a, b) | Inter (a, b) | Diff (a, b) ->
    let ta = infer cat env a and tb = infer cat env b in
    let ea = expect_set "set operation operand" ta in
    let eb = expect_set "set operation operand" tb in
    if not (Vtype.compat ea eb) then
      err "set operation between sets of %s and %s" (Vtype.show ea) (Vtype.show eb);
    Vtype.TSet (Vtype.lub ea eb)
  | Product (a, b) ->
    let ea = expect_tuple "product row" (expect_set "product operand" (infer cat env a)) in
    let eb = expect_tuple "product row" (expect_set "product operand" (infer cat env b)) in
    Vtype.TSet (Vtype.concat ea eb)
  | Join { kind; xvar; yvar; pred; left; right } ->
    (* Semijoins and antijoins never concatenate, so their operand rows may
       be of any element type (e.g. a projected set of keys); only the
       concatenating kinds require tuple rows on both sides. *)
    let ea = expect_set "join operand" (infer cat env left) in
    let eb = expect_set "join operand" (infer cat env right) in
    expect_bool "join predicate" (infer cat ((xvar, ea) :: (yvar, eb) :: env) pred);
    (match kind with
     | Semi | Anti -> Vtype.TSet ea
     | Inner ->
       let ea = expect_tuple "join row" ea and eb = expect_tuple "join row" eb in
       Vtype.TSet (Vtype.concat ea eb)
     | LeftOuter pad ->
       let ea = expect_tuple "join row" ea and eb = expect_tuple "join row" eb in
       let sch_b = List.map fst (Vtype.fields eb) in
       if not (List.sort String.compare pad = sch_b) then
         err "outer join null-padding %s does not match right schema"
           (String.concat "," pad);
       Vtype.TSet (Vtype.concat ea eb))
  | Nestjoin { xvar; yvar; pred; body; attr; left; right } ->
    let ea = expect_tuple "nestjoin row" (expect_set "nestjoin operand" (infer cat env left)) in
    let eb = expect_tuple "nestjoin row" (expect_set "nestjoin operand" (infer cat env right)) in
    let env' = (xvar, ea) :: (yvar, eb) :: env in
    expect_bool "nestjoin predicate" (infer cat env' pred);
    let tbody = infer cat env' body in
    if Vtype.has_field ea attr then
      err "nestjoin attribute %s already present in left schema" attr;
    Vtype.TSet (Vtype.concat ea (Vtype.tuple [ (attr, Vtype.TSet tbody) ]))
  | Rename (pairs, src) ->
    let row = expect_tuple "rename row" (expect_set "rename operand" (infer cat env src)) in
    List.iter
      (fun (old_name, _) ->
        if not (Vtype.has_field row old_name) then
          err "rename: no attribute %s" old_name)
      pairs;
    Vtype.TSet
      (Vtype.tuple
         (List.map
            (fun (n, t) ->
              match List.assoc_opt n pairs with
              | Some n' -> (n', t)
              | None -> (n, t))
            (Vtype.fields row)))
  | Unnest (a, src) ->
    let row = expect_tuple "unnest row" (expect_set "unnest operand" (infer cat env src)) in
    let elem = expect_set "unnested attribute" (Vtype.field row a) in
    let inner_row =
      match elem with
      | Vtype.TTuple _ -> elem
      | t -> Vtype.tuple [ (a, t) ] (* atomic elements keep the attr name *)
    in
    Vtype.TSet (Vtype.concat inner_row (Vtype.project_away row [ a ]))
  | Nest { attrs; into; src } ->
    let row = expect_tuple "nest row" (expect_set "nest operand" (infer cat env src)) in
    List.iter
      (fun a ->
        if not (Vtype.has_field row a) then err "nest attribute %s not in schema" a)
      attrs;
    let grouped = Vtype.project row attrs in
    let rest = Vtype.project_away row attrs in
    if Vtype.has_field rest into then
      err "nest target attribute %s already present" into;
    Vtype.concat rest (Vtype.tuple [ (into, Vtype.TSet grouped) ]) |> Vtype.set
  | Divide (a, b) ->
    let ra = expect_tuple "division row" (expect_set "division operand" (infer cat env a)) in
    let rb = expect_tuple "division row" (expect_set "division operand" (infer cat env b)) in
    let b_attrs = List.map fst (Vtype.fields rb) in
    List.iter
      (fun battr ->
        if not (Vtype.has_field ra battr) then
          err "division: divisor attribute %s missing from dividend" battr)
      b_attrs;
    Vtype.TSet (Vtype.project_away ra b_attrs)
  | Agg (op, src) ->
    let elem = expect_set "aggregate operand" (infer cat env src) in
    (match op with
     | Count -> Vtype.TInt
     | Sum | Min | Max ->
       if not (is_numeric elem) then
         err "aggregate over non-numeric set of %s" (Vtype.show elem);
       (match elem with Vtype.TAny -> Vtype.TInt | t -> t)
     | Avg ->
       if not (is_numeric elem) then
         err "avg over non-numeric set of %s" (Vtype.show elem);
       Vtype.TFloat)
  | Deref (cls, x) ->
    let t = infer cat env x in
    (match t with
     | Vtype.TOid | Vtype.TAny -> ()
     | Vtype.TRef c when String.equal c cls -> ()
     | Vtype.TRef c -> err "dereferencing a ref to %s as %s" c cls
     | _ -> err "dereferencing non-oid type %s" (Vtype.show t));
    (match Catalog.find_opt cat cls with
     | Some tbl -> tbl.row_type
     | None -> err "deref into unknown extent %s" cls)

(* Result-typed wrapper for callers that prefer not to catch exceptions. *)
let infer_result cat env e =
  match infer cat env e with
  | t -> Ok t
  | exception Vtype.Type_error msg -> Error msg

(* Typecheck a closed query expression. *)
let check_closed cat e =
  Njq_obs.Span.with_span "typecheck" (fun () -> infer_result cat [] e)
