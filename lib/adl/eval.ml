(* Reference evaluator for ADL.

   This is a direct transcription of the semantic equations (items 1-12) in
   Section 3 of the paper.  Iterators are evaluated by nested loops, so this
   evaluator realizes exactly the tuple-oriented query processing that the
   optimizer tries to move away from; it doubles as the correctness oracle
   for both the rewriter (rewrites must preserve [eval]) and the physical
   engine (plans must compute [eval] of their logical expression).

   Work accounting: every evaluation of an iterator's parameter function on
   one element ticks the "nl_pred_eval" counter, and every tuple drawn from
   an operand ticks "nl_tuple_visit".  Comparing these counters between the
   original nested expression and its unnested form quantifies the paper's
   tuple- vs set-oriented claim independently of timing noise. *)

open Expr

type env = (string * Value.t) list

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> eval_error "unbound variable %s" x

(* The two work counters are on the evaluator's innermost loops; intern
   their handles once instead of paying a registry probe per tick. *)
module M = Njq_obs.Metrics

let c_tuple_visit = M.counter "nl_tuple_visit"
let c_pred_eval = M.counter "nl_pred_eval"

let visit v =
  M.incr c_tuple_visit;
  v

let rec eval (cat : Catalog.t) (env : env) (e : Expr.t) : Value.t =
  match e with
  | Const v -> v
  | Var x -> lookup env x
  (* Unbound unless the caller supplied a binding under "?i" (the serve
     layer substitutes parameters away before execution; the env path
     supports direct evaluation of parameterized expressions in tests). *)
  | Param i -> lookup env (Expr.param_name i)
  | Table name -> Value.VSet (Catalog.rows cat name)
  | Tuple fields ->
    Value.tuple (List.map (fun (n, x) -> (n, eval cat env x)) fields)
  | Field (x, a) -> Value.field (eval cat env x) a
  | TupleProj (x, attrs) -> Value.project (eval cat env x) attrs
  | Except (x, updates) ->
    let base = eval cat env x in
    Value.except base (List.map (fun (n, u) -> (n, eval cat env u)) updates)
  | Concat (a, b) -> Value.concat (eval cat env a) (eval cat env b)
  | SetLit xs -> Value.set (List.map (eval cat env) xs)
  | Arith (op, a, b) -> eval_arith op (eval cat env a) (eval cat env b)
  | Cmp (op, a, b) -> Value.bool (eval_cmp op (eval cat env a) (eval cat env b))
  | SetCmp (op, a, b) ->
    Value.bool (eval_setcmp op (eval cat env a) (eval cat env b))
  | And (a, b) ->
    (* Short-circuit, left to right. *)
    if Value.as_bool (eval cat env a) then eval cat env b else Value.bool false
  | Or (a, b) ->
    if Value.as_bool (eval cat env a) then Value.bool true else eval cat env b
  | Not a -> Value.bool (not (Value.as_bool (eval cat env a)))
  | If (c, a, b) ->
    if Value.as_bool (eval cat env c) then eval cat env a else eval cat env b
  | Quant (q, x, range, pred) ->
    let elems = Value.as_set (eval cat env range) in
    let holds v =
      M.incr c_pred_eval;
      Value.as_bool (eval cat ((x, visit v) :: env) pred)
    in
    Value.bool
      (match q with
       | Exists -> List.exists holds elems
       | Forall -> List.for_all holds elems)
  | Map { var; body; src } ->
    let elems = Value.as_set (eval cat env src) in
    Value.set
      (List.map
         (fun v ->
           M.incr c_pred_eval;
           eval cat ((var, visit v) :: env) body)
         elems)
  | Select { var; pred; src } ->
    let elems = Value.as_set (eval cat env src) in
    Value.set
      (List.filter
         (fun v ->
           M.incr c_pred_eval;
           Value.as_bool (eval cat ((var, visit v) :: env) pred))
         elems)
  | Project (attrs, src) ->
    let elems = Value.as_set (eval cat env src) in
    Value.set (List.map (fun v -> Value.project (visit v) attrs) elems)
  | Flatten src -> Value.flatten (eval cat env src)
  | Union (a, b) -> Value.union (eval cat env a) (eval cat env b)
  | Inter (a, b) -> Value.inter (eval cat env a) (eval cat env b)
  | Diff (a, b) -> Value.diff (eval cat env a) (eval cat env b)
  | Product (a, b) ->
    let xs = Value.as_set (eval cat env a) and ys = Value.as_set (eval cat env b) in
    Value.set
      (List.concat_map
         (fun x -> List.map (fun y -> Value.concat (visit x) (visit y)) ys)
         xs)
  | Join { kind; xvar; yvar; pred; left; right } ->
    eval_join cat env kind xvar yvar pred left right
  | Nestjoin { xvar; yvar; pred; body; attr; left; right } ->
    let xs = Value.as_set (eval cat env left)
    and ys = Value.as_set (eval cat env right) in
    let row x =
      let matches =
        List.filter_map
          (fun y ->
            M.incr c_pred_eval;
            let env' = (xvar, x) :: (yvar, visit y) :: env in
            if Value.as_bool (eval cat env' pred) then
              Some (eval cat env' body)
            else None)
          ys
      in
      Value.concat (visit x) (Value.tuple [ (attr, Value.set matches) ])
    in
    Value.set (List.map row xs)
  | Rename (pairs, src) ->
    let elems = Value.as_set (eval cat env src) in
    let rename_row row =
      Value.tuple
        (List.map
           (fun (n, v) ->
             match List.assoc_opt n pairs with
             | Some n' -> (n', v)
             | None -> (n, v))
           (Value.as_tuple (visit row)))
    in
    Value.set (List.map rename_row elems)
  | Unnest (a, src) ->
    let elems = Value.as_set (eval cat env src) in
    let unnest_one x =
      let rest = Value.project_away (visit x) [ a ] in
      (* Set-of-tuples attributes concatenate their element fields; sets of
         atomic values (e.g. sets of oid references) keep the attribute name
         for the unnested value. *)
      let as_row inner =
        match inner with
        | Value.VTuple _ -> inner
        | atom -> Value.tuple [ (a, atom) ]
      in
      List.map
        (fun inner -> Value.concat (as_row inner) rest)
        (Value.as_set (Value.field x a))
    in
    Value.set (List.concat_map unnest_one elems)
  | Nest { attrs; into; src } ->
    let elems = Value.as_set (eval cat env src) in
    eval_nest attrs into elems
  | Divide (a, b) -> eval_divide (eval cat env a) (eval cat env b)
  | Agg (op, src) -> eval_agg op (eval cat env src)
  | Deref (cls, x) -> Catalog.deref cat cls (eval cat env x)

and eval_join cat env kind xvar yvar pred left right =
  let xs = Value.as_set (eval cat env left)
  and ys = Value.as_set (eval cat env right) in
  let matches x =
    List.filter
      (fun y ->
        M.incr c_pred_eval;
        Value.as_bool (eval cat ((xvar, x) :: (yvar, visit y) :: env) pred))
      ys
  in
  match kind with
  | Inner ->
    Value.set
      (List.concat_map
         (fun x -> List.map (Value.concat (visit x)) (matches x))
         xs)
  | Semi ->
    Value.set (List.filter (fun x -> matches (visit x) <> []) xs)
  | Anti ->
    Value.set (List.filter (fun x -> matches (visit x) = []) xs)
  | LeftOuter pad ->
    let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
    Value.set
      (List.concat_map
         (fun x ->
           match matches (visit x) with
           | [] -> [ Value.concat x null_row ]
           | ms -> List.map (Value.concat x) ms)
         xs)

(* nu_{A -> a}(e), semantics item 9: group on the complement attributes B and
   collect the A-projections of each group into set-valued attribute a. *)
and eval_nest attrs into elems =
  match elems with
  | [] -> Value.empty_set
  | first :: _ ->
    let all_fields = Value.field_names first in
    let group_by = List.filter (fun f -> not (List.mem f attrs)) all_fields in
    let key x = Value.project x group_by in
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun x ->
        let k = key (visit x) in
        let member = Value.project x attrs in
        match Hashtbl.find_opt groups k with
        | Some members -> members := member :: !members
        | None ->
          Hashtbl.add groups k (ref [ member ]);
          order := k :: !order)
      elems;
    Value.set
      (List.map
         (fun k ->
           let members = !(Hashtbl.find groups k) in
           Value.concat k (Value.tuple [ (into, Value.set members) ]))
         !order)

(* Relational division: SCH(a) = A + B, SCH(b) = B; the result contains the
   A-projections x[A] such that {x[A]} x b is included in a. *)
and eval_divide a b =
  let xs = Value.as_set a and ys = Value.as_set b in
  match xs, ys with
  | [], _ -> Value.empty_set
  | _, [] ->
    (* The divisor schema is not observable from an empty set at run time;
       we adopt B = {} so the quotient is the dividend itself.  The planner
       only produces divisions with statically known non-degenerate types. *)
    Value.set xs
  | x :: _, y :: _ ->
    let b_attrs = Value.field_names y in
    let a_attrs =
      List.filter (fun f -> not (List.mem f b_attrs)) (Value.field_names x)
    in
    let quotient_candidates =
      List.sort_uniq Value.compare (List.map (fun v -> Value.project v a_attrs) xs)
    in
    let holds q =
      List.for_all
        (fun y ->
          M.incr c_pred_eval;
          List.exists (fun x -> Value.equal x (Value.concat q y)) xs)
        ys
    in
    Value.set (List.filter holds quotient_candidates)

and eval_arith op a b =
  match a, b with
  | Value.VInt x, Value.VInt y ->
    Value.int
      (match op with
       | Add -> x + y
       | Sub -> x - y
       | Mul -> x * y
       | Div -> if y = 0 then eval_error "division by zero" else x / y
       | Mod -> if y = 0 then eval_error "modulo by zero" else x mod y)
  | Value.VFloat x, Value.VFloat y ->
    Value.float
      (match op with
       | Add -> x +. y
       | Sub -> x -. y
       | Mul -> x *. y
       | Div -> x /. y
       | Mod -> Float.rem x y)
  | _ -> eval_error "arithmetic on non-numeric or mixed operands"

and eval_cmp op a b =
  (* NULL (from outer-join padding) compares equal only to itself under Eq,
     and is less than every other value, consistent with [Value.compare]. *)
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

and eval_setcmp op a b =
  match op with
  | Mem -> Value.mem a b
  | NotMem -> not (Value.mem a b)
  | SubsetEq -> Value.subset_eq a b
  | Subset -> Value.subset a b
  | SupsetEq -> Value.subset_eq b a
  | Supset -> Value.subset b a
  | SetEq -> Value.equal a b
  | SetNeq -> not (Value.equal a b)
  | Ni -> Value.mem b a
  | NotNi -> not (Value.mem b a)

and eval_agg op src =
  let elems = Value.as_set src in
  match op with
  | Count -> Value.int (List.length elems)
  | Sum ->
    List.fold_left
      (fun acc v -> eval_arith Add acc v)
      (match elems with
       | Value.VFloat _ :: _ -> Value.float 0.0
       | _ -> Value.int 0)
      elems
  | Min ->
    (match elems with
     | [] -> eval_error "min of empty set"
     | x :: rest -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) x rest)
  | Max ->
    (match elems with
     | [] -> eval_error "max of empty set"
     | x :: rest -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) x rest)
  | Avg ->
    (match elems with
     | [] -> eval_error "avg of empty set"
     | _ ->
       let n = List.length elems in
       let as_float = function
         | Value.VInt i -> float_of_int i
         | Value.VFloat f -> f
         | _ -> eval_error "avg of non-numeric set"
       in
       Value.float (List.fold_left (fun acc v -> acc +. as_float v) 0.0 elems /. float_of_int n))

(* Evaluate a closed expression (no free variables). *)
let run cat e = eval cat [] e

(* Evaluate a predicate (boolean expression) under an environment. *)
let run_pred cat env e = Value.as_bool (eval cat env e)
