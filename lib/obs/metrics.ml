(* The metrics registry: named counters and timers with *pre-interned
   handles*.

   The legacy [Njq_adl.Counters] interface looks a counter up in a string
   hashtable on every tick — a hash of the name plus a table probe on the
   hottest paths of the engine (per probe, per pair, per spill).  Here a
   counter is interned once into a handle holding the mutable cell
   directly; [incr] is a bounds-free add guarded by one flag read.  The
   string-keyed interface survives on top of interning, so existing call
   sites and the [Counters] facade keep working unchanged.

   Counters hold plain [int]s (work units); timers accumulate nanoseconds
   and an event count.  The registry is process-global and single-threaded,
   like the engine. *)

type counter = { c_name : string; mutable c_value : int }

type timer = {
  t_name : string;
  mutable t_total_ns : int;
  mutable t_events : int;
}

(* One flag for the whole registry: [Counters.without_counting] brackets
   oracle computations inside measured regions. *)
let enabled = ref true

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let incr ?(n = 1) c = if !enabled then c.c_value <- c.c_value + n

let value c = c.c_value
let counter_name c = c.c_name

let timer name =
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
    let t = { t_name = name; t_total_ns = 0; t_events = 0 } in
    Hashtbl.add timers name t;
    t

let record t ns =
  if !enabled then begin
    t.t_total_ns <- t.t_total_ns + ns;
    t.t_events <- t.t_events + 1
  end

let time t f =
  let start = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> record t (Clock.elapsed_ns start)) f

let timer_ns t = t.t_total_ns
let timer_events t = t.t_events

(* Zero every handle.  Handles stay interned (their identity is the point),
   so snapshots filter zero-valued entries to keep the "only what was
   ticked" reading of the legacy interface. *)
let reset_counters () = Hashtbl.iter (fun _ c -> c.c_value <- 0) counters

let reset_timers () =
  Hashtbl.iter
    (fun _ t ->
      t.t_total_ns <- 0;
      t.t_events <- 0)
    timers

let reset () =
  reset_counters ();
  reset_timers ()

let counter_snapshot () =
  Hashtbl.fold
    (fun name c acc -> if c.c_value <> 0 then (name, c.c_value) :: acc else acc)
    counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let timer_snapshot () =
  Hashtbl.fold
    (fun name t acc ->
      if t.t_events <> 0 then (name, (t.t_total_ns, t.t_events)) :: acc else acc)
    timers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Run [f] with the registry ignoring increments and records. *)
let with_disabled f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f
