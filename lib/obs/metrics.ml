(* The metrics registry: named counters and timers with *pre-interned
   handles*.

   The legacy [Njq_adl.Counters] interface looks a counter up in a string
   hashtable on every tick — a hash of the name plus a table probe on the
   hottest paths of the engine (per probe, per pair, per spill).  Here a
   counter is interned once into a handle holding the mutable cell
   directly; [incr] is a bounds-free add guarded by one flag read.  The
   string-keyed interface survives on top of interning, so existing call
   sites and the [Counters] facade keep working unchanged.

   Counters hold plain [int]s (work units); timers accumulate nanoseconds
   and an event count.

   Domain safety.  The registry's *main cells* belong to the main domain:
   reads (snapshots) and resets happen there, and so do the hot-path
   increments of sequential execution, which stay a single unsynchronized
   add.  Under the engine's parallel sections ([Njq_engine.Pool]), every
   increment is redirected to a per-domain *shard* — a domain-local table
   of pending deltas keyed by the handle's id — and shards are flushed
   into the main cells (under the registry mutex) when each domain
   finishes its part of the job, before the pool join returns.  Counter
   and timer totals are therefore exact under parallelism: nothing is
   dropped, double-counted, or torn.  The redirect is armed by
   [enter_parallel]/[exit_parallel], which only the pool calls; the main
   domain also shards while armed, because its increments would otherwise
   race with worker flushes. *)

type counter = { c_id : int; c_name : string; mutable c_value : int }

type timer = {
  t_id : int;
  t_name : string;
  mutable t_total_ns : int;
  mutable t_events : int;
}

(* A named latency/allocation distribution.  The main histogram belongs
   to the main domain like counter cells do; sharded observations land in
   per-domain scratch histograms and merge on flush (exact: histogram
   merge is pointwise bucket addition). *)
type hist = { h_id : int; h_name : string; h_main : Histogram.t }

(* One flag for the whole registry: [Counters.without_counting] brackets
   oracle computations inside measured regions. *)
let enabled = ref true

(* Interning and shard flushes synchronize on one mutex.  Hot paths never
   take it: they go through pre-interned handles, and the sharded-add path
   touches only domain-local state. *)
let reg_mu = Mutex.create ()

let with_reg f =
  Mutex.lock reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16
let hists : (string, hist) Hashtbl.t = Hashtbl.create 16
let next_id = ref 0

(* Parallel-section counter deltas attributed per domain id, accumulated
   at shard-flush time (under [reg_mu]).  Sequential main-domain ticks
   are deliberately absent: this table answers "which domain did the
   parallel work", not "what was the total" — totals live in the main
   cells. *)
let domain_work : (int, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8

let counter name =
  with_reg (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_id = !next_id; c_name = name; c_value = 0 } in
        incr next_id;
        Hashtbl.add counters name c;
        c)

let timer name =
  with_reg (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
        let t = { t_id = !next_id; t_name = name; t_total_ns = 0; t_events = 0 } in
        incr next_id;
        Hashtbl.add timers name t;
        t)

let histogram name =
  with_reg (fun () ->
      match Hashtbl.find_opt hists name with
      | Some h -> h
      | None ->
        let h = { h_id = !next_id; h_name = name; h_main = Histogram.create () }
        in
        incr next_id;
        Hashtbl.add hists name h;
        h)

(* ------------------------------------------------------------------ *)
(* Per-domain shards                                                   *)
(* ------------------------------------------------------------------ *)

type shard_cell =
  | C of counter * int ref
  | T of timer * int ref * int ref
  | H of hist * Histogram.t

(* Pending deltas of this domain, keyed by handle id. *)
let shard_key : (int, shard_cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

(* Armed by the pool around parallel sections.  Written only by the main
   domain while no worker runs; workers observe the [true] value through
   the happens-before edge of the pool's job hand-off. *)
let sharded = ref false

let shard_counter_add c n =
  let tbl = Domain.DLS.get shard_key in
  match Hashtbl.find_opt tbl c.c_id with
  | Some (C (_, r)) -> r := !r + n
  | Some _ | None -> Hashtbl.replace tbl c.c_id (C (c, ref n))

let shard_timer_add t ns =
  let tbl = Domain.DLS.get shard_key in
  match Hashtbl.find_opt tbl t.t_id with
  | Some (T (_, total, events)) ->
    total := !total + ns;
    Stdlib.incr events
  | Some _ | None -> Hashtbl.replace tbl t.t_id (T (t, ref ns, ref 1))

let shard_hist_add h v n =
  let tbl = Domain.DLS.get shard_key in
  match Hashtbl.find_opt tbl h.h_id with
  | Some (H (_, scratch)) -> Histogram.record ~n scratch v
  | Some _ | None ->
    let scratch = Histogram.create () in
    Histogram.record ~n scratch v;
    Hashtbl.replace tbl h.h_id (H (h, scratch))

(* Flush this domain's pending deltas into the main cells.  Called by each
   pool participant when it finishes its share of a job — always
   before the pool join returns, so the main domain never reads a cell
   while another domain still holds deltas for it. *)
let flush_local () =
  let tbl = Domain.DLS.get shard_key in
  if Hashtbl.length tbl > 0 then begin
    let did = (Domain.self () :> int) in
    with_reg (fun () ->
        let attributed =
          match Hashtbl.find_opt domain_work did with
          | Some t -> t
          | None ->
            let t = Hashtbl.create 16 in
            Hashtbl.add domain_work did t;
            t
        in
        Hashtbl.iter
          (fun _ cell ->
            match cell with
            | C (c, r) ->
              c.c_value <- c.c_value + !r;
              let prev =
                Option.value ~default:0
                  (Hashtbl.find_opt attributed c.c_name)
              in
              Hashtbl.replace attributed c.c_name (prev + !r)
            | T (t, total, events) ->
              t.t_total_ns <- t.t_total_ns + !total;
              t.t_events <- t.t_events + !events
            | H (h, scratch) -> Histogram.merge_into ~into:h.h_main scratch)
          tbl);
    Hashtbl.reset tbl
  end

let enter_parallel () = sharded := true

let exit_parallel () =
  sharded := false;
  flush_local ()

(* ------------------------------------------------------------------ *)
(* Ticks                                                               *)
(* ------------------------------------------------------------------ *)

let incr ?(n = 1) c =
  if !enabled then
    if not !sharded then c.c_value <- c.c_value + n else shard_counter_add c n

let value c = c.c_value
let counter_name c = c.c_name

let record t ns =
  if !enabled then
    if not !sharded then begin
      t.t_total_ns <- t.t_total_ns + ns;
      t.t_events <- t.t_events + 1
    end
    else shard_timer_add t ns

let time t f =
  let start = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> record t (Clock.elapsed_ns start)) f

let timer_ns t = t.t_total_ns
let timer_events t = t.t_events

(* Record [v] into a histogram.  Sequentially this writes the main
   histogram (main-domain-only, like counter cells); inside a parallel
   section it lands in the domain's scratch histogram and merges exactly
   on flush. *)
let observe ?(n = 1) h v =
  if !enabled then
    if not !sharded then Histogram.record ~n h.h_main v
    else shard_hist_add h v n

let hist_name h = h.h_name

(* The merged main histogram.  Only read this outside parallel sections
   (shards may still hold samples while one is open). *)
let hist_value h = h.h_main

(* Zero every handle.  Handles stay interned (their identity is the point),
   so snapshots filter zero-valued entries to keep the "only what was
   ticked" reading of the legacy interface. *)
let reset_counters () = Hashtbl.iter (fun _ c -> c.c_value <- 0) counters

let reset_timers () =
  Hashtbl.iter
    (fun _ t ->
      t.t_total_ns <- 0;
      t.t_events <- 0)
    timers

let reset_histograms () = Hashtbl.iter (fun _ h -> Histogram.clear h.h_main) hists
let reset_domain_work () = with_reg (fun () -> Hashtbl.reset domain_work)

let reset () =
  reset_counters ();
  reset_timers ();
  reset_histograms ();
  reset_domain_work ()

let counter_snapshot () =
  Hashtbl.fold
    (fun name c acc -> if c.c_value <> 0 then (name, c.c_value) :: acc else acc)
    counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_snapshot () =
  Hashtbl.fold
    (fun name h acc ->
      if not (Histogram.is_empty h.h_main) then (name, h.h_main) :: acc else acc)
    hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Parallel-section counter deltas per domain id:
   [(domain_id, [(counter, delta)])], both levels sorted.  Summing a
   counter across domains gives exactly its sharded (parallel)
   contribution to the main cell. *)
let counter_snapshot_by_domain () =
  with_reg (fun () ->
      Hashtbl.fold
        (fun did tbl acc ->
          let rows =
            Hashtbl.fold
              (fun name v acc -> if v <> 0 then (name, v) :: acc else acc)
              tbl []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          if rows = [] then acc else (did, rows) :: acc)
        domain_work []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let timer_snapshot () =
  Hashtbl.fold
    (fun name t acc ->
      if t.t_events <> 0 then (name, (t.t_total_ns, t.t_events)) :: acc else acc)
    timers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Run [f] with the registry ignoring increments and records. *)
let with_disabled f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f
