(* The metrics registry: named counters and timers with *pre-interned
   handles*.

   The legacy [Njq_adl.Counters] interface looks a counter up in a string
   hashtable on every tick — a hash of the name plus a table probe on the
   hottest paths of the engine (per probe, per pair, per spill).  Here a
   counter is interned once into a handle holding the mutable cell
   directly; [incr] is a bounds-free add guarded by one flag read.  The
   string-keyed interface survives on top of interning, so existing call
   sites and the [Counters] facade keep working unchanged.

   Counters hold plain [int]s (work units); timers accumulate nanoseconds
   and an event count.

   Domain safety.  The registry's *main cells* belong to the main domain:
   reads (snapshots) and resets happen there, and so do the hot-path
   increments of sequential execution, which stay a single unsynchronized
   add.  Under the engine's parallel sections ([Njq_engine.Pool]), every
   increment is redirected to a per-domain *shard* — a domain-local table
   of pending deltas keyed by the handle's id — and shards are flushed
   into the main cells (under the registry mutex) when each domain
   finishes its part of the job, before the pool join returns.  Counter
   and timer totals are therefore exact under parallelism: nothing is
   dropped, double-counted, or torn.  The redirect is armed by
   [enter_parallel]/[exit_parallel], which only the pool calls; the main
   domain also shards while armed, because its increments would otherwise
   race with worker flushes. *)

type counter = { c_id : int; c_name : string; mutable c_value : int }

type timer = {
  t_id : int;
  t_name : string;
  mutable t_total_ns : int;
  mutable t_events : int;
}

(* One flag for the whole registry: [Counters.without_counting] brackets
   oracle computations inside measured regions. *)
let enabled = ref true

(* Interning and shard flushes synchronize on one mutex.  Hot paths never
   take it: they go through pre-interned handles, and the sharded-add path
   touches only domain-local state. *)
let reg_mu = Mutex.create ()

let with_reg f =
  Mutex.lock reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16
let next_id = ref 0

let counter name =
  with_reg (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_id = !next_id; c_name = name; c_value = 0 } in
        incr next_id;
        Hashtbl.add counters name c;
        c)

let timer name =
  with_reg (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
        let t = { t_id = !next_id; t_name = name; t_total_ns = 0; t_events = 0 } in
        incr next_id;
        Hashtbl.add timers name t;
        t)

(* ------------------------------------------------------------------ *)
(* Per-domain shards                                                   *)
(* ------------------------------------------------------------------ *)

type shard_cell = C of counter * int ref | T of timer * int ref * int ref

(* Pending deltas of this domain, keyed by handle id. *)
let shard_key : (int, shard_cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

(* Armed by the pool around parallel sections.  Written only by the main
   domain while no worker runs; workers observe the [true] value through
   the happens-before edge of the pool's job hand-off. *)
let sharded = ref false

let shard_counter_add c n =
  let tbl = Domain.DLS.get shard_key in
  match Hashtbl.find_opt tbl c.c_id with
  | Some (C (_, r)) -> r := !r + n
  | Some (T _) | None -> Hashtbl.replace tbl c.c_id (C (c, ref n))

let shard_timer_add t ns =
  let tbl = Domain.DLS.get shard_key in
  match Hashtbl.find_opt tbl t.t_id with
  | Some (T (_, total, events)) ->
    total := !total + ns;
    Stdlib.incr events
  | Some (C _) | None -> Hashtbl.replace tbl t.t_id (T (t, ref ns, ref 1))

(* Flush this domain's pending deltas into the main cells.  Called by each
   pool participant when it finishes its share of a job — always
   before the pool join returns, so the main domain never reads a cell
   while another domain still holds deltas for it. *)
let flush_local () =
  let tbl = Domain.DLS.get shard_key in
  if Hashtbl.length tbl > 0 then begin
    with_reg (fun () ->
        Hashtbl.iter
          (fun _ cell ->
            match cell with
            | C (c, r) -> c.c_value <- c.c_value + !r
            | T (t, total, events) ->
              t.t_total_ns <- t.t_total_ns + !total;
              t.t_events <- t.t_events + !events)
          tbl);
    Hashtbl.reset tbl
  end

let enter_parallel () = sharded := true

let exit_parallel () =
  sharded := false;
  flush_local ()

(* ------------------------------------------------------------------ *)
(* Ticks                                                               *)
(* ------------------------------------------------------------------ *)

let incr ?(n = 1) c =
  if !enabled then
    if not !sharded then c.c_value <- c.c_value + n else shard_counter_add c n

let value c = c.c_value
let counter_name c = c.c_name

let record t ns =
  if !enabled then
    if not !sharded then begin
      t.t_total_ns <- t.t_total_ns + ns;
      t.t_events <- t.t_events + 1
    end
    else shard_timer_add t ns

let time t f =
  let start = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> record t (Clock.elapsed_ns start)) f

let timer_ns t = t.t_total_ns
let timer_events t = t.t_events

(* Zero every handle.  Handles stay interned (their identity is the point),
   so snapshots filter zero-valued entries to keep the "only what was
   ticked" reading of the legacy interface. *)
let reset_counters () = Hashtbl.iter (fun _ c -> c.c_value <- 0) counters

let reset_timers () =
  Hashtbl.iter
    (fun _ t ->
      t.t_total_ns <- 0;
      t.t_events <- 0)
    timers

let reset () =
  reset_counters ();
  reset_timers ()

let counter_snapshot () =
  Hashtbl.fold
    (fun name c acc -> if c.c_value <> 0 then (name, c.c_value) :: acc else acc)
    counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let timer_snapshot () =
  Hashtbl.fold
    (fun name t acc ->
      if t.t_events <> 0 then (name, (t.t_total_ns, t.t_events)) :: acc else acc)
    timers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Run [f] with the registry ignoring increments and records. *)
let with_disabled f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f
