(* Exporters for collected spans: an indented text tree for terminals, a
   plain JSON array for tooling, and Chrome's [trace_event] format so a
   trace file drops straight into chrome://tracing or Perfetto. *)

let attr_to_json : Span.attr -> Json.t = function
  | Span.ABool b -> Json.Bool b
  | Span.AInt n -> Json.Int n
  | Span.AFloat f -> Json.Float f
  | Span.AStr s -> Json.Str s

let attrs_to_json attrs =
  Json.Obj (List.rev_map (fun (k, v) -> (k, attr_to_json v)) attrs)

let pp_attr ppf (a : Span.attr) =
  match a with
  | Span.ABool b -> Fmt.bool ppf b
  | Span.AInt n -> Fmt.int ppf n
  | Span.AFloat f -> Fmt.float ppf f
  | Span.AStr s -> Fmt.string ppf s

(* Indented tree: spans arrive sorted by start time, and parentage is
   well-nested, so depth alone renders the hierarchy. *)
let pp_text ppf spans =
  List.iter
    (fun (s : Span.span) ->
      let indent = String.make (2 * s.depth) ' ' in
      Fmt.pf ppf "%s%-*s %10.3f ms" indent
        (max 1 (36 - String.length indent))
        s.name
        (Clock.ns_to_ms (Span.duration_ns s));
      (match List.rev s.attrs with
       | [] -> ()
       | attrs ->
         Fmt.pf ppf "  [%a]"
           Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s=%a" k pp_attr v))
           attrs);
      Fmt.pf ppf "@.")
    spans

let span_to_json (s : Span.span) =
  let base =
    [
      ("id", Json.Int s.id);
      ("name", Json.Str s.name);
      ("depth", Json.Int s.depth);
      ("domain", Json.Int s.domain);
      ("start_ns", Json.Int s.start_ns);
      ("duration_ns", Json.Int (Span.duration_ns s));
      ("cpu_s", Json.Float (Span.duration_cpu s));
    ]
  in
  let parent =
    match s.parent with
    | None -> []
    | Some p -> [ ("parent", Json.Int p) ]
  in
  let attrs =
    match s.attrs with [] -> [] | _ -> [ ("attrs", attrs_to_json s.attrs) ]
  in
  Json.Obj (base @ parent @ attrs)

let spans_to_json spans = Json.List (List.map span_to_json spans)

(* Chrome trace_event: complete ("X") events with microsecond timestamps
   relative to the first span, one process.  Each span's recording domain
   becomes the thread lane ([tid]), so the main pipeline renders as one
   track and every pool domain's task spans get their own. *)
let chrome_trace spans =
  let origin =
    match spans with [] -> 0 | (s : Span.span) :: _ -> s.start_ns
  in
  let event (s : Span.span) =
    let fields =
      [
        ("name", Json.Str s.name);
        ("cat", Json.Str "njq");
        ("ph", Json.Str "X");
        ("ts", Json.Float (Clock.ns_to_us (s.start_ns - origin)));
        ("dur", Json.Float (Clock.ns_to_us (Span.duration_ns s)));
        ("pid", Json.Int 1);
        ("tid", Json.Int s.domain);
      ]
    in
    let args =
      match s.attrs with [] -> [] | _ -> [ ("args", attrs_to_json s.attrs) ]
    in
    Json.Obj (fields @ args)
  in
  Json.Obj [ ("traceEvents", Json.List (List.map event spans)) ]

let write_chrome_trace path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~pretty:true (chrome_trace spans)))
