(* A minimal JSON document type with a writer and a strict reader.

   The observability exporters need to *emit* JSON (explain --analyze
   --json, Chrome trace files, bench reports) and the test-suite and CI
   smoke need to *validate* what was emitted, so both directions live here
   with no external dependency.  Integers are kept distinct from floats so
   counters round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let write_float buf f =
  if Float.is_nan f then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write ?(indent = None) ~level buf (v : t) =
  let pad n =
    match indent with
    | None -> ()
    | Some w ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (w * n) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> write_float buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        pad (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, fv) ->
        if i > 0 then Buffer.add_char buf ',';
        pad (level + 1);
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\": ";
        write ~indent ~level:(level + 1) buf fv)
      fields;
    pad level;
    Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  write ~indent:(if pretty then Some 2 else None) ~level:0 buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader: strict recursive descent                                    *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable i : int }

let peek c = if c.i < String.length c.src then Some c.src.[c.i] else None

let advance c = c.i <- c.i + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected '%c' at offset %d, got '%c'" ch c.i x
  | None -> parse_error "expected '%c' at offset %d, got end of input" ch c.i

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.src && String.sub c.src c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.i

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.i + 4 > String.length c.src then parse_error "truncated \\u escape";
         let hex = String.sub c.src c.i 4 in
         c.i <- c.i + 4;
         let code =
           match int_of_string_opt ("0x" ^ hex) with
           | Some n -> n
           | None -> parse_error "invalid \\u escape %s" hex
         in
         (* Encode the code point as UTF-8 (we only emit < 0x20, but accept
            the whole BMP for robustness; surrogate pairs are not joined). *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> parse_error "invalid escape at offset %d" c.i);
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.i in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.i - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None ->
    (match float_of_string_opt s with
     | Some f -> Float f
     | None -> parse_error "invalid number %S at offset %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      let rec more () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items := parse_value c :: !items;
          more ()
        | Some ']' -> advance c
        | _ -> parse_error "expected ',' or ']' at offset %d" c.i
      in
      more ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let fields = ref [ field () ] in
      let rec more () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields := field () :: !fields;
          more ()
        | Some '}' -> advance c
        | _ -> parse_error "expected ',' or '}' at offset %d" c.i
      in
      more ();
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected character '%c' at offset %d" ch c.i

let of_string src =
  let c = { src; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length src then
    parse_error "trailing garbage at offset %d" c.i;
  v

let of_string_opt src =
  match of_string src with v -> Some v | exception Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         xs ys
  | _ -> false
