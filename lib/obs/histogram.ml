(* Log-bucketed (HDR-style) histograms for latency and allocation
   distributions.

   The serving layer's percentiles cannot come from a list of raw samples
   — a histogram must absorb one record per query (or per parallel task)
   at memory cost independent of the sample count, and two histograms
   built on different domains must merge into exactly the histogram a
   single recorder would have produced.  This is the paper's nested-loop
   to set-at-a-time move replayed on telemetry: per-row ticks collapse
   into one aggregated distribution that is queried wholesale.

   Bucket layout.  Values [0, 256) land in unit-width buckets (exact).
   Past that, each power-of-two octave splits into 128 sub-buckets, so a
   bucket spanning [lo, lo + 2^shift) has lo >= 128 * 2^shift and the
   relative width of any bucket is at most 1/128 < 1% — about two
   significant decimal digits, the HdrHistogram discipline.  A 63-bit
   value space needs 256 + 55 * 128 = 7296 buckets (~57 KiB of ints),
   allocated once at [create]; the total count, sum, and the exact min
   and max ride alongside, so [max] (and [min]) are always exact and
   percentile reads clamp into [min, max].

   [record] is allocation-free: one array load/store, four scalar field
   writes, and a tail-recursive bit scan — no boxing, no refs — so it can
   sit on a per-query (or per-task) hot path under a Gc-delta test.

   Merging is pointwise bucket addition; it is associative and
   commutative, and merge-of-shards equals one-histogram-over-all-samples
   *exactly* (not approximately), which is what lets per-domain shards
   ([Metrics.observe]) flush at pool join with no loss.  The JSON and
   binary codecs serialize sparse (index, count) pairs, so an idle
   histogram costs a few bytes and codecs round-trip bucket-exactly. *)

let sub_bits = 8
let sub_count = 1 lsl sub_bits (* 256: unit buckets below this *)
let half = sub_count / 2

(* Highest set bit position of [v] >= 1 (msb 1 = 0). *)
let rec msb_pos_from v m = if v = 0 then m else msb_pos_from (v lsr 1) (m + 1)
let msb_pos v = msb_pos_from v (-1)

(* 62 is the msb position of max_int on 64-bit OCaml. *)
let nbuckets = sub_count + ((62 - sub_bits + 1) * half)

(* Bucket index of a value; negatives clamp to bucket 0. *)
let index v =
  if v < sub_count then if v < 0 then 0 else v
  else
    let msb = msb_pos v in
    let shift = msb - sub_bits + 1 in
    sub_count + ((msb - sub_bits) * half) + ((v lsr shift) - half)

(* Inclusive [lo, hi] span of bucket [i] — the bound within which any
   percentile read is exact. *)
let bucket_span i =
  if i < sub_count then (i, i)
  else
    let oct = (i - sub_count) / half in
    let off = (i - sub_count) mod half in
    let shift = oct + 1 in
    let lo = (half + off) lsl shift in
    (lo, lo + (1 lsl shift) - 1)

(* The bounds of the bucket holding [v]: a reported percentile whose true
   value is [v] lies within these. *)
let bucket_range v = bucket_span (index v)

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable vmin : int; (* exact; max_int when empty *)
  mutable vmax : int; (* exact; -1 when empty *)
}

let create () =
  { counts = Array.make nbuckets 0; count = 0; sum = 0; vmin = max_int;
    vmax = -1 }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- -1

let record ?(n = 1) t v =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index v in
    t.counts.(i) <- t.counts.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (v * n);
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.vmin
let max_value t = if t.count = 0 then 0 else t.vmax
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count
let is_empty t = t.count = 0

(* Value at quantile [q] in [0, 1]: the upper edge of the bucket holding
   the sample of rank ceil(q * count) (exact counting, no interpolation),
   clamped into the exact [min, max].  The result is within one bucket
   width of the true order statistic. *)
let percentile t q =
  if t.count = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let i = ref 0 in
    let cum = ref 0 in
    while !cum < rank && !i < nbuckets do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    let _, hi = bucket_span (!i - 1) in
    Stdlib.min t.vmax (Stdlib.max t.vmin hi)
  end

let p50 t = percentile t 0.50
let p90 t = percentile t 0.90
let p99 t = percentile t 0.99

let merge_into ~into src =
  Array.iteri
    (fun i c -> if c <> 0 then into.counts.(i) <- into.counts.(i) + c)
    src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let copy t =
  let fresh = create () in
  merge_into ~into:fresh t;
  fresh

let equal a b =
  a.count = b.count && a.sum = b.sum && a.vmin = b.vmin && a.vmax = b.vmax
  && a.counts = b.counts

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)
(* ------------------------------------------------------------------ *)

let sparse t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) <> 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  !acc

let to_json t =
  let buckets =
    List.map (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ]) (sparse t)
  in
  Json.Obj
    [ ("v", Json.Int 1);
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("buckets", Json.List buckets) ]

let of_json doc =
  let int k =
    match Json.member k doc with Some (Json.Int n) -> Some n | _ -> None
  in
  match (int "count", int "sum", int "min", int "max", Json.member "buckets" doc)
  with
  | Some count, Some sum, Some vmin, Some vmax, Some (Json.List buckets) ->
    let t = create () in
    let ok =
      List.for_all
        (function
          | Json.List [ Json.Int i; Json.Int c ]
            when i >= 0 && i < nbuckets && c > 0 ->
            t.counts.(i) <- t.counts.(i) + c;
            true
          | _ -> false)
        buckets
    in
    if not ok then None
    else begin
      t.count <- count;
      t.sum <- sum;
      if count > 0 then begin
        t.vmin <- vmin;
        t.vmax <- vmax
      end;
      Some t
    end
  | _ -> None

(* Binary: "NJQH1", then varint count/sum/min/max/npairs and delta-coded
   (index, count) pairs.  All fields are non-negative by construction
   (min/max are emitted in their empty-normalized form). *)
let magic = "NJQH1"

let varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let encode t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  varint buf t.count;
  varint buf t.sum;
  varint buf (min_value t);
  varint buf (max_value t);
  let pairs = sparse t in
  varint buf (List.length pairs);
  let prev = ref 0 in
  List.iter
    (fun (i, c) ->
      varint buf (i - !prev);
      prev := i;
      varint buf c)
    pairs;
  Buffer.contents buf

exception Decode_fail

let decode s =
  let pos = ref (String.length magic) in
  let read () =
    let v = ref 0 and shift = ref 0 and more = ref true in
    while !more do
      if !pos >= String.length s || !shift > 62 then raise Decode_fail;
      let b = Char.code s.[!pos] in
      incr pos;
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      more := b land 0x80 <> 0
    done;
    !v
  in
  if String.length s < String.length magic
     || not (String.equal (String.sub s 0 (String.length magic)) magic)
  then None
  else
    match
      let count = read () in
      let sum = read () in
      let vmin = read () in
      let vmax = read () in
      let npairs = read () in
      let t = create () in
      let idx = ref 0 in
      for _ = 1 to npairs do
        idx := !idx + read ();
        if !idx >= nbuckets then raise Decode_fail;
        t.counts.(!idx) <- t.counts.(!idx) + read ()
      done;
      if !pos <> String.length s then raise Decode_fail;
      t.count <- count;
      t.sum <- sum;
      if count > 0 then begin
        t.vmin <- vmin;
        t.vmax <- vmax
      end;
      t
    with
    | t -> Some t
    | exception Decode_fail -> None

let pp ppf t =
  if t.count = 0 then Fmt.pf ppf "empty"
  else
    Fmt.pf ppf "n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f" t.count
      (min_value t) (p50 t) (p90 t) (p99 t) (max_value t) (mean t)
