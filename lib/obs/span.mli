(** Span-based tracing: named intervals on the monotonic clock with
    parent/child nesting and per-span attributes.

    The tracer is process-global and single-threaded.  It is off by
    default; when off, {!with_span} and {!emit} cost one flag read. *)

type attr =
  | ABool of bool
  | AInt of int
  | AFloat of float
  | AStr of string

type span = {
  mutable id : int;  (** Assigned on the main domain (worker spans get
                         theirs at adoption, see {!emit}). *)
  parent : int option;  (** [id] of the enclosing span, if any. *)
  name : string;
  depth : int;  (** Nesting depth; root spans are at depth 0. *)
  domain : int;  (** Id of the domain that recorded the span; the Chrome
                     exporter maps it to the [tid] lane. *)
  start_ns : int;
  mutable stop_ns : int;
  start_cpu : float;
  mutable stop_cpu : float;
  mutable attrs : (string * attr) list;
}

(** Whether recording is active on {e this} domain (tracing on {e and} on
    the main domain — the open-span stack is main-domain-only). *)
val tracing : unit -> bool

(** Whether tracing is on at all; readable from any domain.  Use to gate
    the cost of building attributes for a worker-side {!emit}. *)
val tracing_enabled : unit -> bool

(** Clear collected spans and enable tracing. *)
val start_tracing : unit -> unit

val stop_tracing : unit -> unit

(** Drop all collected state (also disables nothing: pair with
    {!stop_tracing}). *)
val reset : unit -> unit

(** Run a thunk inside a fresh span (child of the innermost open span).
    Pass-through when tracing is off.  The span is closed even if the
    thunk raises. *)
val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op when tracing is
    off or no span is open). *)
val add_attr : string -> attr -> unit

(** Record an already-elapsed interval [start_ns .. now] as a completed
    child of the innermost open span — for events whose name is only known
    after the fact (e.g. which rewrite rule fired).  Callable from any
    domain: off the main domain the span is buffered domain-locally
    (parentless, id unassigned) until {!flush_domain} hands it over and
    {!finished} adopts it. *)
val emit : ?attrs:(string * attr) list -> start_ns:int -> string -> unit

(** Move the calling domain's buffered worker spans into the collector's
    foreign list.  Each pool participant calls this when it finishes its
    share of a job (next to [Metrics.flush_local]); no-op on the main
    domain. *)
val flush_domain : unit -> unit

(** Completed spans sorted by start time (ties by creation order). *)
val finished : unit -> span list

val duration_ns : span -> int
val duration_cpu : span -> float

(** [trace f] runs [f] with tracing enabled and returns its result with
    the spans it produced; tracing state is reset afterwards. *)
val trace : (unit -> 'a) -> 'a * span list
