(** Span-based tracing: named intervals on the monotonic clock with
    parent/child nesting and per-span attributes.

    The tracer is process-global and single-threaded.  It is off by
    default; when off, {!with_span} and {!emit} cost one flag read. *)

type attr =
  | ABool of bool
  | AInt of int
  | AFloat of float
  | AStr of string

type span = {
  id : int;
  parent : int option;  (** [id] of the enclosing span, if any. *)
  name : string;
  depth : int;  (** Nesting depth; root spans are at depth 0. *)
  start_ns : int;
  mutable stop_ns : int;
  start_cpu : float;
  mutable stop_cpu : float;
  mutable attrs : (string * attr) list;
}

val tracing : unit -> bool

(** Clear collected spans and enable tracing. *)
val start_tracing : unit -> unit

val stop_tracing : unit -> unit

(** Drop all collected state (also disables nothing: pair with
    {!stop_tracing}). *)
val reset : unit -> unit

(** Run a thunk inside a fresh span (child of the innermost open span).
    Pass-through when tracing is off.  The span is closed even if the
    thunk raises. *)
val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op when tracing is
    off or no span is open). *)
val add_attr : string -> attr -> unit

(** Record an already-elapsed interval [start_ns .. now] as a completed
    child of the innermost open span — for events whose name is only known
    after the fact (e.g. which rewrite rule fired). *)
val emit : ?attrs:(string * attr) list -> start_ns:int -> string -> unit

(** Completed spans sorted by start time (ties by creation order). *)
val finished : unit -> span list

val duration_ns : span -> int
val duration_cpu : span -> float

(** [trace f] runs [f] with tracing enabled and returns its result with
    the spans it produced; tracing state is reset afterwards. *)
val trace : (unit -> 'a) -> 'a * span list
