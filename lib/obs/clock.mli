(** Clocks for the observability layer: monotonic wall time in nanoseconds
    (CLOCK_MONOTONIC) and process CPU time in seconds. *)

(** Current monotonic time in nanoseconds.  Only differences are
    meaningful; the origin is unspecified (typically system boot). *)
val now_ns : unit -> int

(** Process CPU time in seconds ([Sys.time]). *)
val cpu_seconds : unit -> float

(** [elapsed_ns start] is [now_ns () - start]. *)
val elapsed_ns : int -> int

val ns_to_ms : int -> float
val ns_to_us : int -> float
