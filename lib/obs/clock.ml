(* Clocks for the observability layer.

   Wall time comes from the operating system's monotonic clock
   (CLOCK_MONOTONIC via the bechamel stub): nanosecond resolution, immune
   to wall-clock adjustments, suitable for span timestamps and durations.
   CPU time is the process time of [Sys.time] — coarse, but the right
   measure for "work done" independent of scheduling.

   Nanoseconds are kept as native [int]s: 63 bits hold ~292 years of
   monotonic time, and int arithmetic keeps the per-span cost trivial. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let cpu_seconds () = Sys.time ()

(* Nanoseconds elapsed since an earlier [now_ns] reading. *)
let elapsed_ns start = now_ns () - start

let ns_to_ms ns = float_of_int ns /. 1_000_000.0
let ns_to_us ns = float_of_int ns /. 1_000.0
