(** Exporters for collected spans: indented text, plain JSON, and Chrome
    [trace_event] format (loadable in chrome://tracing / Perfetto). *)

val attr_to_json : Span.attr -> Json.t

(** Indented tree view; expects spans in start order (see
    {!Span.finished}). *)
val pp_text : Format.formatter -> Span.span list -> unit

(** One object per span: id, name, depth, start_ns, duration_ns, cpu_s,
    and optionally parent and attrs. *)
val spans_to_json : Span.span list -> Json.t

(** [{"traceEvents": [...]}] with complete ("X") events, microsecond
    timestamps relative to the first span. *)
val chrome_trace : Span.span list -> Json.t

val write_chrome_trace : string -> Span.span list -> unit
