(** Log-bucketed (HDR-style) histograms for latency/allocation
    distributions: ~2 significant decimal digits of relative precision,
    constant memory, allocation-free recording, and exact (lossless)
    merging — merge-of-shards equals one histogram over the concatenated
    samples, bucket for bucket.

    Values below 256 land in unit-width buckets; beyond that each
    power-of-two octave splits into 128 sub-buckets, so every bucket's
    relative width is at most 1/128.  The exact min and max are tracked
    alongside, and percentile reads clamp into them. *)

type t

val create : unit -> t

(** Zero every bucket and the aggregates; the bucket array is reused. *)
val clear : t -> unit

(** Record one (or [n]) observations of a value; negatives clamp to 0.
    Allocation-free: safe on per-query and per-task hot paths. *)
val record : ?n:int -> t -> int -> unit

val count : t -> int
val sum : t -> int
val is_empty : t -> bool

(** Exact smallest recorded value (0 when empty). *)
val min_value : t -> int

(** Exact largest recorded value (0 when empty). *)
val max_value : t -> int

val mean : t -> float

(** [percentile t q] for [q] in [0,1]: the upper edge of the bucket
    holding the rank-[ceil q*count] sample, clamped into
    [[min_value, max_value]].  Within one bucket width of the true order
    statistic (see {!bucket_range}); 0 when empty. *)
val percentile : t -> float -> int

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

(** Pointwise bucket addition into [into] (exact, associative,
    commutative). *)
val merge_into : into:t -> t -> unit

(** Fresh histogram holding both operands' samples. *)
val merge : t -> t -> t

val copy : t -> t

(** Bucket-exact structural equality. *)
val equal : t -> t -> bool

(** Inclusive [(lo, hi)] bounds of the bucket holding a value — the
    window within which a percentile whose true value is [v] is
    reported. *)
val bucket_range : int -> int * int

(** Non-empty buckets as [(index, count)], ascending. *)
val sparse : t -> (int * int) list

(** Sparse codec: [{"v", "count", "sum", "min", "max", "buckets"}];
    {!of_json} returns [None] on malformed documents.  Round-trips
    bucket-exactly. *)
val to_json : t -> Json.t

val of_json : Json.t -> t option

(** Compact binary codec (["NJQH1"] magic + varints); {!decode} returns
    [None] on malformed or truncated input.  Round-trips bucket-exactly. *)
val encode : t -> string

val decode : string -> t option

val pp : Format.formatter -> t -> unit
