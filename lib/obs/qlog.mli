(** Structured query log (JSONL) and its per-plan aggregation.

    One {!event} is appended per executed query via a buffered {!sink};
    [njq top] reads the file back and folds it into per-plan-fingerprint
    {!agg} rows (calls, cache hit rate, latency percentiles, total
    work). *)

type event = {
  ts_ns : int;  (** monotonic timestamp at completion *)
  query_hash : string;  (** {!hash_hex} of the normalized query text *)
  fingerprint : string;  (** physical-plan fingerprint (hex) *)
  cache : string;  (** ["hit"] | ["miss"] | [""] when cache bypassed *)
  rows : int;  (** rows in the result *)
  work : (string * int) list;  (** per-counter work deltas *)
  work_total : int;
  minor_words : float;
  major_words : float;
  wall_ns : int;
  cpu_ns : int;
  queue_ns : int;
      (** admission-queue wait before execution; 0 outside the serving
          layer (and on files written before the field existed) *)
  batch : int;
      (** invocations merged into the executing batch; 1 when run
          one-at-a-time (the default for pre-existing files) *)
  max_qerror : float;  (** worst per-node q-error; 1.0 if unprofiled *)
  spilled : int;
      (** bytes written to spill files while executing; 0 when the query
          ran fully resident (and on files written before the field
          existed) *)
  slow : bool;  (** reached the sink's slow threshold when logged *)
}

(** FNV-1a 64-bit hash, 16 lowercase hex digits. Deterministic across
    processes/runs. *)
val hash_hex : string -> string

val to_json : event -> Json.t

(** [None] on documents missing the required fields
    (ts_ns/query/fingerprint/rows/wall_ns); optional fields default. *)
val of_json : Json.t -> event option

(** {1 Buffered JSONL sink} *)

type sink

(** Open [path] for append (created if missing). With [slow_ms], only
    events whose wall time reaches the threshold are written; all events
    get their [slow] field stamped accordingly.  Buffered lines of every
    sink still open at process exit are flushed by an [at_exit] hook, so
    an exiting server loses no tail events even without {!close}. *)
val open_sink : ?slow_ms:float -> string -> sink

val log : sink -> event -> unit

val written : sink -> int

(** Events suppressed by the [slow_ms] threshold. *)
val dropped : sink -> int

(** Flush and close the channel. *)
val close : sink -> unit

(** [(events, malformed_line_count)] — malformed or truncated lines are
    skipped, not fatal. *)
val read_file : string -> event list * int

(** {1 Aggregation} *)

type agg = {
  a_fingerprint : string;
  a_calls : int;
  a_hits : int;
  a_misses : int;
  a_slow : int;
  a_rows : int;
  a_work : int;
  a_wall : Histogram.t;
  a_wall_total : int;
  a_queue : Histogram.t;  (** per-call admission-queue wait *)
  a_batch_total : int;  (** summed batch sizes over calls *)
  a_max_qerror : float;
  a_queries : string list;  (** distinct query hashes, first-seen order *)
}

(** One row per plan fingerprint, sorted by total wall time descending. *)
val aggregate : event list -> agg list

(** Cache hit fraction among calls that consulted the cache (0 if none
    did). *)
val hit_rate : agg -> float

(** Mean invocations per executing batch (1.0 = only one-at-a-time runs;
    0 on an empty aggregate). *)
val mean_batch : agg -> float

val agg_to_json : agg -> Json.t
val pp_event : Format.formatter -> event -> unit
