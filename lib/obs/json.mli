(** A minimal JSON document type with a writer and a strict reader, shared
    by the exporters (emit) and the tests / CI smoke (validate).  Integers
    stay distinct from floats so counters round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Serialize; [pretty] indents with two spaces. *)
val to_string : ?pretty:bool -> t -> string

(** Strict parse of a complete document; raises {!Parse_error}. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** Field lookup on [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

(** Structural equality; [Int n] and [Float f] compare equal when the
    float holds exactly [n]. *)
val equal : t -> t -> bool
