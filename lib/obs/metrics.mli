(** The metrics registry: named counters and timers with pre-interned
    handles.

    Interning a name once yields a handle holding the mutable cell
    directly, so hot paths pay one flag read and one add per tick instead
    of a string-hashtable probe.  The registry is process-global; the
    legacy {!Njq_adl.Counters} facade delegates here.

    Domain safety: sequential execution increments the main cells
    directly; inside a parallel section (bracketed by {!enter_parallel} /
    {!exit_parallel}, which only the engine's domain pool calls) every
    increment lands in a per-domain shard, and each participating domain
    flushes its shard ({!flush_local}) into the main cells before the pool
    join returns — totals stay exact under parallelism. *)

type counter
type timer

(** Whether increments and records are applied (see {!with_disabled}). *)
val enabled : bool ref

(** Intern a counter: the same name always returns the same handle. *)
val counter : string -> counter

val incr : ?n:int -> counter -> unit
val value : counter -> int
val counter_name : counter -> string

(** Intern a timer: the same name always returns the same handle. *)
val timer : string -> timer

(** Add an elapsed duration in nanoseconds (one event). *)
val record : timer -> int -> unit

(** Time a thunk on the monotonic clock and record it. *)
val time : timer -> (unit -> 'a) -> 'a

val timer_ns : timer -> int
val timer_events : timer -> int

(** {2 Histograms} *)

type hist

(** Intern a histogram: the same name always returns the same handle. *)
val histogram : string -> hist

(** Record [n] observations of a value.  Sequentially this writes the
    main histogram; inside a parallel section it lands in the calling
    domain's shard and merges exactly at flush. *)
val observe : ?n:int -> hist -> int -> unit

val hist_name : hist -> string

(** The merged main histogram.  Read it only outside parallel sections. *)
val hist_value : hist -> Histogram.t

(** Non-empty histograms, sorted by name. *)
val hist_snapshot : unit -> (string * Histogram.t) list

(** Zero all counters (handles stay interned). *)
val reset_counters : unit -> unit

val reset_timers : unit -> unit

(** Zero all histograms (handles stay interned). *)
val reset_histograms : unit -> unit

(** Clear the per-domain parallel-work attribution table. *)
val reset_domain_work : unit -> unit

(** {!reset_counters}, {!reset_timers}, {!reset_histograms}, and
    {!reset_domain_work}. *)
val reset : unit -> unit

(** Non-zero counters, sorted by name. *)
val counter_snapshot : unit -> (string * int) list

(** Non-idle timers as [(name, (total_ns, events))], sorted by name. *)
val timer_snapshot : unit -> (string * (int * int)) list

(** Parallel-section counter deltas attributed per domain id, as
    [(domain_id, [(counter, delta)])] with both levels sorted.
    Sequential main-domain ticks are not attributed — summing one
    counter over all domains gives its sharded (parallel) contribution
    to the main total, not the whole total. *)
val counter_snapshot_by_domain : unit -> (int * (string * int) list) list

(** Run with the registry ignoring increments and records. *)
val with_disabled : (unit -> 'a) -> 'a

(** {2 Parallel sections}

    For the engine's domain pool only.  While armed, increments and
    records on every domain (including the main one) accumulate in
    domain-local shards instead of the main cells. *)

(** Arm the per-domain redirect.  Call from the main domain, before any
    worker starts on the job. *)
val enter_parallel : unit -> unit

(** Disarm the redirect and flush the calling (main) domain's shard. *)
val exit_parallel : unit -> unit

(** Flush the calling domain's pending deltas into the main cells (takes
    the registry mutex).  Each pool participant calls this when it
    finishes its share of a job. *)
val flush_local : unit -> unit
