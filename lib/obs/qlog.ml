(* Structured query log: one JSONL record per executed query.

   Every event carries the identifiers that make post-hoc attribution
   possible — a hash of the normalized query text and the fingerprint of
   the physical plan that served it — plus the measurements a serving
   layer tunes against: rows out, work-counter deltas, minor/major heap
   words, wall and CPU nanoseconds, whether the plan cache hit, and the
   worst per-node cardinality q-error the profiler saw.  Aggregating the
   file per plan fingerprint ([aggregate], surfaced as `njq top`) is the
   per-row-tick to set-at-a-time move applied to the log itself: the
   per-query records fold into per-plan latency histograms and totals.

   The sink is a buffered append-only channel; [log] serializes one event
   per line and [close] flushes.  A sink opened with a slow-query
   threshold ([slow_ms], CLI --slow-ms / env NJQ_SLOW_MS) drops events
   that finish under the threshold, so a production log can record only
   outliers while `njq top` still aggregates whatever was kept. *)

type event = {
  ts_ns : int;  (* monotonic clock; orders events within one process *)
  query_hash : string;  (* FNV-1a 64 of the normalized query text, hex *)
  fingerprint : string;  (* physical-plan fingerprint, hex *)
  cache : string;  (* "hit" | "miss" | "" when the plan cache was bypassed *)
  rows : int;
  work : (string * int) list;  (* counter deltas, sorted by name *)
  work_total : int;
  minor_words : float;
  major_words : float;
  wall_ns : int;
  cpu_ns : int;
  queue_ns : int;  (* admission-queue wait before execution; 0 outside serve *)
  batch : int;  (* invocations merged into the executing batch; 1 unbatched *)
  max_qerror : float;  (* >= 1.0; 1.0 when the run was not profiled *)
  spilled : int;  (* bytes written to spill files; 0 when fully resident *)
  slow : bool;  (* wall time reached the sink's threshold at log time *)
}

(* ------------------------------------------------------------------ *)
(* Hashing                                                             *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the full 64-bit space (Int64: OCaml ints lose the top
   bit), rendered as 16 hex digits.  Deterministic across processes, so
   fingerprints computed by `njq run` join against `njq top` output. *)
let hash_hex s =
  let open Int64 in
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let to_json e =
  Json.Obj
    [ ("ts_ns", Json.Int e.ts_ns);
      ("query", Json.Str e.query_hash);
      ("fingerprint", Json.Str e.fingerprint);
      ("cache", Json.Str e.cache);
      ("rows", Json.Int e.rows);
      ("work", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.work));
      ("work_total", Json.Int e.work_total);
      ("minor_words", Json.Float e.minor_words);
      ("major_words", Json.Float e.major_words);
      ("wall_ns", Json.Int e.wall_ns);
      ("cpu_ns", Json.Int e.cpu_ns);
      ("queue_ns", Json.Int e.queue_ns);
      ("batch", Json.Int e.batch);
      ("max_qerror", Json.Float e.max_qerror);
      ("spilled", Json.Int e.spilled);
      ("slow", Json.Bool e.slow) ]

let of_json doc =
  let int k =
    match Json.member k doc with Some (Json.Int n) -> Some n | _ -> None
  in
  let str k =
    match Json.member k doc with Some (Json.Str s) -> Some s | _ -> None
  in
  let num k =
    match Json.member k doc with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  let work =
    match Json.member "work" doc with
    | Some (Json.Obj fields) ->
      List.filter_map
        (function k, Json.Int v -> Some (k, v) | _ -> None)
        fields
    | _ -> []
  in
  match
    (int "ts_ns", str "query", str "fingerprint", int "rows", int "wall_ns")
  with
  | Some ts_ns, Some query_hash, Some fingerprint, Some rows, Some wall_ns ->
    Some
      { ts_ns;
        query_hash;
        fingerprint;
        cache = Option.value ~default:"" (str "cache");
        rows;
        work;
        work_total = Option.value ~default:0 (int "work_total");
        minor_words = Option.value ~default:0.0 (num "minor_words");
        major_words = Option.value ~default:0.0 (num "major_words");
        wall_ns;
        cpu_ns = Option.value ~default:0 (int "cpu_ns");
        queue_ns = Option.value ~default:0 (int "queue_ns");
        batch = Option.value ~default:1 (int "batch");
        max_qerror = Option.value ~default:1.0 (num "max_qerror");
        spilled = Option.value ~default:0 (int "spilled");
        slow =
          (match Json.member "slow" doc with
           | Some (Json.Bool b) -> b
           | _ -> false) }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Buffered JSONL sink                                                 *)
(* ------------------------------------------------------------------ *)

type sink = {
  oc : out_channel;
  slow_ns : int option;  (* record only events at least this slow *)
  mutable written : int;
  mutable dropped : int;
  mutable closed : bool;
}

let slow_ns_of_ms ms = int_of_float (ms *. 1e6)

(* Every open sink is tracked so an [at_exit] hook can flush buffered
   lines even when the process exits without calling [close] — a serving
   process killed mid-run must not lose its tail of events.  The hook is
   registered on the first [open_sink] (not at module init, so programs
   that never log pay nothing), and [close] marks the sink so the hook
   skips already-closed channels. *)
let open_sinks : sink list ref = ref []
let flush_hook_registered = ref false

let flush_open_sinks () =
  List.iter
    (fun s -> if not s.closed then try flush s.oc with Sys_error _ -> ())
    !open_sinks

let open_sink ?slow_ms path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  let s =
    { oc;
      slow_ns = Option.map slow_ns_of_ms slow_ms;
      written = 0;
      dropped = 0;
      closed = false }
  in
  if not !flush_hook_registered then begin
    flush_hook_registered := true;
    at_exit flush_open_sinks
  end;
  open_sinks := s :: !open_sinks;
  s

(* Serialize-and-append; a sub-threshold event is counted but not
   written.  The [slow] field is stamped from the sink's knob so readers
   need not know the writer's configuration. *)
let log sink e =
  let is_slow =
    match sink.slow_ns with None -> e.slow | Some t -> e.wall_ns >= t
  in
  if sink.slow_ns <> None && not is_slow then sink.dropped <- sink.dropped + 1
  else begin
    output_string sink.oc (Json.to_string (to_json { e with slow = is_slow }));
    output_char sink.oc '\n';
    sink.written <- sink.written + 1
  end

let written sink = sink.written
let dropped sink = sink.dropped

let close sink =
  sink.closed <- true;
  open_sinks := List.filter (fun s -> s != sink) !open_sinks;
  flush sink.oc;
  close_out sink.oc

(* Parse a qlog file: [(events in file order, malformed line count)].
   Lenient by design — a truncated tail (killed process) must not make
   the whole log unreadable. *)
let read_file path =
  let events = ref [] in
  let bad = ref 0 in
  In_channel.with_open_text path (fun ic ->
      let rec go () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          (if not (String.equal (String.trim line) "") then
             match Json.of_string_opt line with
             | Some doc ->
               (match of_json doc with
                | Some e -> events := e :: !events
                | None -> incr bad)
             | None -> incr bad);
          go ()
      in
      go ());
  (List.rev !events, !bad)

(* ------------------------------------------------------------------ *)
(* Aggregation (`njq top`)                                             *)
(* ------------------------------------------------------------------ *)

type agg = {
  a_fingerprint : string;
  a_calls : int;
  a_hits : int;  (* plan-cache hits among calls *)
  a_misses : int;
  a_slow : int;
  a_rows : int;  (* summed over calls *)
  a_work : int;  (* summed work_total *)
  a_wall : Histogram.t;  (* per-call wall_ns *)
  a_wall_total : int;
  a_queue : Histogram.t;  (* per-call queue_ns (serve admission wait) *)
  a_batch_total : int;  (* summed batch sizes; mean = total / calls *)
  a_max_qerror : float;
  a_queries : string list;  (* distinct query hashes, first-seen order *)
}

(* Fold events into one aggregate per plan fingerprint, sorted by total
   wall time descending — the `njq top` ordering: where did the time
   go, per plan. *)
let aggregate events =
  let tbl : (string, agg ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      let cell =
        match Hashtbl.find_opt tbl e.fingerprint with
        | Some c -> c
        | None ->
          let c =
            ref
              { a_fingerprint = e.fingerprint;
                a_calls = 0;
                a_hits = 0;
                a_misses = 0;
                a_slow = 0;
                a_rows = 0;
                a_work = 0;
                a_wall = Histogram.create ();
                a_wall_total = 0;
                a_queue = Histogram.create ();
                a_batch_total = 0;
                a_max_qerror = 1.0;
                a_queries = [] }
          in
          Hashtbl.add tbl e.fingerprint c;
          order := c :: !order;
          c
      in
      let a = !cell in
      Histogram.record a.a_wall e.wall_ns;
      Histogram.record a.a_queue e.queue_ns;
      cell :=
        { a with
          a_batch_total = a.a_batch_total + e.batch;
          a_calls = a.a_calls + 1;
          a_hits = (a.a_hits + if String.equal e.cache "hit" then 1 else 0);
          a_misses =
            (a.a_misses + if String.equal e.cache "miss" then 1 else 0);
          a_slow = (a.a_slow + if e.slow then 1 else 0);
          a_rows = a.a_rows + e.rows;
          a_work = a.a_work + e.work_total;
          a_wall_total = a.a_wall_total + e.wall_ns;
          a_max_qerror = Float.max a.a_max_qerror e.max_qerror;
          a_queries =
            (if List.mem e.query_hash a.a_queries then a.a_queries
             else a.a_queries @ [ e.query_hash ]) })
    events;
  List.rev_map ( ! ) !order
  |> List.sort (fun a b -> compare b.a_wall_total a.a_wall_total)

(* Plan-cache hit rate over the calls that went through the cache. *)
let hit_rate a =
  let through = a.a_hits + a.a_misses in
  if through = 0 then 0.0 else float_of_int a.a_hits /. float_of_int through

(* Mean invocations per executing batch: 1.0 for a plan only ever run
   one-at-a-time, > 1 when the serving layer merged parameter vectors. *)
let mean_batch a =
  if a.a_calls = 0 then 0.0
  else float_of_int a.a_batch_total /. float_of_int a.a_calls

let agg_to_json a =
  Json.Obj
    [ ("fingerprint", Json.Str a.a_fingerprint);
      ("calls", Json.Int a.a_calls);
      ("hits", Json.Int a.a_hits);
      ("misses", Json.Int a.a_misses);
      ("hit_rate", Json.Float (hit_rate a));
      ("slow", Json.Int a.a_slow);
      ("rows", Json.Int a.a_rows);
      ("work_total", Json.Int a.a_work);
      ("wall_total_ns", Json.Int a.a_wall_total);
      ("p50_ns", Json.Int (Histogram.p50 a.a_wall));
      ("p90_ns", Json.Int (Histogram.p90 a.a_wall));
      ("p99_ns", Json.Int (Histogram.p99 a.a_wall));
      ("max_ns", Json.Int (Histogram.max_value a.a_wall));
      ("batch_mean", Json.Float (mean_batch a));
      ("queue_p50_ns", Json.Int (Histogram.p50 a.a_queue));
      ("queue_p99_ns", Json.Int (Histogram.p99 a.a_queue));
      ("max_qerror", Json.Float a.a_max_qerror);
      ("queries", Json.List (List.map (fun q -> Json.Str q) a.a_queries)) ]

let pp_event ppf e =
  Fmt.pf ppf "%s%-10.3fms  rows=%-6d work=%-8d cache=%-4s qerr=%-6.2f fp=%s q=%s"
    (if e.slow then "SLOW " else "")
    (Clock.ns_to_ms e.wall_ns)
    e.rows e.work_total
    (if String.equal e.cache "" then "-" else e.cache)
    e.max_qerror e.fingerprint e.query_hash
