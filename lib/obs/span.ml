(* Span-based tracing.

   A span is a named interval on the monotonic clock with an optional
   parent, a nesting depth, and a small bag of attributes.  The tracer is a
   process-global, single-threaded collector: an explicit stack of open
   spans gives parentage for [with_span], and [emit] attaches
   already-measured intervals (e.g. an individual rewrite-rule firing whose
   name is only known after the step returns) as completed children of
   whatever is currently open.

   Tracing is off by default; every entry point checks one flag so the
   instrumented pipeline costs nothing when no one is listening.

   The open-span *stack* is deliberately main-domain only: spans describe
   the pipeline's phases, which run on the main domain, while the engine's
   parallel operators fan partition work out to pool domains
   ([Njq_engine.Pool]).  Stack-touching entry points ([with_span],
   [add_attr]) therefore no-op off the main domain (checked only when
   tracing is on), so a traced parallel run keeps a well-nested
   single-threaded span tree instead of racing on the stack.

   Worker domains still get to report completed intervals: [emit] called
   off the main domain buffers the span in domain-local storage (id
   unassigned, no parent — the worker cannot read the main stack without
   racing it), [flush_domain] moves that buffer into a mutex-protected
   foreign list when the domain finishes its share of a pool job, and the
   main domain adopts the foreign spans (assigning ids) when [finished] is
   read.  Every span carries the id of the domain that recorded it, which
   the Chrome exporter maps to the [tid] lane — parallel-operator work is
   attributable per domain in a trace, matching the per-domain counter
   shards (see [Metrics]). *)

type attr =
  | ABool of bool
  | AInt of int
  | AFloat of float
  | AStr of string

type span = {
  mutable id : int; (* assigned on the main domain; -1 while foreign *)
  parent : int option;
  name : string;
  depth : int;
  domain : int; (* id of the domain that recorded the span *)
  start_ns : int;
  mutable stop_ns : int;
  start_cpu : float;
  mutable stop_cpu : float;
  mutable attrs : (string * attr) list;
}

let tracing_on = ref false
let next_id = ref 0
let open_stack : span list ref = ref []
let completed : span list ref = ref []

(* Completed worker spans in transit to the main domain: each worker
   buffers in domain-local storage, [flush_domain] moves the buffer here
   under the mutex, and the main domain adopts (assigns ids) lazily. *)
let foreign_mu = Mutex.create ()
let foreign : span list ref = ref []

let worker_buf : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Recording is active only where the collector's stack may be touched:
   tracing on, and on the main domain. *)
let recording () = !tracing_on && Domain.is_main_domain ()

let tracing () = recording ()

(* Whether tracing is on at all — readable from any domain, e.g. to gate
   building attrs for a worker-side [emit]. *)
let tracing_enabled () = !tracing_on

(* Adopt flushed worker spans into [completed]: give them ids on the main
   domain so ids stay unique without cross-domain coordination. *)
let adopt_foreign () =
  Mutex.lock foreign_mu;
  let adopted = !foreign in
  foreign := [];
  Mutex.unlock foreign_mu;
  List.iter
    (fun s ->
      s.id <- !next_id;
      incr next_id;
      completed := s :: !completed)
    (List.rev adopted)

let reset () =
  Mutex.lock foreign_mu;
  foreign := [];
  Mutex.unlock foreign_mu;
  next_id := 0;
  open_stack := [];
  completed := []

let start_tracing () =
  reset ();
  tracing_on := true

let stop_tracing () = tracing_on := false

let push ?(attrs = []) name =
  let parent, depth =
    match !open_stack with
    | [] -> None, 0
    | p :: _ -> Some p.id, p.depth + 1
  in
  let s =
    {
      id = !next_id;
      parent;
      name;
      depth;
      domain = (Domain.self () :> int);
      start_ns = Clock.now_ns ();
      stop_ns = -1;
      start_cpu = Clock.cpu_seconds ();
      stop_cpu = -1.0;
      attrs;
    }
  in
  incr next_id;
  open_stack := s :: !open_stack;
  s

let pop s =
  s.stop_ns <- Clock.now_ns ();
  s.stop_cpu <- Clock.cpu_seconds ();
  (match !open_stack with
   | top :: rest when top == s -> open_stack := rest
   | _ ->
     (* An exception unwound past intermediate spans: close everything
        down to [s] so the trace stays well-nested. *)
     let rec unwind = function
       | [] -> []
       | top :: rest ->
         top.stop_ns <- s.stop_ns;
         top.stop_cpu <- s.stop_cpu;
         completed := top :: !completed;
         if top == s then rest else unwind rest
     in
     open_stack := unwind !open_stack);
  completed := s :: !completed

let with_span ?attrs name f =
  if not (recording ()) then f ()
  else begin
    let s = push ?attrs name in
    Fun.protect ~finally:(fun () -> pop s) f
  end

let add_attr key value =
  if recording () then
    match !open_stack with
    | [] -> ()
    | s :: _ -> s.attrs <- (key, value) :: s.attrs

let emit ?(attrs = []) ~start_ns name =
  if !tracing_on then
    if Domain.is_main_domain () then begin
      let parent, depth =
        match !open_stack with
        | [] -> None, 0
        | p :: _ -> Some p.id, p.depth + 1
      in
      let cpu = Clock.cpu_seconds () in
      let s =
        {
          id = !next_id;
          parent;
          name;
          depth;
          domain = (Domain.self () :> int);
          start_ns;
          stop_ns = Clock.now_ns ();
          start_cpu = cpu;
          stop_cpu = cpu;
          attrs;
        }
      in
      incr next_id;
      completed := s :: !completed
    end
    else begin
      (* Worker domain: buffer locally with the id unassigned and no
         parent (the main stack cannot be read here without racing it);
         [flush_domain] hands the buffer over at pool join. *)
      let cpu = Clock.cpu_seconds () in
      let s =
        {
          id = -1;
          parent = None;
          name;
          depth = 0;
          domain = (Domain.self () :> int);
          start_ns;
          stop_ns = Clock.now_ns ();
          start_cpu = cpu;
          stop_cpu = cpu;
          attrs;
        }
      in
      let buf = Domain.DLS.get worker_buf in
      buf := s :: !buf
    end

(* Move this domain's buffered spans into the foreign list.  Called by
   each pool participant when it finishes its share of a job (next to
   [Metrics.flush_local]); a no-op on the main domain, whose emits go
   straight to [completed]. *)
let flush_domain () =
  let buf = Domain.DLS.get worker_buf in
  if !buf <> [] then begin
    let spans = !buf in
    buf := [];
    Mutex.lock foreign_mu;
    foreign := List.rev_append spans !foreign;
    Mutex.unlock foreign_mu
  end

let finished () =
  adopt_foreign ();
  List.sort
    (fun a b ->
      match compare a.start_ns b.start_ns with
      | 0 -> compare a.id b.id
      | c -> c)
    !completed

let duration_ns s = if s.stop_ns < 0 then 0 else s.stop_ns - s.start_ns

let duration_cpu s = if s.stop_cpu < 0.0 then 0.0 else s.stop_cpu -. s.start_cpu

(* Trace a whole computation: enable, run, disable, and hand back the
   completed spans in start order together with the result. *)
let trace f =
  start_tracing ();
  let result = Fun.protect ~finally:stop_tracing f in
  let spans = finished () in
  reset ();
  (result, spans)
