(* Span-based tracing.

   A span is a named interval on the monotonic clock with an optional
   parent, a nesting depth, and a small bag of attributes.  The tracer is a
   process-global, single-threaded collector: an explicit stack of open
   spans gives parentage for [with_span], and [emit] attaches
   already-measured intervals (e.g. an individual rewrite-rule firing whose
   name is only known after the step returns) as completed children of
   whatever is currently open.

   Tracing is off by default; every entry point checks one flag so the
   instrumented pipeline costs nothing when no one is listening.

   The collector is deliberately main-domain only: spans describe the
   pipeline's phases, which run on the main domain, while the engine's
   parallel operators fan partition work out to pool domains
   ([Njq_engine.Pool]).  Every recording entry point therefore no-ops off
   the main domain (checked only when tracing is on), so a traced parallel
   run keeps a well-nested single-threaded span tree instead of racing on
   the open-span stack.  Per-partition work still shows up exactly in the
   counters, which shard per domain (see [Metrics]). *)

type attr =
  | ABool of bool
  | AInt of int
  | AFloat of float
  | AStr of string

type span = {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  start_ns : int;
  mutable stop_ns : int;
  start_cpu : float;
  mutable stop_cpu : float;
  mutable attrs : (string * attr) list;
}

let tracing_on = ref false
let next_id = ref 0
let open_stack : span list ref = ref []
let completed : span list ref = ref []

(* Recording is active only where the collector's state may be touched:
   tracing on, and on the main domain. *)
let recording () = !tracing_on && Domain.is_main_domain ()

let tracing () = recording ()

let reset () =
  next_id := 0;
  open_stack := [];
  completed := []

let start_tracing () =
  reset ();
  tracing_on := true

let stop_tracing () = tracing_on := false

let push ?(attrs = []) name =
  let parent, depth =
    match !open_stack with
    | [] -> None, 0
    | p :: _ -> Some p.id, p.depth + 1
  in
  let s =
    {
      id = !next_id;
      parent;
      name;
      depth;
      start_ns = Clock.now_ns ();
      stop_ns = -1;
      start_cpu = Clock.cpu_seconds ();
      stop_cpu = -1.0;
      attrs;
    }
  in
  incr next_id;
  open_stack := s :: !open_stack;
  s

let pop s =
  s.stop_ns <- Clock.now_ns ();
  s.stop_cpu <- Clock.cpu_seconds ();
  (match !open_stack with
   | top :: rest when top == s -> open_stack := rest
   | _ ->
     (* An exception unwound past intermediate spans: close everything
        down to [s] so the trace stays well-nested. *)
     let rec unwind = function
       | [] -> []
       | top :: rest ->
         top.stop_ns <- s.stop_ns;
         top.stop_cpu <- s.stop_cpu;
         completed := top :: !completed;
         if top == s then rest else unwind rest
     in
     open_stack := unwind !open_stack);
  completed := s :: !completed

let with_span ?attrs name f =
  if not (recording ()) then f ()
  else begin
    let s = push ?attrs name in
    Fun.protect ~finally:(fun () -> pop s) f
  end

let add_attr key value =
  if recording () then
    match !open_stack with
    | [] -> ()
    | s :: _ -> s.attrs <- (key, value) :: s.attrs

let emit ?(attrs = []) ~start_ns name =
  if recording () then begin
    let parent, depth =
      match !open_stack with
      | [] -> None, 0
      | p :: _ -> Some p.id, p.depth + 1
    in
    let cpu = Clock.cpu_seconds () in
    let s =
      {
        id = !next_id;
        parent;
        name;
        depth;
        start_ns;
        stop_ns = Clock.now_ns ();
        start_cpu = cpu;
        stop_cpu = cpu;
        attrs;
      }
    in
    incr next_id;
    completed := s :: !completed
  end

let finished () =
  List.sort
    (fun a b ->
      match compare a.start_ns b.start_ns with
      | 0 -> compare a.id b.id
      | c -> c)
    !completed

let duration_ns s = if s.stop_ns < 0 then 0 else s.stop_ns - s.start_ns

let duration_cpu s = if s.stop_cpu < 0.0 then 0.0 else s.stop_cpu -. s.start_cpu

(* Trace a whole computation: enable, run, disable, and hand back the
   completed spans in start order together with the result. *)
let trace f =
  start_tracing ();
  let result = Fun.protect ~finally:stop_tracing f in
  let spans = finished () in
  reset ();
  (result, spans)
