(* A reusable domain pool for the engine's parallel operators.

   OCaml 5 domains are heavyweight (each carries a minor heap and is
   scheduled by the OS), so the engine spawns its workers once and reuses
   them across every parallel operator of every query, instead of paying a
   [Domain.spawn] per join.  The pool holds [domains () - 1] persistent
   workers; the main domain is always the remaining participant, so a pool
   configured for [k] domains uses exactly [k] domains' worth of
   parallelism with [k - 1] spawned.

   Work model.  A job is a batch of [ntasks] independent tasks indexed
   [0 .. ntasks-1].  Participants (workers and the main domain alike) claim
   task indexes with an atomic fetch-and-add — the morsel-driven discipline
   of Leis et al.: cheap dynamic load balancing with no per-task channel or
   queue.  Each participant flushes its metrics shard ([Njq_obs.Metrics])
   when it runs out of tasks, so counter totals are exact by the time [run]
   returns.  Determinism is the caller's business and is easy: tasks write
   results into their own index of a preallocated array, so the output
   order is the task order no matter which domain ran what.

   Sizing semantics.  [set_domains] (CLI [--domains], env [NJQ_DOMAINS])
   fixes the *configured* parallelism.  The pool lazily grows its worker
   set to the largest configuration seen, but a job only ever admits
   [domains () - 1] workers (the [max_workers] cap), so shrinking the
   configuration — as the scaling bench does between variants — behaves as
   if the extra workers did not exist.

   Safety properties:
   - [run] called with [domains () <= 1], with [ntasks <= 1], from a
     worker (nested parallelism), or off the main domain degrades to a
     plain sequential loop — no locks, no shards, bit-identical behavior
     to a sequential engine.
   - an exception in any task is captured, the batch is drained (other
     participants stop claiming real work), and the exception is re-raised
     on the main domain after every participant has parked.
   - metrics sharding is bracketed by [enter_parallel]/[exit_parallel]
     so sequential execution keeps its unsynchronized single-add ticks. *)

let env_default () =
  match Sys.getenv_opt "NJQ_DOMAINS" with
  | None | Some "" -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)

let default_domains = env_default

let configured = ref (env_default ())

let domains () = !configured

(* ------------------------------------------------------------------ *)
(* Pool state                                                          *)
(* ------------------------------------------------------------------ *)

type job = {
  ntasks : int;
  next : int Atomic.t; (* next unclaimed task index *)
  task : int -> unit;
  max_workers : int; (* workers admitted to this job (configured - 1) *)
  mutable admitted : int; (* workers that joined this job *)
  mutable active : int; (* admitted workers still running *)
  mutable failed : exn option; (* first exception, re-raised by [run] *)
}

let mu = Mutex.create ()
let work_cv = Condition.create ()
let done_cv = Condition.create ()

(* Generation counter: bumped once per job; sleeping workers wake when it
   moves.  [current] is the live job, [None] between jobs. *)
let generation = ref 0
let current : job option ref = ref None
let shutting_down = ref false

(* Spawned workers, kept for [shutdown]. *)
let workers : unit Domain.t list ref = ref []
let spawned = ref 0

(* True while the calling domain is inside [run]'s parallel section; makes
   nested [run]s degrade to sequential loops instead of deadlocking. *)
let in_parallel_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let drain job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.ntasks then begin
      (match job.task i with
       | () -> ()
       | exception exn ->
         Mutex.lock mu;
         if job.failed = None then job.failed <- Some exn;
         (* Park the batch: leap [next] past the end so no participant
            claims further tasks. *)
         Atomic.set job.next job.ntasks;
         Mutex.unlock mu);
      claim ()
    end
  in
  claim ();
  (* Totals must be in the main cells — and worker task spans in the
     tracer's foreign list — before the pool join returns. *)
  Njq_obs.Metrics.flush_local ();
  Njq_obs.Span.flush_domain ()

let worker_loop () =
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock mu;
    while !generation = !my_gen && not !shutting_down do
      Condition.wait work_cv mu
    done;
    if !shutting_down then Mutex.unlock mu
    else begin
      my_gen := !generation;
      match !current with
      | Some job when job.admitted < job.max_workers ->
        job.admitted <- job.admitted + 1;
        job.active <- job.active + 1;
        Mutex.unlock mu;
        drain job;
        Mutex.lock mu;
        job.active <- job.active - 1;
        if job.active = 0 then Condition.broadcast done_cv;
        Mutex.unlock mu;
        loop ()
      | _ ->
        (* Job already fully staffed (or gone): sleep until the next one. *)
        Mutex.unlock mu;
        loop ()
    end
  in
  loop ()

let ensure_workers k =
  while !spawned < k do
    workers := Domain.spawn worker_loop :: !workers;
    incr spawned
  done

let set_domains n =
  let n = max 1 n in
  configured := n

(* ------------------------------------------------------------------ *)
(* Running a batch                                                     *)
(* ------------------------------------------------------------------ *)

let run_sequential n f = Array.init n f

let run_parallel n f =
  let k = domains () in
  ensure_workers (k - 1);
  let results = Array.make n None in
  let job =
    {
      ntasks = n;
      next = Atomic.make 0;
      task = (fun i -> results.(i) <- Some (f i));
      max_workers = min (k - 1) (n - 1);
      admitted = 0;
      active = 0;
      failed = None;
    }
  in
  let in_par = Domain.DLS.get in_parallel_key in
  in_par := true;
  Njq_obs.Metrics.enter_parallel ();
  Fun.protect
    ~finally:(fun () ->
      Njq_obs.Metrics.exit_parallel ();
      in_par := false)
    (fun () ->
      Mutex.lock mu;
      current := Some job;
      incr generation;
      Condition.broadcast work_cv;
      Mutex.unlock mu;
      (* The main domain participates in its own job. *)
      drain job;
      Mutex.lock mu;
      while job.active > 0 do
        Condition.wait done_cv mu
      done;
      current := None;
      Mutex.unlock mu;
      match job.failed with
      | Some exn -> raise exn
      | None ->
        Array.map
          (function
            | Some v -> v
            | None -> assert false (* every index < ntasks was claimed *))
          results)

let run n f =
  if n <= 0 then [||]
  else if
    n = 1 || domains () <= 1
    || (not (Domain.is_main_domain ()))
    || !(Domain.DLS.get in_parallel_key)
  then run_sequential n f
  else run_parallel n f

let shutdown () =
  Mutex.lock mu;
  shutting_down := true;
  Condition.broadcast work_cv;
  Mutex.unlock mu;
  List.iter Domain.join !workers;
  workers := [];
  spawned := 0;
  shutting_down := false

let () = at_exit (fun () -> if !spawned > 0 then shutdown ())
