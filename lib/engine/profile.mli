(** EXPLAIN ANALYZE: per-plan-node estimated vs actual cardinalities with
    q-errors, work counters, wall/CPU time and heap allocation, measured
    non-perturbingly during a normal {!Exec} run (see {!Exec.collect}).

    Under pipelined execution ({!Exec.pipeline_exec}, the default) a
    fused operator chain executes as one loop: its time, work and
    allocation are attributed to the node that owns the loop, while the
    operators fused into it still report exact [actual_rows] (with zero
    time/work/allocation of their own).  Row counts and summed work are
    identical in both modes. *)

open Njq_adl

type node = {
  plan : Plan.t;
  label : string;
  depth : int;
  est_rows : float;  (** {!Cost.rows_out} estimate. *)
  actual_rows : int;
  qerror : float;
  calls : int;  (** Executions of this physical node (1 unless shared). *)
  wall_ns : int;  (** Monotonic wall time exclusive of children. *)
  cpu_s : float;  (** CPU time exclusive of children. *)
  work : (string * int) list;  (** Counter deltas exclusive of children. *)
  minor_words : float;
      (** Minor-heap words allocated, exclusive of children, summed over
          calls. *)
  major_words : float;  (** Major-heap words (incl. promotions). *)
  children : node list;
}

(** [qerror ~est ~actual] is [max (est/actual) (actual/est)] with both
    sides clamped below at 1; always [>= 1.0]. *)
val qerror : est:float -> actual:int -> float

(** Execute the plan with a collector installed and fold the samples onto
    the plan tree.  [stats] sharpens the estimates (see {!Cost}). *)
val run : ?stats:Stats.t -> Catalog.t -> Plan.t -> Value.t * node

(** Pre-order flattening, this node first. *)
val preorder : node -> node list

val max_qerror : node -> float

(** Aligned table: operator, est, actual, q-err, ms, minor_kw, work. *)
val pp : Format.formatter -> node -> unit

val to_json : node -> Njq_obs.Json.t
