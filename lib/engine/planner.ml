(* Translation of (rewritten) ADL expressions into physical plans.

   The planner maps each top-level set-producing operator to a plan node and
   chooses join algorithms: it scans the join predicate's conjuncts for
   equi-key pairs f(x) = g(y) (f referencing only the left variable, g only
   the right) and picks a hash implementation when at least one pair exists,
   falling back to nested loops otherwise.  Scalar expressions and iterator
   parameter expressions stay as ADL and are evaluated per tuple.

   [plan ~force_algo] overrides the choice, which the benches use to compare
   algorithms on identical logical plans. *)

open Njq_adl
open Expr

(* Split a join predicate into equi-key pairs and a residual.  A conjunct
   qualifies as a key pair when it is an equality whose sides partition over
   the two join variables and reference nothing else (outer variables would
   make the key non-constant across the build). *)
let extract_keys xvar yvar pred =
  let cs = conjuncts pred in
  let only v e =
    let fv = Analysis.free_vars e in
    Analysis.S.subset fv (Analysis.S.singleton v)
    && not (Analysis.S.is_empty fv)
  in
  let classify = function
    | Cmp (Eq, a, b) when only xvar a && only yvar b -> `Key (a, b)
    | Cmp (Eq, a, b) when only yvar a && only xvar b -> `Key (b, a)
    | c -> `Residual c
  in
  let keys, residuals =
    List.fold_left
      (fun (ks, rs) c ->
        match classify c with
        | `Key kv -> (kv :: ks, rs)
        | `Residual r -> (ks, r :: rs))
      ([], []) cs
  in
  (List.rev keys, conjoin (List.rev residuals))

(* Recognize membership-style join predicates over a set-valued attribute of
   the left operand:

     'exists' z 'in' xset(x) . ekey(z) = ykey(y)        (quantifier form)
     ykey(y) 'in' xset(x)                               (membership form)

   Returns the pieces needed for a [Plan.MemberJoin]. *)
let member_shape xvar yvar pred =
  let only v e =
    let fv = Analysis.free_vars e in
    Analysis.S.subset fv (Analysis.S.singleton v)
  in
  match pred with
  | Quant (Exists, z, xset, Cmp (Eq, a, b)) when only xvar xset ->
    if only z a && only yvar b then Some (xset, z, a, b)
    else if only z b && only yvar a then Some (xset, z, b, a)
    else None
  | SetCmp (Mem, g, xset) when only yvar g && only xvar xset ->
    let z = Expr.fresh_var "elem" in
    Some (xset, z, Var z, g)
  | _ -> None

type algo_choice =
  | Auto
  | Force of Plan.join_algo
  | Cost_based of Catalog.t
      (* pick the cheapest algorithm per join under the {!Cost} model, and
         swap inner-join operands so that the smaller side is the hash
         build side *)

let choose choice keys =
  match choice with
  | Force a -> a
  | Auto | Cost_based _ ->
    (match keys with [] -> Plan.Nested_loop | _ -> Plan.Hash)

(* Recognize the Section 6.2 materialization pattern — each row's set-valued
   attribute joined with a base table:

     map[s : s except (into = map[p : p](select[p : g(p) 'in' s.attr](@T)))](src)

   and return (attr, into, row variable, row key g, table) for a PNHL plan. *)
let pnhl_shape (e : Expr.t) =
  match e with
  | Map { var = s;
          body = Except (Var s2, [ (into, inner) ]);
          src }
    when String.equal s s2 ->
    let stripped =
      match inner with
      | Map { var = p; body = Var p2; src = inner_sel } when String.equal p p2 ->
        Some inner_sel
      | Select _ -> Some inner
      | _ -> None
    in
    (match stripped with
     | Some (Select { var = p; pred = SetCmp (Mem, g, Field (Var sv, attr));
                      src = Table t })
       when String.equal sv s
            && (let fv = Analysis.free_vars g in
                Analysis.S.subset fv (Analysis.S.singleton p)) ->
       Some (src, attr, into, p, g, t)
     | _ -> None)
  | _ -> None

(* Statistics for cost-based choices, computed lazily once per plan call. *)
type cost_ctx = { cat : Catalog.t; stats : Stats.t Lazy.t }

let plan_cost ctx p = Cost.cost ~stats:(Lazy.force ctx.stats) ctx.cat p

(* PNHL memory budget: how many build-table rows the in-memory hash table
   is assumed to hold at once (the |M| of Section 6.2).  The partition
   count follows as ceil(|T| / budget), so a build table that fits is one
   partition — BENCH_engine.json's b5 shows forcing 8 partitions on a
   256-row table costs ~3.9x, which is what deriving the count from the
   cardinality avoids. *)
let pnhl_mem_rows = ref 4096

let pnhl_budget ?cat table =
  match cat with
  | None -> max_int (* no cardinality to consult: keep one partition *)
  | Some c ->
    let card =
      match Catalog.find_opt c table with
      | Some tbl -> List.length tbl.Catalog.rows
      | None -> 0
    in
    if card <= !pnhl_mem_rows then max_int else !pnhl_mem_rows

(* Is this expression a set-producing operator we can plan, or a scalar /
   parameter expression that must stay in ADL? *)
let rec plan_with ?ctx ?cat (choice : algo_choice) (e : Expr.t) : Plan.t =
  let plan = plan_with ?ctx ?cat choice in
  match e with
  | Table name -> Plan.Scan name
  | Select { var; pred; src } -> Plan.Filter { var; pred; input = plan src }
  | Map _ when pnhl_shape e <> None ->
    (* Section 6.2: materialize a set-valued attribute against a base table
       with the PNHL algorithm rather than per-tuple nested evaluation. *)
    let src, attr, into, p, g, t = Option.get (pnhl_shape e) in
    Plan.Pnhl
      { attr;
        elem_key = Var "elem";
        row_key = Analysis.subst1 p (Var "row") g;
        into;
        mem_budget = pnhl_budget ?cat t;
        left = plan src;
        right = Plan.Scan t }
  | Map { var; body; src } -> Plan.MapOp { var; body; input = plan src }
  | Project (attrs, src) -> Plan.ProjectOp (attrs, plan src)
  | Flatten src -> Plan.FlattenOp (plan src)
  | Union (a, b) -> Plan.UnionOp (plan a, plan b)
  | Inter (a, b) -> Plan.InterOp (plan a, plan b)
  | Diff (a, b) -> Plan.DiffOp (plan a, plan b)
  | Product (a, b) -> Plan.ProductOp (plan a, plan b)
  | Join { kind; xvar; yvar; pred; left; right } ->
    let keys, residual = extract_keys xvar yvar pred in
    let member =
      (* Membership joins apply when the whole predicate is the membership
         test and an algorithm choice is not forced to nested loop. *)
      if keys = [] && choice <> Force Plan.Nested_loop then
        member_shape xvar yvar pred
      else None
    in
    (match member, kind with
     | Some (xset, elem_var, elem_key, ykey), (Semi | Anti | Inner) ->
       let mkind =
         match kind with
         | Semi -> Plan.MSemi
         | Anti -> Plan.MAnti
         | _ -> Plan.MInner
       in
       Plan.MemberJoin
         { kind = mkind; xvar; yvar; xset; elem_var; elem_key; ykey;
           left = plan left; right = plan right }
     | _ ->
       let lp = plan left and rp = plan right in
       (match choice with
        | Cost_based cat when keys <> [] ->
          let mk algo ~swap =
            if swap then
              (* X join Y = Y join X: swap operands, variables and key
                 sides; the predicate's variables keep binding the same
                 logical rows.  Only valid for the symmetric inner join. *)
              Plan.JoinOp
                { algo; kind; xvar = yvar; yvar = xvar;
                  keys = List.map (fun (kx, ky) -> (ky, kx)) keys;
                  residual; left = rp; right = lp }
            else
              Plan.JoinOp
                { algo; kind; xvar; yvar; keys; residual; left = lp; right = rp }
          in
          let candidates =
            mk Plan.Nested_loop ~swap:false
            :: mk Plan.Hash ~swap:false
            ::
            (match kind with
             | Expr.Inner ->
               [ mk Plan.Hash ~swap:true; mk Plan.Sort_merge ~swap:false ]
             | _ -> [])
          in
          let cctx =
            match ctx with
            | Some c -> c
            | None -> { cat; stats = lazy (Stats.analyze cat) }
          in
          List.fold_left
            (fun best cand ->
              if plan_cost cctx cand < plan_cost cctx best then cand else best)
            (List.hd candidates) (List.tl candidates)
        | _ ->
          let algo = choose choice keys in
          (* A hash join without keys cannot run; degrade to nested loop. *)
          let algo = if keys = [] then Plan.Nested_loop else algo in
          Plan.JoinOp
            { algo; kind; xvar; yvar; keys; residual; left = lp; right = rp }))
  | Nestjoin { xvar; yvar; pred; body; attr; left; right } ->
    let keys, residual = extract_keys xvar yvar pred in
    let member =
      if keys = [] && choice <> Force Plan.Nested_loop then
        member_shape xvar yvar pred
      else None
    in
    (match member with
     | Some (xset, elem_var, elem_key, ykey) ->
       Plan.MemberJoin
         { kind = Plan.MNest { body; attr }; xvar; yvar; xset; elem_var;
           elem_key; ykey; left = plan left; right = plan right }
     | None ->
       let lp = plan left and rp = plan right in
       (match choice with
        | Cost_based cat when keys <> [] ->
          let mk algo =
            Plan.NestjoinOp
              { algo; xvar; yvar; keys; residual; body; attr;
                left = lp; right = rp }
          in
          let candidates = [ mk Plan.Nested_loop; mk Plan.Hash; mk Plan.Sort_merge ] in
          let cctx =
            match ctx with
            | Some c -> c
            | None -> { cat; stats = lazy (Stats.analyze cat) }
          in
          List.fold_left
            (fun best cand ->
              if plan_cost cctx cand < plan_cost cctx best then cand else best)
            (List.hd candidates) (List.tl candidates)
        | _ ->
          let algo = choose choice keys in
          let algo = if keys = [] then Plan.Nested_loop else algo in
          Plan.NestjoinOp
            { algo; xvar; yvar; keys; residual; body; attr;
              left = lp; right = rp }))
  | Rename (pairs, src) -> Plan.RenameOp (pairs, plan src)
  | Unnest (a, src) -> Plan.UnnestOp (a, plan src)
  | Nest { attrs; into; src } -> Plan.NestOp { attrs; into; input = plan src }
  | Divide (a, b) -> Plan.DivideOp (plan a, plan b)
  | Const _ | Var _ | Tuple _ | Field _ | TupleProj _ | Except _ | Concat _
  | SetLit _ | Arith _ | Cmp _ | SetCmp _ | And _ | Or _ | Not _ | If _
  | Quant _ | Agg _ | Deref _ ->
    (* Scalar or parameter-level expression: evaluate as-is. *)
    Plan.EvalOp e

(* ------------------------------------------------------------------ *)
(* Parallelization post-pass                                           *)
(* ------------------------------------------------------------------ *)

(* Minimum estimated input rows before an operator is worth fanning out to
   the domain pool: below it, partitioning and task hand-off cost more
   than they save. *)
let par_threshold = ref 256

(* Ceiling on the partition count of one parallel join, so the plan never
   schedules more buckets than a realistic pool can use at once. *)
let max_par_partitions = 16

let partitions_for l r =
  let biggest = Float.max l r in
  let parts = int_of_float (Float.ceil (biggest /. float_of_int !par_threshold)) in
  max 2 (min max_par_partitions parts)

(* Rewrite hot operators into their parallel variants where the
   stats-derived input estimates clear the threshold.  The partition count
   is fixed here, in the plan — execution only decides which domain runs
   which partition, so results and counter totals cannot depend on the
   pool size.  Applied only when the pool is configured for >= 2 domains
   ([plan ~cat]); a 1-domain run plans, executes, and counts exactly as
   the sequential engine. *)
let parallelize ?stats cat p =
  let est =
    match stats with
    | Some st -> fun node -> Cost.rows_out ~stats:st cat node
    | None -> fun node -> Cost.rows_out cat node
  in
  let thresh = float_of_int !par_threshold in
  let rec go p =
    let p = Plan.with_children p (List.map go (Plan.children p)) in
    match p with
    | Plan.JoinOp
        { algo = Plan.Hash;
          kind = (Expr.Inner | Expr.Semi | Expr.Anti) as kind;
          xvar; yvar;
          keys = _ :: _ as keys;
          residual; left; right } ->
      let l = est left and r = est right in
      if l >= thresh || r >= thresh then
        Plan.ParJoinOp
          { kind; xvar; yvar; keys; residual;
            partitions = partitions_for l r; left; right }
      else p
    | Plan.NestjoinOp
        { algo = Plan.Hash; xvar; yvar; keys = _ :: _ as keys; residual;
          body; attr; left; right } ->
      let l = est left and r = est right in
      if l >= thresh || r >= thresh then
        Plan.ParNestjoinOp
          { xvar; yvar; keys; residual; body; attr;
            partitions = partitions_for l r; left; right }
      else p
    | Plan.Pnhl { attr; elem_key; row_key; into; mem_budget; left; right } ->
      (* Parallel PNHL pays off when there is more than one segment to
         probe concurrently, or when a single probe pass is itself large. *)
      if est left >= thresh || est right >= thresh then
        Plan.ParPnhl { attr; elem_key; row_key; into; mem_budget; left; right }
      else p
    | Plan.Filter { var; pred; input } when est input >= thresh ->
      Plan.ParFilter { var; pred; input }
    | Plan.MapOp { var; body; input } when est input >= thresh ->
      Plan.ParMapOp { var; body; input }
    | p -> p
  in
  go p

let plan ?(algo = Auto) ?cat e =
  let algo_label =
    match algo with
    | Auto -> "auto"
    | Force _ -> "force"
    | Cost_based _ -> "cost_based"
  in
  Njq_obs.Span.with_span ~attrs:[ ("algo", Njq_obs.Span.AStr algo_label) ] "plan"
  @@ fun () ->
  let ctx =
    match algo with
    | Cost_based cat -> Some { cat; stats = lazy (Stats.analyze cat) }
    | Auto | Force _ -> None
  in
  let p = plan_with ?ctx ?cat algo e in
  match cat with
  | Some c when Pool.domains () >= 2 ->
    let stats =
      match ctx with Some { stats; _ } -> Lazy.force stats | None -> Stats.analyze c
    in
    parallelize ~stats c p
  | _ -> p

(* End-to-end convenience: hoist uncorrelated subqueries, plan, execute. *)
let run ?algo cat e = Exec.run cat (plan ?algo ~cat (Consthoist.hoist cat e))
