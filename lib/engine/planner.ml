(* Translation of (rewritten) ADL expressions into physical plans.

   The planner maps each top-level set-producing operator to a plan node and
   chooses join algorithms: it scans the join predicate's conjuncts for
   equi-key pairs f(x) = g(y) (f referencing only the left variable, g only
   the right) and picks a hash implementation when at least one pair exists,
   falling back to nested loops otherwise.  Scalar expressions and iterator
   parameter expressions stay as ADL and are evaluated per tuple.

   [plan ~force_algo] overrides the choice, which the benches use to compare
   algorithms on identical logical plans. *)

open Njq_adl
open Expr

(* Split a join predicate into equi-key pairs and a residual.  A conjunct
   qualifies as a key pair when it is an equality whose sides partition over
   the two join variables and reference nothing else (outer variables would
   make the key non-constant across the build). *)
let extract_keys xvar yvar pred =
  let cs = conjuncts pred in
  let only v e =
    let fv = Analysis.free_vars e in
    Analysis.S.subset fv (Analysis.S.singleton v)
    && not (Analysis.S.is_empty fv)
  in
  let classify = function
    | Cmp (Eq, a, b) when only xvar a && only yvar b -> `Key (a, b)
    | Cmp (Eq, a, b) when only yvar a && only xvar b -> `Key (b, a)
    | c -> `Residual c
  in
  let keys, residuals =
    List.fold_left
      (fun (ks, rs) c ->
        match classify c with
        | `Key kv -> (kv :: ks, rs)
        | `Residual r -> (ks, r :: rs))
      ([], []) cs
  in
  (List.rev keys, conjoin (List.rev residuals))

(* Recognize membership-style join predicates over a set-valued attribute of
   the left operand:

     'exists' z 'in' xset(x) . ekey(z) = ykey(y)        (quantifier form)
     ykey(y) 'in' xset(x)                               (membership form)

   Returns the pieces needed for a [Plan.MemberJoin]. *)
let member_shape xvar yvar pred =
  let only v e =
    let fv = Analysis.free_vars e in
    Analysis.S.subset fv (Analysis.S.singleton v)
  in
  match pred with
  | Quant (Exists, z, xset, Cmp (Eq, a, b)) when only xvar xset ->
    if only z a && only yvar b then Some (xset, z, a, b)
    else if only z b && only yvar a then Some (xset, z, b, a)
    else None
  | SetCmp (Mem, g, xset) when only yvar g && only xvar xset ->
    let z = Expr.fresh_var "elem" in
    Some (xset, z, Var z, g)
  | _ -> None

type algo_choice =
  | Auto
  | Force of Plan.join_algo
  | Cost_based of Catalog.t
      (* pick the cheapest algorithm per join under the {!Cost} model, and
         swap inner-join operands so that the smaller side is the hash
         build side *)

let choose choice keys =
  match choice with
  | Force a -> a
  | Auto | Cost_based _ ->
    (match keys with [] -> Plan.Nested_loop | _ -> Plan.Hash)

(* Recognize the Section 6.2 materialization pattern — each row's set-valued
   attribute joined with a base table:

     map[s : s except (into = map[p : p](select[p : g(p) 'in' s.attr](@T)))](src)

   and return (attr, into, row variable, row key g, table) for a PNHL plan. *)
let pnhl_shape (e : Expr.t) =
  match e with
  | Map { var = s;
          body = Except (Var s2, [ (into, inner) ]);
          src }
    when String.equal s s2 ->
    let stripped =
      match inner with
      | Map { var = p; body = Var p2; src = inner_sel } when String.equal p p2 ->
        Some inner_sel
      | Select _ -> Some inner
      | _ -> None
    in
    (match stripped with
     | Some (Select { var = p; pred = SetCmp (Mem, g, Field (Var sv, attr));
                      src = Table t })
       when String.equal sv s
            && (let fv = Analysis.free_vars g in
                Analysis.S.subset fv (Analysis.S.singleton p)) ->
       Some (src, attr, into, p, g, t)
     | _ -> None)
  | _ -> None

(* Statistics for cost-based choices, computed lazily once per plan call. *)
type cost_ctx = { cat : Catalog.t; stats : Stats.t Lazy.t }

let plan_cost ctx p = Cost.cost ~stats:(Lazy.force ctx.stats) ctx.cat p

(* PNHL memory budget: how many build-table rows the in-memory hash table
   is assumed to hold at once (the |M| of Section 6.2).  The partition
   count follows as ceil(|T| / budget), so a build table that fits is one
   partition — BENCH_engine.json's b5 shows forcing 8 partitions on a
   256-row table costs ~3.9x, which is what deriving the count from the
   cardinality avoids. *)
let pnhl_mem_rows = ref 4096

let pnhl_budget ?cat table =
  match cat with
  | None -> max_int (* no cardinality to consult: keep one partition *)
  | Some c ->
    let card =
      match Catalog.find_opt c table with
      | Some tbl -> List.length tbl.Catalog.rows
      | None -> 0
    in
    if card <= !pnhl_mem_rows then max_int else !pnhl_mem_rows

(* Is this expression a set-producing operator we can plan, or a scalar /
   parameter expression that must stay in ADL? *)
let rec plan_with ?ctx ?cat (choice : algo_choice) (e : Expr.t) : Plan.t =
  let plan = plan_with ?ctx ?cat choice in
  match e with
  | Table name -> Plan.Scan name
  | Select { var; pred; src } -> Plan.Filter { var; pred; input = plan src }
  | Map _ when pnhl_shape e <> None ->
    (* Section 6.2: materialize a set-valued attribute against a base table
       with the PNHL algorithm rather than per-tuple nested evaluation. *)
    let src, attr, into, p, g, t = Option.get (pnhl_shape e) in
    Plan.Pnhl
      { attr;
        elem_key = Var "elem";
        row_key = Analysis.subst1 p (Var "row") g;
        into;
        mem_budget = pnhl_budget ?cat t;
        left = plan src;
        right = Plan.Scan t }
  | Map { var; body; src } -> Plan.MapOp { var; body; input = plan src }
  | Project (attrs, src) -> Plan.ProjectOp (attrs, plan src)
  | Flatten src -> Plan.FlattenOp (plan src)
  | Union (a, b) -> Plan.UnionOp (plan a, plan b)
  | Inter (a, b) -> Plan.InterOp (plan a, plan b)
  | Diff (a, b) -> Plan.DiffOp (plan a, plan b)
  | Product (a, b) -> Plan.ProductOp (plan a, plan b)
  | Join { kind; xvar; yvar; pred; left; right } ->
    let keys, residual = extract_keys xvar yvar pred in
    let member =
      (* Membership joins apply when the whole predicate is the membership
         test and an algorithm choice is not forced to nested loop. *)
      if keys = [] && choice <> Force Plan.Nested_loop then
        member_shape xvar yvar pred
      else None
    in
    (match member, kind with
     | Some (xset, elem_var, elem_key, ykey), (Semi | Anti | Inner) ->
       let mkind =
         match kind with
         | Semi -> Plan.MSemi
         | Anti -> Plan.MAnti
         | _ -> Plan.MInner
       in
       Plan.MemberJoin
         { kind = mkind; xvar; yvar; xset; elem_var; elem_key; ykey;
           left = plan left; right = plan right }
     | _ ->
       let lp = plan left and rp = plan right in
       (match choice with
        | Cost_based cat when keys <> [] ->
          let mk algo ~swap =
            if swap then
              (* X join Y = Y join X: swap operands, variables and key
                 sides; the predicate's variables keep binding the same
                 logical rows.  Only valid for the symmetric inner join. *)
              Plan.JoinOp
                { algo; kind; xvar = yvar; yvar = xvar;
                  keys = List.map (fun (kx, ky) -> (ky, kx)) keys;
                  residual; left = rp; right = lp }
            else
              Plan.JoinOp
                { algo; kind; xvar; yvar; keys; residual; left = lp; right = rp }
          in
          let candidates =
            mk Plan.Nested_loop ~swap:false
            :: mk Plan.Hash ~swap:false
            ::
            (match kind with
             | Expr.Inner ->
               [ mk Plan.Hash ~swap:true; mk Plan.Sort_merge ~swap:false ]
             | _ -> [])
          in
          let cctx =
            match ctx with
            | Some c -> c
            | None -> { cat; stats = lazy (Stats.cached cat) }
          in
          List.fold_left
            (fun best cand ->
              if plan_cost cctx cand < plan_cost cctx best then cand else best)
            (List.hd candidates) (List.tl candidates)
        | _ ->
          let algo = choose choice keys in
          (* A hash join without keys cannot run; degrade to nested loop. *)
          let algo = if keys = [] then Plan.Nested_loop else algo in
          Plan.JoinOp
            { algo; kind; xvar; yvar; keys; residual; left = lp; right = rp }))
  | Nestjoin { xvar; yvar; pred; body; attr; left; right } ->
    let keys, residual = extract_keys xvar yvar pred in
    let member =
      if keys = [] && choice <> Force Plan.Nested_loop then
        member_shape xvar yvar pred
      else None
    in
    (match member with
     | Some (xset, elem_var, elem_key, ykey) ->
       Plan.MemberJoin
         { kind = Plan.MNest { body; attr }; xvar; yvar; xset; elem_var;
           elem_key; ykey; left = plan left; right = plan right }
     | None ->
       let lp = plan left and rp = plan right in
       (match choice with
        | Cost_based cat when keys <> [] ->
          let mk algo =
            Plan.NestjoinOp
              { algo; xvar; yvar; keys; residual; body; attr;
                left = lp; right = rp }
          in
          let candidates = [ mk Plan.Nested_loop; mk Plan.Hash; mk Plan.Sort_merge ] in
          let cctx =
            match ctx with
            | Some c -> c
            | None -> { cat; stats = lazy (Stats.cached cat) }
          in
          List.fold_left
            (fun best cand ->
              if plan_cost cctx cand < plan_cost cctx best then cand else best)
            (List.hd candidates) (List.tl candidates)
        | _ ->
          let algo = choose choice keys in
          let algo = if keys = [] then Plan.Nested_loop else algo in
          Plan.NestjoinOp
            { algo; xvar; yvar; keys; residual; body; attr;
              left = lp; right = rp }))
  | Rename (pairs, src) -> Plan.RenameOp (pairs, plan src)
  | Unnest (a, src) -> Plan.UnnestOp (a, plan src)
  | Nest { attrs; into; src } -> Plan.NestOp { attrs; into; input = plan src }
  | Divide (a, b) -> Plan.DivideOp (plan a, plan b)
  | Const _ | Var _ | Param _ | Tuple _ | Field _ | TupleProj _ | Except _
  | Concat _ | SetLit _ | Arith _ | Cmp _ | SetCmp _ | And _ | Or _ | Not _
  | If _ | Quant _ | Agg _ | Deref _ ->
    (* Scalar or parameter-level expression: evaluate as-is. *)
    Plan.EvalOp e

(* ------------------------------------------------------------------ *)
(* Access-path post-pass: sargable predicates onto catalog indexes      *)
(* ------------------------------------------------------------------ *)

(* Master switch for the index rewrite ([plan ~cat] consults it); off, the
   planner emits exactly the full-scan plans of previous versions. *)
let use_indexes = ref true

(* A lookup expression must be closed: free variables would make the key
   depend on an outer binding the index cannot see. *)
let closed e = Analysis.S.is_empty (Analysis.free_vars e)

(* [x.attr = e] (either orientation) with [e] closed: the sargable shape a
   point lookup consumes. *)
let eq_const var attr = function
  | Cmp (Eq, Field (Var v, a), e)
    when String.equal v var && String.equal a attr && closed e ->
    Some e
  | Cmp (Eq, e, Field (Var v, a))
    when String.equal v var && String.equal a attr && closed e ->
    Some e
  | _ -> None

(* An inequality between [x.attr] and a closed expression, normalized to a
   bound on the attribute: [`Lo (e, inclusive)] or [`Hi (e, inclusive)]. *)
let range_bound var attr c =
  let bound op e =
    match op with
    | Lt -> Some (`Hi (e, false))
    | Le -> Some (`Hi (e, true))
    | Gt -> Some (`Lo (e, false))
    | Ge -> Some (`Lo (e, true))
    | Eq | Neq -> None
  in
  match c with
  | Cmp (op, Field (Var v, a), e)
    when String.equal v var && String.equal a attr && closed e ->
    bound op e
  | Cmp (op, e, Field (Var v, a))
    when String.equal v var && String.equal a attr && closed e ->
    (* e op x.a reads mirrored: e < x.a is a lower bound on x.a. *)
    (match op with
     | Lt -> bound Gt e
     | Le -> bound Ge e
     | Gt -> bound Lt e
     | Ge -> bound Le e
     | Eq | Neq -> None)
  | _ -> None

(* Index attributes are base-table names; when the replaced subplan
   renames the scan, the predicate (or join keys) see the renamed
   attribute instead. *)
let renamed rename attr =
  match List.assoc_opt attr rename with Some a -> a | None -> attr

(* Point-lookup candidate: every indexed attribute must be pinned by an
   equality conjunct; one conjunct is consumed per attribute, everything
   else stays in the residual. *)
let point_scan ~rename var table cs idx =
  let rec cover keys remaining = function
    | [] -> Some (List.rev keys, remaining)
    | attr :: rest ->
      let rec pick seen = function
        | [] -> None
        | c :: tl ->
          (match eq_const var (renamed rename attr) c with
           | Some e -> Some (e, List.rev_append seen tl)
           | None -> pick (c :: seen) tl)
      in
      (match pick [] remaining with
       | None -> None
       | Some (e, remaining) -> cover (e :: keys) remaining rest)
  in
  match cover [] cs (Catalog.index_attrs idx) with
  | None -> None
  | Some (keys, residual_cs) ->
    Some
      (Plan.IndexScan
         { table; index = Catalog.index_name idx; var;
           lookup = Plan.LPoint keys; residual = conjoin residual_cs;
           rename })

(* Range candidate on the leading attribute of a sorted index: the first
   lower and first upper bound found become the lookup, further bounds and
   unrelated conjuncts stay in the residual. *)
let range_scan ~rename var table cs idx =
  match Catalog.index_kind idx with
  | Catalog.Hash_index -> None
  | Catalog.Sorted_index ->
    let attr = renamed rename (List.hd (Catalog.index_attrs idx)) in
    let lo, hi, residual_cs =
      List.fold_left
        (fun (lo, hi, rs) c ->
          match range_bound var attr c with
          | Some (`Lo b) when Option.is_none lo -> (Some b, hi, rs)
          | Some (`Hi b) when Option.is_none hi -> (lo, Some b, rs)
          | _ -> (lo, hi, c :: rs))
        (None, None, []) cs
    in
    if Option.is_none lo && Option.is_none hi then None
    else
      Some
        (Plan.IndexScan
           { table; index = Catalog.index_name idx; var;
             lookup = Plan.LRange { lo; hi };
             residual = conjoin (List.rev residual_cs); rename })

(* Index-nested-loop candidate: every indexed attribute of the inner table
   must be the y side of some equi-key pair (syntactically [y.attr]); the
   matched pairs' x sides become the probe keys, leftover pairs fold back
   into the residual as equality conjuncts. *)
let index_join ~rename kind xvar yvar table keys residual left idx =
  let rec cover acc remaining = function
    | [] -> Some (List.rev acc, remaining)
    | attr :: rest ->
      let attr = renamed rename attr in
      let rec pick seen = function
        | [] -> None
        | ((kx, ky) as pair) :: tl ->
          (match ky with
           | Field (Var v, a) when String.equal v yvar && String.equal a attr ->
             Some (kx, List.rev_append seen tl)
           | _ -> pick (pair :: seen) tl)
      in
      (match pick [] remaining with
       | None -> None
       | Some (kx, remaining) -> cover (kx :: acc) remaining rest)
  in
  match cover [] keys (Catalog.index_attrs idx) with
  | None -> None
  | Some (kxs, leftover) ->
    let extra = List.map (fun (kx, ky) -> Cmp (Eq, kx, ky)) leftover in
    Some
      (Plan.IndexJoin
         { kind; xvar; yvar; table; index = Catalog.index_name idx;
           keys = kxs; residual = conjoin (extra @ conjuncts residual);
           rename; left })

(* Rewrite full scans under sargable predicates into index access paths,
   bottom-up, keeping a candidate only when the cost model prices it
   strictly below the scan-based original — with statistics, that is what
   makes index paths win only when selective. *)
let access_paths ?stats cat p =
  if not (Catalog.has_indexes cat) then p
  else begin
    let cost node =
      match stats with
      | Some st -> Cost.cost ~stats:st cat node
      | None -> Cost.cost cat node
    in
    let best original candidates =
      List.fold_left
        (fun best cand -> if cost cand < cost best then cand else best)
        original candidates
    in
    (* A bare scan, or a scan under an attribute rename — the only two
       shapes the planner emits for base-extent access. *)
    let scan_shape = function
      | Plan.Scan table -> Some (table, [])
      | Plan.RenameOp (pairs, Plan.Scan table) -> Some (table, pairs)
      | _ -> None
    in
    let rec go p =
      let p = Plan.with_children p (List.map go (Plan.children p)) in
      match p with
      | Plan.Filter { var; pred; input } when scan_shape input <> None ->
        let table, rename = Option.get (scan_shape input) in
        let cs = conjuncts pred in
        let candidates =
          List.concat_map
            (fun idx ->
              List.filter_map Fun.id
                [ point_scan ~rename var table cs idx;
                  range_scan ~rename var table cs idx ])
            (Catalog.indexes_on cat table)
        in
        best p candidates
      | Plan.JoinOp
          { algo = Plan.Hash | Plan.Nested_loop;
            kind = (Expr.Inner | Expr.Semi | Expr.Anti) as kind;
            xvar; yvar;
            keys = _ :: _ as keys;
            residual; left; right }
        when scan_shape right <> None ->
        let table, rename = Option.get (scan_shape right) in
        let candidates =
          List.filter_map
            (index_join ~rename kind xvar yvar table keys residual left)
            (Catalog.indexes_on cat table)
        in
        best p candidates
      | p -> p
    in
    go p
  end

(* ------------------------------------------------------------------ *)
(* Parallelization post-pass                                           *)
(* ------------------------------------------------------------------ *)

(* Minimum estimated input rows before an operator is worth fanning out to
   the domain pool: below it, partitioning and task hand-off cost more
   than they save. *)
let par_threshold = ref 256

(* Ceiling on the partition count of one parallel join, so the plan never
   schedules more buckets than a realistic pool can use at once. *)
let max_par_partitions = 16

let partitions_for l r =
  let biggest = Float.max l r in
  let parts = int_of_float (Float.ceil (biggest /. float_of_int !par_threshold)) in
  max 2 (min max_par_partitions parts)

(* Rewrite hot operators into their parallel variants where the
   stats-derived input estimates clear the threshold.  The partition count
   is fixed here, in the plan — execution only decides which domain runs
   which partition, so results and counter totals cannot depend on the
   pool size.  Applied only when the pool is configured for >= 2 domains
   ([plan ~cat]); a 1-domain run plans, executes, and counts exactly as
   the sequential engine. *)
let parallelize ?stats cat p =
  let est =
    match stats with
    | Some st -> fun node -> Cost.rows_out ~stats:st cat node
    | None -> fun node -> Cost.rows_out cat node
  in
  let thresh = float_of_int !par_threshold in
  let rec go p =
    let p = Plan.with_children p (List.map go (Plan.children p)) in
    match p with
    | Plan.JoinOp
        { algo = Plan.Hash;
          kind = (Expr.Inner | Expr.Semi | Expr.Anti) as kind;
          xvar; yvar;
          keys = _ :: _ as keys;
          residual; left; right } ->
      let l = est left and r = est right in
      if l >= thresh || r >= thresh then
        Plan.ParJoinOp
          { kind; xvar; yvar; keys; residual;
            partitions = partitions_for l r; left; right }
      else p
    | Plan.NestjoinOp
        { algo = Plan.Hash; xvar; yvar; keys = _ :: _ as keys; residual;
          body; attr; left; right } ->
      let l = est left and r = est right in
      if l >= thresh || r >= thresh then
        Plan.ParNestjoinOp
          { xvar; yvar; keys; residual; body; attr;
            partitions = partitions_for l r; left; right }
      else p
    | Plan.Pnhl { attr; elem_key; row_key; into; mem_budget; left; right } ->
      (* Parallel PNHL pays off when there is more than one segment to
         probe concurrently, or when a single probe pass is itself large. *)
      if est left >= thresh || est right >= thresh then
        Plan.ParPnhl { attr; elem_key; row_key; into; mem_budget; left; right }
      else p
    | Plan.Filter { var; pred; input } when est input >= thresh ->
      Plan.ParFilter { var; pred; input }
    | Plan.MapOp { var; body; input } when est input >= thresh ->
      Plan.ParMapOp { var; body; input }
    | p -> p
  in
  go p

(* Clamp plan memory use to the engine budget ({!Memory.budget}): a hash
   join whose build side is estimated past the budget becomes a Grace join
   (which spills partitions to temp files and processes them one resident
   partition at a time), and Grace/PNHL nodes carrying a larger in-plan
   budget are clamped down so their executors spill likewise.  Runs before
   {!parallelize} so an over-budget hash join is never fanned out across
   the pool.  Identity when the budget is unlimited.  Without a catalog
   there are no cardinality estimates, so every hash join is converted —
   the conservative reading of a binding budget. *)
let apply_mem_budget ?stats cat p =
  let budget = !Memory.budget in
  if budget = max_int then p
  else
    let est p =
      match cat with Some c -> Cost.rows_out ?stats c p | None -> infinity
    in
    let rec go p =
      let p = Plan.with_children p (List.map go (Plan.children p)) in
      match p with
      | Plan.JoinOp
          { algo = Plan.Hash;
            kind = (Expr.Inner | Expr.Semi | Expr.Anti) as kind;
            xvar; yvar;
            keys = _ :: _ as keys;
            residual; left; right }
        when est right > float_of_int budget ->
        Plan.GraceJoin
          { kind; xvar; yvar; keys; residual; mem_budget = budget; left;
            right }
      | Plan.GraceJoin ({ mem_budget; _ } as g) when mem_budget > budget ->
        Plan.GraceJoin { g with mem_budget = budget }
      | Plan.Pnhl ({ mem_budget; _ } as g) when mem_budget > budget ->
        Plan.Pnhl { g with mem_budget = budget }
      | Plan.ParPnhl ({ mem_budget; _ } as g) when mem_budget > budget ->
        Plan.ParPnhl { g with mem_budget = budget }
      | p -> p
    in
    go p

let plan ?(algo = Auto) ?cat e =
  let algo_label =
    match algo with
    | Auto -> "auto"
    | Force _ -> "force"
    | Cost_based _ -> "cost_based"
  in
  Njq_obs.Span.with_span ~attrs:[ ("algo", Njq_obs.Span.AStr algo_label) ] "plan"
  @@ fun () ->
  let ctx =
    match algo with
    | Cost_based cat -> Some { cat; stats = lazy (Stats.cached cat) }
    | Auto | Force _ -> None
  in
  let p = plan_with ?ctx ?cat algo e in
  let p =
    (* Join-order enumeration over the rewriter's output, before access
       paths are chosen (the enumerator reasons over Scan/Filter shapes)
       — skipped under [Force], whose callers want the rewriter's exact
       plan with the named algorithm everywhere. *)
    match cat, algo with
    | Some c, (Auto | Cost_based _) when !Joinorder.use_joinorder ->
      Joinorder.optimize ~stats:(Stats.cached c) c p
    | _ -> p
  in
  let p =
    (* Sargable predicates onto declared indexes — skipped under [Force],
       whose callers want the named algorithm everywhere. *)
    match cat, algo with
    | Some c, (Auto | Cost_based _)
      when !use_indexes && Catalog.has_indexes c ->
      access_paths ~stats:(Stats.cached c) c p
    | _ -> p
  in
  let p =
    if Memory.unlimited () then p
    else
      let stats = Option.map Stats.cached cat in
      apply_mem_budget ?stats cat p
  in
  match cat with
  | Some c when Pool.domains () >= 2 ->
    let stats =
      match ctx with Some { stats; _ } -> Lazy.force stats | None -> Stats.cached c
    in
    parallelize ~stats c p
  | _ -> p

(* End-to-end convenience: hoist uncorrelated subqueries, plan, execute. *)
let run ?algo cat e = Exec.run cat (plan ?algo ~cat (Consthoist.hoist cat e))
