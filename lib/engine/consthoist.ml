(* Hoisting of uncorrelated subqueries.

   Section 3 of the paper: "uncorrelated subqueries simply are constants,
   and treated as such".  Logically they are; operationally, a closed
   base-table subquery sitting inside an iterator's parameter expression
   would be re-evaluated for every tuple.  This pass replaces every maximal
   closed set-producing subexpression that touches a base table — wherever
   it occurs inside a parameter expression — by the constant value it
   denotes, evaluated once against the catalog.

   Top-level operands are left alone (the plan executes them once anyway
   and keeping them symbolic preserves plan readability and algorithm
   choice); only parameter positions (selection/map/join/quantifier
   bodies) are rewritten. *)

open Njq_adl
open Expr

(* Is this a set-producing expression worth hoisting: closed, uses a base
   table, and not already a constant? *)
let hoistable e =
  match e with
  | Const _ -> false
  | _ -> Analysis.uses_base_table e && Analysis.is_closed e

(* Replace maximal hoistable subexpressions of a parameter expression. *)
let rec hoist_in_param cat (e : Expr.t) : Expr.t =
  if hoistable e then Const (Eval.run cat e)
  else map_children (hoist_in_param cat) e

(* Walk the operator tree: operands recurse structurally, parameter
   expressions get the hoisting treatment. *)
let rec hoist_expr (cat : Catalog.t) (e : Expr.t) : Expr.t =
  match e with
  | Select { var; pred; src } ->
    Select { var; pred = hoist_in_param cat pred; src = hoist_expr cat src }
  | Map { var; body; src } ->
    Map { var; body = hoist_in_param cat body; src = hoist_expr cat src }
  | Join j ->
    Join
      { j with pred = hoist_in_param cat j.pred; left = hoist_expr cat j.left;
        right = hoist_expr cat j.right }
  | Nestjoin j ->
    Nestjoin
      { j with pred = hoist_in_param cat j.pred;
        body = hoist_in_param cat j.body; left = hoist_expr cat j.left;
        right = hoist_expr cat j.right }
  | _ -> map_children (hoist_expr cat) e

let hoist cat e = Njq_obs.Span.with_span "consthoist" (fun () -> hoist_expr cat e)
