(** A simple cost model over physical plans: cardinality estimation from
    exact base-table sizes plus textbook selectivity heuristics, and
    per-operator cost formulas in abstract work units.  Used by
    [Planner.Cost_based] for algorithm and hash-build-side choice. *)

open Njq_adl

(** Selectivity of a predicate, by syntactic shape; in [0, 1]. *)
val selectivity : Expr.t -> float

(** Average set-valued attribute cardinality assumed when unknown. *)
val assumed_fanout : float

(** Provenance of an attribute of a plan's rows: the base (table,
    attribute) pair it descends from, looking through filters, renames,
    projections and join concatenation; [None] when untracked (computed
    attributes, grouping results, opaque operators). *)
val column_of_attr : Catalog.t -> Plan.t -> string -> (string * string) option

(** Fraction of a column's value range covered by optional integer
    bounds, interpolated from min/max statistics; [None] when the stats
    cannot answer. *)
val range_fraction :
  Stats.column_stats -> lo:int option -> hi:int option -> float option

(** Estimated number of output rows.  With [stats] (see {!Stats}),
    equality selectivities over direct scans use real NDV counts. *)
val rows_out : ?stats:Stats.t -> Catalog.t -> Plan.t -> float

(** Cost of one join by algorithm and operand cardinalities (left, right);
    the hash build side (right) is weighted heavier than the probe side. *)
val join_algo_cost : Plan.join_algo -> float -> float -> float

(** Estimated total cost (monotone in input sizes; comparable to the
    {!Njq_adl.Counters} totals in spirit, not calibrated). *)
val cost : ?stats:Stats.t -> Catalog.t -> Plan.t -> float
