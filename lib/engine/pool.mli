(** A reusable domain pool for the engine's parallel operators.

    Workers are spawned once and reused across every parallel operator of
    every query; the main domain always participates, so a configuration
    of [k] domains spawns [k - 1] workers.  A job is a batch of
    independent, index-addressed tasks claimed morsel-style via an atomic
    cursor; each participant flushes its metrics shard before the join, so
    {!Njq_obs.Metrics} totals are exact when {!run} returns. *)

(** The configured domain count (>= 1).  Initialized from the
    [NJQ_DOMAINS] environment variable (absent/invalid means 1). *)
val domains : unit -> int

(** Set the configured domain count (clamped to >= 1).  Growing spawns
    missing workers lazily on the next parallel {!run}; shrinking caps how
    many existing workers a job admits — it does not stop domains. *)
val set_domains : int -> unit

(** The domain count [NJQ_DOMAINS] requests, ignoring {!set_domains}. *)
val default_domains : unit -> int

(** [run n f] computes [[| f 0; ...; f (n-1) |]], distributing tasks over
    the configured domains.  Degrades to a plain sequential loop — no
    locks, no metric shards, bit-identical to a sequential engine — when
    [n <= 1], when [domains () <= 1], when called from off the main
    domain, or when called from inside a task (nested parallelism).
    If a task raises, the batch is drained and the first exception is
    re-raised here after all participants have parked. *)
val run : int -> (int -> 'a) -> 'a array

(** Join all spawned workers.  Registered [at_exit]; callable earlier by
    tests.  Subsequent parallel {!run}s respawn as needed. *)
val shutdown : unit -> unit
