(* A simple cost model over physical plans: cardinality estimation plus
   per-operator cost formulas.  It exists to make algorithm choice
   principled rather than syntactic — in particular the build-side choice
   for hash joins, which the paper contrasts with PNHL ("in relational hash
   join usually the smaller operand is chosen as build table").

   Estimates use exact base-table cardinalities from the catalog and
   textbook selectivity heuristics elsewhere; they are deliberately crude
   (no histograms) but monotone in the input sizes, which is all the
   planner's comparisons need. *)

open Njq_adl

(* Selectivity of a predicate, by syntactic shape. *)
let rec selectivity (pred : Expr.t) : float =
  match pred with
  | Expr.Const (Value.VBool true) -> 1.0
  | Expr.Const (Value.VBool false) -> 0.0
  | Expr.Cmp (Expr.Eq, _, _) -> 0.1
  | Expr.Cmp ((Expr.Neq), _, _) -> 0.9
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> 0.33
  | Expr.SetCmp ((Expr.Mem | Expr.Ni), _, _) -> 0.25
  | Expr.SetCmp _ -> 0.5
  | Expr.And (a, b) -> selectivity a *. selectivity b
  | Expr.Or (a, b) ->
    let sa = selectivity a and sb = selectivity b in
    Float.min 1.0 (sa +. sb -. (sa *. sb))
  | Expr.Not a -> 1.0 -. selectivity a
  | Expr.Quant (Expr.Exists, _, _, _) -> 0.4
  | Expr.Quant (Expr.Forall, _, _, _) -> 0.3
  | _ -> 0.5

(* Average cardinality of a set-valued attribute, assumed when it cannot be
   known statically (matches the workload generator's default fanout). *)
let assumed_fanout = 4.0

(* Resolve a (table, attribute) pair for a key expression over a direct
   scan, to consult statistics. *)
let scan_column (input : Plan.t) var key =
  match input, key with
  | Plan.Scan table, Expr.Field (Expr.Var v, attr) when String.equal v var ->
    Some (table, attr)
  | _ -> None

(* Estimated number of output rows of a plan.  With [stats], equality
   selectivities over direct scans use real NDV counts. *)
let rec rows_out ?stats (cat : Catalog.t) (p : Plan.t) : float =
  let rows_out ?stats:s cat p =
    rows_out ?stats:(match s with Some _ -> s | None -> stats) cat p
  in
  match p with
  | Plan.Scan name ->
    (match Catalog.find_opt cat name with
     | Some t -> float_of_int (List.length t.rows)
     | None -> 100.0)
  | Plan.Filter { var; pred; input } ->
    let base_sel = selectivity pred in
    let sel =
      match stats with
      | None -> base_sel
      | Some st ->
        (* Refine conjuncts of the shape x.a = const over a direct scan. *)
        let refined =
          List.fold_left
            (fun acc conj ->
              match conj with
              | Expr.Cmp (Expr.Eq, key, Expr.Const _)
              | Expr.Cmp (Expr.Eq, Expr.Const _, key) ->
                (match scan_column input var key with
                 | Some (table, attr) ->
                   (match Stats.eq_selectivity st ~table ~attr with
                    | Some s -> acc *. s
                    | None -> acc *. selectivity conj)
                 | None -> acc *. selectivity conj)
              | c -> acc *. selectivity c)
            1.0 (Expr.conjuncts pred)
        in
        refined
    in
    sel *. rows_out cat input
  | Plan.MapOp { input; _ } | Plan.ProjectOp (_, input) -> rows_out cat input
  | Plan.FlattenOp input -> assumed_fanout *. rows_out cat input
  | Plan.UnionOp (a, b) -> rows_out cat a +. rows_out cat b
  | Plan.InterOp (a, b) -> Float.min (rows_out cat a) (rows_out cat b)
  | Plan.DiffOp (a, _) -> rows_out cat a
  | Plan.ProductOp (a, b) -> rows_out cat a *. rows_out cat b
  | Plan.JoinOp { kind; xvar; yvar; keys; residual; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    (match kind with
     | Expr.Inner | Expr.LeftOuter _ ->
       let key_factor =
         match keys with
         | [] -> selectivity residual
         | (kx, ky) :: _ ->
           (match stats with
            | Some st ->
              (match scan_column left xvar kx, scan_column right yvar ky with
               | Some (lt, la), Some (rt, ra) ->
                 (match
                    Stats.join_selectivity st ~left_table:lt ~left_attr:la
                      ~right_table:rt ~right_attr:ra
                  with
                  | Some s -> s
                  | None -> 1.0 /. Float.max l r)
               | _ -> 1.0 /. Float.max l r)
            | None -> 1.0 /. Float.max l r)
       in
       Float.max 1.0 (l *. r *. key_factor)
     | Expr.Semi -> 0.5 *. l
     | Expr.Anti -> 0.5 *. l)
  | Plan.NestjoinOp { left; _ } -> rows_out cat left
  | Plan.MemberJoin { kind; left; right; _ } ->
    (match kind with
     | Plan.MSemi | Plan.MAnti -> 0.5 *. rows_out cat left
     | Plan.MInner -> assumed_fanout *. rows_out cat left +. rows_out cat right
     | Plan.MNest _ -> rows_out cat left)
  | Plan.GraceJoin { kind; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    (match kind with
     | Expr.Inner | Expr.LeftOuter _ -> Float.max 1.0 (l *. r /. Float.max l r)
     | Expr.Semi | Expr.Anti -> 0.5 *. l)
  | Plan.RenameOp (_, input) -> rows_out cat input
  | Plan.UnnestOp (_, input) -> assumed_fanout *. rows_out cat input
  | Plan.NestOp { input; _ } -> 0.5 *. rows_out cat input
  | Plan.DivideOp (a, _) -> Float.max 1.0 (0.1 *. rows_out cat a)
  | Plan.Pnhl { left; _ } | Plan.ParPnhl { left; _ } -> rows_out cat left
  | Plan.ParJoinOp { kind; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    (match kind with
     | Expr.Inner | Expr.LeftOuter _ -> Float.max 1.0 (l *. r /. Float.max l r)
     | Expr.Semi | Expr.Anti -> 0.5 *. l)
  | Plan.ParNestjoinOp { left; _ } -> rows_out cat left
  | Plan.ParFilter { pred; input; _ } -> selectivity pred *. rows_out cat input
  | Plan.ParMapOp { input; _ } -> rows_out cat input
  | Plan.Assembly { input; _ } -> rows_out cat input
  | Plan.EvalOp _ -> 1.0
  | Plan.Materialized rows -> float_of_int (List.length rows)

(* Cost of one join by algorithm and operand cardinalities.  The executor
   builds its hash table on the RIGHT operand; building (insert +
   allocation) is weighted heavier than probing, which is what makes
   choosing the smaller operand as build table pay off — the build-side
   consideration the paper raises when contrasting PNHL with relational
   hash join. *)
let join_algo_cost algo l r =
  match algo with
  | Plan.Nested_loop -> l *. r
  | Plan.Hash -> l +. (2.0 *. r)
  | Plan.Sort_merge ->
    let nlogn x = x *. Float.max 1.0 (Float.log2 (Float.max 2.0 x)) in
    nlogn l +. nlogn r

(* Estimated cost in abstract work units (comparable to the Counters
   totals). *)
let rec cost ?stats (cat : Catalog.t) (p : Plan.t) : float =
  let cost ?stats:s cat p =
    cost ?stats:(match s with Some _ -> s | None -> stats) cat p
  in
  let rows_out cat p = rows_out ?stats cat p in
  let out = rows_out cat p in
  match p with
  | Plan.Scan _ -> out
  | Plan.Filter { input; _ } -> cost cat input +. rows_out cat input
  | Plan.MapOp { input; _ } | Plan.ProjectOp (_, input) ->
    cost cat input +. rows_out cat input
  | Plan.FlattenOp input -> cost cat input +. out
  | Plan.UnionOp (a, b) | Plan.InterOp (a, b) | Plan.DiffOp (a, b) ->
    cost cat a +. cost cat b +. rows_out cat a +. rows_out cat b
  | Plan.ProductOp (a, b) -> cost cat a +. cost cat b +. out
  | Plan.JoinOp { algo; left; right; _ } ->
    cost cat left +. cost cat right
    +. join_algo_cost algo (rows_out cat left) (rows_out cat right)
    +. out
  | Plan.NestjoinOp { algo; left; right; _ } ->
    cost cat left +. cost cat right
    +. join_algo_cost algo (rows_out cat left) (rows_out cat right)
    +. out
  | Plan.MemberJoin { left; right; _ } ->
    cost cat left +. cost cat right +. rows_out cat right
    +. (assumed_fanout *. rows_out cat left)
  | Plan.GraceJoin { left; right; _ } ->
    (* one extra pass over both inputs for partitioning *)
    let l = rows_out cat left and r = rows_out cat right in
    cost cat left +. cost cat right +. l +. r +. join_algo_cost Plan.Hash l r
    +. out
  | Plan.RenameOp (_, input) -> cost cat input +. out
  | Plan.UnnestOp (_, input) -> cost cat input +. out
  | Plan.NestOp { input; _ } -> cost cat input +. rows_out cat input
  | Plan.DivideOp (a, b) ->
    cost cat a +. cost cat b
    +. (rows_out cat a *. Float.max 1.0 (rows_out cat b) *. 0.1)
  | Plan.Pnhl { left; right; mem_budget; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    let partitions = Float.max 1.0 (r /. float_of_int (max 1 mem_budget)) in
    cost cat left +. cost cat right +. r
    +. (partitions *. l *. assumed_fanout)
  | Plan.ParPnhl { left; right; mem_budget; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    let partitions = Float.max 1.0 (r /. float_of_int (max 1 mem_budget)) in
    cost cat left +. cost cat right +. r +. (partitions *. l *. assumed_fanout)
  | Plan.ParJoinOp { left; right; _ } | Plan.ParNestjoinOp { left; right; _ }
    ->
    (* One partitioning pass over both inputs, then per-partition hash
       joins whose work sums to one hash join of the full inputs. *)
    let l = rows_out cat left and r = rows_out cat right in
    cost cat left +. cost cat right +. l +. r +. join_algo_cost Plan.Hash l r
    +. out
  | Plan.ParFilter { input; _ } -> cost cat input +. rows_out cat input
  | Plan.ParMapOp { input; _ } -> cost cat input +. rows_out cat input
  | Plan.Assembly { input; _ } -> cost cat input +. (2.0 *. rows_out cat input)
  | Plan.EvalOp _ -> 1000.0
  | Plan.Materialized rows -> float_of_int (List.length rows)
