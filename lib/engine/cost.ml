(* A simple cost model over physical plans: cardinality estimation plus
   per-operator cost formulas.  It exists to make algorithm choice
   principled rather than syntactic — in particular the build-side choice
   for hash joins, which the paper contrasts with PNHL ("in relational hash
   join usually the smaller operand is chosen as build table").

   Estimates use exact base-table cardinalities from the catalog and
   textbook selectivity heuristics elsewhere; they are deliberately crude
   (no histograms) but monotone in the input sizes, which is all the
   planner's comparisons need. *)

open Njq_adl

(* Selectivity of a predicate, by syntactic shape. *)
let rec selectivity (pred : Expr.t) : float =
  match pred with
  | Expr.Const (Value.VBool true) -> 1.0
  | Expr.Const (Value.VBool false) -> 0.0
  | Expr.Cmp (Expr.Eq, _, _) -> 0.1
  | Expr.Cmp ((Expr.Neq), _, _) -> 0.9
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> 0.33
  | Expr.SetCmp ((Expr.Mem | Expr.Ni), _, _) -> 0.25
  | Expr.SetCmp _ -> 0.5
  | Expr.And (a, b) -> selectivity a *. selectivity b
  | Expr.Or (a, b) ->
    let sa = selectivity a and sb = selectivity b in
    Float.min 1.0 (sa +. sb -. (sa *. sb))
  | Expr.Not a -> 1.0 -. selectivity a
  | Expr.Quant (Expr.Exists, _, _, _) -> 0.4
  | Expr.Quant (Expr.Forall, _, _, _) -> 0.3
  | _ -> 0.5

(* Average cardinality of a set-valued attribute, assumed when it cannot be
   known statically (matches the workload generator's default fanout). *)
let assumed_fanout = 4.0

(* Reverse-map an attribute through a rename: [Some pre] when [attr] is
   the post-rename name of [pre], [None] when [attr] was renamed away. *)
let rev_rename pairs attr =
  match List.find_opt (fun (_, b) -> String.equal b attr) pairs with
  | Some (a, _) -> Some a
  | None ->
    if List.exists (fun (a, _) -> String.equal a attr) pairs then None
    else Some attr

(* Resolve the (base table, attribute) provenance of an attribute of
   [input]'s rows, looking through filters, projections, renames and join
   concatenation.  Join operands carry disjoint attribute names in planner
   output, so through an inner join the attribute belongs to whichever
   side defines it; semijoin/antijoin/nestjoin emit (extended) left rows
   only.  This is what lets NDV and min/max statistics price predicates
   and join keys deep inside a tree — the subset-cardinality estimation
   the join-order enumerator ({!Joinorder}) relies on. *)
let rec column_of_attr (cat : Catalog.t) (input : Plan.t) attr :
    (string * string) option =
  match input with
  | Plan.Scan table ->
    (match Catalog.find_opt cat table with
     | Some t ->
       (match t.Catalog.row_type with
        | Vtype.TTuple fields when List.mem_assoc attr fields ->
          Some (table, attr)
        | _ -> None)
     | None -> None)
  | Plan.Filter { input; _ } | Plan.ParFilter { input; _ } ->
    column_of_attr cat input attr
  | Plan.ProjectOp (attrs, input) ->
    if List.mem attr attrs then column_of_attr cat input attr else None
  | Plan.RenameOp (pairs, input) ->
    Option.bind (rev_rename pairs attr) (column_of_attr cat input)
  | Plan.IndexScan { table; rename; _ } ->
    Option.bind (rev_rename rename attr) (fun a ->
        column_of_attr cat (Plan.Scan table) a)
  | Plan.JoinOp { kind = Expr.Inner; left; right; _ }
  | Plan.ParJoinOp { kind = Expr.Inner; left; right; _ } ->
    (match column_of_attr cat left attr with
     | Some c -> Some c
     | None -> column_of_attr cat right attr)
  | Plan.JoinOp { kind = Expr.Semi | Expr.Anti; left; _ }
  | Plan.ParJoinOp { kind = Expr.Semi | Expr.Anti; left; _ } ->
    column_of_attr cat left attr
  | Plan.NestjoinOp { left; attr = produced; _ }
  | Plan.ParNestjoinOp { left; attr = produced; _ } ->
    if String.equal attr produced then None else column_of_attr cat left attr
  | _ -> None

(* Resolve a (table, attribute) pair for a key expression of the shape
   [var.attr], to consult statistics. *)
let scan_column (cat : Catalog.t) (input : Plan.t) var key =
  match key with
  | Expr.Field (Expr.Var v, attr) when String.equal v var ->
    column_of_attr cat input attr
  | _ -> None

let const_int = function
  | Expr.Const (Value.VInt n | Value.VDate n | Value.VOid n) -> Some n
  | _ -> None

(* Fraction of a column's value range covered by optional [lo]/[hi]
   bounds, interpolated from the column's min/max statistics; [None] when
   the stats cannot answer (unknown or degenerate range). *)
let range_fraction (cs : Stats.column_stats) ~(lo : int option)
    ~(hi : int option) : float option =
  match cs with
  | { Stats.lo = Some clo; hi = Some chi; _ } when chi > clo ->
    let clo = float_of_int clo and chi = float_of_int chi in
    let lo_b =
      match lo with Some v -> Float.max clo (float_of_int v) | None -> clo
    in
    let hi_b =
      match hi with Some v -> Float.min chi (float_of_int v) | None -> chi
    in
    Some (Float.max 0.0 (Float.min 1.0 ((hi_b -. lo_b) /. (chi -. clo))))
  | _ -> None

(* Selectivity of one range conjunct [x.a < c] (either orientation, any of
   the four inequalities) interpolated from min/max column stats; [None]
   when the conjunct is not that shape or the stats cannot answer. *)
let range_conj_fraction st cat input var conj : float option =
  let bound key cexpr ~upper =
    match const_int cexpr, scan_column cat input var key with
    | Some v, Some (table, attr) ->
      Option.bind (Stats.column st ~table ~attr) (fun cs ->
          if upper then range_fraction cs ~lo:None ~hi:(Some v)
          else range_fraction cs ~lo:(Some v) ~hi:None)
    | _ -> None
  in
  match conj with
  | Expr.Cmp ((Expr.Lt | Expr.Le), key, (Expr.Const _ as c)) ->
    bound key c ~upper:true
  | Expr.Cmp ((Expr.Gt | Expr.Ge), key, (Expr.Const _ as c)) ->
    bound key c ~upper:false
  | Expr.Cmp ((Expr.Lt | Expr.Le), (Expr.Const _ as c), key) ->
    bound key c ~upper:false
  | Expr.Cmp ((Expr.Gt | Expr.Ge), (Expr.Const _ as c), key) ->
    bound key c ~upper:true
  | _ -> None

(* Rows an index probe retrieves before the residual filter.  Point
   lookups multiply 1/NDV per indexed attribute; range lookups interpolate
   constant bounds against the column's stats range.  Fixed fallbacks
   (0.1 per equality, 0.33 per range) mirror [selectivity]. *)
let index_matches ?stats (cat : Catalog.t) ~table ~index
    (lookup : Plan.index_lookup) (card : float) : float =
  match Catalog.find_index cat index with
  | None -> card
  | Some idx ->
    (match lookup with
     | Plan.LPoint _ ->
       let sel =
         List.fold_left
           (fun acc attr ->
             acc
             *. (match Option.bind stats (fun st ->
                     Stats.eq_selectivity st ~table ~attr)
                 with
                | Some s -> s
                | None -> 0.1))
           1.0 (Catalog.index_attrs idx)
       in
       Float.max 1.0 (sel *. card)
     | Plan.LRange { lo; hi } ->
       let attr = List.hd (Catalog.index_attrs idx) in
       let frac =
         match
           Option.bind stats (fun st ->
               Option.bind (Stats.column st ~table ~attr) (fun cs ->
                   range_fraction cs
                     ~lo:(Option.bind lo (fun (e, _) -> const_int e))
                     ~hi:(Option.bind hi (fun (e, _) -> const_int e))))
         with
         | Some f -> f
         | None -> 0.33
       in
       Float.max 1.0 (frac *. card))

(* NDV-based key factor for one equi-join: the fraction of the cross
   product surviving the first key pair.  With statistics and resolvable
   key provenance this is the containment-assumption estimate
   1/max(NDV_left, NDV_right) over real per-epoch distinct counts
   ({!Stats.join_selectivity} through the rename-aware {!column_of_attr}
   walk); the fixed 1/max(|L|, |R|) distinct-count heuristic remains only
   as the fallback when provenance or stats are missing.  Shared by the
   plain, Grace and parallel join estimates so algorithm choice never
   shifts an estimate.  With no keys, the residual's syntactic
   selectivity. *)
let equi_key_factor ?stats cat ~xvar ~yvar ~keys ~residual ~left ~right l r =
  match keys with
  | [] -> selectivity residual
  | (kx, ky) :: _ ->
    (match stats with
     | Some st ->
       (match scan_column cat left xvar kx, scan_column cat right yvar ky with
        | Some (lt, la), Some (rt, ra) ->
          (match
             Stats.join_selectivity st ~left_table:lt ~left_attr:la
               ~right_table:rt ~right_attr:ra
           with
           | Some s -> s
           | None -> 1.0 /. Float.max l r)
        | _ -> 1.0 /. Float.max l r)
     | None -> 1.0 /. Float.max l r)

(* Estimated number of output rows of a plan.  With [stats], equality
   selectivities over direct scans use real NDV counts. *)
let rec rows_out ?stats (cat : Catalog.t) (p : Plan.t) : float =
  let rows_out ?stats:s cat p =
    rows_out ?stats:(match s with Some _ -> s | None -> stats) cat p
  in
  match p with
  | Plan.Scan name ->
    (match Catalog.find_opt cat name with
     | Some t -> float_of_int (List.length t.rows)
     | None -> 100.0)
  | Plan.Filter { var; pred; input } ->
    let base_sel = selectivity pred in
    let sel =
      match stats with
      | None -> base_sel
      | Some st ->
        (* Refine conjuncts of the shapes x.a = const (NDV) and
           x.a < const (min/max interpolation) over resolvable columns. *)
        let refined =
          List.fold_left
            (fun acc conj ->
              match conj with
              | Expr.Cmp (Expr.Eq, key, Expr.Const _)
              | Expr.Cmp (Expr.Eq, Expr.Const _, key) ->
                (match scan_column cat input var key with
                 | Some (table, attr) ->
                   (match Stats.eq_selectivity st ~table ~attr with
                    | Some s -> acc *. s
                    | None -> acc *. selectivity conj)
                 | None -> acc *. selectivity conj)
              | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) ->
                (match range_conj_fraction st cat input var conj with
                 | Some f -> acc *. f
                 | None -> acc *. selectivity conj)
              | c -> acc *. selectivity c)
            1.0 (Expr.conjuncts pred)
        in
        refined
    in
    sel *. rows_out cat input
  | Plan.IndexScan { table; index; lookup; residual; _ } ->
    let card =
      match Catalog.find_opt cat table with
      | Some t -> float_of_int (List.length t.rows)
      | None -> 100.0
    in
    index_matches ?stats cat ~table ~index lookup card *. selectivity residual
  | Plan.IndexJoin { kind; table; index; residual; left; _ } ->
    let l = rows_out cat left in
    (match kind with
     | Expr.Inner | Expr.LeftOuter _ ->
       let card =
         match Catalog.find_opt cat table with
         | Some t -> float_of_int (List.length t.rows)
         | None -> 100.0
       in
       let per_probe =
         index_matches ?stats cat ~table ~index (Plan.LPoint []) card
       in
       Float.max 1.0 (l *. per_probe *. selectivity residual)
     | Expr.Semi -> 0.5 *. l
     | Expr.Anti -> 0.5 *. l)
  | Plan.MapOp { input; _ } | Plan.ProjectOp (_, input) -> rows_out cat input
  | Plan.FlattenOp input -> assumed_fanout *. rows_out cat input
  | Plan.UnionOp (a, b) -> rows_out cat a +. rows_out cat b
  | Plan.InterOp (a, b) -> Float.min (rows_out cat a) (rows_out cat b)
  | Plan.DiffOp (a, _) -> rows_out cat a
  | Plan.ProductOp (a, b) -> rows_out cat a *. rows_out cat b
  | Plan.JoinOp { kind; xvar; yvar; keys; residual; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    (match kind with
     | Expr.Inner | Expr.LeftOuter _ ->
       let key_factor =
         equi_key_factor ?stats cat ~xvar ~yvar ~keys ~residual ~left ~right l
           r
       in
       Float.max 1.0 (l *. r *. key_factor)
     | Expr.Semi -> 0.5 *. l
     | Expr.Anti -> 0.5 *. l)
  | Plan.NestjoinOp { left; _ } -> rows_out cat left
  | Plan.MemberJoin { kind; left; right; _ } ->
    (match kind with
     | Plan.MSemi | Plan.MAnti -> 0.5 *. rows_out cat left
     | Plan.MInner -> assumed_fanout *. rows_out cat left +. rows_out cat right
     | Plan.MNest _ -> rows_out cat left)
  | Plan.GraceJoin { kind; xvar; yvar; keys; residual; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    (match kind with
     | Expr.Inner | Expr.LeftOuter _ ->
       let key_factor =
         equi_key_factor ?stats cat ~xvar ~yvar ~keys ~residual ~left ~right l
           r
       in
       Float.max 1.0 (l *. r *. key_factor)
     | Expr.Semi | Expr.Anti -> 0.5 *. l)
  | Plan.RenameOp (_, input) -> rows_out cat input
  | Plan.UnnestOp (_, input) -> assumed_fanout *. rows_out cat input
  | Plan.NestOp { input; _ } -> 0.5 *. rows_out cat input
  | Plan.DivideOp (a, _) -> Float.max 1.0 (0.1 *. rows_out cat a)
  | Plan.Pnhl { left; _ } | Plan.ParPnhl { left; _ } -> rows_out cat left
  | Plan.ParJoinOp { kind; xvar; yvar; keys; residual; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    (match kind with
     | Expr.Inner | Expr.LeftOuter _ ->
       let key_factor =
         equi_key_factor ?stats cat ~xvar ~yvar ~keys ~residual ~left ~right l
           r
       in
       Float.max 1.0 (l *. r *. key_factor)
     | Expr.Semi | Expr.Anti -> 0.5 *. l)
  | Plan.ParNestjoinOp { left; _ } -> rows_out cat left
  | Plan.ParFilter { pred; input; _ } -> selectivity pred *. rows_out cat input
  | Plan.ParMapOp { input; _ } -> rows_out cat input
  | Plan.Assembly { input; _ } -> rows_out cat input
  | Plan.EvalOp _ -> 1.0
  | Plan.Materialized rows -> float_of_int (List.length rows)

(* Cost of one join by algorithm and operand cardinalities.  The executor
   builds its hash table on the RIGHT operand; building (insert +
   allocation) is weighted heavier than probing, which is what makes
   choosing the smaller operand as build table pay off — the build-side
   consideration the paper raises when contrasting PNHL with relational
   hash join. *)
let join_algo_cost algo l r =
  match algo with
  | Plan.Nested_loop -> l *. r
  | Plan.Hash -> l +. (2.0 *. r)
  | Plan.Sort_merge ->
    let nlogn x = x *. Float.max 1.0 (Float.log2 (Float.max 2.0 x)) in
    nlogn l +. nlogn r

(* Spill I/O charge.  When the engine memory budget binds, a hash build
   side estimated past it is Grace-partitioned to temp files: both inputs
   get written and read back once, [spill_io] work units per row for the
   round trip.  A sort input past the budget pays the same for external
   run generation + K-way merge.  Charging this in the model is what makes
   the join-order enumerator prefer orders whose build sides stay resident
   when the budget binds. *)
let spill_io = 2.0

let spill_charge ~build ~probe =
  if build > float_of_int !Memory.budget then spill_io *. (build +. probe)
  else 0.0

let ext_sort_charge rows =
  if rows > float_of_int !Memory.budget then spill_io *. rows else 0.0

(* Estimated cost in abstract work units (comparable to the Counters
   totals). *)
let rec cost ?stats (cat : Catalog.t) (p : Plan.t) : float =
  let cost ?stats:s cat p =
    cost ?stats:(match s with Some _ -> s | None -> stats) cat p
  in
  let rows_out cat p = rows_out ?stats cat p in
  let out = rows_out cat p in
  match p with
  | Plan.Scan _ -> out
  | Plan.IndexScan { table; index; lookup; _ } ->
    (* One probe (constant for hash, log for sorted) plus a weighted fetch
       and residual check per retrieved row.  The 3.0/row weight is what
       makes a full scan win back once the lookup stops being selective
       (scan+filter costs ~2 units/row over the whole extent). *)
    let card =
      match Catalog.find_opt cat table with
      | Some t -> float_of_int (List.length t.rows)
      | None -> 100.0
    in
    let matched = index_matches ?stats cat ~table ~index lookup card in
    let probe =
      match Catalog.find_index cat index with
      | Some idx when Catalog.index_kind idx = Catalog.Sorted_index ->
        Float.max 1.0 (Float.log2 (Float.max 2.0 card))
      | _ -> 1.0
    in
    probe +. (3.0 *. matched)
  | Plan.IndexJoin { table; index; left; _ } ->
    (* Per outer row: one probe plus the weighted per-match fetch.  No
       build pass and no scan of the inner extent — that is the saving
       over a hash join when the outer side is small or selective. *)
    let l = rows_out cat left in
    let card =
      match Catalog.find_opt cat table with
      | Some t -> float_of_int (List.length t.rows)
      | None -> 100.0
    in
    let per_probe = index_matches ?stats cat ~table ~index (Plan.LPoint []) card in
    cost cat left +. (l *. (1.0 +. (3.0 *. per_probe))) +. out
  | Plan.Filter { input; _ } -> cost cat input +. rows_out cat input
  | Plan.MapOp { input; _ } | Plan.ProjectOp (_, input) ->
    cost cat input +. rows_out cat input
  | Plan.FlattenOp input -> cost cat input +. out
  | Plan.UnionOp (a, b) | Plan.InterOp (a, b) | Plan.DiffOp (a, b) ->
    cost cat a +. cost cat b +. rows_out cat a +. rows_out cat b
  | Plan.ProductOp (a, b) -> cost cat a +. cost cat b +. out
  | Plan.JoinOp { algo; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    let spill =
      match algo with
      | Plan.Hash -> spill_charge ~build:r ~probe:l
      | Plan.Sort_merge -> ext_sort_charge l +. ext_sort_charge r
      | Plan.Nested_loop -> 0.0
    in
    cost cat left +. cost cat right +. join_algo_cost algo l r +. spill +. out
  | Plan.NestjoinOp { algo; left; right; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    (* Hash nestjoin has no spill path, so only the sort-merge variant is
       charged external-sort I/O when the budget binds. *)
    let spill =
      match algo with
      | Plan.Sort_merge -> ext_sort_charge l +. ext_sort_charge r
      | Plan.Hash | Plan.Nested_loop -> 0.0
    in
    cost cat left +. cost cat right +. join_algo_cost algo l r +. spill +. out
  | Plan.MemberJoin { left; right; _ } ->
    cost cat left +. cost cat right +. rows_out cat right
    +. (assumed_fanout *. rows_out cat left)
  | Plan.GraceJoin { mem_budget; left; right; _ } ->
    (* One extra pass over both inputs for partitioning, plus the temp-file
       round trip when the build side exceeds this node's budget. *)
    let l = rows_out cat left and r = rows_out cat right in
    let spill =
      if r > float_of_int mem_budget then spill_io *. (l +. r) else 0.0
    in
    cost cat left +. cost cat right +. l +. r +. join_algo_cost Plan.Hash l r
    +. spill +. out
  | Plan.RenameOp (_, input) -> cost cat input +. out
  | Plan.UnnestOp (_, input) -> cost cat input +. out
  | Plan.NestOp { input; _ } -> cost cat input +. rows_out cat input
  | Plan.DivideOp (a, b) ->
    cost cat a +. cost cat b
    +. (rows_out cat a *. Float.max 1.0 (rows_out cat b) *. 0.1)
  | Plan.Pnhl { left; right; mem_budget; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    let partitions = Float.max 1.0 (r /. float_of_int (max 1 mem_budget)) in
    let spill = if partitions > 1.0 then spill_io *. r else 0.0 in
    cost cat left +. cost cat right +. r
    +. (partitions *. l *. assumed_fanout)
    +. spill
  | Plan.ParPnhl { left; right; mem_budget; _ } ->
    let l = rows_out cat left and r = rows_out cat right in
    let partitions = Float.max 1.0 (r /. float_of_int (max 1 mem_budget)) in
    let spill = if partitions > 1.0 then spill_io *. r else 0.0 in
    cost cat left +. cost cat right +. r
    +. (partitions *. l *. assumed_fanout)
    +. spill
  | Plan.ParJoinOp { left; right; _ } | Plan.ParNestjoinOp { left; right; _ }
    ->
    (* One partitioning pass over both inputs, then per-partition hash
       joins whose work sums to one hash join of the full inputs. *)
    let l = rows_out cat left and r = rows_out cat right in
    cost cat left +. cost cat right +. l +. r +. join_algo_cost Plan.Hash l r
    +. out
  | Plan.ParFilter { input; _ } -> cost cat input +. rows_out cat input
  | Plan.ParMapOp { input; _ } -> cost cat input +. rows_out cat input
  | Plan.Assembly { input; _ } -> cost cat input +. (2.0 *. rows_out cat input)
  | Plan.EvalOp _ -> 1000.0
  | Plan.Materialized rows -> float_of_int (List.length rows)
