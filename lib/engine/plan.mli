(** Physical query plans.

    A plan mirrors the iterator structure of an ADL expression but fixes an
    algorithm per join-family operator.  Parameter expressions (predicates,
    map bodies) stay as ADL, evaluated per tuple; the engine's contribution
    is the organization of the iteration — the paper's point that a logical
    join admits many set-oriented implementations while a nested subquery
    forces nested loops.  [Pnhl] and [Assembly] implement Section 6.2. *)

open Njq_adl

type join_algo = Nested_loop | Hash | Sort_merge

(** Output discipline of a membership join. *)
type member_kind =
  | MSemi
  | MAnti
  | MInner
  | MNest of { body : Expr.t; attr : string }

(** Equi-join keys: pairs (f(x), g(y)) from conjuncts [f(x) = g(y)]. *)
type keys = (Expr.t * Expr.t) list

(** How an {!IndexScan} addresses its index: a point lookup supplies one
    closed expression per indexed attribute; a range lookup bounds the
    leading attribute of a sorted index ([(expr, inclusive)] endpoints). *)
type index_lookup =
  | LPoint of Expr.t list
  | LRange of { lo : (Expr.t * bool) option; hi : (Expr.t * bool) option }

type t =
  | Scan of string
  | Filter of { var : string; pred : Expr.t; input : t }
  | IndexScan of {
      table : string;
      index : string;  (** catalog index name *)
      var : string;
      lookup : index_lookup;
      residual : Expr.t;  (** conjuncts the index cannot answer *)
      rename : (string * string) list;  (** applied to fetched rows *)
    }
      (** Access-path replacement for [Filter(Scan)] — or
          [Filter(Rename(Scan))] when [rename] is non-empty: fetch only the
          rows the index says can match, rename their attributes, then
          apply the residual.  Emits exactly the replaced subplan's row
          list. *)
  | IndexJoin of {
      kind : Expr.join_kind;  (** [Inner], [Semi] or [Anti] *)
      xvar : string;
      yvar : string;
      table : string;  (** inner base table *)
      index : string;  (** catalog index over [table] *)
      keys : Expr.t list;  (** left probe exprs, one per indexed attr *)
      residual : Expr.t;
      rename : (string * string) list;  (** applied to fetched inner rows *)
      left : t;
    }
      (** Index nested loops: each left row probes the inner table's index
          with its evaluated keys instead of building a hash table over the
          whole extent.  Streams per outer row when pipelined. *)
  | MapOp of { var : string; body : Expr.t; input : t }
  | ProjectOp of string list * t
  | FlattenOp of t
  | UnionOp of t * t
  | InterOp of t * t
  | DiffOp of t * t
  | ProductOp of t * t
  | JoinOp of {
      algo : join_algo;
      kind : Expr.join_kind;
      xvar : string;
      yvar : string;
      keys : keys;
      residual : Expr.t;  (** conjuncts not covered by the keys *)
      left : t;
      right : t;
    }
  | NestjoinOp of {
      algo : join_algo;
      xvar : string;
      yvar : string;
      keys : keys;
      residual : Expr.t;
      body : Expr.t;
      attr : string;
      left : t;
      right : t;
    }
  | MemberJoin of {
      kind : member_kind;
      xvar : string;
      yvar : string;
      xset : Expr.t;  (** set-valued expression over the left variable *)
      elem_var : string;
      elem_key : Expr.t;  (** key of one element, over [elem_var] *)
      ykey : Expr.t;  (** key of a right row, over [yvar] *)
      left : t;
      right : t;
    }
      (** Hash implementation of membership predicates
          ([∃z∈x.c • key(z) = key(y)] or [key(y) ∈ x.c]): hash the right
          operand on its key and probe with the elements of each left
          tuple's set — the probing pattern of PNHL applied to joins. *)
  | GraceJoin of {
      kind : Expr.join_kind;
      xvar : string;
      yvar : string;
      keys : keys;  (** at least one; partitioning hashes the first key *)
      residual : Expr.t;
      mem_budget : int;  (** max right rows hashed at once *)
      left : t;
      right : t;
    }
      (** Grace-style partitioned hash join: both operands are partitioned
          by the hash of the first key so that each right partition fits
          the memory budget, then each partition pair is hash-joined — the
          regular-join counterpart of PNHL's memory-constrained build. *)
  | RenameOp of (string * string) list * t
  | UnnestOp of string * t
  | NestOp of { attrs : string list; into : string; input : t }
  | DivideOp of t * t
  | Pnhl of {
      attr : string;  (** set-valued attribute of the left rows *)
      elem_key : Expr.t;  (** key of one element, free variable ["elem"] *)
      row_key : Expr.t;  (** key of a right row, free variable ["row"] *)
      into : string;  (** attribute receiving the matched rows *)
      mem_budget : int;  (** max right rows hashed at once *)
      left : t;
      right : t;
    }
      (** Partitioned Nested-Hashed-Loops (Section 6.2, [DeLa92]). *)
  | Assembly of {
      cls : string;
      ref_attr : string;  (** oid-valued attribute to dereference *)
      into : string;  (** attribute receiving the referenced object *)
      input : t;
    }
      (** Pointer-based materialize (Section 6.2, [BlMG93]/[ShCa90]). *)
  | ParJoinOp of {
      kind : Expr.join_kind;
      xvar : string;
      yvar : string;
      keys : keys;  (** at least one; partitioning hashes the first key *)
      residual : Expr.t;
      partitions : int;  (** fixed in the plan, not derived from the pool *)
      left : t;
      right : t;
    }
      (** Partitioned parallel hash join: both operands hash-partitioned on
          the first key, each bucket pair hash-joined on its own pool
          domain, results concatenated in partition order.  The partition
          count lives in the plan so results and work counters are
          identical whatever the domain count. *)
  | ParNestjoinOp of {
      xvar : string;
      yvar : string;
      keys : keys;
      residual : Expr.t;
      body : Expr.t;
      attr : string;
      partitions : int;
      left : t;
      right : t;
    }
      (** Partitioned parallel hash nestjoin (same discipline as
          {!ParJoinOp}; each left row's match group is complete within its
          partition). *)
  | ParPnhl of {
      attr : string;
      elem_key : Expr.t;
      row_key : Expr.t;
      into : string;
      mem_budget : int;
      left : t;
      right : t;
    }
      (** PNHL with the right-operand segments probed concurrently;
          per-segment matches merge in segment order. *)
  | ParFilter of { var : string; pred : Expr.t; input : t }
      (** Chunked parallel filter; chunks re-concatenate in order. *)
  | ParMapOp of { var : string; body : Expr.t; input : t }
      (** Chunked parallel map; chunks re-concatenate in order. *)
  | EvalOp of Expr.t  (** fallback: reference (nested-loop) evaluation *)
  | Materialized of Value.t list
      (** an already-computed intermediate result; produced by the
          instrumented executor ({!Njq_engine.Instrument}), never by the
          planner *)

val algo_name : join_algo -> string
val kind_name : Expr.join_kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Stable hex identity of a physical plan ({!Njq_obs.Qlog.hash_hex} of
    {!to_string}); the join key between [njq explain --analyze], the
    query log, and [njq top]. *)
val fingerprint : t -> string

(** Short operator label for instrumented reports. *)
val node_label : t -> string

(** Immediate sub-plans, left to right. *)
val children : t -> t list

(** Structural plan equality (operators, algorithms, binder names and all
    embedded expressions). *)
val equal : t -> t -> bool

(** Pre-order visit of every node in the tree. *)
val iter_nodes : (t -> unit) -> t -> unit

(** Pipeline shape of the push-based executor ({!Njq_engine.Exec}): [true]
    when the node streams its output rows one at a time into its consumer,
    [false] when it is a pipeline breaker that materializes its full
    result first (sort-merge inputs, grouping, division, PNHL/Grace
    partitioning, the parallel operators' partition buffers).  This is the
    predicate the executor consults to fuse edges, so EXPLAIN output
    rendered from it cannot drift from the execution. *)
val streams_output : t -> bool

(** Per child edge (parallel to {!children}): [true] when the pipelined
    executor consumes the child row by row without forming its result list
    (fused), [false] when the child's rows are buffered first (hash build
    table, sort buffer, chunk array, partition buffer). *)
val streamed_inputs : t -> bool list

(** Pipeline-boundary view: one node per line, child edges marked ["~>"]
    (fused) or ["=>"] (materialized), breakers suffixed ["[breaker]"].
    [?batch] (the active batch size, when the batched executor is on)
    prepends a header line: fused edges then carry column batches of up
    to that many rows rather than single rows, with identical
    boundaries. *)
val pp_pipelines : ?batch:int -> Format.formatter -> t -> unit

(** Rebuild a node with new children; raises [Invalid_argument] on arity
    mismatch. *)
val with_children : t -> t list -> t

(** Rebuild the whole plan with [f] applied to every embedded ADL
    expression (predicates, map/nestjoin bodies, join keys, index
    lookups); operators, algorithms and binder names are untouched.  The
    serve layer binds prepared-query parameters into a cached plan this
    way ([Param i] → [Const v] via {!Njq_adl.Analysis.subst}). *)
val map_exprs : (Njq_adl.Expr.t -> Njq_adl.Expr.t) -> t -> t

(** Replace every [Scan name] for which [f name] answers with the given
    plan.  Splices an in-memory parameter table ([Materialized rows]) into
    a cached batched plan without a catalog registration — and so without
    an epoch bump per batch. *)
val map_scans : (string -> t option) -> t -> t
