(* Engine-wide memory budget, in rows.

   [budget] is the |M| of the paper's Section 6.2 generalized to the whole
   engine: the number of build-side rows any single operator may hold
   resident at once.  It defaults to [max_int] (everything fits, no
   operator spills) and is set per invocation from the CLI/serve
   [--mem-budget] option.  Three layers consult it:

   - {!Planner} rewrites keyed hash joins whose estimated build side
     exceeds the budget into [Plan.GraceJoin] nodes carrying it, and
     clamps the [mem_budget] of Grace/PNHL nodes;
   - {!Cost} charges spill I/O for over-budget builds, steering the
     join-order enumerator toward non-spilling orders;
   - {!Exec}'s sort-merge paths switch to external run-generation +
     K-way merge sort when an input exceeds the budget.

   The knob lives in its own module (below both [Cost] and [Exec]) because
   [Exec] depends on [Cost] for cardinality hints — either of them owning
   the reference would force a cycle. *)

let budget : int ref = ref max_int

let unlimited () = !budget = max_int

(* Parse a CLI budget spec: a positive integer with an optional [k]
   (x 1024) or [m] (x 1024^2) suffix, case-insensitive.  [None] on
   anything else (zero, negative, garbage). *)
let parse (s : string) : int option =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else begin
    let mult, digits =
      match Char.lowercase_ascii s.[n - 1] with
      | 'k' -> (1024, String.sub s 0 (n - 1))
      | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some v when v > 0 && v <= max_int / mult -> Some (v * mult)
    | _ -> None
  end
