(** Translation of (rewritten) ADL expressions into physical plans.

    Joins are planned by scanning predicate conjuncts for equi-key pairs
    f(x) = g(y) (hash when at least one exists, nested loop otherwise) and
    by detecting membership shapes over set-valued attributes, which become
    {!Plan.MemberJoin}.  Scalar and parameter-level expressions fall back
    to reference evaluation. *)

open Njq_adl

(** Split a join predicate into oriented equi-key pairs and the residual
    conjunction. *)
val extract_keys :
  string -> string -> Expr.t -> (Expr.t * Expr.t) list * Expr.t

(** Recognize a membership-style join predicate; returns
    (xset, element variable, element key, y key). *)
val member_shape :
  string -> string -> Expr.t -> (Expr.t * string * Expr.t * Expr.t) option

type algo_choice =
  | Auto  (** hash when equi keys exist, nested loop otherwise *)
  | Force of Plan.join_algo  (** the same algorithm everywhere (ablations) *)
  | Cost_based of Catalog.t
      (** pick the cheapest algorithm per join under the {!Cost} model and
          swap inner-join operands so the smaller side is the hash build
          side *)

(** PNHL memory budget in build-table rows (Section 6.2's |M|); the
    planner derives the partition count as ceil(cardinality / budget), so
    tables that fit run as a single partition. *)
val pnhl_mem_rows : int ref

(** Minimum estimated input rows before the {!parallelize} pass rewrites
    an operator to its parallel variant. *)
val par_threshold : int ref

(** Master switch for the {!access_paths} rewrite in {!plan} (default on);
    off, the planner emits exactly the full-scan plans of previous
    versions. *)
val use_indexes : bool ref

(** Rewrite full scans under sargable predicates into index access paths,
    bottom-up: [Filter(Scan t)] whose conjuncts pin every attribute of an
    index with closed-expression equalities (or bound the leading
    attribute of a sorted index) becomes {!Plan.IndexScan}; a hash or
    nested-loop join whose inner side scans an indexed table with every
    indexed attribute covered by an equi-key pair becomes
    {!Plan.IndexJoin}.  A candidate replaces the original only when the
    cost model prices it strictly cheaper, so with statistics an index
    path wins only when selective.  Applied by {!plan} automatically when
    [cat] is given, indexes exist and the algorithm is not forced. *)
val access_paths : ?stats:Stats.t -> Catalog.t -> Plan.t -> Plan.t

(** Rewrite hot operators (hash join/semijoin/antijoin/nestjoin, PNHL,
    filter, map) into their parallel variants where stats-derived input
    estimates clear {!par_threshold}.  Partition counts are fixed in the
    plan, so results and counter totals are independent of the pool size.
    [plan ~cat] applies this automatically when {!Pool.domains} is at
    least 2. *)
val parallelize : ?stats:Stats.t -> Catalog.t -> Plan.t -> Plan.t

(** Plan an expression.  [algo] forces a join algorithm everywhere (used by
    the benchmarks to compare algorithms on identical logical plans);
    forcing hash/sort-merge degrades to nested loop where no keys exist.
    [cat] lets the planner consult cardinalities: it sizes PNHL memory
    budgets and, when the domain pool is configured for >= 2 domains,
    applies {!parallelize}. *)
val plan : ?algo:algo_choice -> ?cat:Catalog.t -> Expr.t -> Plan.t

(** Hoist uncorrelated subqueries ({!Consthoist}), plan (with [~cat]), and
    execute. *)
val run : ?algo:algo_choice -> Catalog.t -> Expr.t -> Value.t
