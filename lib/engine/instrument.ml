(* Instrumented plan execution ("explain analyze"): run the plan bottom-up,
   materializing each node's result and recording per-node statistics —
   output rows, the work counters the node ticked, monotonic wall time and
   CPU time.

   Children are materialized first and spliced back as [Plan.Materialized]
   leaves, so each node's measurement covers exactly its own work.  The
   materialization itself perturbs timing (each node reads its inputs from
   lists rather than a pipeline); [Profile] measures without perturbation. *)

open Njq_adl
module Clock = Njq_obs.Clock

type node_report = {
  depth : int; (* nesting depth in the plan tree, root = 0 *)
  label : string; (* operator name, e.g. "hash_semijoin" *)
  rows : int; (* output cardinality *)
  work : (string * int) list; (* counters ticked by this node alone *)
  seconds : float; (* CPU time for this node alone *)
  wall_ns : int; (* monotonic wall time for this node alone *)
  minor_words : float; (* minor-heap words this node alone allocated *)
  major_words : float; (* major-heap words (incl. promotions) *)
}

let alloc_words () =
  let minor, _promoted, major = Gc.counters () in
  (minor, major)

(* Counter snapshot difference. *)
let diff_snapshots before after =
  List.filter_map
    (fun (k, v) ->
      let v0 = try List.assoc k before with Not_found -> 0 in
      if v - v0 > 0 then Some (k, v - v0) else None)
    after

(* Execute [p], returning its rows and the reports of the subtree in
   pre-order (this node first). *)
let rec exec cat depth (p : Plan.t) : Value.t list * node_report list =
  let child_pairs = List.map (exec cat (depth + 1)) (Plan.children p) in
  let child_rows = List.map fst child_pairs in
  let child_reports = List.concat_map snd child_pairs in
  let shallow =
    Plan.with_children p (List.map (fun r -> Plan.Materialized r) child_rows)
  in
  let before_counters = Counters.snapshot () in
  let before_minor, before_major = alloc_words () in
  let before_cpu = Clock.cpu_seconds () in
  let before_ns = Clock.now_ns () in
  let result = Exec.rows cat shallow in
  let wall_ns = Clock.elapsed_ns before_ns in
  let seconds = Clock.cpu_seconds () -. before_cpu in
  let after_minor, after_major = alloc_words () in
  let work = diff_snapshots before_counters (Counters.snapshot ()) in
  let report =
    {
      depth;
      label = Plan.node_label p;
      rows = List.length result;
      work;
      seconds;
      wall_ns;
      minor_words = after_minor -. before_minor;
      major_words = after_major -. before_major;
    }
  in
  (result, report :: child_reports)

let run (cat : Catalog.t) (plan : Plan.t) : Value.t * node_report list =
  let result, reports = exec cat 0 plan in
  (Value.set result, reports)

let pp_report ppf (reports : node_report list) =
  let pp_work ppf work =
    Fmt.string ppf
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) work))
  in
  List.iter
    (fun r ->
      Fmt.pf ppf "%s%-28s %8d rows  %6.2f ms  %a@."
        (String.make (2 * r.depth) ' ')
        r.label r.rows (Clock.ns_to_ms r.wall_ns) pp_work r.work)
    reports

(* Convenience: run instrumented and return the rendered report. *)
let run_verbose cat plan =
  let v, reports = run cat plan in
  (v, Fmt.str "%a" pp_report reports)
