(** Plan execution.

    Parameter expressions (join keys, filter predicates, residuals, map and
    nestjoin bodies) are compiled once per operator into closures
    ({!Njq_adl.Compile}) before iterating; the engine organizes the
    iteration set-oriented: hash tables for equi/member/nest joins, a
    sort-merge alternative, PNHL with memory-budget partitioning, and
    assembly for pointer dereferencing.

    Execution is push-based and pipelined by default: operators for which
    {!Plan.streams_output} holds push rows into their consumer's callback,
    so chains like [Scan -> Filter -> Map -> hash probe] run as single
    fused loops with no intermediate lists; pipeline breakers (hash build
    sides, sort-merge inputs, grouping, division, PNHL/Grace partitioning,
    the parallel operators' partition buffers) materialize only what their
    semantics require.  Both execution modes produce identical row lists
    (same rows, same order) and identical counter totals.

    Larger-than-memory execution: Grace joins and PNHL spill partitions
    that exceed their [mem_budget] to {!Rowcodec} temp files and process
    them one resident partition at a time (rehashing recursively on skew),
    and the sort-merge paths switch to an external run-generation + K-way
    merge sort past {!Memory.budget}.  Results are bit-identical to the
    fully resident run in every execution mode.

    Counters ticked (see {!Njq_adl.Counters}): ["scan_row"],
    ["filter_eval"], ["hash_build"], ["hash_probe"], ["nl_pair"],
    ["sm_cmp"], ["pnhl_partition"], ["pnhl_build"], ["pnhl_probe"], plus
    ["oid_lookup"] from catalog dereferencing; spilling adds
    ["spill_part"], ["spill_row"], ["spill_bytes"], ["ext_sort_run"] and
    ["ext_sort_merge"]. *)

open Njq_adl

exception Exec_error of string

(** When [true] (the default), each operator compiles its parameter
    expressions once with {!Njq_adl.Compile} before iterating; when
    [false], parameters are evaluated per tuple with the reference
    evaluator.  Results are identical either way — the flag exists so the
    benchmark harness can compare both modes on identical plans. *)
val compile_params : bool ref

(** When [true] (the default), streamable operator chains fuse into
    push-based loops with no intermediate lists; when [false], every
    operator boundary materializes a full row list, as the engine did
    before the pipelined executor existed.  Results and counter totals
    are identical either way — the flag exists so the benchmark harness
    can contrast the two modes on identical plans (experiment b13). *)
val pipeline_exec : bool ref

(** When [true] (the default), fused chains move rows as {!Batch} column
    batches: scans emit zero-copy windows over the catalog's row array,
    filters narrow selection vectors instead of copying survivors, and
    constant-comparison predicates run over decoded typed columns.  Only
    effective under {!pipeline_exec}.  Rows, order and counter totals are
    identical to the row-at-a-time pipelines (experiment b15 and
    test/test_batch.ml hold all modes to that contract); the batch size
    is {!Batch.size}. *)
val batch_exec : bool ref

(** Execute a plan, returning its rows (not canonicalized). *)
val rows : Catalog.t -> Plan.t -> Value.t list

(** Execute a plan, returning the result as a canonical set value. *)
val run : Catalog.t -> Plan.t -> Value.t

(** {2 Non-perturbing per-operator profiling}

    One measurement per plan-node execution, taken around a normal
    {!rows} run — the plan executes unchanged, so row counts and counter
    totals are exactly those of an unprofiled run (contrast
    {!Instrument}, which materializes children).  Under pipelined
    execution ({!pipeline_exec}) a fused chain runs as one loop: the
    node that owns the loop gets the measured sample, and each operator
    fused into it records its exact output row count with zero
    time/work/allocation (the owner's exclusive figures cover the whole
    chain; see {!Profile}).  See {!Profile} for the tree-shaped
    report. *)

type node_sample = {
  sample_plan : Plan.t;
      (** The executed node; identity is physical — compare with [==]. *)
  out_rows : int;
  wall_ns : int;  (** Monotonic wall time exclusive of children. *)
  cpu_s : float;  (** CPU time exclusive of children. *)
  incl_wall_ns : int;
  incl_cpu_s : float;
  work : (string * int) list;
      (** Counter deltas exclusive of children, sorted by name. *)
  minor_words : float;
      (** [Gc.minor_words] delta exclusive of children. *)
  major_words : float;
      (** [Gc.major_words] delta exclusive of children. *)
}

(** [collect f] runs [f] with a collector installed and returns its result
    with the samples in completion (post-order) order.  Nested [collect]s
    shadow the outer collector. *)
val collect : (unit -> 'a) -> 'a * node_sample list
