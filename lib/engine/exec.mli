(** Plan execution.

    Parameter expressions (join keys, filter predicates, residuals, map and
    nestjoin bodies) are compiled once per operator into closures
    ({!Njq_adl.Compile}) before iterating; the engine organizes the
    iteration set-oriented: hash tables for equi/member/nest joins, a
    sort-merge alternative, PNHL with memory-budget partitioning, and
    assembly for pointer dereferencing.

    Counters ticked (see {!Njq_adl.Counters}): ["scan_row"],
    ["filter_eval"], ["hash_build"], ["hash_probe"], ["nl_pair"],
    ["sm_cmp"], ["pnhl_partition"], ["pnhl_build"], ["pnhl_probe"], plus
    ["oid_lookup"] from catalog dereferencing. *)

open Njq_adl

exception Exec_error of string

(** When [true] (the default), each operator compiles its parameter
    expressions once with {!Njq_adl.Compile} before iterating; when
    [false], parameters are evaluated per tuple with the reference
    evaluator.  Results are identical either way — the flag exists so the
    benchmark harness can compare both modes on identical plans. *)
val compile_params : bool ref

(** Execute a plan, returning its rows (not canonicalized). *)
val rows : Catalog.t -> Plan.t -> Value.t list

(** Execute a plan, returning the result as a canonical set value. *)
val run : Catalog.t -> Plan.t -> Value.t

(** {2 Non-perturbing per-operator profiling}

    One measurement per plan-node execution, taken around a normal
    {!rows} run — the plan executes unchanged, so row counts and counter
    totals are exactly those of an unprofiled run (contrast
    {!Instrument}, which materializes children).  See {!Profile} for the
    tree-shaped report. *)

type node_sample = {
  sample_plan : Plan.t;
      (** The executed node; identity is physical — compare with [==]. *)
  out_rows : int;
  wall_ns : int;  (** Monotonic wall time exclusive of children. *)
  cpu_s : float;  (** CPU time exclusive of children. *)
  incl_wall_ns : int;
  incl_cpu_s : float;
  work : (string * int) list;
      (** Counter deltas exclusive of children, sorted by name. *)
}

(** [collect f] runs [f] with a collector installed and returns its result
    with the samples in completion (post-order) order.  Nested [collect]s
    shadow the outer collector. *)
val collect : (unit -> 'a) -> 'a * node_sample list
