(** Plan execution.

    Parameter expressions (join keys, filter predicates, residuals, map and
    nestjoin bodies) are compiled once per operator into closures
    ({!Njq_adl.Compile}) before iterating; the engine organizes the
    iteration set-oriented: hash tables for equi/member/nest joins, a
    sort-merge alternative, PNHL with memory-budget partitioning, and
    assembly for pointer dereferencing.

    Counters ticked (see {!Njq_adl.Counters}): ["scan_row"],
    ["filter_eval"], ["hash_build"], ["hash_probe"], ["nl_pair"],
    ["sm_cmp"], ["pnhl_partition"], ["pnhl_build"], ["pnhl_probe"], plus
    ["oid_lookup"] from catalog dereferencing. *)

open Njq_adl

exception Exec_error of string

(** When [true] (the default), each operator compiles its parameter
    expressions once with {!Njq_adl.Compile} before iterating; when
    [false], parameters are evaluated per tuple with the reference
    evaluator.  Results are identical either way — the flag exists so the
    benchmark harness can compare both modes on identical plans. *)
val compile_params : bool ref

(** Execute a plan, returning its rows (not canonicalized). *)
val rows : Catalog.t -> Plan.t -> Value.t list

(** Execute a plan, returning the result as a canonical set value. *)
val run : Catalog.t -> Plan.t -> Value.t
