(** Instrumented plan execution ("explain analyze"): materialize each node's
    result bottom-up and record per-node statistics — output cardinality,
    the work counters the node ticked, and CPU time. *)

open Njq_adl

type node_report = {
  depth : int;  (** nesting depth in the plan tree, root = 0 *)
  label : string;  (** operator name, e.g. "hash_semijoin" *)
  rows : int;  (** output cardinality *)
  work : (string * int) list;  (** counters ticked by this node alone *)
  seconds : float;  (** CPU time for this node alone *)
  wall_ns : int;  (** monotonic wall time for this node alone *)
  minor_words : float;  (** minor-heap words this node alone allocated *)
  major_words : float;  (** major-heap words (incl. promotions) *)
}

(** Execute a plan, returning the result and one report per node in
    pre-order (root first). *)
val run : Catalog.t -> Plan.t -> Value.t * node_report list

(** Indented textual rendering of the reports. *)
val pp_report : Format.formatter -> node_report list -> unit

(** {!run} plus the rendered report. *)
val run_verbose : Catalog.t -> Plan.t -> Value.t * string
