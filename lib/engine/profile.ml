(* EXPLAIN ANALYZE: join the non-perturbing per-operator samples from
   [Exec.collect] with the cost model's cardinality estimates, per plan
   node, into a tree-shaped report with estimated vs actual rows and the
   q-error of each estimate.

   Samples are keyed by the physical identity of the plan node.  A node
   that executes more than once (a physically shared subtree in a
   hand-built plan) accumulates: [calls] counts executions, times, work
   and allocation sum, and [actual_rows] keeps the last run's cardinality
   (identical runs being deterministic).

   Attribution under pipelined execution ([Exec.pipeline_exec], the
   default): a fused chain runs as one loop owned by the node [Exec.rows]
   was called on — that node's exclusive time/work/allocation covers the
   whole chain, while each operator fused into it still reports its exact
   [actual_rows] (and [calls]) with zeros elsewhere.  Pipeline breakers
   keep per-node brackets.  Flip [Exec.pipeline_exec] off for the old
   one-bracket-per-node attribution; row counts and total work are
   identical in both modes. *)

open Njq_adl

type node = {
  plan : Plan.t;
  label : string;
  depth : int;
  est_rows : float;  (* Cost.rows_out estimate *)
  actual_rows : int;
  qerror : float;
  calls : int;
  wall_ns : int;  (* exclusive of children, summed over calls *)
  cpu_s : float;
  work : (string * int) list;
  minor_words : float;  (* Gc minor-heap words, exclusive, summed *)
  major_words : float;
  children : node list;
}

(* The symmetric multiplicative error of the estimate, >= 1.0; both sides
   are clamped to 1 so empty results don't divide by zero. *)
let qerror ~est ~actual =
  let est = Float.max 1.0 est and actual = Float.max 1.0 (float_of_int actual) in
  Float.max (est /. actual) (actual /. est)

let add_work a b =
  let rec go a b =
    match a, b with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: go ta b
      else if c > 0 then (kb, vb) :: go a tb
      else (ka, va + vb) :: go ta tb
  in
  go a b

(* Execute [plan] under a collector and fold the samples back onto the
   tree.  [stats] sharpens the cardinality estimates (see [Cost]). *)
let run ?stats (cat : Catalog.t) (plan : Plan.t) : Value.t * node =
  let result, samples = Exec.collect (fun () -> Exec.run cat plan) in
  let rec build depth p =
    let mine =
      List.filter (fun (s : Exec.node_sample) -> s.sample_plan == p) samples
    in
    let calls = List.length mine in
    let actual_rows =
      match List.rev mine with [] -> 0 | last :: _ -> last.Exec.out_rows
    in
    let wall_ns =
      List.fold_left (fun acc (s : Exec.node_sample) -> acc + s.wall_ns) 0 mine
    in
    let cpu_s =
      List.fold_left (fun acc (s : Exec.node_sample) -> acc +. s.cpu_s) 0.0 mine
    in
    let work =
      List.fold_left
        (fun acc (s : Exec.node_sample) -> add_work acc s.work)
        [] mine
    in
    let minor_words =
      List.fold_left
        (fun acc (s : Exec.node_sample) -> acc +. s.minor_words)
        0.0 mine
    in
    let major_words =
      List.fold_left
        (fun acc (s : Exec.node_sample) -> acc +. s.major_words)
        0.0 mine
    in
    let est_rows = Cost.rows_out ?stats cat p in
    {
      plan = p;
      label = Plan.node_label p;
      depth;
      est_rows;
      actual_rows;
      qerror = qerror ~est:est_rows ~actual:actual_rows;
      calls;
      wall_ns;
      cpu_s;
      work;
      minor_words;
      major_words;
      children = List.map (build (depth + 1)) (Plan.children p);
    }
  in
  (result, build 0 plan)

(* Pre-order flattening, this node first. *)
let rec preorder n = n :: List.concat_map preorder n.children

let max_qerror root =
  List.fold_left (fun acc n -> Float.max acc n.qerror) 1.0 (preorder root)

let pp ppf root =
  Fmt.pf ppf "%-36s %10s %10s %8s %10s %10s  %s@." "operator" "est" "actual"
    "q-err" "ms" "minor_kw" "work";
  List.iter
    (fun n ->
      let indent = String.make (2 * n.depth) ' ' in
      let label =
        if n.calls > 1 then Fmt.str "%s (x%d)" n.label n.calls else n.label
      in
      Fmt.pf ppf "%s%-*s %10.0f %10d %8.2f %10.3f %10.1f  %s@." indent
        (max 1 (36 - String.length indent))
        label n.est_rows n.actual_rows n.qerror
        (Njq_obs.Clock.ns_to_ms n.wall_ns)
        (n.minor_words /. 1000.0)
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) n.work)))
    (preorder root)

let rec to_json n : Njq_obs.Json.t =
  let open Njq_obs.Json in
  Obj
    ([
       ("operator", Str n.label);
       ("est_rows", Float n.est_rows);
       ("actual_rows", Int n.actual_rows);
       ("qerror", Float n.qerror);
       ("calls", Int n.calls);
       ("wall_ns", Int n.wall_ns);
       ("cpu_s", Float n.cpu_s);
       ("minor_words", Float n.minor_words);
       ("major_words", Float n.major_words);
       ("work", Obj (List.map (fun (k, v) -> (k, Int v)) n.work));
     ]
    @
    match n.children with
    | [] -> []
    | cs -> [ ("children", List (Stdlib.List.map to_json cs)) ])
