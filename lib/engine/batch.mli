(** Column batches with selection vectors for the push-based executor.

    A batch is a window of N physical [Value.t] rows flowing through a
    fused pipeline in one push.  Filters mark survivors in a {e selection
    vector} instead of copying rows; predicate comparison leaves run over
    {e typed column buffers} ([Bigarray] payloads off the OCaml heap, one
    unboxed [bool] per comparison — no [VBool] boxing per row).  Rows stay
    [Value.t] throughout: batches materialize back to plain rows at
    pipeline breakers and the result root, so the reference semantics of
    {!Njq_adl.Value} is untouched. *)

open Njq_adl

(** {1 Batch size} *)

val default_size : int

(** Rows per batch.  Initialized from [NJQ_BATCH] when set (else
    {!default_size}); [--batch-size] overrides via {!set_size}. *)
val size : int ref

(** Clamped to at least 1. *)
val set_size : int -> unit

(** {1 Batches}

    Invariants: [rows] is shared and never mutated through the batch;
    [nsel = -1] means no selection yet (all of [off, off+len) live);
    otherwise [sel.(0 .. nsel-1)] holds strictly increasing physical
    indices into [rows].  Selections only shrink ({!keep} compacts in
    place), never grow or reorder. *)
type t = private {
  rows : Value.t array;
  off : int;
  len : int;
  mutable sel : int array;
  mutable nsel : int;
}

(** Zero-copy window over [rows.(off .. off+len-1)]. *)
val view : Value.t array -> off:int -> len:int -> t

val of_array : Value.t array -> t

(** Number of surviving rows. *)
val live : t -> int

(** Row at live position [j], [0 <= j < live b]. *)
val get : t -> int -> Value.t

(** Iterate surviving rows in physical (hence canonical pipeline) order. *)
val iter : (Value.t -> unit) -> t -> unit

(** [keep b f] filters in place: live position [j] survives iff [f j].
    Positions are tested in order; the selection vector is allocated on
    the first filter and compacted in place thereafter. *)
val keep : t -> (int -> bool) -> unit

(** {!keep} over rows rather than positions. *)
val keep_rows : t -> (Value.t -> bool) -> unit

(** {1 Typed columns} *)

type int_col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_col =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** One attribute decoded densely over the live rows: position [j] of the
    column is live position [j] of the batch.  [CBox] is the boxed column
    for genuinely mixed-type attributes. *)
type col =
  | CInt of int_col
  | CFloat of float_col
  | COid of int_col
  | CDate of int_col
  | CBox of Value.t array

(** [column b attr] decodes [attr] over the live rows, or [None] when
    extraction raises anywhere in the batch (caller must fall back to
    per-row evaluation so the error surfaces on the right row). *)
val column : t -> string -> col option

(** {1 Predicate kernels} *)

(** [kernel b vp] compiles a {!Compile.vpred} against [b]: comparison
    leaves decode their column once, And/Or/Not short-circuit per row
    exactly like the compiled row closures.  The returned function answers
    for live positions of [b] {e as at call time} — build the kernel
    before mutating the selection it reads. *)
val kernel : t -> Compile.vpred -> int -> bool

(** [keep_vpred vp b] = [keep b (kernel b vp)]. *)
val keep_vpred : Compile.vpred -> t -> unit

(** {1 Builders} *)

(** Accumulates produced rows into owned batches of (up to) [!size] rows,
    emitting each as it fills. *)
type builder

val builder : (t -> unit) -> builder
val add : builder -> Value.t -> unit

(** Emit the partial tail batch, if any. *)
val flush : builder -> unit

(** {1 Pre-sized row vector}

    The root materialization sink: pre-sized from the planner's
    cardinality estimate, filled in push order, listed once. *)
module Vec : sig
  type batch := t
  type t

  val create : int -> t
  val push : t -> Value.t -> unit

  (** Append all surviving rows of a batch. *)
  val push_batch : t -> batch -> unit

  val to_list : t -> Value.t list
end
