(** Concurrent prepared-query serving with set-oriented parameter
    batching.

    A {!prepared} handle is a parameterized query template (explicit
    [?0 ?1 ...] placeholders) bound to a catalog.  Handles execute two
    ways, with bit-identical per-invocation results:

    - {!exec_one}: substitute the parameter vector into the cached
      parameterized plan ({!Plan.map_exprs}) and run it — K invocations
      cost K full executions.
    - {!exec_batch}: merge the K outstanding parameter vectors into a
      parameter table and run the template {e once}, set-oriented.  The
      batched form [map\[w : (__cid, __rows = body\[?i := w.__pi\])\]] is
      a correlated subquery the Section 4 strategy unnests into joins —
      the paper's nested-loop → join move applied to the invocation
      batch itself, so shared work (scans, hash builds) is paid once
      instead of K times.  Results are split back per client by [__cid].

    The parameter table is registered in the catalog once at {!prepare}
    (one epoch bump); per-batch rows are spliced into the cached batched
    plan as a {!Plan.Materialized} leaf via {!Plan.map_scans}, so serving
    batches never perturbs the catalog epoch and both plans stay
    plan-cache hits.  Any real catalog change still bumps the epoch and
    re-derives on the next invocation.

    {!run} is the in-process multi-client driver: client domains submit
    invocations into an admission queue; the scheduler (main domain, so
    the executor keeps its domain pool) drains up to a window of
    same-handle requests per round and executes them as one batch.
    Queue waits, service times and batch sizes land in the
    ["serve_queue_ns"] / ["serve_service_ns"] / ["serve_batch_size"]
    histograms and the ["serve_request"] / ["serve_batch"] counters. *)

open Njq_adl

type prepared

(** [prepare cat ~translate text] readies template [text] (OOSQL or any
    frontend the [translate] closure understands; parameters appear as
    [?0 ?1 ...]) for repeated execution against [cat].  [translate] maps
    template text to its ADL expression — passed as a closure so the
    engine stays frontend-free — and is called once eagerly (failing
    fast on bad text) and again on plan-cache misses.  [options] joins
    the plan-cache key (mode flags etc.).  Registers the handle's
    parameter table in [cat]. *)
val prepare :
  Catalog.t ->
  ?options:string ->
  translate:(string -> Expr.t) ->
  string ->
  prepared

(** Normalized template text. *)
val text : prepared -> string

(** Number of parameters ([1 +] the highest placeholder index). *)
val nparams : prepared -> int

(** Fingerprint of the (parameterized) one-at-a-time plan — the qlog
    join key for every invocation of this handle, batched or not. *)
val fingerprint : prepared -> string

(** Execute one invocation: bind the parameter vector into the cached
    parameterized plan and run it.  Also reports whether the plan came
    from the cache.  Raises [Invalid_argument] on a parameter-count
    mismatch. *)
val exec_one : prepared -> Value.t list -> Value.t * bool

(** Execute K invocations as one set-oriented batch; [exec_batch h pss]
    returns one result per parameter vector, in order, each bit-identical
    to [fst (exec_one h ps)].  A singleton batch degrades to
    {!exec_one}. *)
val exec_batch : prepared -> Value.t list list -> Value.t list

(** {1 In-process concurrent driver} *)

type reply = {
  client : int;
  seq : int;  (** request index within the client, from 0 *)
  value : Value.t;
  queue_ns : int;  (** admission-queue wait before its batch started *)
  service_ns : int;  (** wall time of the executing batch *)
  batch : int;  (** invocations merged into that batch *)
}

(** [run ~clients ~requests ~params ()] spawns [clients] client domains,
    each synchronously issuing [requests] invocations in bursts of
    [burst] (default 1: at most one outstanding request per client).
    [params ~client ~seq] picks the handle and parameter vector of each
    invocation; it runs on client domains and must be thread-safe and
    non-raising.  The scheduler runs on the calling (main) domain,
    draining up to [window] (default 64) same-handle requests per batch;
    [batching:false] forces one-at-a-time service (the baseline the
    benchmarks contrast).  Returns every reply sorted by [(client, seq)].
    Must be called from the main domain. *)
val run :
  ?batching:bool ->
  ?window:int ->
  ?burst:int ->
  clients:int ->
  requests:int ->
  params:(client:int -> seq:int -> prepared * Value.t list) ->
  unit ->
  reply list
