(* Cost-based join-order enumeration with DAG-aware selection placement.

   The rewriter (Core.Strategy) fixes the join order by construction: it
   unnests in source order, so the plan handed to the planner joins
   relations in whatever order the query mentioned them.  This pass
   re-derives the order from costs.  It decomposes each maximal join
   region of the plan into

     - leaves: the joined relations (scans, renamed scans, filtered or
       projected scans — anything with a known attribute set),
     - conjuncts: every selection predicate and join condition, rewritten
       over one canonical row variable so a conjunct is just an attribute
       requirement plus an expression, and
     - unary edges: semijoin/antijoin/nestjoin right-hand sides, which
       filter or extend the accumulating join result without contributing
       attributes of their own (beyond a nestjoin's grouped attribute).

   and then rebuilds the cheapest tree bottom-up: exhaustive DP over
   relation subsets up to [dp_max] relations, greedy nearest-neighbor
   growth beyond.  Conjuncts and unary edges are applied at the earliest
   node where the attributes they need are available — for a nestjoin
   this availability requirement is exactly the paper-twist "the grouping
   side must survive": a subset is grouping-complete for an edge when it
   covers the edge's key and body attributes, and the attribute the edge
   produces feeds the availability of whatever reads the group later.

   Correctness of reordering rests on the value model: [Value.tuple]
   sorts fields by name and sets are canonically sorted and deduplicated,
   so any two orders of the same inner-join/semijoin/antijoin/nestjoin
   region produce structurally identical results (differential-tested in
   test_joinorder.ml).  The pass adopts an enumerated order only when its
   estimated cost is *strictly* below the rewriter order's, so estimation
   ties keep existing plans byte-stable.

   Selection placement: after the order is fixed, each selection may hoist
   above ancestor joins.  Under the plain cost model pushdown is optimal
   (a filter costs its input's cardinality), so the hill-climb is a no-op
   — until a subplan is shared.  A subtree whose fingerprint is listed in
   [shared] is charged only its output cardinality (it is materialized
   once by a batched prepared-query plan); pushing a selection below it
   would change its fingerprint and forfeit the reuse, and hoisting wins.
   That is the "Sprinkling Selections over Join DAGs" case. *)

open Njq_adl
module S = Analysis.S

let use_joinorder = ref true
let dp_max = ref 10
let shared : string list ref = ref []

type region_report = {
  relations : string list;
  considered : int;
  pruned : int;
  chosen_cost : float;
  rewriter_cost : float;
  reordered : bool;
  hoisted : int;
  chosen_fingerprint : string;
  rewriter_fingerprint : string;
}

let last_report : region_report list ref = ref []

exception Bail

(* ------------------------------------------------------------------ *)
(* Canonical-variable normalization.                                    *)
(* ------------------------------------------------------------------ *)

(* All region predicates are rewritten over this one row variable.  The
   '%' prefix cannot appear in source identifiers or planner-generated
   fresh names, so plain structural substitution is capture-safe. *)
let canon = "%row"

(* Attributes an expression reads off the canonical row variable, or
   [None] when it uses the row as a whole (bare [Var canon] not under a
   field projection), which we cannot split across join sides. *)
let canon_uses (e : Expr.t) : S.t option =
  let fields =
    Analysis.find_all
      (function
        | Expr.Field (Expr.Var v, _) -> String.equal v canon
        | _ -> false)
      e
  in
  let bare = Analysis.count_subexpr ~needle:(Expr.Var canon) e in
  if bare > List.length fields then None
  else
    Some
      (List.fold_left
         (fun acc -> function Expr.Field (_, a) -> S.add a acc | _ -> acc)
         S.empty fields)

let req_of e = match canon_uses e with Some s -> s | None -> raise Bail

(* Rewrite binder variables to the canonical variable; bails on free
   variables beyond the binders (correlated predicates — the region
   cannot re-place those). *)
let normalize_binders vars (e : Expr.t) : Expr.t =
  if not (S.subset (Analysis.free_vars e) (S.of_list vars)) then raise Bail;
  Analysis.subst (List.map (fun v -> (v, Expr.Var canon)) vars) e

(* Rebind the canonical variable to a concrete row variable. *)
let rebind v e = Analysis.subst1 canon (Expr.Var v) e

(* ------------------------------------------------------------------ *)
(* Region representation.                                               *)
(* ------------------------------------------------------------------ *)

type conj = {
  c_expr : Expr.t;  (* over [canon] *)
  c_req : S.t;  (* attributes it reads *)
  c_eq : (Expr.t * Expr.t * S.t * S.t) option;
      (* equality sides + their attribute sets, for key extraction *)
}

type uop =
  | Usemi of {
      kind : Expr.join_kind;
      algo : Plan.join_algo;
      yvar : string;
      keys : (Expr.t * Expr.t) list;  (* (over canon, over yvar) *)
      residual : Expr.t;  (* over canon and yvar *)
      right : Plan.t;
    }
  | Unest of {
      algo : Plan.join_algo;
      yvar : string;
      keys : (Expr.t * Expr.t) list;
      residual : Expr.t;
      body : Expr.t;  (* over canon and yvar *)
      attr : string;
      right : Plan.t;
    }

type item = { u : uop; u_req : S.t; u_prod : string option }

type region = {
  leaves : (Plan.t * S.t) array;  (* rewriter order, left to right *)
  conjs : conj array;
  items : item array;
  ref_plan : Plan.t;  (* the rewriter-order tree (sub-plans optimized) *)
}

let mk_conj (e : Expr.t) : conj =
  let req = req_of e in
  let c_eq =
    match e with
    | Expr.Cmp (Expr.Eq, a, b) -> (
      match canon_uses a, canon_uses b with
      | Some ra, Some rb -> Some (a, b, ra, rb)
      | _ -> None)
    | _ -> None
  in
  { c_expr = e; c_req = req; c_eq }

(* Attribute set of a region leaf, or [None] when unknown (which makes
   the enclosing region unenumerable — requirements could not be placed). *)
let rec leaf_attrs cat (p : Plan.t) : S.t option =
  match p with
  | Plan.Scan t ->
    Option.bind (Catalog.find_opt cat t) (fun tbl ->
        match tbl.Catalog.row_type with
        | Vtype.TTuple fields -> Some (S.of_list (List.map fst fields))
        | _ -> None)
  | Plan.RenameOp (pairs, input) ->
    Option.map
      (S.map (fun a ->
           match List.assoc_opt a pairs with Some b -> b | None -> a))
      (leaf_attrs cat input)
  | Plan.IndexScan { table; rename; _ } ->
    Option.map
      (S.map (fun a ->
           match List.assoc_opt a rename with Some b -> b | None -> a))
      (leaf_attrs cat (Plan.Scan table))
  | Plan.Filter { input; _ } -> leaf_attrs cat input
  | Plan.ProjectOp (attrs, _) -> Some (S.of_list attrs)
  | Plan.MapOp { body = Expr.Tuple fields; _ } ->
    Some (S.of_list (List.map fst fields))
  | _ -> None

let rec leaf_label = function
  | Plan.Scan t -> t
  | Plan.IndexScan { table; _ } -> table
  | Plan.RenameOp (_, p)
  | Plan.Filter { input = p; _ }
  | Plan.ProjectOp (_, p)
  | Plan.MapOp { input = p; _ } ->
    leaf_label p
  | p -> Plan.node_label p

(* ------------------------------------------------------------------ *)
(* Availability and deterministic application.                          *)
(* ------------------------------------------------------------------ *)

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 m

(* Attributes available in a relation subset: base attributes of its
   leaves plus attributes produced by nestjoin edges whose requirements
   the subset satisfies, to a fixpoint.  "Grouping-complete" subsets are
   exactly those through which an edge's produced attribute appears. *)
let mk_avail (r : region) =
  let memo = Hashtbl.create 64 in
  fun mask ->
    match Hashtbl.find_opt memo mask with
    | Some a -> a
    | None ->
      let base = ref S.empty in
      Array.iteri
        (fun i (_, a) -> if mask land (1 lsl i) <> 0 then base := S.union a !base)
        r.leaves;
      let rec fix cur =
        let next =
          Array.fold_left
            (fun acc it ->
              match it.u_prod with
              | Some a when (not (S.mem a acc)) && S.subset it.u_req acc ->
                S.add a acc
              | _ -> acc)
            cur r.items
        in
        if S.equal next cur then cur else fix next
      in
      let a = fix !base in
      Hashtbl.add memo mask a;
      a

(* Deterministic row-variable names per subset; '%' keeps them out of the
   source/fresh-name namespace, and deriving them from the subset mask
   (never from a global counter) keeps plan fingerprints reproducible. *)
let vname mask = Printf.sprintf "%%s%x" mask

let apply_item mask it plan =
  let v = vname mask in
  match it.u with
  | Usemi { kind; algo; yvar; keys; residual; right } ->
    Plan.JoinOp
      {
        algo;
        kind;
        xvar = v;
        yvar;
        keys = List.map (fun (kx, ky) -> (rebind v kx, ky)) keys;
        residual = rebind v residual;
        left = plan;
        right;
      }
  | Unest { algo; yvar; keys; residual; body; attr; right } ->
    Plan.NestjoinOp
      {
        algo;
        xvar = v;
        yvar;
        keys = List.map (fun (kx, ky) -> (rebind v kx, ky)) keys;
        residual = rebind v residual;
        body = rebind v body;
        attr;
        left = plan;
        right;
      }

(* Apply, on top of [plan] (the completed subtree for [mask], rows
   carrying [cur] attributes), every conjunct and unary edge applicable
   at [mask] but not already applied below.  Application order is
   deterministic — ready conjuncts first (extraction order, one Filter),
   then the first ready unary edge, repeat — so the plan built for a
   subset is a function of the subset and its partition alone, which is
   what keeps the DP memo well-defined. *)
let finish (r : region) ~avail ~mask ~cur ~below_c ~below_i plan =
  let av = avail mask in
  let todo_c = ref [] and todo_i = ref [] in
  Array.iteri
    (fun i c ->
      if (not (below_c i)) && S.subset c.c_req av then todo_c := i :: !todo_c)
    r.conjs;
  Array.iteri
    (fun i it ->
      if (not (below_i i)) && S.subset it.u_req av then todo_i := i :: !todo_i)
    r.items;
  let rec loop plan cur todo_c todo_i =
    let ready_c, later_c =
      List.partition (fun i -> S.subset r.conjs.(i).c_req cur) todo_c
    in
    let plan =
      match ready_c with
      | [] -> plan
      | _ ->
        let v = vname mask in
        Plan.Filter
          {
            var = v;
            pred =
              Expr.conjoin
                (List.map (fun i -> rebind v r.conjs.(i).c_expr) ready_c);
            input = plan;
          }
    in
    let rec first_ready acc = function
      | [] -> None
      | i :: rest when S.subset r.items.(i).u_req cur ->
        Some (i, List.rev_append acc rest)
      | i :: rest -> first_ready (i :: acc) rest
    in
    match first_ready [] todo_i with
    | None -> if later_c = [] && todo_i = [] then plan else raise Bail
    | Some (i, rest) ->
      let it = r.items.(i) in
      let cur = match it.u_prod with Some a -> S.add a cur | None -> cur in
      loop (apply_item mask it plan) cur later_c rest
  in
  loop plan cur (List.rev !todo_c) (List.rev !todo_i)

let leaf_build (r : region) ~avail i =
  let mask = 1 lsl i in
  let none _ = false in
  finish r ~avail ~mask ~cur:(snd r.leaves.(i)) ~below_c:none ~below_i:none
    (fst r.leaves.(i))

(* Split a cross conjunct's field accesses between the two join sides. *)
let split_sides ~a1 ~xv ~yv (c : conj) : Expr.t =
  S.fold
    (fun a acc ->
      let side = if S.mem a a1 then xv else yv in
      Analysis.replace_subexpr
        ~old_e:(Expr.Field (Expr.Var canon, a))
        ~by:(Expr.Field (Expr.Var side, a))
        acc)
    c.c_req c.c_expr

(* All candidate join plans combining the completed subtrees [p1] (for
   subset [m1]) and [p2] (for [m2]): one per applicable algorithm, with
   crossing equality conjuncts as hash/merge keys, other crossing
   conjuncts as the residual, and newly applicable conjuncts and unary
   edges finished on top.  Empty when the subsets share no conjunct (no
   cross products are enumerated). *)
let candidates (r : region) ~avail ~m1 ~m2 p1 p2 : Plan.t list =
  let m = m1 lor m2 in
  let a1 = avail m1 and a2 = avail m2 in
  let union12 = S.union a1 a2 in
  let xv = Printf.sprintf "%%x%x" m1 and yv = Printf.sprintf "%%y%x" m2 in
  let below_c i =
    let q = r.conjs.(i).c_req in
    S.subset q a1 || S.subset q a2
  in
  let below_i i =
    let q = r.items.(i).u_req in
    S.subset q a1 || S.subset q a2
  in
  let keys = ref [] and residuals = ref [] in
  let consumed = ref [] in
  Array.iteri
    (fun i c ->
      if (not (below_c i)) && S.subset c.c_req union12 then (
        consumed := i :: !consumed;
        match c.c_eq with
        | Some (a, b, ra, rb) when S.subset ra a1 && S.subset rb a2 ->
          keys := (rebind xv a, rebind yv b) :: !keys
        | Some (a, b, ra, rb) when S.subset rb a1 && S.subset ra a2 ->
          keys := (rebind xv b, rebind yv a) :: !keys
        | _ -> residuals := split_sides ~a1 ~xv ~yv c :: !residuals))
    r.conjs;
  let below_c i = below_c i || List.mem i !consumed in
  let keys = List.rev !keys and residuals = List.rev !residuals in
  if keys = [] && residuals = [] then []
  else
    let residual = Expr.conjoin residuals in
    let algos =
      if keys = [] then [ Plan.Nested_loop ]
      else [ Plan.Hash; Plan.Sort_merge; Plan.Nested_loop ]
    in
    List.filter_map
      (fun algo ->
        let j =
          Plan.JoinOp
            {
              algo;
              kind = Expr.Inner;
              xvar = xv;
              yvar = yv;
              keys;
              residual;
              left = p1;
              right = p2;
            }
        in
        match finish r ~avail ~mask:m ~cur:union12 ~below_c ~below_i j with
        | p -> Some p
        | exception Bail -> None)
      algos

(* ------------------------------------------------------------------ *)
(* Costing (sharing-aware).                                             *)
(* ------------------------------------------------------------------ *)

type ctx = { cat : Catalog.t; stats : Stats.t option; shared_fps : string list }

(* Plan cost, with subtrees whose fingerprint is in [shared_fps] charged
   only their output cardinality: a shared subplan is computed once
   elsewhere (batched prepared-query plans), so a candidate only pays for
   reading its materialized result.  Node-local cost is recovered as the
   node's cost minus its children's, then summed over the pruned tree. *)
let shared_cost (ctx : ctx) (p : Plan.t) : float =
  let stats = ctx.stats in
  if ctx.shared_fps = [] then Cost.cost ?stats ctx.cat p
  else
    let rec go p =
      if List.mem (Plan.fingerprint p) ctx.shared_fps then
        Cost.rows_out ?stats ctx.cat p
      else
        let kids = Plan.children p in
        let local =
          List.fold_left
            (fun acc k -> acc -. Cost.cost ?stats ctx.cat k)
            (Cost.cost ?stats ctx.cat p)
            kids
        in
        List.fold_left (fun acc k -> acc +. go k) (Float.max 0.0 local) kids
    in
    go p

(* ------------------------------------------------------------------ *)
(* Enumeration: DP over subsets, greedy beyond [dp_max].                *)
(* ------------------------------------------------------------------ *)

(* Returns the cheapest complete region plan with (cost, considered,
   pruned) counters, or [None] when no connected order exists. *)
let enumerate (ctx : ctx) (r : region) :
    (Plan.t * float * int * int) option =
  let n = Array.length r.leaves in
  let avail = mk_avail r in
  let considered = ref 0 and pruned = ref 0 in
  let plan_cost p = shared_cost ctx p in
  let pick acc cand =
    incr considered;
    let c = plan_cost cand in
    match !acc with
    | Some (_, bc) when bc <= c -> incr pruned
    | Some _ ->
      incr pruned;
      acc := Some (cand, c)
    | None -> acc := Some (cand, c)
  in
  let leafp =
    Array.init n (fun i ->
        match leaf_build r ~avail i with
        | p -> Some (p, plan_cost p)
        | exception Bail -> None)
  in
  if Array.exists Option.is_none leafp then None
  else if n <= !dp_max then begin
    (* Selinger-style DP: best plan per subset, every 2-partition of every
       subset considered (both orders, so the hash build side is free). *)
    let full = (1 lsl n) - 1 in
    let best = Array.make (full + 1) None in
    Array.iteri (fun i p -> best.(1 lsl i) <- p) leafp;
    for m = 1 to full do
      if popcount m >= 2 then begin
        let acc = ref None in
        let sub = ref ((m - 1) land m) in
        while !sub > 0 do
          let m1 = !sub and m2 = m lxor !sub in
          (match best.(m1), best.(m2) with
          | Some (p1, _), Some (p2, _) ->
            List.iter (pick acc) (candidates r ~avail ~m1 ~m2 p1 p2)
          | _ -> ());
          sub := (!sub - 1) land m
        done;
        best.(m) <- !acc
      end
    done;
    Option.map (fun (p, c) -> (p, c, !considered, !pruned)) best.(full)
  end
  else begin
    (* Greedy nearest-neighbor: cheapest joinable pair, then repeatedly
       the cheapest single-relation extension (either side). *)
    let leafp = Array.map Option.get leafp in
    let start = ref None in
    let pick_at acc mask cand =
      incr considered;
      let c = plan_cost cand in
      match !acc with
      | Some (_, _, bc) when bc <= c -> incr pruned
      | Some _ ->
        incr pruned;
        acc := Some (mask, cand, c)
      | None -> acc := Some (mask, cand, c)
    in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          List.iter
            (pick_at start ((1 lsl i) lor (1 lsl j)))
            (candidates r ~avail ~m1:(1 lsl i) ~m2:(1 lsl j)
               (fst leafp.(i)) (fst leafp.(j)))
      done
    done;
    match !start with
    | None -> None
    | Some (mask0, p0, c0) ->
      let rec grow mask p c =
        if mask = (1 lsl n) - 1 then Some (p, c, !considered, !pruned)
        else begin
          let step = ref None in
          for k = 0 to n - 1 do
            let mk = 1 lsl k in
            if mask land mk = 0 then
              List.iter
                (pick_at step (mask lor mk))
                (candidates r ~avail ~m1:mask ~m2:mk p (fst leafp.(k))
                @ candidates r ~avail ~m1:mk ~m2:mask (fst leafp.(k)) p)
          done;
          match !step with
          | None -> None
          | Some (m', p', c') -> grow m' p' c'
        end
      in
      grow mask0 p0 c0
  end

(* ------------------------------------------------------------------ *)
(* Selection placement on the chosen tree.                              *)
(* ------------------------------------------------------------------ *)

(* Single-level hoist moves: a Filter directly under a join-family node
   moves above it.  Legal from the left side of any join (the output
   contains the left attributes) and from the right side of inner joins
   only (semijoin/antijoin/nestjoin outputs carry no right attributes). *)
let hoist_moves (p0 : Plan.t) : Plan.t list =
  let out = ref [] in
  let rec go rebuild p =
    (match p with
    | Plan.JoinOp ({ left = Plan.Filter { var; pred; input }; _ } as j) ->
      out :=
        rebuild
          (Plan.Filter
             { var; pred; input = Plan.JoinOp { j with left = input } })
        :: !out
    | _ -> ());
    (match p with
    | Plan.JoinOp
        ({ kind = Expr.Inner; right = Plan.Filter { var; pred; input }; _ } as
         j) ->
      out :=
        rebuild
          (Plan.Filter
             { var; pred; input = Plan.JoinOp { j with right = input } })
        :: !out
    | _ -> ());
    (match p with
    | Plan.NestjoinOp ({ left = Plan.Filter { var; pred; input }; _ } as j) ->
      out :=
        rebuild
          (Plan.Filter
             { var; pred; input = Plan.NestjoinOp { j with left = input } })
        :: !out
    | _ -> ());
    let kids = Plan.children p in
    List.iteri
      (fun i c ->
        let rebuild' c' =
          rebuild
            (Plan.with_children p
               (List.mapi (fun k ck -> if k = i then c' else ck) kids))
        in
        go rebuild' c)
      kids
  in
  go (fun x -> x) p0;
  !out

(* Hill-climb: take the best strictly-improving hoist until none exists.
   With no shared subplans pushdown is optimal under this cost model and
   the loop exits immediately; with sharing, selections migrate above the
   shared boundary. *)
let place_selections (ctx : ctx) (p : Plan.t) : Plan.t * int =
  let hoisted = ref 0 in
  let rec climb plan cost_now iters =
    if iters = 0 then plan
    else
      let best =
        List.fold_left
          (fun acc m ->
            let c = shared_cost ctx m in
            match acc with
            | Some (_, bc) when bc <= c -> acc
            | _ -> if c < cost_now then Some (m, c) else acc)
          None (hoist_moves plan)
      in
      match best with
      | Some (m, c) ->
        incr hoisted;
        climb m c (iters - 1)
      | None -> plan
  in
  let placed = climb p (shared_cost ctx p) 16 in
  (placed, !hoisted)

(* ------------------------------------------------------------------ *)
(* Region extraction and the top-level pass.                            *)
(* ------------------------------------------------------------------ *)

(* Is this node the root of (part of) an enumerable join region? *)
let rec region_root = function
  | Plan.JoinOp { kind = Expr.Inner | Expr.Semi | Expr.Anti; keys = _ :: _; _ }
    ->
    true
  | Plan.NestjoinOp { keys = _ :: _; _ } -> true
  | Plan.Filter { input; _ } -> region_root input
  | _ -> false

(* Decompose the region rooted at [p0].  [sub] post-processes sub-plans
   that leave the region (leaves and semijoin/antijoin/nestjoin right
   operands) — the recursive optimizer for the real pass, the identity
   for the test hook.  Raises [Bail] on anything the enumerator cannot
   re-place: correlated predicates, whole-row predicate uses, leaves with
   unknown attributes, keyless or outer joins are simply leaves. *)
let gather ~sub cat (p0 : Plan.t) : region =
  let leaves = ref [] and conjs = ref [] and items = ref [] in
  let push r x = r := x :: !r in
  let push_conjs vars pred =
    List.iter
      (fun c ->
        if not (Expr.is_true c) then push conjs (mk_conj (normalize_binders vars c)))
      (Expr.conjuncts pred)
  in
  let norm_keys xvar yvar keys =
    List.map
      (fun (kx, ky) ->
        if not (S.subset (Analysis.free_vars ky) (S.singleton yvar)) then
          raise Bail;
        (normalize_binders [ xvar ] kx, ky))
      keys
  in
  let rec go p =
    match p with
    | Plan.Filter { var; pred; input } ->
      let rp = go input in
      push_conjs [ var ] pred;
      Plan.Filter { var; pred; input = rp }
    | Plan.JoinOp
        ({
           kind = Expr.Inner;
           xvar;
           yvar;
           keys = _ :: _ as keys;
           residual;
           left;
           right;
           _;
         } as j) ->
      let rl = go left in
      let rr = go right in
      List.iter
        (fun (kx, ky) ->
          push conjs
            (mk_conj
               (Expr.Cmp
                  ( Expr.Eq,
                    normalize_binders [ xvar ] kx,
                    normalize_binders [ yvar ] ky ))))
        keys;
      push_conjs [ xvar; yvar ] residual;
      Plan.JoinOp { j with left = rl; right = rr }
    | Plan.JoinOp
        {
          algo;
          kind = (Expr.Semi | Expr.Anti) as kind;
          xvar;
          yvar;
          keys = _ :: _ as keys;
          residual;
          left;
          right;
        } ->
      let rl = go left in
      let rr = sub right in
      let keys' = norm_keys xvar yvar keys in
      if not (S.subset (Analysis.free_vars residual) (S.of_list [ xvar; yvar ]))
      then raise Bail;
      let residual' = Analysis.subst1 xvar (Expr.Var canon) residual in
      let req =
        List.fold_left
          (fun acc (kx, _) -> S.union acc (req_of kx))
          (req_of residual') keys'
      in
      push items
        {
          u = Usemi { kind; algo; yvar; keys = keys'; residual = residual'; right = rr };
          u_req = req;
          u_prod = None;
        };
      Plan.JoinOp
        { algo; kind; xvar; yvar; keys; residual; left = rl; right = rr }
    | Plan.NestjoinOp
        { algo; xvar; yvar; keys = _ :: _ as keys; residual; body; attr; left; right }
      ->
      let rl = go left in
      let rr = sub right in
      let keys' = norm_keys xvar yvar keys in
      if not (S.subset (Analysis.free_vars residual) (S.of_list [ xvar; yvar ]))
      then raise Bail;
      if not (S.subset (Analysis.free_vars body) (S.of_list [ xvar; yvar ]))
      then raise Bail;
      let residual' = Analysis.subst1 xvar (Expr.Var canon) residual in
      let body' = Analysis.subst1 xvar (Expr.Var canon) body in
      let req =
        List.fold_left
          (fun acc (kx, _) -> S.union acc (req_of kx))
          (S.union (req_of residual') (req_of body'))
          keys'
      in
      push items
        {
          u =
            Unest
              {
                algo;
                yvar;
                keys = keys';
                residual = residual';
                body = body';
                attr;
                right = rr;
              };
          u_req = req;
          u_prod = Some attr;
        };
      Plan.NestjoinOp
        { algo; xvar; yvar; keys; residual; body; attr; left = rl; right = rr }
    | _ ->
      let lp = sub p in
      (match leaf_attrs cat lp with
      | Some attrs -> push leaves (lp, attrs)
      | None -> raise Bail);
      lp
  in
  let rp = go p0 in
  {
    leaves = Array.of_list (List.rev !leaves);
    conjs = Array.of_list (List.rev !conjs);
    items = Array.of_list (List.rev !items);
    ref_plan = rp;
  }

(* Semantic preconditions the enumerator needs: at least a 2-way join
   with one conjunct; attribute names disjoint across leaves (the paper's
   rename discipline — ρ on every reused extent — guarantees this in
   rewriter output); produced attributes fresh; every requirement
   satisfiable at the full subset; and each conjunct/edge anchored to at
   least one base attribute, which (with disjointness) pins it to exactly
   one position per tree. *)
let valid_region (r : region) : bool =
  let n = Array.length r.leaves in
  n >= 2
  && Array.length r.conjs > 0
  &&
  let base_union =
    Array.fold_left (fun acc (_, a) -> S.union acc a) S.empty r.leaves
  in
  let base_card =
    Array.fold_left (fun acc (_, a) -> acc + S.cardinal a) 0 r.leaves
  in
  S.cardinal base_union = base_card
  && Array.for_all
       (fun it ->
         match it.u_prod with
         | Some a -> not (S.mem a base_union)
         | None -> true)
       r.items
  && (let prods =
        Array.to_list r.items
        |> List.filter_map (fun it -> it.u_prod)
      in
      List.length prods = List.length (List.sort_uniq compare prods))
  &&
  let avail = mk_avail r in
  let full_av = avail ((1 lsl n) - 1) in
  Array.for_all
    (fun c -> (not (S.is_empty c.c_req)) && S.subset c.c_req full_av)
    r.conjs
  && Array.for_all
       (fun it ->
         S.subset it.u_req full_av
         && not (S.is_empty (S.inter it.u_req base_union)))
       r.items

let rec transform (ctx : ctx) (p : Plan.t) : Plan.t =
  if region_root p then
    match try_region ctx p with Some p' -> p' | None -> descend ctx p
  else descend ctx p

and descend ctx p =
  match Plan.children p with
  | [] -> p
  | kids -> Plan.with_children p (List.map (transform ctx) kids)

and try_region ctx p0 =
  match (try Some (gather ~sub:(transform ctx) ctx.cat p0) with Bail -> None) with
  | None -> None
  | Some r ->
    if not (valid_region r) then None
    else
      let rcost = shared_cost ctx r.ref_plan in
      let rfp = Plan.fingerprint r.ref_plan in
      let record ~chosen ~ccost ~considered ~pruned ~hoisted =
        let cfp = Plan.fingerprint chosen in
        last_report :=
          !last_report
          @ [
              {
                relations =
                  Array.to_list r.leaves |> List.map (fun (p, _) -> leaf_label p);
                considered;
                pruned;
                chosen_cost = ccost;
                rewriter_cost = rcost;
                reordered = not (String.equal cfp rfp);
                hoisted;
                chosen_fingerprint = cfp;
                rewriter_fingerprint = rfp;
              };
            ]
      in
      (match (try enumerate ctx r with Bail -> None) with
      | None ->
        record ~chosen:r.ref_plan ~ccost:rcost ~considered:0 ~pruned:0
          ~hoisted:0;
        Some r.ref_plan
      | Some (cand, _, considered, pruned) ->
        let cand, hoisted = place_selections ctx cand in
        let ccost = shared_cost ctx cand in
        (* Strictly-cheaper adoption: ties keep the rewriter's plan, so
           estimation noise never churns existing fingerprints. *)
        let chosen, ccost, hoisted =
          if ccost < rcost then (cand, ccost, hoisted) else (r.ref_plan, rcost, 0)
        in
        record ~chosen ~ccost ~considered ~pruned ~hoisted;
        Some chosen)

let optimize ?stats (cat : Catalog.t) (p : Plan.t) : Plan.t =
  last_report := [];
  if not !use_joinorder then p
  else transform { cat; stats; shared_fps = !shared } p

(* ------------------------------------------------------------------ *)
(* Exhaustive order enumeration (differential-test hook).               *)
(* ------------------------------------------------------------------ *)

let orders ?(limit = 64) ?stats (cat : Catalog.t) (p : Plan.t) : Plan.t list =
  let rec find p =
    if region_root p then Some p else List.find_map find (Plan.children p)
  in
  match find p with
  | None -> []
  | Some root -> (
    match (try Some (gather ~sub:(fun q -> q) cat root) with Bail -> None) with
    | None -> []
    | Some r ->
      let n = Array.length r.leaves in
      if (not (valid_region r)) || n > 8 then []
      else begin
        ignore stats;
        let avail = mk_avail r in
        let memo = Hashtbl.create 64 in
        let rec plans mask =
          match Hashtbl.find_opt memo mask with
          | Some l -> l
          | None ->
            let res =
              if popcount mask = 1 then begin
                let i = ref 0 in
                while 1 lsl !i <> mask do
                  incr i
                done;
                match leaf_build r ~avail !i with
                | p -> [ p ]
                | exception Bail -> []
              end
              else begin
                let acc = ref [] in
                let sub = ref ((mask - 1) land mask) in
                while !sub > 0 do
                  let m1 = !sub and m2 = mask lxor !sub in
                  if List.length !acc < limit then
                    List.iter
                      (fun p1 ->
                        List.iter
                          (fun p2 ->
                            if List.length !acc < limit then
                              acc :=
                                candidates r ~avail ~m1 ~m2 p1 p2 @ !acc)
                          (plans m2))
                      (plans m1);
                  sub := (!sub - 1) land mask
                done;
                !acc
              end
            in
            Hashtbl.add memo mask res;
            res
        in
        let seen = Hashtbl.create 64 in
        List.filter
          (fun p ->
            let fp = Plan.fingerprint p in
            if Hashtbl.mem seen fp then false
            else begin
              Hashtbl.add seen fp ();
              true
            end)
          (plans ((1 lsl n) - 1))
      end)
