(* Concurrent prepared-query serving with set-oriented parameter batching.

   A prepared handle keeps a parameterized template (explicit ?0 ?1 ...
   placeholders) plus the closure that turns template text into an ADL
   expression.  Plans are always resolved through the plan cache, so the
   handle survives catalog epoch bumps by re-deriving lazily, and two
   cache entries exist per handle:

   - the one-at-a-time plan: derived from the template itself, still
     containing [Expr.Param] leaves; each invocation binds its constants
     with [Plan.map_exprs] (a pure tree rebuild) and executes.

   - the batched plan: derived from
       map[w : (__cid = w.__cid, __rows = body[?i := w.__pi])](@params)
     over the handle's parameter table.  That correlated map is exactly
     the nested-loop shape the Section 4 strategy knows how to unnest:
     the rewriter turns the per-parameter-row subquery into joins and
     nestjoins against the parameter table, so the work shared by the K
     merged invocations (base-table scans, hash builds) is paid once.
     This is the paper's nested-loop → join move applied one level up —
     to the stream of invocations instead of the query body.

   The parameter table is registered once at [prepare] (one epoch bump,
   empty extent).  Per-batch parameter rows are spliced into the cached
   plan as a [Plan.Materialized] leaf via [Plan.map_scans]; the catalog
   itself is never touched while serving, so the epoch — and with it
   every cached plan of every handle — stays stable under load.

   The driver ([run]) keeps execution on the calling (main) domain so the
   executor's domain pool and the plan cache keep their main-domain
   contracts; client domains only build parameter vectors and block on
   the admission queue. *)

open Njq_adl
module M = Njq_obs.Metrics
module B = Njq_core.Batchrw

let c_request = M.counter "serve_request"
let c_batch = M.counter "serve_batch"
let h_queue = M.histogram "serve_queue_ns"
let h_service = M.histogram "serve_service_ns"
let h_batch = M.histogram "serve_batch_size"

type prepared = {
  cat : Catalog.t;
  text : string;  (* normalized template, placeholders as ?0 ?1 ... *)
  options : string;
  nparams : int;
  params_table : string;  (* registered at prepare; extent stays empty *)
  translate : string -> Expr.t;
}

let next_table = ref 0

let prepare cat ?(options = "") ~translate text =
  let text = Plancache.normalize text in
  (* Translate eagerly: a bad template must fail at prepare, not at the
     first invocation — and the parameter count comes from the tree. *)
  let expr = translate text in
  let nparams = B.param_count expr in
  incr next_table;
  let params_table = Printf.sprintf "__serve_params_%d" !next_table in
  Catalog.add_table cat ~name:params_table ~row_type:(B.row_type ~nparams) [];
  { cat; text; options; nparams; params_table; translate }

let text h = h.text
let nparams h = h.nparams

let derive_pipeline h text =
  Planner.plan ~cat:h.cat (Njq_core.Strategy.optimize h.cat (h.translate text))

(* The parameterized one-at-a-time plan, through the cache (re-derives
   after any catalog epoch bump). *)
let plan_one h =
  Plancache.find_or_derive_report h.cat ~options:(h.options ^ ";serve")
    h.text
    ~derive:(fun text -> derive_pipeline h text)

(* The batched plan over the handle's parameter table, through the cache
   under its own options key. *)
let plan_batched h =
  Plancache.find_or_derive_report h.cat
    ~options:(h.options ^ ";serve-batch;" ^ h.params_table)
    h.text
    ~derive:(fun text ->
      let body = h.translate text in
      let batched =
        B.batched ~params_table:h.params_table ~nparams:h.nparams body
      in
      Planner.plan ~cat:h.cat (Njq_core.Strategy.optimize h.cat batched))

let fingerprint h = Plan.fingerprint (fst (plan_one h))

let check_arity h params =
  if List.length params <> h.nparams then
    invalid_arg
      (Printf.sprintf "Serve: %d parameters given, template %s takes %d"
         (List.length params) h.text h.nparams)

let bind_plan params plan =
  let map =
    List.mapi (fun i v -> (Expr.param_name i, Expr.Const v)) params
  in
  Plan.map_exprs (Analysis.subst map) plan

let exec_one h params =
  check_arity h params;
  let plan, hit = plan_one h in
  (Exec.run h.cat (bind_plan params plan), hit)

let exec_batch h param_vectors =
  List.iter (check_arity h) param_vectors;
  match param_vectors with
  | [] -> []
  | [ ps ] -> [ fst (exec_one h ps) ]
  | _ ->
    let plan, _ = plan_batched h in
    let rows = List.mapi (fun cid ps -> B.param_row ~cid ps) param_vectors in
    (* Splice this batch's parameter rows in place of the (empty)
       parameter-table scan — no catalog mutation, no epoch bump. *)
    let spliced =
      Plan.map_scans
        (fun name ->
          if String.equal name h.params_table then
            Some (Plan.Materialized rows)
          else None)
        plan
    in
    let result = Exec.run h.cat spliced in
    let by_cid = B.split result in
    List.mapi
      (fun cid _ ->
        match List.assoc_opt cid by_cid with
        | Some v -> v
        | None ->
          (* Map totality over distinct cids guarantees one tuple per
             parameter row; a hole means the rewrite dropped a row. *)
          failwith
            (Printf.sprintf "Serve.exec_batch: no result for cid %d" cid))
      param_vectors

(* ------------------------------------------------------------------ *)
(* In-process concurrent driver                                        *)
(* ------------------------------------------------------------------ *)

type reply = {
  client : int;
  seq : int;
  value : Value.t;
  queue_ns : int;
  service_ns : int;
  batch : int;
}

type req = {
  q_handle : prepared;
  q_params : Value.t list;
  q_client : int;
  q_seq : int;
  q_enq_ns : int;
  mutable q_reply : reply option;
}

let run ?(batching = true) ?(window = 64) ?(burst = 1) ~clients ~requests
    ~params () =
  if clients <= 0 || requests <= 0 then []
  else begin
    let window = max 1 window and burst = max 1 burst in
    let mu = Mutex.create () in
    let have_req = Condition.create () in
    let have_reply = Condition.create () in
    let queue : req Queue.t = Queue.create () in
    let all : req list ref = ref [] in
    (* Client: issue [requests] invocations in bursts, waiting for every
       reply of a burst before sending the next — at most [burst]
       outstanding requests per client. *)
    let client ci =
      let seq = ref 0 in
      while !seq < requests do
        let n = min burst (requests - !seq) in
        let reqs =
          List.init n (fun j ->
              let s = !seq + j in
              let h, ps = params ~client:ci ~seq:s in
              { q_handle = h; q_params = ps; q_client = ci; q_seq = s;
                q_enq_ns = Njq_obs.Clock.now_ns (); q_reply = None })
        in
        Mutex.lock mu;
        List.iter (fun r -> Queue.add r queue) reqs;
        all := List.rev_append reqs !all;
        Condition.signal have_req;
        List.iter
          (fun r ->
            while r.q_reply = None do
              Condition.wait have_reply mu
            done)
          reqs;
        Mutex.unlock mu;
        seq := !seq + n
      done
    in
    let doms = List.init clients (fun ci -> Domain.spawn (fun () -> client ci)) in
    (* Scheduler: drain up to [window] requests of the oldest request's
       handle per round (FIFO otherwise), execute them as one batch, and
       publish the replies. *)
    let total = clients * requests in
    let served = ref 0 in
    while !served < total do
      Mutex.lock mu;
      while Queue.is_empty queue do
        Condition.wait have_req mu
      done;
      let first = Queue.peek queue in
      let limit = if batching then window else 1 in
      let taken = ref [] in
      let ntaken = ref 0 in
      let kept = Queue.create () in
      while not (Queue.is_empty queue) do
        let r = Queue.pop queue in
        if !ntaken < limit && r.q_handle == first.q_handle then begin
          taken := r :: !taken;
          incr ntaken
        end
        else Queue.add r kept
      done;
      Queue.transfer kept queue;
      Mutex.unlock mu;
      let batch = List.rev !taken in
      let k = !ntaken in
      let t0 = Njq_obs.Clock.now_ns () in
      let waits = List.map (fun r -> max 0 (t0 - r.q_enq_ns)) batch in
      let values = exec_batch first.q_handle (List.map (fun r -> r.q_params) batch) in
      let service_ns = Njq_obs.Clock.elapsed_ns t0 in
      M.incr ~n:k c_request;
      M.incr c_batch;
      M.observe h_batch k;
      M.observe ~n:k h_service service_ns;
      List.iter (fun w -> M.observe h_queue w) waits;
      Mutex.lock mu;
      List.iter2
        (fun r (w, v) ->
          r.q_reply <-
            Some
              { client = r.q_client; seq = r.q_seq; value = v; queue_ns = w;
                service_ns; batch = k })
        batch
        (List.combine waits values);
      served := !served + k;
      Condition.broadcast have_reply;
      Mutex.unlock mu
    done;
    List.iter Domain.join doms;
    !all
    |> List.filter_map (fun r -> r.q_reply)
    |> List.sort (fun a b ->
           match compare a.client b.client with
           | 0 -> compare a.seq b.seq
           | c -> c)
  end
