(** Table statistics: per-attribute distinct counts (NDV) and integer value
    bounds, computed by scanning each extent once.  Consumed by the cost
    model ({!Cost}) for equality and join-key selectivities. *)

open Njq_adl

type column_stats = {
  ndv : int;  (** number of distinct values *)
  lo : int option;  (** minimum, for int/date/oid-valued attributes *)
  hi : int option;
}

type t

(** Scan every extent of the catalog and collect statistics in a single
    pass per table (all column accumulators updated per row); the pass
    also force-builds any unbuilt catalog indexes. *)
val analyze : Catalog.t -> t

(** Like {!analyze}, but memoized per catalog ({!Catalog.id}) and valid
    for one catalog epoch: any [add_table]/[set_rows]/[create_index]
    triggers a rescan on next use.  [~refresh:true] forces a rescan. *)
val cached : ?refresh:bool -> Catalog.t -> t

val column : t -> table:string -> attr:string -> column_stats option
val ndv : t -> table:string -> attr:string -> int option
val cardinality : t -> string -> int option

(** 1/NDV for an equality with a constant, when known. *)
val eq_selectivity : t -> table:string -> attr:string -> float option

(** The textbook [1 / max(NDV_l, NDV_r)] for an equi key. *)
val join_selectivity :
  t -> left_table:string -> left_attr:string -> right_table:string ->
  right_attr:string -> float option

val pp : Format.formatter -> t -> unit
