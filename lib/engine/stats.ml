(* Table statistics: per-attribute number of distinct values (NDV) and, for
   integer-like attributes, value bounds, computed by a full scan of each
   extent.  The cost model uses them to estimate equality selectivities
   instead of falling back to fixed constants. *)

open Njq_adl

type column_stats = {
  ndv : int; (* number of distinct values *)
  lo : int option; (* min, for int/date/oid-valued attributes *)
  hi : int option;
}

type t = {
  columns : (string * string, column_stats) Hashtbl.t;
      (* (table, attribute) -> stats *)
  cardinalities : (string, int) Hashtbl.t;
}

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let int_of_value = function
  | Value.VInt n | Value.VDate n | Value.VOid n -> Some n
  | _ -> None

(* Per-column accumulator for the single-pass scan: a distinct-value set
   plus running integer bounds. *)
type accum = {
  attr : string;
  seen : unit VTbl.t;
  mutable a_lo : int option;
  mutable a_hi : int option;
}

let analyze_table (t : t) name rows =
  match rows with
  | [] -> Hashtbl.replace t.cardinalities name 0
  | first :: _ ->
    let accums =
      Array.of_list
        (List.map
           (fun attr ->
             { attr; seen = VTbl.create 64; a_lo = None; a_hi = None })
           (Value.field_names first))
    in
    (* One pass over the rows updates every column's accumulator (the old
       shape re-walked the whole table once per attribute, materializing a
       value list each time). *)
    let card = ref 0 in
    List.iter
      (fun row ->
        incr card;
        Array.iter
          (fun acc ->
            let v = Value.field row acc.attr in
            if not (VTbl.mem acc.seen v) then VTbl.add acc.seen v ();
            match int_of_value v with
            | None -> ()
            | Some n ->
              (match acc.a_lo with
               | Some lo when lo <= n -> ()
               | _ -> acc.a_lo <- Some n);
              (match acc.a_hi with
               | Some hi when hi >= n -> ()
               | _ -> acc.a_hi <- Some n))
          accums)
      rows;
    Hashtbl.replace t.cardinalities name !card;
    Array.iter
      (fun acc ->
        Hashtbl.replace t.columns (name, acc.attr)
          { ndv = VTbl.length acc.seen; lo = acc.a_lo; hi = acc.a_hi })
      accums

(* Scan every extent once and collect statistics.  The same maintenance
   pass force-builds any declared-but-unbuilt indexes over the extent, so
   a fresh catalog pays one combined warm-up instead of two. *)
let analyze (cat : Catalog.t) : t =
  let t = { columns = Hashtbl.create 64; cardinalities = Hashtbl.create 16 } in
  List.iter
    (fun name ->
      analyze_table t name (Catalog.rows cat name);
      Catalog.build_indexes cat name)
    (Catalog.table_names cat);
  t

(* Statistics cache, one slot per catalog (keyed by Catalog.id), valid for
   a single catalog epoch: any table/index/data change invalidates. *)
let cache : (int, int * t) Hashtbl.t = Hashtbl.create 8

let cached ?(refresh = false) (cat : Catalog.t) : t =
  let key = Catalog.id cat in
  let ep = Catalog.epoch cat in
  match Hashtbl.find_opt cache key with
  | Some (cached_ep, stats) when cached_ep = ep && not refresh -> stats
  | _ ->
    let stats = analyze cat in
    Hashtbl.replace cache key (ep, stats);
    stats

let column t ~table ~attr = Hashtbl.find_opt t.columns (table, attr)

let ndv t ~table ~attr =
  Option.map (fun c -> c.ndv) (column t ~table ~attr)

let cardinality t table = Hashtbl.find_opt t.cardinalities table

(* Selectivity of an equality with a constant on the named column: 1/NDV
   when known. *)
let eq_selectivity t ~table ~attr =
  match ndv t ~table ~attr with
  | Some n when n > 0 -> Some (1.0 /. float_of_int n)
  | _ -> None

(* Join-key selectivity for an equi key between two columns: the textbook
   1 / max(NDV_left, NDV_right). *)
let join_selectivity t ~left_table ~left_attr ~right_table ~right_attr =
  match
    (ndv t ~table:left_table ~attr:left_attr,
     ndv t ~table:right_table ~attr:right_attr)
  with
  | Some a, Some b when a > 0 && b > 0 -> Some (1.0 /. float_of_int (max a b))
  | _ -> None

let pp ppf (t : t) =
  let entries =
    Hashtbl.fold (fun (tbl, attr) c acc -> ((tbl, attr), c) :: acc) t.columns []
    |> List.sort compare
  in
  List.iter
    (fun ((tbl, attr), c) ->
      Fmt.pf ppf "%s.%s: ndv=%d%a@." tbl attr c.ndv
        (fun ppf -> function
          | Some lo, Some hi -> Fmt.pf ppf " range=[%d,%d]" lo hi
          | _ -> ())
        (c.lo, c.hi))
    entries
