(* Column batches with selection vectors for the push-based executor.

   The row-at-a-time pipelines of [Exec.push_node] pay per-row taxes that
   have nothing to do with the query: a boxed [Value.VBool] per compiled
   predicate evaluation, a [List.sort] inside [Value.tuple] per mapped row,
   an assoc scan per projected attribute.  A batch amortizes those taxes
   over N rows:

   - the physical rows stay [Value.t] (the reference semantics — batches
     materialize back to plain rows at pipeline breakers and the root);
   - a batch is a window [off, off+len) into a shared row array (scans cut
     batches out of the catalog's cached row array with no per-row
     allocation at all);
   - filters do not copy survivors: they mark them in a *selection vector*
     of physical indices, which only ever shrinks as a batch flows through
     consecutive filters;
   - predicate leaves of the form [row.attr CMP const] ([Compile.vpred])
     run over a decoded *typed column*: int/oid/date and float attributes
     decode into [Bigarray] buffers whose payload lives outside the OCaml
     minor heap, genuinely mixed attributes fall back to a boxed column,
     and each comparison produces an unboxed [bool] — no [VBool] per row.

   Decoding is per batch and failure-safe: if extracting an attribute
   raises (missing field, non-tuple row), the kernel falls back to per-row
   evaluation so the exception surfaces on exactly the row where the
   row-at-a-time executor would raise it.  Comparisons themselves are pure
   ([Value.compare] is total), so a successful decode cannot change
   results, only their cost. *)

open Njq_adl

(* ------------------------------------------------------------------ *)
(* Batch size                                                          *)
(* ------------------------------------------------------------------ *)

let default_size = 256

(* Rows per batch.  256 is the measured sweet spot of the b15 sweep
   (64/256/1024, see EXPERIMENTS.md); [NJQ_BATCH] and [--batch-size]
   override it. *)
let size =
  ref
    (match Sys.getenv_opt "NJQ_BATCH" with
     | Some s ->
       (try max 1 (int_of_string (String.trim s)) with _ -> default_size)
     | None -> default_size)

let set_size n = size := max 1 n

(* ------------------------------------------------------------------ *)
(* The batch record                                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  rows : Value.t array;  (* physical rows; shared, never mutated *)
  off : int;
  len : int;
  mutable sel : int array;
      (* selection vector: strictly increasing physical indices into
         [rows]; meaningful prefix is [0, nsel) *)
  mutable nsel : int;  (* -1: no selection yet, all of [off, off+len) live *)
}

let view rows ~off ~len = { rows; off; len; sel = [||]; nsel = -1 }
let of_array rows = view rows ~off:0 ~len:(Array.length rows)
let live b = if b.nsel < 0 then b.len else b.nsel

(* Row at live position [j] (0-based over the current survivors). *)
let get b j =
  if b.nsel < 0 then b.rows.(b.off + j) else b.rows.(b.sel.(j))

let iter f b =
  if b.nsel < 0 then
    for i = b.off to b.off + b.len - 1 do
      f b.rows.(i)
    done
  else
    for j = 0 to b.nsel - 1 do
      f b.rows.(b.sel.(j))
    done

(* [keep b f] filters the batch in place: [f j] decides the fate of live
   position [j].  The first filter allocates the selection vector; later
   filters compact it in place (reads run ahead of writes), so selections
   only ever shrink — the monotonicity invariant consumers rely on. *)
let keep b f =
  if b.nsel < 0 then begin
    let sel = Array.make (max 1 b.len) 0 in
    let n = ref 0 in
    for j = 0 to b.len - 1 do
      if f j then begin
        sel.(!n) <- b.off + j;
        incr n
      end
    done;
    b.sel <- sel;
    b.nsel <- !n
  end
  else begin
    let n = ref 0 in
    for j = 0 to b.nsel - 1 do
      if f j then begin
        b.sel.(!n) <- b.sel.(j);
        incr n
      end
    done;
    b.nsel <- !n
  end

let keep_rows b f = keep b (fun j -> f (get b j))

(* ------------------------------------------------------------------ *)
(* Typed columns                                                       *)
(* ------------------------------------------------------------------ *)

type int_col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_col =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* A decoded attribute over the batch's live rows (dense: position [j] is
   live position [j]).  Int-like atoms share the int representation but
   keep their constructor tag in the variant; a [Bigarray] payload lives
   outside the OCaml heap, so a decoded column costs a constant few minor
   words regardless of row count.  [CBox] is the boxed tag column for
   genuinely mixed attributes. *)
type col =
  | CInt of int_col
  | CFloat of float_col
  | COid of int_col
  | CDate of int_col
  | CBox of Value.t array

exception Mixed

(* Decode attribute [attr] over the live rows, choosing the representation
   from the first row and demoting to [CBox] when a later row deviates.
   [None] when extraction itself fails anywhere — the caller must then
   evaluate per row so the error surfaces on the right row. *)
let column b attr =
  let n = live b in
  if n = 0 then Some (CBox [||])
  else
    match Value.field (get b 0) attr with
    | exception Value.Type_error _ -> None
    | v0 ->
      (try
         let box () = CBox (Array.init n (fun j -> Value.field (get b j) attr)) in
         match v0 with
         | Value.VInt _ | Value.VOid _ | Value.VDate _ ->
           let arr = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
           (try
              for j = 0 to n - 1 do
                arr.{j} <-
                  (match v0, Value.field (get b j) attr with
                   | Value.VInt _, Value.VInt x
                   | Value.VOid _, Value.VOid x
                   | Value.VDate _, Value.VDate x ->
                     x
                   | _ -> raise Mixed)
              done;
              Some
                (match v0 with
                 | Value.VInt _ -> CInt arr
                 | Value.VOid _ -> COid arr
                 | _ -> CDate arr)
            with Mixed -> Some (box ()))
         | Value.VFloat _ ->
           let arr =
             Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
           in
           (try
              for j = 0 to n - 1 do
                arr.{j} <-
                  (match Value.field (get b j) attr with
                   | Value.VFloat x -> x
                   | _ -> raise Mixed)
              done;
              Some (CFloat arr)
            with Mixed -> Some (box ()))
         | _ -> Some (box ())
       with Value.Type_error _ -> None)

(* ------------------------------------------------------------------ *)
(* Predicate kernels                                                   *)
(* ------------------------------------------------------------------ *)

let test_int (op : Expr.cmp) (a : int) b =
  match op with
  | Expr.Eq -> a = b
  | Expr.Neq -> a <> b
  | Expr.Lt -> a < b
  | Expr.Le -> a <= b
  | Expr.Gt -> a > b
  | Expr.Ge -> a >= b

let test_ord (op : Expr.cmp) c =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Neq -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

(* Compile a vectorizable predicate against one batch: columns referenced
   by comparison leaves decode once per batch, And/Or/Not short-circuit per
   row exactly like the compiled row closures ([And]'s right side runs only
   when the left holds, [Or]'s only when the left fails).  A leaf whose
   column and constant have different shapes is constant — [Value.compare]
   across constructors is a rank comparison — so the whole batch answers
   with one precomputed bool. *)
let rec kernel b (vp : Compile.vpred) : int -> bool =
  match vp with
  | Compile.VpTrue -> fun _ -> true
  | Compile.VpFalse -> fun _ -> false
  | Compile.VpNot p ->
    let k = kernel b p in
    fun j -> not (k j)
  | Compile.VpAnd (p, q) ->
    let kp = kernel b p and kq = kernel b q in
    fun j -> kp j && kq j
  | Compile.VpOr (p, q) ->
    let kp = kernel b p and kq = kernel b q in
    fun j -> kp j || kq j
  | Compile.VpOpaque f -> fun j -> f (get b j)
  | Compile.VpCmp (op, attr, c) ->
    (match column b attr with
     | None ->
       (* Extraction fails somewhere: evaluate per row so the error
          surfaces on exactly the row the row-at-a-time path raises on. *)
       fun j -> Eval.eval_cmp op (Value.field (get b j) attr) c
     | Some (CInt arr) ->
       (match c with
        | Value.VInt k -> fun j -> test_int op arr.{j} k
        | _ ->
          let ans = Eval.eval_cmp op (Value.VInt 0) c in
          fun _ -> ans)
     | Some (COid arr) ->
       (match c with
        | Value.VOid k -> fun j -> test_int op arr.{j} k
        | _ ->
          let ans = Eval.eval_cmp op (Value.VOid 0) c in
          fun _ -> ans)
     | Some (CDate arr) ->
       (match c with
        | Value.VDate k -> fun j -> test_int op arr.{j} k
        | _ ->
          let ans = Eval.eval_cmp op (Value.VDate 0) c in
          fun _ -> ans)
     | Some (CFloat arr) ->
       (match c with
        | Value.VFloat k -> fun j -> test_ord op (Float.compare arr.{j} k)
        | _ ->
          let ans = Eval.eval_cmp op (Value.VFloat 0.) c in
          fun _ -> ans)
     | Some (CBox arr) -> fun j -> Eval.eval_cmp op arr.(j) c)

let keep_vpred vp b = keep b (kernel b vp)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

(* Accumulate produced rows into owned batches of (up to) [!size] rows,
   emitting each batch as it fills; [flush] emits the tail.  The buffer is
   handed off whole inside the emitted batch (consumers may retain it), so
   a fresh one is allocated per emitted batch — amortized one word per
   produced row. *)
type builder = {
  emit : t -> unit;
  mutable buf : Value.t array;  (* [||] = nothing buffered yet *)
  mutable n : int;
}

let builder emit = { emit; buf = [||]; n = 0 }

let add bld v =
  let cap = Array.length bld.buf in
  if bld.n = cap then
    if cap = 0 then bld.buf <- Array.make (max 1 !size) v
    else begin
      bld.emit { rows = bld.buf; off = 0; len = cap; sel = [||]; nsel = -1 };
      bld.buf <- Array.make cap v;
      bld.n <- 0
    end;
  bld.buf.(bld.n) <- v;
  bld.n <- bld.n + 1

let flush bld =
  if bld.n > 0 then begin
    bld.emit { rows = bld.buf; off = 0; len = bld.n; sel = [||]; nsel = -1 };
    bld.buf <- [||];
    bld.n <- 0
  end

(* ------------------------------------------------------------------ *)
(* Pre-sized row vector (the root materialization sink)                *)
(* ------------------------------------------------------------------ *)

(* A growable row vector for [Exec.gather]: pre-sized from the planner's
   cardinality estimate, filled in order, converted to a list once — no
   cons-then-reverse double pass over the result. *)
module Vec = struct
  type t = { mutable arr : Value.t array; mutable n : int }

  let create hint = { arr = Array.make (max 16 hint) Value.VNull; n = 0 }

  let push v x =
    let cap = Array.length v.arr in
    if v.n = cap then begin
      let arr = Array.make (2 * cap) Value.VNull in
      Array.blit v.arr 0 arr 0 cap;
      v.arr <- arr
    end;
    v.arr.(v.n) <- x;
    v.n <- v.n + 1

  let push_batch v b = iter (push v) b

  let to_list v =
    let rec go i acc = if i < 0 then acc else go (i - 1) (v.arr.(i) :: acc) in
    go (v.n - 1) []
end
