(** Compact binary codec for {!Njq_adl.Value.t} rows: length-prefixed
    records with varint ints and per-stream string interning.  Backs the
    executor's spill files (Grace/PNHL partitions, external-sort runs) and
    the NJQC binary catalog format.

    Streams are stateful in both directions (the intern pool grows as
    records are written); records must be decoded in encode order within
    one stream. *)

open Njq_adl

(** Malformed or truncated input. *)
exception Corrupt of string

(** {1 Record codec} *)

type encoder

(** Fresh encoder with an empty intern pool. *)
val encoder : unit -> encoder

(** Append one length-prefixed record to the buffer; returns the number of
    bytes appended (length prefix included). *)
val encode_record : encoder -> Buffer.t -> Value.t -> int

type decoder

(** Decoder over [data.[pos .. limit)] (defaults: the whole string) with an
    empty intern pool. *)
val decoder : ?pos:int -> ?limit:int -> string -> decoder

(** Next record, or [None] cleanly at the stream limit.  Raises {!Corrupt}
    on a torn record. *)
val decode_record : decoder -> Value.t option

(** {1 Spill files}

    Temp files of records under [NJQ_TMPDIR] (default: the system temp
    directory).  Every live spill file is tracked in a registry swept by an
    [at_exit] hook, so exceptions or a killed process leave no orphans;
    operators additionally {!spill_remove} their files as soon as a
    partition has been consumed. *)

type spill

(** Directory spill files are created in. *)
val temp_dir : unit -> string

(** Create an empty spill file open for writing. *)
val spill_create : ?prefix:string -> unit -> spill

(** Append one row; returns the encoded size in bytes.  Raises
    [Invalid_argument] after the spill has been read back. *)
val spill_add : spill -> Value.t -> int

val spill_path : spill -> string

(** Rows written so far. *)
val spill_rows : spill -> int

(** Bytes written so far (record length prefixes included). *)
val spill_bytes : spill -> int

(** Seal the writer and stream the rows back in write order. *)
val spill_decoder : spill -> decoder

(** Seal the writer and read all rows back, in write order. *)
val spill_read : spill -> Value.t list

(** Seal, unlink and unregister; idempotent, ignores a missing file. *)
val spill_remove : spill -> unit

(** Spill files currently registered (for hygiene tests). *)
val live_spills : unit -> int

(** {1 NJQC binary catalog format}

    ["NJQC1"] magic, uvarint oid counter and table count, then per table a
    header entry (name, row type string, row count, section byte length)
    followed by the rows as records with a per-table intern pool — the
    section lengths let a reader locate one table without decoding the
    others.  Loading registers itself as {!Njq_adl.Catalog.load_binary}. *)

val njqc_magic : string

(** Does the file start with the NJQC magic?  [false] on unreadable or
    short files. *)
val is_njqc : string -> bool

val save_catalog : Catalog.t -> string -> unit

(** Raises {!Corrupt} on malformed input. *)
val load_catalog : string -> Catalog.t
