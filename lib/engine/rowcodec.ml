(* Compact binary codec for [Value.t] rows, the engine's physical wire
   format.  Two consumers share it:

   - spill files: when an operator's build side exceeds the memory budget
     ({!Memory.budget}), Grace/PNHL partitions and external-sort runs are
     written as streams of length-prefixed records to temp files and read
     back one resident partition at a time;
   - the NJQC binary catalog format ({!save_catalog}/{!load_catalog}),
     replacing textual parsing on server cold-start.

   Record layout: every record is [uvarint byte-length][payload].  Payload
   values are tagged (one byte) and recursive:

     0 null | 1 false | 2 true | 3 int (zigzag uvarint)
     4 float (8 bytes, IEEE 754 bits, little-endian)
     5 string definition (uvarint length + bytes, assigns the next intern
       id) | 6 string back-reference (uvarint intern id)
     7 date (zigzag uvarint) | 8 oid (zigzag uvarint)
     9 tuple (uvarint field count, then per field: string + value)
     10 set (uvarint element count, then values)

   Strings — including tuple field names, which repeat on every row — are
   interned per stream: the first occurrence is written inline (tag 5) and
   assigns the next id, later occurrences are a one-or-two-byte reference
   (tag 6).  Decoding therefore must consume records strictly in encode
   order within one stream; the NJQC format keeps one intern pool per
   table section so a reader can skip whole tables (the section length is
   in the header) without losing sync.

   The decoder trusts its input to be canonical (it was produced from
   canonical values by this module): tuples are rebuilt with the unchecked
   [Value.of_sorted_fields], sets through [Value.set].  Corrupt or
   truncated input raises {!Corrupt}. *)

open Njq_adl

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* Varints                                                             *)
(* ------------------------------------------------------------------ *)

(* LEB128 over the full native-int bit pattern: [lsr] makes the loop total
   for negative inputs (at most 9 groups of 7 bits for 63-bit ints). *)
let rec add_uvarint buf n =
  let rest = n lsr 7 in
  if rest = 0 then Buffer.add_char buf (Char.unsafe_chr (n land 0x7f))
  else begin
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (n land 0x7f)));
    add_uvarint buf rest
  end

(* Zigzag maps small-magnitude signed ints to small unsigned ones so they
   varint-encode short: 0,-1,1,-2,... -> 0,1,2,3,...  [asr 62] is the sign
   fill for OCaml's 63-bit native ints. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)
(* ------------------------------------------------------------------ *)

type encoder = {
  scratch : Buffer.t;  (* one record's payload, reused across records *)
  intern : (string, int) Hashtbl.t;
  mutable next_id : int;
}

let encoder () =
  { scratch = Buffer.create 256; intern = Hashtbl.create 64; next_id = 0 }

let enc_string enc buf s =
  match Hashtbl.find_opt enc.intern s with
  | Some id ->
    Buffer.add_char buf '\006';
    add_uvarint buf id
  | None ->
    Hashtbl.add enc.intern s enc.next_id;
    enc.next_id <- enc.next_id + 1;
    Buffer.add_char buf '\005';
    add_uvarint buf (String.length s);
    Buffer.add_string buf s

let rec enc_value enc buf v =
  match v with
  | Value.VNull -> Buffer.add_char buf '\000'
  | Value.VBool false -> Buffer.add_char buf '\001'
  | Value.VBool true -> Buffer.add_char buf '\002'
  | Value.VInt n ->
    Buffer.add_char buf '\003';
    add_uvarint buf (zigzag n)
  | Value.VFloat f ->
    Buffer.add_char buf '\004';
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.VString s -> enc_string enc buf s
  | Value.VDate d ->
    Buffer.add_char buf '\007';
    add_uvarint buf (zigzag d)
  | Value.VOid o ->
    Buffer.add_char buf '\b';
    add_uvarint buf (zigzag o)
  | Value.VTuple fields ->
    Buffer.add_char buf '\t';
    add_uvarint buf (List.length fields);
    List.iter
      (fun (name, fv) ->
        enc_string enc buf name;
        enc_value enc buf fv)
      fields
  | Value.VSet elems ->
    Buffer.add_char buf '\n';
    add_uvarint buf (List.length elems);
    List.iter (enc_value enc buf) elems

(* Append one length-prefixed record to [out]; returns the bytes appended
   (prefix + payload), which is what the spill_bytes counter charges. *)
let encode_record enc out v =
  Buffer.clear enc.scratch;
  enc_value enc enc.scratch v;
  let before = Buffer.length out in
  add_uvarint out (Buffer.length enc.scratch);
  Buffer.add_buffer out enc.scratch;
  Buffer.length out - before

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)
(* ------------------------------------------------------------------ *)

type decoder = {
  data : string;
  mutable pos : int;
  limit : int;  (* exclusive; decoding stops here, not at end of data *)
  mutable strings : string array;  (* intern pool, id -> string *)
  mutable nstrings : int;
}

let decoder ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  if pos < 0 || limit > String.length data || pos > limit then
    corrupt "decoder bounds [%d, %d) outside data of length %d" pos limit
      (String.length data);
  { data; pos; limit; strings = Array.make 16 ""; nstrings = 0 }

let byte dec =
  if dec.pos >= dec.limit then corrupt "truncated record at byte %d" dec.pos;
  let b = Char.code (String.unsafe_get dec.data dec.pos) in
  dec.pos <- dec.pos + 1;
  b

let read_uvarint dec =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow at byte %d" dec.pos;
    let b = byte dec in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_bytes dec n =
  if n < 0 || dec.pos + n > dec.limit then
    corrupt "truncated: %d bytes wanted at byte %d" n dec.pos;
  let s = String.sub dec.data dec.pos n in
  dec.pos <- dec.pos + n;
  s

let register_string dec s =
  if dec.nstrings = Array.length dec.strings then begin
    let bigger = Array.make (2 * dec.nstrings) "" in
    Array.blit dec.strings 0 bigger 0 dec.nstrings;
    dec.strings <- bigger
  end;
  dec.strings.(dec.nstrings) <- s;
  dec.nstrings <- dec.nstrings + 1

let dec_string_tagged dec tag =
  match tag with
  | 5 ->
    let s = read_bytes dec (read_uvarint dec) in
    register_string dec s;
    s
  | 6 ->
    let id = read_uvarint dec in
    if id >= dec.nstrings then
      corrupt "string back-reference %d before definition" id;
    dec.strings.(id)
  | t -> corrupt "tag %d where a string was expected" t

let rec dec_value dec =
  match byte dec with
  | 0 -> Value.VNull
  | 1 -> Value.VBool false
  | 2 -> Value.VBool true
  | 3 -> Value.VInt (unzigzag (read_uvarint dec))
  | 4 ->
    if dec.pos + 8 > dec.limit then corrupt "truncated float at byte %d" dec.pos;
    let bits = String.get_int64_le dec.data dec.pos in
    dec.pos <- dec.pos + 8;
    Value.VFloat (Int64.float_of_bits bits)
  | (5 | 6) as tag -> Value.VString (dec_string_tagged dec tag)
  | 7 -> Value.VDate (unzigzag (read_uvarint dec))
  | 8 -> Value.VOid (unzigzag (read_uvarint dec))
  | 9 ->
    let n = read_uvarint dec in
    let rec fields i acc =
      if i = n then List.rev acc
      else begin
        let name = dec_string_tagged dec (byte dec) in
        let v = dec_value dec in
        fields (i + 1) ((name, v) :: acc)
      end
    in
    (* Field order was canonical at encode time; skip the re-sort. *)
    Value.of_sorted_fields (fields 0 [])
  | 10 ->
    let n = read_uvarint dec in
    let rec elems i acc =
      if i = n then List.rev acc else elems (i + 1) (dec_value dec :: acc)
    in
    Value.set (elems 0 [])
  | t -> corrupt "unknown value tag %d at byte %d" t (dec.pos - 1)

(* [None] cleanly at the stream limit; {!Corrupt} on a torn record. *)
let decode_record dec =
  if dec.pos >= dec.limit then None
  else begin
    let len = read_uvarint dec in
    let stop = dec.pos + len in
    if stop > dec.limit then
      corrupt "record of %d bytes overruns stream at byte %d" len dec.pos;
    let v = dec_value dec in
    if dec.pos <> stop then
      corrupt "record length %d does not match decoded payload" len;
    Some v
  end

(* ------------------------------------------------------------------ *)
(* Spill files                                                         *)
(* ------------------------------------------------------------------ *)

(* Spill files live under NJQ_TMPDIR (default: the system temp directory)
   and are tracked in a registry so an [at_exit] sweep can unlink whatever
   a raised exception or killed process left behind; operators additionally
   remove their own files under [Fun.protect] as soon as a partition has
   been consumed.  The registry is mutex-guarded: parallel operators only
   read spill files from pool tasks, but creation/removal discipline should
   not depend on that staying true. *)

let temp_dir () =
  match Sys.getenv_opt "NJQ_TMPDIR" with
  | Some d when String.length d > 0 -> d
  | _ -> Filename.get_temp_dir_name ()

let live : (string, unit) Hashtbl.t = Hashtbl.create 16
let live_mu = Mutex.create ()

let with_registry f =
  Mutex.lock live_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock live_mu) f

let sweep () =
  let paths = with_registry (fun () -> Hashtbl.fold (fun p () acc -> p :: acc) live []) in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths

let sweep_registered = ref false

let register_path path =
  with_registry (fun () ->
      if not !sweep_registered then begin
        sweep_registered := true;
        at_exit sweep
      end;
      Hashtbl.replace live path ())

let unregister_path path = with_registry (fun () -> Hashtbl.remove live path)

let live_spills () = with_registry (fun () -> Hashtbl.length live)

type spill = {
  sp_path : string;
  mutable sp_oc : out_channel option;  (* open while writing; sealed on read *)
  sp_enc : encoder;
  sp_out : Buffer.t;  (* staging for one record's bytes *)
  mutable sp_rows : int;
  mutable sp_bytes : int;
}

let spill_create ?(prefix = "njq-spill") () =
  let path = Filename.temp_file ~temp_dir:(temp_dir ()) prefix ".rows" in
  register_path path;
  { sp_path = path;
    sp_oc = Some (open_out_bin path);
    sp_enc = encoder ();
    sp_out = Buffer.create 256;
    sp_rows = 0;
    sp_bytes = 0 }

let spill_path sp = sp.sp_path
let spill_rows sp = sp.sp_rows
let spill_bytes sp = sp.sp_bytes

let spill_add sp v =
  let oc =
    match sp.sp_oc with
    | Some oc -> oc
    | None -> invalid_arg "Rowcodec.spill_add: spill already sealed"
  in
  Buffer.clear sp.sp_out;
  let n = encode_record sp.sp_enc sp.sp_out v in
  Buffer.output_buffer oc sp.sp_out;
  sp.sp_rows <- sp.sp_rows + 1;
  sp.sp_bytes <- sp.sp_bytes + n;
  n

let seal sp =
  match sp.sp_oc with
  | Some oc ->
    close_out oc;
    sp.sp_oc <- None
  | None -> ()

(* Streaming read-back: the file's bytes are resident but rows decode on
   demand — the external sort merges K runs holding only K head values. *)
let spill_decoder sp =
  seal sp;
  let data = In_channel.with_open_bin sp.sp_path In_channel.input_all in
  decoder data

let spill_read sp =
  let dec = spill_decoder sp in
  let rec go acc =
    match decode_record dec with Some v -> go (v :: acc) | None -> List.rev acc
  in
  go []

let spill_remove sp =
  seal sp;
  unregister_path sp.sp_path;
  try Sys.remove sp.sp_path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* NJQC binary catalog format                                          *)
(* ------------------------------------------------------------------ *)

(* Layout:

     "NJQC1"                                  magic, 5 bytes
     uvarint next_oid
     uvarint table_count
     per table, in sorted name order:
       uvarint name_length   + name bytes
       uvarint type_length   + row type ([Serialize.type_to_string])
       uvarint row_count
       uvarint section_length
       section: row_count length-prefixed records, fresh intern pool

   The per-table section length makes the header mmap-friendly: a reader
   can locate and decode one table without touching the others' bytes
   (each section's intern pool is self-contained). *)

let njqc_magic = "NJQC1"

let is_njqc path =
  match
    In_channel.with_open_bin path (fun ic ->
        In_channel.really_input_string ic (String.length njqc_magic))
  with
  | Some m -> String.equal m njqc_magic
  | None -> false
  | exception Sys_error _ -> false

let save_catalog (cat : Catalog.t) path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf njqc_magic;
  (* Probe-and-store, like the textual format: the loaded catalog's oid
     counter resumes above every identifier this one handed out. *)
  add_uvarint buf (Catalog.fresh_oid cat);
  let names = Catalog.table_names cat in
  add_uvarint buf (List.length names);
  List.iter
    (fun name ->
      let t = Catalog.find cat name in
      let enc = encoder () in
      let section = Buffer.create 1024 in
      List.iter (fun row -> ignore (encode_record enc section row)) t.Catalog.rows;
      let ty = Serialize.type_to_string t.Catalog.row_type in
      add_uvarint buf (String.length name);
      Buffer.add_string buf name;
      add_uvarint buf (String.length ty);
      Buffer.add_string buf ty;
      add_uvarint buf (List.length t.Catalog.rows);
      add_uvarint buf (Buffer.length section);
      Buffer.add_buffer buf section)
    names;
  Out_channel.with_open_bin path (fun oc -> Buffer.output_buffer oc buf)

let load_catalog path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  let mlen = String.length njqc_magic in
  if String.length data < mlen || not (String.equal (String.sub data 0 mlen) njqc_magic)
  then corrupt "%s: not an NJQC file" path;
  let hd = decoder ~pos:mlen data in
  let next_oid = read_uvarint hd in
  let ntables = read_uvarint hd in
  let cat = Catalog.create () in
  for _ = 1 to ntables do
    let name = read_bytes hd (read_uvarint hd) in
    let row_type = Serialize.type_of_string (read_bytes hd (read_uvarint hd)) in
    let nrows = read_uvarint hd in
    let slen = read_uvarint hd in
    if hd.pos + slen > hd.limit then corrupt "%s: table %s overruns file" path name;
    let sec = decoder ~pos:hd.pos ~limit:(hd.pos + slen) data in
    let rows = ref [] in
    for _ = 1 to nrows do
      match decode_record sec with
      | Some v -> rows := v :: !rows
      | None -> corrupt "%s: table %s: fewer rows than header claims" path name
    done;
    hd.pos <- hd.pos + slen;
    Catalog.add_table cat ~name ~row_type (List.rev !rows)
  done;
  Catalog.ensure_oid_above cat next_oid;
  cat

(* Linked into every engine consumer (the executor's spill paths reference
   this module), so [Catalog.load_binary] is available wherever plans can
   run. *)
let () = Catalog.register_binary_loader load_catalog
