(** Prepared-query plan cache: an LRU over compiled physical plans keyed
    on normalized query text + catalog identity/epoch + an options string.
    A hit skips the whole derivation pipeline; the caller supplies it as
    the [derive] closure, so the engine never depends on the frontend.
    Catalog changes bump the epoch ({!Catalog.epoch}), making stale
    entries unaddressable — they age out through the LRU.  Process-global,
    main-domain only.  Hits/misses/evictions are the
    ["plancache_hit"/"plancache_miss"/"plancache_evict"] metrics. *)

open Njq_adl

(** Maximum number of cached plans (default 64); 0 disables caching. *)
val capacity : int ref

(** [find_or_derive cat ?options text ~derive] returns the cached plan for
    [(cat, epoch, options, normalize text)], or runs [derive], stores its
    result (evicting least-recently-used entries past {!capacity}) and
    returns it. *)
val find_or_derive :
  Catalog.t -> ?options:string -> string -> derive:(unit -> Plan.t) -> Plan.t

(** Like {!find_or_derive}, also reporting whether the plan came from the
    cache ([true] = hit) — the bit the query log records per event. *)
val find_or_derive_report :
  Catalog.t ->
  ?options:string ->
  string ->
  derive:(unit -> Plan.t) ->
  Plan.t * bool

(** Collapse whitespace runs and trim — the key normalization applied to
    query text. *)
val normalize : string -> string

val clear : unit -> unit
val size : unit -> int
val hits : unit -> int
val misses : unit -> int
val evictions : unit -> int
