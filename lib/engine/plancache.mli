(** Prepared-query plan cache: an LRU over compiled physical plans keyed
    on normalized query text + catalog identity/epoch + an options string.
    A hit skips the whole derivation pipeline; the caller supplies it as
    the [derive] closure, so the engine never depends on the frontend.
    Catalog changes bump the epoch ({!Catalog.epoch}), making stale
    entries unaddressable — they age out through the LRU.  Process-global,
    main-domain only.  Hits/misses/evictions are the
    ["plancache_hit"/"plancache_miss"/"plancache_evict"] metrics. *)

open Njq_adl

(** Maximum number of cached plans (default 64); 0 disables caching. *)
val capacity : int ref

(** Auto-parameterization master switch (default on): numeric literals in
    the query text are normalized into [?i] placeholders before keying, so
    queries differing only in constants share one prepared plan whose
    parameters are bound per call via {!Plan.map_exprs}.  Skipped for
    texts already containing ['?'] (explicit prepared templates), for
    catalogs with declared indexes (sargable planning needs the literal
    values), and for 6-/8-digit integer literals (date-shaped, coerced by
    the frontend at translation time).  Templating events tick the
    ["plancache_autoparam"] metric. *)
val auto_param : bool ref

(** [find_or_derive cat ?options text ~derive] returns the cached plan for
    [(cat, epoch, options, template of text)], or runs [derive], stores
    its result (evicting least-recently-used entries past {!capacity}) and
    returns it.  [derive] receives the text to derive from — the
    auto-parameterized template when templating fired, the normalized text
    otherwise — and must derive exactly that text. *)
val find_or_derive :
  Catalog.t -> ?options:string -> string -> derive:(string -> Plan.t) -> Plan.t

(** Like {!find_or_derive}, also reporting whether the plan came from the
    cache ([true] = hit) — the bit the query log records per event. *)
val find_or_derive_report :
  Catalog.t ->
  ?options:string ->
  string ->
  derive:(string -> Plan.t) ->
  Plan.t * bool

(** Collapse whitespace runs and trim — the key normalization applied to
    query text. *)
val normalize : string -> string

(** [parameterize text] is the template/constants split applied by
    auto-parameterization: numeric literals (minus the date-shaped
    exclusions) become [?i] placeholders, returned alongside the extracted
    values in placeholder order.  [(text, \[\])] when nothing extracts. *)
val parameterize : string -> string * Value.t list

val clear : unit -> unit
val size : unit -> int
val hits : unit -> int
val misses : unit -> int
val evictions : unit -> int
