(* Prepared-query plan cache: an LRU over compiled physical plans, keyed
   on the normalized query text, the catalog identity and epoch, and a
   caller-chosen options string.  A hit returns the stored plan without
   running any of the derivation pipeline (translate → rewrite → typecheck
   → plan) — the caller passes that pipeline as the [derive] closure, so
   this module needs no dependency on the frontend.

   Epoch participation makes invalidation free: any catalog change
   ([add_table]/[set_rows]/[create_index]) bumps the epoch, so stale
   entries simply stop being addressable and age out through the LRU.

   The cache is process-global and main-domain only (the CLI, REPL and
   bench all derive plans on the main domain); hits, misses and evictions
   are exported through [Njq_obs.Metrics]. *)

open Njq_adl
module M = Njq_obs.Metrics

let c_hit = M.counter "plancache_hit"
let c_miss = M.counter "plancache_miss"
let c_evict = M.counter "plancache_evict"
let c_autoparam = M.counter "plancache_autoparam"

(* Maximum number of cached plans; 0 disables caching entirely. *)
let capacity = ref 64

(* Auto-parameterization master switch (see [parameterize]). *)
let auto_param = ref true

type key = {
  cat_id : int;
  epoch : int;
  options : string; (* anything that changes derivation: mode, domains… *)
  text : string; (* normalized query text *)
}

type entry = { plan : Plan.t; mutable stamp : int (* recency *) }

let table : (key, entry) Hashtbl.t = Hashtbl.create 64
let tick = ref 0

(* Normalize query text so formatting differences don't split cache
   entries: collapse every whitespace run to one space and trim. *)
let normalize text =
  let buf = Buffer.create (String.length text) in
  let pending = ref false in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending := true
      | ch ->
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf ch)
    text;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Auto-parameterization                                               *)
(*                                                                     *)
(* Queries that differ only in numeric constants should share one      *)
(* prepared plan.  [parameterize] rewrites the normalized text into a  *)
(* template — numeric literals become ?0 ?1 ... placeholders — and     *)
(* collects the literal values.  The cache stores the template's       *)
(* (parameterized) plan; each call binds the collected constants back  *)
(* in with [Plan.map_exprs], a pure tree rebuild far cheaper than the  *)
(* derivation pipeline.                                                *)
(*                                                                     *)
(* Guards, all falling back to exact-text caching (today's behavior):  *)
(* - texts already containing '?' are explicit prepared templates;     *)
(* - catalogs with declared indexes keep literal constants so sargable *)
(*   index planning can see them;                                      *)
(* - 6- and 8-digit integer literals are left alone: the paper writes  *)
(*   dates as yymmdd/yyyymmdd integer literals and the frontend        *)
(*   coerces them against date-typed attributes at translation time,   *)
(*   which a type-less placeholder cannot reproduce.                   *)
(* ------------------------------------------------------------------ *)

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_' || is_digit ch

(* [parameterize text] returns the template and the extracted constants in
   placeholder order; [(text, [])] when nothing was extracted. *)
let parameterize (text : string) : string * Value.t list =
  let n = String.length text in
  let buf = Buffer.create n in
  let consts = ref [] in
  let emit v =
    let i = List.length !consts in
    consts := v :: !consts;
    Buffer.add_char buf '?';
    Buffer.add_string buf (string_of_int i)
  in
  let rec go i =
    if i < n then
      let ch = text.[i] in
      if ch = '"' then begin
        (* string literal: copy verbatim, honoring escapes *)
        Buffer.add_char buf ch;
        let rec str j =
          if j >= n then j
          else begin
            Buffer.add_char buf text.[j];
            match text.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
              Buffer.add_char buf text.[j + 1];
              str (j + 2)
            | _ -> str (j + 1)
          end
        in
        go (str (i + 1))
      end
      else if is_digit ch && (i = 0 || not (is_ident_char text.[i - 1])) then begin
        let rec digits j = if j < n && is_digit text.[j] then digits (j + 1) else j in
        let j = digits i in
        if j < n && text.[j] = '.' && j + 1 < n && is_digit text.[j + 1] then begin
          let k = digits (j + 1) in
          emit (Value.float (float_of_string (String.sub text i (k - i))));
          go k
        end
        else begin
          let len = j - i in
          if len = 6 || len = 8 then
            (* date-shaped literal (yymmdd / yyyymmdd): keep it in the text
               so translation-time date coercion still fires *)
            Buffer.add_string buf (String.sub text i len)
          else emit (Value.int (int_of_string (String.sub text i len)));
          go j
        end
      end
      else if is_ident_char ch then begin
        (* copy a whole identifier so its trailing digits stay untouched *)
        let rec ident j =
          if j < n && is_ident_char text.[j] then (
            Buffer.add_char buf text.[j];
            ident (j + 1))
          else j
        in
        go (ident i)
      end
      else begin
        Buffer.add_char buf ch;
        go (i + 1)
      end
  in
  go 0;
  match !consts with
  | [] -> (text, [])
  | vs -> (Buffer.contents buf, List.rev vs)

(* Bind extracted constants back into a parameterized plan. *)
let bind_consts consts plan =
  if consts = [] then plan
  else
    let map = List.mapi (fun i v -> (Expr.param_name i, Expr.Const v)) consts in
    Plan.map_exprs (Analysis.subst map) plan

let clear () = Hashtbl.reset table
let size () = Hashtbl.length table
let hits () = M.value c_hit
let misses () = M.value c_miss
let evictions () = M.value c_evict

let evict_lru () =
  let oldest =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      table None
  in
  match oldest with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove table k;
    M.incr c_evict

let store key plan =
  if !capacity > 0 then begin
    while Hashtbl.length table >= !capacity do
      evict_lru ()
    done;
    incr tick;
    Hashtbl.replace table key { plan; stamp = !tick }
  end

let find_or_derive_report (cat : Catalog.t) ?(options = "") text
    ~(derive : string -> Plan.t) : Plan.t * bool =
  let text = normalize text in
  let template, consts =
    if !auto_param && not (String.contains text '?')
       && not (Catalog.has_indexes cat)
    then parameterize text
    else (text, [])
  in
  if consts <> [] then M.incr c_autoparam;
  let key =
    { cat_id = Catalog.id cat; epoch = Catalog.epoch cat; options;
      text = template }
  in
  match Hashtbl.find_opt table key with
  | Some e ->
    M.incr c_hit;
    incr tick;
    e.stamp <- !tick;
    (bind_consts consts e.plan, true)
  | None ->
    M.incr c_miss;
    if consts = [] then begin
      let plan = derive template in
      store key plan;
      (plan, false)
    end
    else begin
      (* Derive the parameterized plan from the template.  If the template
         fails to derive (a literal turned out to be load-bearing for
         typing), fall back to the exact text under its own key. *)
      match derive template with
      | plan ->
        store key plan;
        (bind_consts consts plan, false)
      | exception _ ->
        let plan = derive text in
        store { key with text } plan;
        (plan, false)
    end

let find_or_derive cat ?options text ~derive =
  fst (find_or_derive_report cat ?options text ~derive)
