(* Prepared-query plan cache: an LRU over compiled physical plans, keyed
   on the normalized query text, the catalog identity and epoch, and a
   caller-chosen options string.  A hit returns the stored plan without
   running any of the derivation pipeline (translate → rewrite → typecheck
   → plan) — the caller passes that pipeline as the [derive] closure, so
   this module needs no dependency on the frontend.

   Epoch participation makes invalidation free: any catalog change
   ([add_table]/[set_rows]/[create_index]) bumps the epoch, so stale
   entries simply stop being addressable and age out through the LRU.

   The cache is process-global and main-domain only (the CLI, REPL and
   bench all derive plans on the main domain); hits, misses and evictions
   are exported through [Njq_obs.Metrics]. *)

open Njq_adl
module M = Njq_obs.Metrics

let c_hit = M.counter "plancache_hit"
let c_miss = M.counter "plancache_miss"
let c_evict = M.counter "plancache_evict"

(* Maximum number of cached plans; 0 disables caching entirely. *)
let capacity = ref 64

type key = {
  cat_id : int;
  epoch : int;
  options : string; (* anything that changes derivation: mode, domains… *)
  text : string; (* normalized query text *)
}

type entry = { plan : Plan.t; mutable stamp : int (* recency *) }

let table : (key, entry) Hashtbl.t = Hashtbl.create 64
let tick = ref 0

(* Normalize query text so formatting differences don't split cache
   entries: collapse every whitespace run to one space and trim. *)
let normalize text =
  let buf = Buffer.create (String.length text) in
  let pending = ref false in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending := true
      | ch ->
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf ch)
    text;
  Buffer.contents buf

let clear () = Hashtbl.reset table
let size () = Hashtbl.length table
let hits () = M.value c_hit
let misses () = M.value c_miss
let evictions () = M.value c_evict

let evict_lru () =
  let oldest =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      table None
  in
  match oldest with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove table k;
    M.incr c_evict

let find_or_derive_report (cat : Catalog.t) ?(options = "") text
    ~(derive : unit -> Plan.t) : Plan.t * bool =
  let key =
    { cat_id = Catalog.id cat; epoch = Catalog.epoch cat; options;
      text = normalize text }
  in
  match Hashtbl.find_opt table key with
  | Some e ->
    M.incr c_hit;
    incr tick;
    e.stamp <- !tick;
    (e.plan, true)
  | None ->
    M.incr c_miss;
    let plan = derive () in
    if !capacity > 0 then begin
      while Hashtbl.length table >= !capacity do
        evict_lru ()
      done;
      incr tick;
      Hashtbl.replace table key { plan; stamp = !tick }
    end;
    (plan, false)

let find_or_derive cat ?options text ~derive =
  fst (find_or_derive_report cat ?options text ~derive)
