(** Engine-wide memory budget, in rows — the |M| of the paper's Section
    6.2 generalized to the whole engine: how many build-side rows any
    single operator may hold resident at once.

    Defaults to [max_int] (everything fits, nothing spills); set per
    invocation from the CLI [--mem-budget] option.  {!Planner} converts
    over-budget hash joins to Grace joins and clamps Grace/PNHL node
    budgets, {!Cost} charges spill I/O for over-budget builds, and
    {!Exec}'s sorts go external past it. *)

val budget : int ref
val unlimited : unit -> bool

(** Parse a CLI budget spec: a positive integer with an optional [k]
    (x 1024) or [m] (x 1024^2) suffix, case-insensitive.  [None] on
    anything else (zero, negative, overflow, garbage). *)
val parse : string -> int option
