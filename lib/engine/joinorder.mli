(** Cost-based join-order enumeration with DAG-aware selection placement.

    A pass between the rewriter-driven logical planning ({!Planner}) and
    access-path selection: it extracts maximal join regions — connected
    subtrees of inner joins with semijoin/antijoin/nestjoin edges and
    selections — from the rewriter's output plan, enumerates alternative
    join orders bottom-up (dynamic programming over relation subsets up to
    {!dp_max} relations, greedy nearest-neighbor beyond), costs each with
    the {!Cost} model fed by per-epoch {!Stats}, and adopts the cheapest
    order only when it is strictly cheaper than the rewriter's.

    Semijoin/antijoin/nestjoin edges ride along as unary operators over
    the accumulating join result, applied at the earliest point where the
    attributes they need are available; a nestjoin's ordering constraint —
    the grouping side must survive into the result — is exactly the
    requirement that its key/body attributes be available, and the
    attribute it produces feeds the availability of later selections, so
    "grouping-complete" subsets fall out of the same dependency tracking.

    Selections are then placed on the costed tree rather than always at
    the leaves: with {!shared} fingerprints (subplans materialized once by
    a batched prepared-query plan), pushing a selection below the shared
    node would forfeit reuse, and hoisting it above can win — the
    "Sprinkling Selections over Join DAGs" case. *)

open Njq_adl

(** Master switch consulted by {!Planner.plan} (default on). *)
val use_joinorder : bool ref

(** Relation-count ceiling for exhaustive DP-over-subsets; larger regions
    fall back to greedy nearest-neighbor ordering (default 10). *)
val dp_max : int ref

(** Fingerprints ({!Plan.fingerprint}) of subplans materialized once and
    shared (e.g. across a batched prepared-query plan).  A shared subtree
    is charged only its output cardinality, which is what lets a hoisted
    selection beat leaf pushdown. *)
val shared : string list ref

type region_report = {
  relations : string list;  (** leaf labels, rewriter order *)
  considered : int;  (** candidate plans costed *)
  pruned : int;  (** candidates discarded against a cheaper incumbent *)
  chosen_cost : float;
  rewriter_cost : float;
  reordered : bool;  (** chosen plan differs from the rewriter's order *)
  hoisted : int;  (** selections placed above a join by the DAG pass *)
  chosen_fingerprint : string;
  rewriter_fingerprint : string;
}

(** Per-region reports of the most recent {!optimize} call, in plan
    traversal order; empty when no region was found (or the pass is
    off). *)
val last_report : region_report list ref

(** The pass: rewrite every join region of the plan to its cheapest
    enumerated order (strictly-cheaper adoption; ties and estimation
    failures keep the rewriter's plan).  Resets {!last_report}. *)
val optimize : ?stats:Stats.t -> Catalog.t -> Plan.t -> Plan.t

(** Every complete enumerated order of the first join region of the plan
    (deduplicated by fingerprint, capped at [limit] per subset) — the
    differential-test hook: each returned plan must produce results
    bit-identical to the input plan.  [[]] when the plan has no region. *)
val orders : ?limit:int -> ?stats:Stats.t -> Catalog.t -> Plan.t -> Plan.t list
